"""Setuptools entry point.

The canonical metadata lives in ``pyproject.toml``; this file exists so the
package can also be installed in environments without PEP 517 build
isolation or the ``wheel`` package (``python setup.py develop`` /
``pip install -e . --no-build-isolation``).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.1.0",
    description=(
        "Domain-specific reconfigurable arrays for mobile video: DCT and "
        "motion-estimation mappings (DATE 2004 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy>=1.20"],
)
