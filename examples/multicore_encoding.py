#!/usr/bin/env python3
"""Multicore encoding with the ``processes`` backend of :mod:`repro.par`.

Breaks the single-process ceiling on the paper's live-camera workload:
a QCIF sequence is split into closed GOPs and encoded by worker
*processes* — frames travel once through a shared-memory segment, every
worker starts from the parent's exported flow cache, and the reassembled
stream is bit-identical to a serial encode (asserted below via the
canonical stream digest).  The same pool then serves a partitioned fleet
simulation and a process-backed ``compile_many``, the other two layers
``repro.par`` is wired into.

The ``__main__`` guard is **required**: the processes backend spawns
workers by re-importing this module, so pool-launching code must not run
at import time (the spawn-safety rule of :mod:`repro.par`).

Run with:  python examples/multicore_encoding.py
"""

from __future__ import annotations

import os
import time

from repro.fleet import (
    FleetSettings,
    execute_fleet_serial,
    simulate_fleet_partitioned,
    synthetic_trace,
)
from repro.par import ProcessBackend, available_cpus, leaked_segments
from repro.reporting import format_table
from repro.video import EncoderConfiguration
from repro.video.frames import QCIF_HEIGHT, QCIF_WIDTH, SyntheticSequence
from repro.video.gop import encode_sequence_parallel, stream_digest

FRAME_COUNT = 24
GOP_SIZE = 4
WORKERS = min(4, max(2, available_cpus()))


def encode_across_cores(frames, backend) -> None:
    configuration = EncoderConfiguration()
    rows = []
    digests = {}
    for strategy in ("serial", "processes"):
        started = time.perf_counter()
        outcome = encode_sequence_parallel(
            frames, configuration, gop_size=GOP_SIZE, workers=WORKERS,
            strategy=strategy, backend=backend)
        elapsed = time.perf_counter() - started
        digests[strategy] = stream_digest(outcome.statistics)
        rows.append({"strategy": outcome.strategy,
                     "gops": len(outcome.gops),
                     "seconds": round(elapsed, 3),
                     "mean_psnr_db": round(outcome.mean_psnr_db, 2),
                     "digest": digests[strategy][:12]})
    assert digests["processes"] == digests["serial"], \
        "processes encode must be bit-identical to serial"
    print(format_table(rows))
    print(f"bit-identical across {WORKERS} worker processes "
          f"(digest {digests['serial'][:12]}...)\n")


def partitioned_fleet(backend) -> None:
    jobs = synthetic_trace("flash_crowd", 120, seed=7, mean_gap=800)
    settings = FleetSettings(soc_count=4, queue_capacity=64)
    report = simulate_fleet_partitioned(jobs, settings, partitions=2,
                                        parallel="processes",
                                        backend=backend)
    naive = {result.job_id: result.digest
             for result in execute_fleet_serial(jobs)}
    digests = report.digests
    assert digests == {job_id: naive[job_id] for job_id in digests}
    summary = report.summary()
    print(f"fleet: {summary['completed']} jobs completed over "
          f"{summary['partitions']} partitions "
          f"(p99 latency {summary['latency_p99']} cycles), payloads "
          f"bit-identical to naive serial execution\n")


def compile_across_cores(backend) -> None:
    from repro.dct import CordicDCT1, MixedRomDCT, SCCDirectDCT
    from repro.flow import FlowCache, compile_many

    cache = FlowCache()
    results = compile_many([MixedRomDCT(), SCCDirectDCT(), CordicDCT1()],
                           cache=cache, parallel="processes",
                           backend=backend)
    names = ", ".join(result.design_name for result in results)
    print(f"compile_many(parallel='processes'): {names} "
          f"({len(cache)} results merged back into the parent cache)")


def main() -> None:
    print(f"host: {os.cpu_count()} cores -> {WORKERS} workers\n")
    sequence = SyntheticSequence(height=QCIF_HEIGHT, width=QCIF_WIDTH,
                                 global_motion=(1, 2), seed=2004)
    frames = [sequence.frame(index) for index in range(FRAME_COUNT)]
    with ProcessBackend(workers=WORKERS) as backend:
        encode_across_cores(frames, backend)
        partitioned_fleet(backend)
        compile_across_cores(backend)
    assert leaked_segments() == [], "shared-memory segments leaked"


if __name__ == "__main__":
    main()
