#!/usr/bin/env python3
"""GOP-parallel encoding with rate control over a diverse scene mix.

The live-workload story of the paper, scaled out: a sequence containing a
hard scene cut is split into closed GOPs (cadence + cut detection), the
GOPs are encoded by the ``lockstep`` and ``threads`` strategies of
:mod:`repro.video.gop` — bit-identically to a serial encode — and a
buffer-model rate controller steers the per-frame QP toward a bits/frame
target.  A second pass drives the paper's dynamic-reconfiguration
experiment at scale: the scene planner switches the search algorithm and
DCT mapping per frame from the measured motion energy.

Run with:  python examples/gop_parallel_encoding.py
"""

from __future__ import annotations

import time

from repro.reporting import format_table
from repro.video import EncoderConfiguration, VideoEncoder
from repro.video.gop import (
    DEFAULT_SCENE_CUT_THRESHOLD,
    encode_sequence_parallel,
)
from repro.video.rate_control import RateController, RateControlSettings
from repro.video.scenes import (
    dct_implementation_by_name,
    plan_reconfiguration,
    scene_frames,
)

FRAME_COUNT = 20
HEIGHT, WIDTH = 96, 112
GOP_SIZE = 8
WORKERS = 4


def encode_with_strategies(frames) -> None:
    configuration = EncoderConfiguration()
    rows = []
    outcomes = {}
    for strategy in ("serial", "lockstep", "threads"):
        started = time.perf_counter()
        outcome = encode_sequence_parallel(
            frames, configuration, gop_size=GOP_SIZE,
            scene_cut_threshold=DEFAULT_SCENE_CUT_THRESHOLD,
            workers=WORKERS, strategy=strategy)
        elapsed = time.perf_counter() - started
        outcomes[strategy] = outcome
        rows.append({
            "strategy": strategy,
            "gops": len(outcome.gops),
            "seconds": round(elapsed, 3),
            "mean_psnr_db": round(outcome.mean_psnr_db, 2),
            "total_bits": outcome.total_estimated_bits,
        })
    print(format_table(
        rows, title=f"Encoding {FRAME_COUNT} frames ({WIDTH}x{HEIGHT}, one "
                    f"scene cut) as closed GOPs with {WORKERS} workers"))

    serial, lockstep = outcomes["serial"], outcomes["lockstep"]
    identical = all(
        a.psnr_db == b.psnr_db and a.estimated_bits == b.estimated_bits
        for a, b in zip(serial.statistics, lockstep.statistics))
    boundaries = [gop.start for gop in serial.gops]
    print(f"\nGOP boundaries (cadence {GOP_SIZE} + detected cut): {boundaries}")
    print(f"parallel streams bit-identical to serial: {identical}")


def encode_with_rate_control(frames) -> None:
    configuration = EncoderConfiguration()
    fixed = encode_sequence_parallel(frames, configuration, gop_size=GOP_SIZE,
                                     workers=WORKERS)
    target = int(fixed.total_estimated_bits / len(frames) * 0.6)
    controller = RateController(RateControlSettings(
        target_bits_per_frame=target, base_qp=configuration.qp, gain=4.0))
    controlled = encode_sequence_parallel(frames, configuration,
                                          gop_size=GOP_SIZE, workers=WORKERS,
                                          rate_controller=controller)
    print(f"\nRate control toward {target} bits/frame:")
    print(f"  fixed QP {configuration.qp}: "
          f"{fixed.total_estimated_bits // len(frames)} bits/frame, "
          f"{fixed.mean_psnr_db:.2f} dB")
    print(f"  controlled: {controlled.total_estimated_bits // len(frames)} "
          f"bits/frame, {controlled.mean_psnr_db:.2f} dB, per-GOP QP "
          f"trajectories {controlled.qp_trajectories}")


def encode_with_reconfiguration(frames) -> None:
    """Per-frame kernel switching driven by the scene planner."""
    plan = plan_reconfiguration(frames)
    encoder = VideoEncoder(EncoderConfiguration(search_range=4))
    switches = 0
    previous = None
    for index, (frame, entry) in enumerate(zip(frames, plan)):
        configured = (entry["search_name"], entry["dct_name"])
        if configured != previous:
            encoder.reconfigure(
                search_name=entry["search_name"],
                dct_transform=dct_implementation_by_name(entry["dct_name"]),
                vectorized=False)
            switches += previous is not None
            previous = configured
        encoder.encode_frame(frame, index)
    candidates = sum(stats.search_candidates
                     for stats in encoder.frame_statistics)
    print(f"\nDynamic reconfiguration over the cut: {switches} kernel "
          f"switches, {candidates} search candidates, last frame "
          f"{encoder.frame_statistics[-1].psnr_db:.2f} dB "
          f"({plan[0]['search_name']} -> {plan[-1]['search_name']} at the cut)")


def main() -> None:
    frames = scene_frames("cut", count=FRAME_COUNT, height=HEIGHT,
                          width=WIDTH, seed=7)
    encode_with_strategies(frames)
    encode_with_rate_control(frames)
    encode_with_reconfiguration(frames)


if __name__ == "__main__":
    main()
