#!/usr/bin/env python3
"""Design-space exploration of the five DCT implementations (Table 1 + Sec. 3.6).

For every implementation of Sec. 3 this script maps the netlist onto the DA
array and reports the axes a designer would trade against each other:

* cluster usage (the Table 1 rows) and ROM bits,
* routed hops, critical-path estimate and configuration-bitstream size,
* cycles per transform and energy per transform at the activity of a real
  pixel workload,
* worst-case accuracy against the floating-point reference.

Run with:  python examples/dct_design_space.py
"""

from __future__ import annotations

import numpy as np

from repro.arrays import build_da_array
from repro.dct import dct_implementations
from repro.dct.reference import dct_1d
from repro.flow import compile_many
from repro.power import domain_specific_cost, power_per_block
from repro.power.activity import block_activity
from repro.reporting import format_table


def worst_case_error(transform, vectors) -> float:
    """Largest coefficient error of a transform over a batch of vectors."""
    worst = 0.0
    for vector in vectors:
        if hasattr(transform, "forward_normalised"):
            outputs = transform.forward_normalised(vector)
        else:
            outputs = transform.forward(vector)
        worst = max(worst, float(np.max(np.abs(outputs - dct_1d(vector)))))
    return worst


def main() -> None:
    rng = np.random.default_rng(7)
    vectors = rng.integers(-2048, 2048, (32, 8))
    pixel_block = rng.integers(0, 256, (8, 8))
    activity = block_activity(pixel_block)

    transforms = dct_implementations()
    # One batch compile through the unified flow: every implementation goes
    # through the same schedule/place/route/bitstream/verify/metrics passes.
    results = compile_many(transforms)

    rows = []
    for transform, result in zip(transforms, results):
        cost = domain_specific_cost(result.netlist, build_da_array(),
                                    activity=activity, routing=result.routing)
        rows.append({
            "implementation": transform.name,
            "figure": transform.figure,
            "clusters": result.usage.total_clusters,
            "rom_bits": result.metrics.memory_bits,
            "routed_hops": result.metrics.routed_hops,
            "config_bits": result.metrics.configuration_bits,
            "cycles": transform.cycles_per_transform,
            "energy": round(power_per_block(cost, transform.cycles_per_transform), 1),
            "worst_error": round(worst_case_error(transform, vectors), 3),
        })

    print(format_table(rows, title=f"DCT design space on the DA array "
                                   f"(workload activity {activity:.2f})"))
    print("\nReading the table:")
    print(" * Fig. 6 (cordic_1) buys the best accuracy with the most clusters;")
    print(" * Fig. 9 (scc_direct) is the smallest mapping but pays in ROM bits")
    print("   and configuration-bitstream size;")
    print(" * Fig. 7 (cordic_2) halves the rotators of Fig. 6 yet needs the")
    print("   longest schedule, so its energy per transform is not the lowest —")
    print("   exactly the area/activity/power interplay Sec. 3.6 points at.")


if __name__ == "__main__":
    main()
