#!/usr/bin/env python3
"""Inspect a mapping: floorplan, congestion and design-rule checks.

Maps two contrasting Table 1 implementations — the largest (CORDIC #1) and
the smallest (SCC direct) — onto the DA array and prints what the
soft-array flow would hand to a designer: the occupancy floorplan, the
routing congestion heat map, the headline metrics and the outcome of the
design-rule checks.  Also shows what happens when a kernel does not fit a
small array instance and how the time-multiplexing scheduler folds it.

Run with:  python examples/inspect_mapping.py
"""

from __future__ import annotations

from repro.arrays.da_array import DAArrayGeometry, build_da_array
from repro.core import (
    GreedyPlacer,
    ListScheduler,
    design_report,
    fold_factor,
)
from repro.core.exceptions import CapacityError
from repro.dct import CordicDCT1, SCCDirectDCT
from repro.flow import (
    Flow,
    GenerateBitstreamPass,
    GreedyPlacePass,
    MetricsPass,
    RoutePass,
    SchedulePass,
    VerifyPass,
)


def inspect(transform) -> None:
    """Compile one DCT implementation and print the full design report.

    Uses an explicit :class:`~repro.flow.Flow` so the pass pipeline — and
    its per-stage timings — is visible; `Flow.default()` builds the same
    pipeline in one call.
    """
    print("=" * 72)
    print(f"{transform.figure}: {transform.name}")
    print("=" * 72)
    flow = Flow([
        SchedulePass(),
        GreedyPlacePass(),
        RoutePass(),
        GenerateBitstreamPass(),
        VerifyPass(),
        MetricsPass(),
    ])
    result = flow.compile(transform)
    print(design_report(result.fabric, result.netlist, result.placement,
                        result.routing))
    print(f"design-rule checks: {result.verification.summary()}")
    print("pass pipeline     : " + " -> ".join(
        f"{name} ({seconds * 1000:.1f}ms)"
        for name, seconds in result.stage_timings.items()))
    print()


def inspect_folding() -> None:
    """Show the largest mapping folded onto a quarter-size array instance."""
    print("=" * 72)
    print("CORDIC #1 on a quarter-size DA array (time-multiplexed)")
    print("=" * 72)
    netlist = CordicDCT1().build_netlist()
    small = build_da_array(DAArrayGeometry(rows=4, add_shift_columns=3,
                                           memory_columns=1))
    try:
        GreedyPlacer(small).place(netlist)
        spatially_fits = True
    except CapacityError as error:
        spatially_fits = False
        print(f"spatial mapping fails as expected: {error}")
    capacity = small.capacity()
    full = build_da_array()
    full_schedule = ListScheduler.for_fabric(full).schedule(netlist)
    folded_schedule = ListScheduler.for_fabric(small).schedule(netlist)
    print(f"fold factor of the scarcest resource : {fold_factor(netlist, capacity):.2f}")
    print(f"schedule length, full-size array       : {full_schedule.length_cycles} cycles")
    print(f"schedule length, quarter-size array    : {folded_schedule.length_cycles} cycles")
    print(f"cluster-cycle utilisation (small array): {folded_schedule.utilisation(capacity):.1%}")
    if not spatially_fits:
        print("The kernel no longer fits spatially, yet it still runs on the "
              "smaller instance by time-sharing clusters — the area/throughput "
              "knob the SoC integrator turns.")
    print()


def main() -> None:
    inspect(CordicDCT1())
    inspect(SCCDirectDCT())
    inspect_folding()


if __name__ == "__main__":
    main()
