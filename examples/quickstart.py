#!/usr/bin/env python3
"""Quickstart: map a DCT onto the DA array and run motion estimation.

This walks through the three things most users need first:

1. transform an 8x8 pixel block with one of the mapped DCT implementations
   and check it against the floating-point reference;
2. build the domain-specific DA array and compile the implementation onto
   it through the unified `repro.flow` pipeline (schedule + place + route +
   bitstream + verify + metrics) and look at the cluster usage — the same
   numbers as Table 1 of the paper;
3. run the 4x16-PE systolic motion-estimation array on a synthetic frame
   pair and compare its motion vector with exhaustive software search.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.arrays import ReconfigurableSoC, build_da_array, build_me_array
from repro.dct import MixedRomDCT, dct_2d
from repro.me import SystolicArray, full_search
from repro.reporting import format_table
from repro.video import panning_sequence


def demo_dct() -> None:
    """Transform one block with the Mixed-ROM implementation (Fig. 5)."""
    print("=" * 72)
    print("1. DCT on the Distributed-Arithmetic array (Mixed-ROM, Fig. 5)")
    print("=" * 72)

    rng = np.random.default_rng(1)
    block = rng.integers(0, 256, (8, 8))

    transform = MixedRomDCT()
    mapped_coefficients = transform.forward_2d(block)
    reference_coefficients = dct_2d(block)
    worst_error = np.max(np.abs(mapped_coefficients - reference_coefficients))

    print(f"input block (top-left 4x4):\n{block[:4, :4]}")
    print(f"DC coefficient: mapped {mapped_coefficients[0, 0]:.1f}, "
          f"reference {reference_coefficients[0, 0]:.1f}")
    print(f"worst-case coefficient error vs float reference: {worst_error:.2f}")
    print(f"cycles per 8-point transform: {transform.cycles_per_transform}")
    print()


def demo_mapping() -> None:
    """Compile the Mixed-ROM design onto the DA array through the SoC."""
    print("=" * 72)
    print("2. Compilation flow on the reconfigurable SoC (Fig. 1 + Fig. 3)")
    print("=" * 72)

    soc = ReconfigurableSoC()
    soc.attach_array(build_da_array())
    soc.attach_array(build_me_array())

    result = soc.compile_and_load(MixedRomDCT())

    print(format_table([{"implementation": "MIX ROM", **result.table_row()}],
                       title="Cluster usage (one Table 1 row)"))
    timings = ", ".join(f"{name} {seconds * 1000:.1f}ms"
                        for name, seconds in result.stage_timings.items())
    print(f"\nflow stages: {timings}")
    print(f"routed hops: {result.routing.total_hops}, "
          f"bitstream: {result.bitstream.total_bits()} bits, "
          f"loaded in {soc.reconfiguration_log[-1].cycles} bus cycles")
    print(f"DA array floorplan ({soc.array('da_array').rows}x"
          f"{soc.array('da_array').cols} sites):")
    print(soc.array("da_array").floorplan())
    print()


def demo_motion_estimation() -> None:
    """Run the systolic full-search engine on a synthetic pan."""
    print("=" * 72)
    print("3. Motion estimation on the 4x16 systolic array (Figs. 10-11)")
    print("=" * 72)

    sequence = panning_sequence(height=64, width=80, pan=(1, 2), seed=9)
    reference_frame, current_frame = sequence.frame(0), sequence.frame(1)

    array = SystolicArray()
    result = array.search(current_frame, reference_frame, top=32, left=32,
                          block_size=16, search_range=4)
    batched = SystolicArray().search_batched(current_frame, reference_frame,
                                             32, 32, block_size=16,
                                             search_range=4)
    software = full_search(current_frame, reference_frame, 32, 32, 16, 4)

    print(f"ground-truth motion vector : {sequence.ground_truth_background_vector()}")
    print(f"systolic array result      : {result.motion_vector} (SAD {result.best.sad})")
    print(f"batched engine result      : {batched.motion_vector} (SAD {batched.best.sad}, "
          f"same cycles: {batched.cycles == result.cycles})")
    print(f"software full search       : {software.motion_vector} (SAD {software.best.sad})")
    print(f"first SAD ready after      : {result.first_sad_cycle} cycles")
    print(f"total cycles for the block : {result.cycles} "
          f"({result.candidates_evaluated} candidates, {result.rounds} rounds)")
    print(f"memory bandwidth reduction : {result.memory_bandwidth_reduction:.1%}")
    print()


def main() -> None:
    demo_dct()
    demo_mapping()
    demo_motion_estimation()
    print("Done. See examples/video_encoding.py and "
          "examples/dynamic_reconfiguration.py for the system-level demos.")


if __name__ == "__main__":
    main()
