#!/usr/bin/env python3
"""SoC NoC topology exploration over the repository's real workloads.

Walks the full :mod:`repro.noc` story: extract traffic from a routed DCT
netlist and a GOP-parallel video encode, compare the topology families on
hop statistics, simulate every topology x workload pair (batched analytic
model), reduce the sweep to its Pareto front over latency / energy /
router area, and finally compile a kernel through ``Flow.with_noc`` so
the communication cost lands in the design metrics next to area and
timing.

Run with:  python examples/noc_topology_exploration.py
"""

from __future__ import annotations

from repro.dct import MixedRomDCT
from repro.flow import Flow
from repro.flow import compile as flow_compile
from repro.noc import (
    default_grid,
    grid_sweep,
    pareto_by_workload,
    standard_topologies,
    sweep,
    traffic_from_gop_shards,
    traffic_from_routing,
)
from repro.reporting import format_table
from repro.video import EncoderConfiguration
from repro.video.gop import encode_sequence_parallel
from repro.video.scenes import scene_frames

FRAME_COUNT = 16
HEIGHT, WIDTH = 96, 112
WORKERS = 4


def extract_workloads():
    """Two extracted traffic matrices: routed netlist + GOP sharding."""
    compiled = flow_compile(MixedRomDCT())
    netlist = traffic_from_routing(compiled.routing, compiled.fabric.rows,
                                   compiled.fabric.cols, tiles=(3, 3))

    frames = scene_frames("pan", count=FRAME_COUNT, height=HEIGHT,
                          width=WIDTH, seed=2004)
    outcome = encode_sequence_parallel(
        frames, EncoderConfiguration(search_range=4), gop_size=8,
        workers=WORKERS)
    gop = traffic_from_gop_shards(
        FRAME_COUNT, WORKERS, (HEIGHT, WIDTH),
        encoded_bits_per_frame=[stats.estimated_bits
                                for stats in outcome.statistics])
    return {"dct_netlist": netlist, "gop_video": gop}


def show_topology_zoo(agent_count: int) -> None:
    print(format_table(
        [topology.describe() for topology in standard_topologies(agent_count)],
        title=f"Topology families sized for {agent_count} agents"))


def show_pareto(workloads) -> None:
    points = sweep(workloads, placements=("linear", "spread", "hub"))
    print(f"\nSwept {len(points)} design points "
          f"(topology x placement x workload).")
    for workload, front in pareto_by_workload(points).items():
        print()
        print(format_table(
            [point.summary() for point in front],
            columns=["topology", "placement", "latency_cycles",
                     "mean_latency_cycles", "noc_energy", "router_area",
                     "saturated"],
            title=f"Pareto front - {workload} "
                  "(minimise latency, energy, router area)"))


def show_grid_sweep(workloads) -> None:
    """The thousand-point path: knob grids over the hierarchical families."""
    largest = max(traffic.agent_count for traffic in workloads.values())
    specs = list(default_grid(largest))
    points = grid_sweep(workloads, specs=specs)
    print(f"\nGrid sweep: {len(specs)} (family, knobs) specs -> "
          f"{len(points)} design points; pass parallel='processes' to "
          "shard over worker processes (bit-identical results).")
    for workload, front in pareto_by_workload(points).items():
        best = min(front, key=lambda point: point.mean_latency_cycles)
        print(f"  {workload}: front of {len(front)}, lowest mean latency "
              f"{best.mean_latency_cycles:.1f} cycles on {best.topology} "
              f"({best.placement})")


def show_flow_integration() -> None:
    result = Flow.with_noc(tiles=(3, 3)).compile(MixedRomDCT())
    print("\nFlow.with_noc() folds communication cost into the metrics:")
    print(format_table([result.summary()],
                       columns=["design", "total_area_elements",
                                "critical_path_delay", "engine_levels",
                                "noc_latency_cycles", "noc_energy"]))


def main() -> None:
    workloads = extract_workloads()
    largest = max(traffic.agent_count for traffic in workloads.values())
    show_topology_zoo(largest)
    show_pareto(workloads)
    show_grid_sweep(workloads)
    show_flow_integration()


if __name__ == "__main__":
    main()
