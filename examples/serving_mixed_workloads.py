#!/usr/bin/env python3
"""Multi-tenant serving: mixed video workloads on a reconfigurable fleet.

The end-to-end system story of the paper, scaled to a serving runtime: a
stream of heterogeneous jobs — GOP shards from camera tenants, DCT batch
invocations, FIR filter calls — arrives at a bounded queue and is
scheduled onto reconfigurable SoCs.  A job whose kernel is not loaded
pays for its *measured* bitstream (a real place-and-route through
``repro.flow``) streamed over the SoC's NoC topology, so the
reconfiguration-aware ``affinity`` policy has something real to optimise
against FIFO, shortest-job-first and round-robin.

The run also demonstrates the two correctness contracts the test suite
pins down: scheduled batched execution is bit-identical to serving every
job alone, and GOP shards completed out of order still decode bit-exactly
after reassembly.

Run with:  python examples/serving_mixed_workloads.py
"""

from __future__ import annotations

import time

from repro.reporting import format_table
from repro.serve import (
    KernelLibrary,
    ServeSettings,
    execute_serial,
    generate_jobs,
    serve,
)

JOB_COUNT = 20
SEED = 7
MEAN_GAP = 6_000
POLICIES = ("fifo", "sjf", "affinity", "round_robin")


def compare_policies(jobs, library) -> None:
    serial_digests = {result.job_id: result.digest
                      for result in execute_serial(jobs)}
    rows = []
    for policy in POLICIES:
        started = time.perf_counter()
        report = serve(jobs, ServeSettings(policy=policy, queue_capacity=16,
                                           max_batch=4), library=library)
        elapsed = time.perf_counter() - started
        for job_id, digest in report.digests.items():
            assert digest == serial_digests[job_id], "scheduling changed bits!"
        assert report.completed + report.rejected == len(jobs)
        summary = report.summary()
        rows.append({
            "policy": policy,
            "done": summary["completed"],
            "rej": summary["rejected"],
            "batches": summary["batches"],
            "p50": summary["latency_p50"],
            "p95": summary["latency_p95"],
            "energy/job": summary["energy_per_job"],
            "reconf": summary["reconfigurations"],
            "wall_s": round(elapsed, 3),
        })
    print(format_table(
        rows, title=f"{len(jobs)} kernel-churn jobs on one SoC "
                    f"(virtual cycles; bit-exactness asserted)"))
    print("Every policy produced bit-identical payloads; they differ only\n"
          "in when jobs ran and how many bitstreams were streamed.\n")


def show_fleet_and_backpressure(library) -> None:
    jobs = generate_jobs("bursty_mixed", job_count=24, seed=SEED,
                         mean_gap=1_500)
    report = serve(jobs, ServeSettings(policy="affinity", soc_count=2,
                                       queue_capacity=6, max_batch=4),
                   library=library)
    shares = {soc.name: soc.jobs_executed for soc in report.socs}
    print(f"bursty mix on a 2-SoC fleet with a 6-slot queue: "
          f"{report.completed} served {shares}, "
          f"{report.rejected} rejected by admission control")
    print(f"reconfiguration traffic: {report.reconfigurations} switches, "
          f"{report.reconfiguration_bits} bits, "
          f"{report.reconfiguration_energy:.0f} energy units\n")


def main() -> None:
    library = KernelLibrary()
    print("Compiling serving kernels through the shared flow cache "
          "(place-and-route once per kernel)...")
    stats = library.prewarm(["dct:mixed_rom", "dct:scc_direct", "dct:cordic2",
                             "me:full_r4", "me:full_r8", "fir:lowpass8"])
    print(f"prewarmed {stats['designs']} kernels "
          f"({stats['misses']} cold compiles)\n")

    jobs = generate_jobs("kernel_churn", job_count=JOB_COUNT, seed=SEED,
                         mean_gap=MEAN_GAP)
    compare_policies(jobs, library)
    show_fleet_and_backpressure(library)


if __name__ == "__main__":
    main()
