#!/usr/bin/env python3
"""Hybrid video encoding with the mapped kernels (the MPEG-4/H.263 use case).

Encodes a short synthetic QCIF-like sequence with the hybrid encoder of
:mod:`repro.video.codec`, once per DCT implementation, and reports per-frame
PSNR, the motion-estimation work and the energy estimate of the DCT kernel
on the DA array.  This is the workload the paper's introduction motivates:
the same encoder runs with any of the Table 1 implementations, because the
array can host all of them.

Run with:  python examples/video_encoding.py
"""

from __future__ import annotations

import numpy as np

from repro.arrays import build_da_array
from repro.dct import dct_implementations
from repro.flow import compile as flow_compile
from repro.power import domain_specific_cost, power_per_block
from repro.power.activity import block_activity
from repro.reporting import format_table
from repro.video import EncoderConfiguration, VideoEncoder, panning_sequence

FRAME_COUNT = 3
QP = 6
SEARCH_RANGE = 4


def encode_with(transform, frames) -> dict:
    """Encode the sequence with one DCT implementation; return summary stats."""
    encoder = VideoEncoder(EncoderConfiguration(
        qp=QP, search_range=SEARCH_RANGE, search_name="full",
        dct_transform=transform,
        dct_cycles_per_block=transform.cycles_per_transform))
    statistics = encoder.encode_sequence(frames)
    return {
        "mean_psnr_db": float(np.mean([s.psnr_db for s in statistics])),
        "dct_blocks": sum(s.dct_blocks for s in statistics),
        "dct_cycles": sum(s.dct_cycles for s in statistics),
        "sad_operations": sum(s.sad_operations for s in statistics),
        "inter_fraction": statistics[-1].inter_fraction,
    }


def main() -> None:
    sequence = panning_sequence(height=64, width=80, pan=(1, 2), seed=17)
    frames = [sequence.frame(i) for i in range(FRAME_COUNT)]
    activity = block_activity(frames[0][:8, :8])

    rows = []
    for transform in dct_implementations():
        summary = encode_with(transform, frames)
        result = flow_compile(transform)
        cost = domain_specific_cost(result.netlist, build_da_array(),
                                    activity=activity, routing=result.routing)
        energy = power_per_block(cost, transform.cycles_per_transform)
        rows.append({
            "dct_implementation": transform.name,
            "figure": transform.figure,
            "clusters": result.usage.total_clusters,
            "mean_psnr_db": round(summary["mean_psnr_db"], 2),
            "dct_cycles": summary["dct_cycles"],
            "energy_per_transform": round(energy, 1),
            "inter_mb_fraction": round(summary["inter_fraction"], 2),
        })

    print(format_table(
        rows,
        title=f"Encoding {FRAME_COUNT} frames of a {frames[0].shape[1]}x"
              f"{frames[0].shape[0]} pan with every Table 1 DCT implementation"))
    print("\nAll implementations deliver essentially the same quality; they buy it")
    print("with different mixes of clusters, cycles and energy — which is the")
    print("flexibility argument of the paper.")


if __name__ == "__main__":
    main()
