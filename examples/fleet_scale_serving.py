#!/usr/bin/env python3
"""Fleet-scale serving: one flash crowd, fleets from 3 to 256 SoCs.

A synthetic tenant mix runs steady until a contiguous window where
arrivals compress tenfold and one hot DCT kernel dominates — then the
same trace is replayed against ever larger fleets of reconfigurable
SoCs under the event-driven :mod:`repro.fleet` runtime, with work
stealing, SLO-aware shedding, predictive kernel prewarm and idle power
gating all enabled.

Small fleets survive the crowd by shedding the lowest-value jobs; big
fleets absorb it and power-gate through the quiet stretches instead.
Either way the completed payloads are bit-identical to executing every
job alone on one SoC — scheduling moves where and when a job runs,
never what it computes (asserted below).

Run with:  python examples/fleet_scale_serving.py [--trace trace_fleet.json]

Pass ``--trace`` to record the whole sweep with :mod:`repro.obs` and
write a Chrome trace-event file — open it at ``chrome://tracing`` or
https://ui.perfetto.dev to see every fleet's batches, steals, sheds and
gatings on the virtual-time axis, plus a per-layer metrics table here.
"""

from __future__ import annotations

import argparse
import time

from repro import obs
from repro.fleet import (
    FleetSettings,
    execute_fleet_serial,
    simulate_fleet,
    synthetic_trace,
)
from repro.reporting import format_table
from repro.serve import KernelLibrary

JOB_COUNT = 2_000
SEED = 7
MEAN_GAP = 150
FLEET_SIZES = (3, 8, 32, 256)
SLO_TARGET = 60_000


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="record the sweep and write a Chrome "
                             "trace-event JSON file to PATH")
    arguments = parser.parse_args()
    if arguments.trace:
        obs.enable()

    library = KernelLibrary()
    jobs = synthetic_trace("flash_crowd", JOB_COUNT, seed=SEED,
                           mean_gap=MEAN_GAP)
    print(f"{JOB_COUNT:,} synthetic jobs, flash-crowd arrivals "
          f"(mean gap {MEAN_GAP} cycles), SLO target p99 <= "
          f"{SLO_TARGET:,} cycles\n")

    serial_digests = {result.job_id: result.digest
                      for result in execute_fleet_serial(jobs)}

    rows = []
    for soc_count in FLEET_SIZES:
        settings = FleetSettings(soc_count=soc_count, balancer="jsq",
                                 steal=True, slo_target_p99=SLO_TARGET,
                                 autoscale=True, idle_timeout=30_000,
                                 wake_latency=5_000, queue_capacity=200)
        started = time.perf_counter()
        report = simulate_fleet(jobs, settings, library=library)
        elapsed = time.perf_counter() - started

        assert report.conserved
        for job_id, digest in report.digests.items():
            assert digest == serial_digests[job_id], \
                "scheduling changed bits!"

        percentiles = report.latency_percentiles()
        rows.append({
            "SoCs": soc_count,
            "done": report.completed,
            "shed": report.shed,
            "rej": report.rejected,
            "steals": report.steals,
            "gatings": report.gatings,
            "p99": round(percentiles["p99"]),
            "saved": round(report.autoscale["saved"]),
            "wall_s": round(elapsed, 3),
        })

    print(format_table(
        rows, title="one flash crowd, four fleet sizes "
                    "(virtual cycles; bit-exactness asserted)"))
    print("Small fleets shed low-value work to hold the SLO; large fleets\n"
          "absorb the crowd and spend the quiet stretches power-gated.")

    if arguments.trace:
        tracer = obs.TRACER
        path = obs.write_chrome_trace(arguments.trace, tracer)
        print(f"\n{len(tracer.events()):,} trace events "
              f"(digest {obs.trace_digest(tracer)[:16]}…) -> {path}")
        print(format_table(
            [{"metric": row["metric"], "kind": row["kind"],
              "value": row.get("value", row.get("count"))}
             for row in obs.metrics_rows(tracer)],
            title="exported counters (load the trace in Perfetto or "
                  "chrome://tracing)"))
        obs.disable()


if __name__ == "__main__":
    main()
