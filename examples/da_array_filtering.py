#!/usr/bin/env python3
"""Filtering and wavelets on the Distributed-Arithmetic array.

Sec. 2.2 of the paper: the DA array "targets Distributed Arithmetic
calculations, which includes computations like filtering, DCT and DWT".
The other examples exercise the DCT; this one maps the remaining two
computation classes onto the same fabric:

* an 8-tap low-pass FIR filter realised as LUT + shift-accumulator
  (pre-filtering a noisy luminance line before encoding);
* a 2-level LeGall 5/3 lifting DWT built purely from Add-Shift clusters
  (no memory clusters at all — the opposite corner of the logic/memory
  trade-off from the ROM-heavy DCT mappings).

Run with:  python examples/da_array_filtering.py
"""

from __future__ import annotations

import numpy as np

from repro.arrays import ReconfigurableSoC, build_da_array
from repro.filters import (
    DistributedArithmeticFIR,
    build_dwt_netlist,
    dwt53_multilevel,
    dwt53_multilevel_inverse,
    symmetric_lowpass,
)
from repro.reporting import format_table
from repro.video import panning_sequence


def demo_fir(soc: ReconfigurableSoC) -> dict:
    """Low-pass filter a noisy luminance line on the DA array."""
    sequence = panning_sequence(height=64, width=64, noise_sigma=12.0, seed=3)
    line = sequence.frame(0)[32].astype(int)

    fir = DistributedArithmeticFIR(symmetric_lowpass(8, cutoff=0.2))
    result = soc.compile_and_load(fir)
    filtered = fir.filter(line)
    reference = fir.filter_reference(line)

    noise_in = float(np.std(np.diff(line)))
    noise_out = float(np.std(np.diff(filtered[8:])))
    return {
        "kernel": "fir_lowpass_8tap",
        "clusters": result.usage.total_clusters,
        "memory_clusters": result.usage.memory_clusters,
        "bitstream_bits": result.bitstream.total_bits(),
        "result": f"high-freq energy {noise_in:.1f} -> {noise_out:.1f}, "
                  f"max dev from float filter {np.max(np.abs(filtered - reference)):.2f}",
    }


def demo_dwt(soc: ReconfigurableSoC) -> dict:
    """Two-level integer wavelet decomposition of a luminance line."""
    sequence = panning_sequence(height=64, width=64, seed=5)
    line = sequence.frame(0)[16].astype(int)

    result = soc.compile_and_load(build_dwt_netlist(16), "da_array")
    bands = dwt53_multilevel(line, levels=2)
    reconstructed = dwt53_multilevel_inverse(bands)
    detail_energy = sum(float(np.sum(band.astype(float) ** 2)) for band in bands[1:])
    approx_energy = float(np.sum(bands[0].astype(float) ** 2))
    return {
        "kernel": "dwt53_2level",
        "clusters": result.usage.total_clusters,
        "memory_clusters": result.usage.memory_clusters,
        "bitstream_bits": result.bitstream.total_bits(),
        "result": f"perfect reconstruction: {np.array_equal(reconstructed, line)}, "
                  f"approx/detail energy {approx_energy / max(detail_energy, 1):.0f}:1",
    }


def main() -> None:
    soc = ReconfigurableSoC()
    soc.attach_array(build_da_array())

    rows = [demo_fir(soc), demo_dwt(soc)]
    print(format_table(rows, columns=["kernel", "clusters", "memory_clusters",
                                      "bitstream_bits", "result"],
                       title="Non-DCT Distributed-Arithmetic kernels on the DA array"))
    print(f"\nreconfigurations of the DA array: {soc.reconfiguration_count('da_array')}"
          f" (one per kernel), total configuration traffic "
          f"{soc.total_reconfiguration_bits()} bits")
    print("\nThe same fabric that hosts the five Table 1 DCT mappings also hosts")
    print("an FIR filter (LUT-based DA) and a lifting DWT (Add-Shift only),")
    print("covering the full computation class the paper assigns to the array.")


if __name__ == "__main__":
    main()
