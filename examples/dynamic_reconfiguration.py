#!/usr/bin/env python3
"""Dynamic reconfiguration under run-time constraints (Sec. 5 of the paper).

A mobile device encodes video while its operating conditions change:

* frames 0-1 — normal conditions: high-precision CORDIC DCT (Fig. 6) and
  exhaustive full search on the systolic ME array;
* frames 2-3 — low battery: the SoC reloads the DA array with the smallest
  DCT mapping (Fig. 9) and the encoder drops to a three-step search;
* frames 4-5 — noisy channel: the source gets noisier, the encoder keeps
  the low-power DCT but raises the quantiser step to hold the bit budget.

The script reports, per phase, the PSNR, the SAD work, the DCT cluster
usage on the array and the configuration traffic the switches cost.

Run with:  python examples/dynamic_reconfiguration.py
"""

from __future__ import annotations

import numpy as np

from repro.arrays import ReconfigurableSoC, build_da_array, build_me_array
from repro.dct import CordicDCT1, SCCDirectDCT
from repro.reporting import format_table
from repro.video import EncoderConfiguration, VideoEncoder, panning_sequence


def main() -> None:
    clean = panning_sequence(height=64, width=64, pan=(1, 1), seed=23)
    noisy = panning_sequence(height=64, width=64, pan=(1, 1), noise_sigma=6.0, seed=23)
    frames = [clean.frame(i) for i in range(4)] + [noisy.frame(i) for i in (4, 5)]

    soc = ReconfigurableSoC()
    soc.attach_array(build_da_array())
    soc.attach_array(build_me_array())

    high_quality = CordicDCT1()
    low_power = SCCDirectDCT()

    encoder = VideoEncoder(EncoderConfiguration(
        qp=4, search_range=4, search_name="full", dct_transform=high_quality,
        dct_cycles_per_block=high_quality.cycles_per_transform))
    soc.compile_and_load(high_quality)

    phase_of_frame = {0: "normal", 1: "normal",
                      2: "low battery", 3: "low battery",
                      4: "noisy channel", 5: "noisy channel"}
    rows = []
    for index, frame in enumerate(frames):
        if index == 2:
            # Battery is running low: reconfigure the DA array for the
            # smallest DCT mapping and cut the motion-search effort.
            soc.compile_and_load(low_power)
            encoder.reconfigure(dct_transform=low_power,
                                dct_cycles_per_block=low_power.cycles_per_transform,
                                search_name="three_step")
        if index == 4:
            # Channel got noisy: spend fewer bits by quantising harder.
            encoder.reconfigure(qp=10)

        statistics = encoder.encode_frame(frame, index)
        loaded = soc.loaded_kernel("da_array")
        rows.append({
            "frame": index,
            "phase": phase_of_frame[index],
            "dct_on_array": loaded.design_name,
            "dct_clusters": loaded.usage.total_clusters,
            "search": encoder.configuration.search_name,
            "qp": encoder.configuration.qp,
            "psnr_db": round(statistics.psnr_db, 2),
            "sad_ops": statistics.sad_operations,
        })

    print(format_table(rows, title="Per-frame operating points"))
    print(f"\nDA-array reconfigurations : {soc.reconfiguration_count('da_array')}")
    print(f"configuration bits loaded : {soc.total_reconfiguration_bits()}")
    print(f"configuration bus cycles  : {soc.total_reconfiguration_cycles()}")
    print("\nThe same arrays serve every operating point; switching costs one")
    print("bitstream load instead of a new chip — the conclusion of Sec. 5.")


if __name__ == "__main__":
    main()
