"""Plain-text table formatting shared by the benchmarks and examples."""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence


def format_table(rows: Sequence[Mapping[str, object]],
                 columns: Sequence[str] = (),
                 title: str = "") -> str:
    """Render a list of dictionaries as an aligned plain-text table.

    Parameters
    ----------
    rows:
        One mapping per table row.
    columns:
        Column order; defaults to the union of every row's keys in
        first-seen order, so metric fields that only some rows carry
        (``engine_levels`` / ``engine_registers`` from the execution
        runtime, ``noc_latency_cycles`` / ``noc_energy`` from the NoC
        passes) appear instead of being silently dropped.
    title:
        Optional heading printed above the table.
    """
    if not rows:
        return title
    columns = list(columns) or list(dict.fromkeys(
        key for row in rows for key in row))
    header = [str(column) for column in columns]
    body = [[_format_cell(row.get(column, "")) for column in columns] for row in rows]
    widths = [max(len(header[i]), *(len(line[i]) for line in body))
              for i in range(len(columns))]

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(header[i].ljust(widths[i]) for i in range(len(columns))))
    lines.append("  ".join("-" * widths[i] for i in range(len(columns))))
    for line in body:
        lines.append("  ".join(line[i].ljust(widths[i]) for i in range(len(columns))))
    return "\n".join(lines)


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_comparison(name: str, paper: Dict[str, float],
                      measured: Dict[str, float]) -> str:
    """Side-by-side paper-vs-measured listing for EXPERIMENTS.md style output."""
    lines = [name]
    keys = sorted(set(paper) | set(measured))
    for key in keys:
        paper_value = paper.get(key, float("nan"))
        measured_value = measured.get(key, float("nan"))
        lines.append(f"  {key:35s} paper={paper_value!s:>10}  measured={measured_value!s:>10}")
    return "\n".join(lines)
