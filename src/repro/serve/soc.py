"""One serving target: a :class:`ReconfigurableSoC` behind a NoC model.

The serving runtime schedules batches onto a fleet of these.  Each wraps
a real :class:`~repro.arrays.soc.ReconfigurableSoC` with the DA and ME
arrays attached, tracks which serving kernel every array currently
holds, and prices the two kinds of traffic a dispatch generates on the
SoC's NoC topology:

* **reconfiguration** — switching an array to a job's kernel streams the
  kernel's measured bitstream ``config -> array`` (cycles from the
  configuration bus *plus* the NoC transfer, energy from
  :func:`~repro.power.models.noc_transfer_energy` over the routed path),
  and is recorded in the wrapped SoC's ``reconfiguration_log``;
* **results** — a completed job streams its output bits
  ``array -> memory``.

Costs depend on the active topology (a hub prices ``config -> dct_array``
differently from a 2-D mesh), which is what makes the
reconfiguration-aware scheduling policy's decisions topology-sensitive.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.arrays.da_array import build_da_array
from repro.arrays.me_array import build_me_array
from repro.arrays.soc import ReconfigurableSoC
from repro.core.exceptions import ConfigurationError
from repro.noc.topology import Topology, place_agents, topology_by_name
from repro.noc.traffic import FLIT_BITS
from repro.power.models import noc_transfer_energy
from repro.serve.kernels import KernelLibrary

#: NoC agents of the serving SoC (the paper's Fig. 1 blocks): the
#: configuration controller, frame memory, the two arrays, and the host.
SERVE_AGENTS: Tuple[str, ...] = ("config", "memory", "dct_array", "me_array",
                                 "cpu")

#: NoC agent carrying each attached array's traffic.
_ARRAY_AGENTS = {"da_array": "dct_array", "me_array": "me_array"}


def _flits(bits: int) -> int:
    """Flits carrying ``bits`` of payload (at least one if any)."""
    return -(-bits // FLIT_BITS) if bits > 0 else 0


class ServingSoC:
    """Residency-aware serving wrapper around one reconfigurable SoC."""

    def __init__(self, index: int, library: Optional[KernelLibrary] = None,
                 topology: Optional[Topology] = None,
                 topology_name: str = "mesh",
                 placement_strategy: str = "spread",
                 configuration_bus_bits: int = 8) -> None:
        if index < 0:
            raise ConfigurationError("SoC index must be non-negative")
        self.index = index
        self.name = f"soc{index}"
        self.library = library or KernelLibrary()
        self.soc = ReconfigurableSoC(
            configuration_bus_bits=configuration_bus_bits)
        self.soc.attach_array(build_da_array())
        self.soc.attach_array(build_me_array())
        self.topology = topology or topology_by_name(topology_name,
                                                     len(SERVE_AGENTS))
        self.placement = place_agents(SERVE_AGENTS, self.topology,
                                      placement_strategy)
        self.resident: Dict[str, Optional[str]] = {
            array: None for array in _ARRAY_AGENTS}
        #: Virtual cycle at which the SoC finishes its current batch.
        self.free_at = 0
        #: Set by the runtime so policies can see the fleet size.
        self.fleet_size = 1
        self.jobs_executed = 0
        self.batches_executed = 0
        self.reconfiguration_energy = 0.0
        self.reconfiguration_cycles = 0

    # -- NoC pricing ---------------------------------------------------------
    def _nodes(self, source_agent: str, dest_agent: str) -> Tuple[int, int]:
        return self.placement[source_agent], self.placement[dest_agent]

    def transfer_cost(self, source_agent: str, dest_agent: str,
                      bits: int) -> Tuple[int, float]:
        """(cycles, energy) of streaming ``bits`` between two agents."""
        flits = _flits(bits)
        source, dest = self._nodes(source_agent, dest_agent)
        cycles = self.topology.transfer_latency(source, dest, flits)
        energy = noc_transfer_energy(
            *self.topology.transfer_aggregates(source, dest, flits))
        return cycles, energy

    # -- kernel residency ----------------------------------------------------
    def missing_kernels(self, job) -> Dict[str, str]:
        """The subset of a job's kernels not currently resident."""
        missing = {}
        for array, kernel in job.kernels.items():
            if array not in self.resident:
                raise ConfigurationError(
                    f"job {job.job_id} targets unknown array {array!r}")
            if self.resident[array] != kernel:
                missing[array] = kernel
        return missing

    def reconfiguration_bits(self, job) -> int:
        """Bitstream bits a dispatch of ``job`` would have to stream now."""
        return sum(self.library.bitstream_bits(kernel)
                   for kernel in self.missing_kernels(job).values())

    def reconfiguration_cost(self, job) -> Tuple[int, float]:
        """(cycles, energy) of making the job's kernels resident, without
        actually switching anything."""
        cycles = 0
        energy = 0.0
        for array, kernel in self.missing_kernels(job).items():
            result = self.library.result(kernel)
            bits = result.bitstream.total_bits()
            cycles += result.bitstream.reconfiguration_cycles(
                self.soc.configuration_bus_bits)
            noc_cycles, noc_energy = self.transfer_cost(
                "config", _ARRAY_AGENTS[array], bits)
            cycles += noc_cycles
            energy += noc_energy
        return cycles, energy

    def load_kernels(self, job) -> Tuple[int, float, int]:
        """Switch arrays so the job's kernels are resident.

        Streams each missing kernel's bitstream through the wrapped SoC
        (recording real :class:`ReconfigurationEvent` entries) and over
        the NoC; returns ``(cycles, energy, switches)`` actually paid.
        """
        cycles = 0
        energy = 0.0
        switches = 0
        for array, kernel in self.missing_kernels(job).items():
            result = self.library.result(kernel)
            event = self.soc.load(result)
            noc_cycles, noc_energy = self.transfer_cost(
                "config", _ARRAY_AGENTS[array], event.bitstream_bits)
            cycles += event.cycles + noc_cycles
            energy += noc_energy
            self.resident[array] = kernel
            switches += 1
        self.reconfiguration_cycles += cycles
        self.reconfiguration_energy += energy
        return cycles, energy, switches

    # -- result traffic ------------------------------------------------------
    def result_cost(self, output_bits: int) -> Tuple[int, float]:
        """(cycles, energy) of streaming a job's output to frame memory.

        Every current job kind's output originates at the DA array
        (encode residual coefficients, DCT levels, FIR samples — the ME
        array only feeds motion vectors back into the encode pipeline),
        so the producing agent is its NoC node.
        """
        return self.transfer_cost(_ARRAY_AGENTS["da_array"], "memory",
                                  output_bits)

    # -- accounting ----------------------------------------------------------
    @property
    def reconfiguration_count(self) -> int:
        """Kernel switches since construction (off the wrapped SoC's log)."""
        return len(self.soc.reconfiguration_log)

    @property
    def reconfiguration_bits_streamed(self) -> int:
        """Total configuration bits streamed since construction."""
        return self.soc.total_reconfiguration_bits()

    def __repr__(self) -> str:
        resident = {array: kernel for array, kernel in self.resident.items()
                    if kernel}
        return (f"ServingSoC({self.name!r}, topology={self.topology.name!r}, "
                f"resident={resident}, free_at={self.free_at})")
