"""repro.serve — multi-tenant serving runtime over the flow/engine/NoC stack.

The paper motivates its reconfigurable fabric with mobile-video workloads
that time-multiplex heterogeneous kernels — DCT, motion estimation,
filtering — on one chip.  This package closes the loop at system level: a
deterministic *virtual-time* runtime that accepts a stream of mixed jobs
(video-encode sequences, GOP shards, DCT and FIR kernel invocations),
schedules them onto one or more modelled :class:`ReconfigurableSoC`
instances, and accounts for what the hardware would actually pay:

* **kernel residency** — a job whose kernel is not loaded on the target
  array streams that kernel's *measured* bitstream
  (:meth:`ConfigurationBitstream.total_bits` off a real
  :mod:`repro.flow` compilation) over the SoC's NoC topology, costing
  cycles and :func:`~repro.power.models.noc_transfer_energy`;
* **batching** — compatible queued jobs execute through one stacked
  engine dispatch (:func:`repro.video.gop.encode_gop_batch`, batched
  transforms), bit-identical to serving each job alone;
* **admission control** — a bounded queue rejects arrivals under
  backpressure, and an aging guard bounds every job's wait under any
  scheduling policy.

Pluggable policies (FIFO, shortest-job-first, reconfiguration-cost-aware
affinity, round-robin across SoCs) are compared by throughput, p50/p95/p99
latency and energy per job in ``benchmarks/run_bench_serve.py``.
"""

from repro.serve.execution import (
    ExecutionResult,
    execute_batch,
    execute_serial,
    payload_digest,
)
from repro.serve.jobs import (
    JOB_KINDS,
    SAD_OPS_PER_CYCLE,
    DctJob,
    EncodeJob,
    FirJob,
    split_sequence_job,
)
from repro.serve.kernels import (
    KERNEL_BUILDERS,
    KernelLibrary,
    fir_filter,
    me_kernel_for_range,
)
from repro.serve.policies import (
    POLICIES,
    AffinityPolicy,
    FifoPolicy,
    Policy,
    RoundRobinPolicy,
    ShortestJobPolicy,
    policy_by_name,
)
from repro.serve.runtime import (
    JobRecord,
    ServeReport,
    ServeSettings,
    percentile,
    serve,
)
from repro.serve.soc import SERVE_AGENTS, ServingSoC
from repro.serve.workload import TRAFFIC_MIXES, generate_jobs

__all__ = [
    "AffinityPolicy",
    "DctJob",
    "EncodeJob",
    "ExecutionResult",
    "FifoPolicy",
    "FirJob",
    "JOB_KINDS",
    "JobRecord",
    "KERNEL_BUILDERS",
    "KernelLibrary",
    "POLICIES",
    "Policy",
    "RoundRobinPolicy",
    "SAD_OPS_PER_CYCLE",
    "SERVE_AGENTS",
    "ServeReport",
    "ServeSettings",
    "ServingSoC",
    "ShortestJobPolicy",
    "TRAFFIC_MIXES",
    "execute_batch",
    "execute_serial",
    "fir_filter",
    "generate_jobs",
    "me_kernel_for_range",
    "payload_digest",
    "percentile",
    "policy_by_name",
    "serve",
    "split_sequence_job",
]
