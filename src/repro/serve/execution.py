"""Bit-exact job execution: one batched dispatch per compatible group.

The scheduler's contract is that batching is *purely* a scheduling
decision: :func:`execute_batch` over a group of compatible jobs returns,
job for job, exactly the payloads :func:`execute_serial` produces one job
at a time.  Encode jobs go through the cross-request lockstep encoder
(:func:`repro.video.gop.encode_gop_batch`, whose per-GOP bit-identity the
video tests pin down), DCT jobs concatenate into one batched
transform-and-quantise pass, and FIR jobs run the bit-serial datapath
per stream (a delay line cannot be shared across requests).

Each :class:`ExecutionResult` carries integer activity aggregates —
compute cycles, SAD operations, transformed blocks, filtered samples,
output bits — plus a SHA-256 :func:`payload_digest` so conformance tests
and the benchmark can assert bit-exactness without holding payloads.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Sequence, Union

import numpy as np

from repro.core.exceptions import ConfigurationError
from repro.dct.quantization import quantise
from repro.dct.reference import dct_2d_batched
from repro.filters.fir import FIR_ACC_BITS
from repro.serve.jobs import (
    DCT_CYCLES_PER_BLOCK,
    SAD_OPS_PER_CYCLE,
    DctJob,
    EncodeJob,
    FirJob,
)
from repro.serve.kernels import fir_filter
from repro.video.codec import FrameStatistics
from repro.video.entropy import estimate_block_bits_batched
from repro.video.gop import encode_gop_batch

#: Bits of one FIR output sample written back to memory (the DA
#: accumulator width).
FIR_OUTPUT_SAMPLE_BITS = FIR_ACC_BITS

Job = Union[EncodeJob, DctJob, FirJob]


@dataclass
class ExecutionResult:
    """What executing one job produced, plus its integer activity."""

    job_id: int
    kind: str
    payload: object
    compute_cycles: int
    sad_operations: int = 0
    dct_blocks: int = 0
    filter_samples: int = 0
    output_bits: int = 0

    @property
    def digest(self) -> str:
        """Content hash of the payload (see :func:`payload_digest`)."""
        return payload_digest(self.payload)


def payload_digest(payload) -> str:
    """SHA-256 over a job payload's exact bits.

    Accepts an ndarray (DCT levels, FIR outputs) or a list of
    :class:`FrameStatistics` (encode jobs), and folds in every field a
    decoder consumes — modes, motion vectors, QPs and the quantised
    coefficient blocks — so two payloads digest equal iff they are
    bit-identical.
    """
    digest = hashlib.sha256()
    if isinstance(payload, np.ndarray):
        digest.update(str(payload.dtype).encode())
        digest.update(str(payload.shape).encode())
        digest.update(np.ascontiguousarray(payload).tobytes())
        return digest.hexdigest()
    for stats in payload:
        if not isinstance(stats, FrameStatistics):
            raise ConfigurationError(
                f"cannot digest payload element {type(stats).__name__}")
        digest.update(
            f"|f:{stats.frame_index}:{stats.frame_type}:{stats.qp}"
            f":{stats.estimated_bits}:{stats.psnr_db!r}".encode())
        for mb in stats.macroblocks:
            digest.update(
                f"|m:{mb.top}:{mb.left}:{mb.mode}:{mb.motion_vector}"
                f":{mb.sad}:{mb.estimated_bits}".encode())
            for levels in mb.level_blocks:
                digest.update(np.ascontiguousarray(
                    np.asarray(levels, dtype=np.int64)).tobytes())
    return digest.hexdigest()


def _encode_results(jobs: Sequence[EncodeJob]) -> List[ExecutionResult]:
    """One lockstep dispatch over compatible encode jobs."""
    outcomes = encode_gop_batch([job.frames for job in jobs],
                                jobs[0].configuration())
    results = []
    for job, (statistics, _reference) in zip(jobs, outcomes):
        sad_ops = sum(stats.sad_operations for stats in statistics)
        dct_blocks = sum(stats.dct_blocks for stats in statistics)
        cycles = (sum(stats.dct_cycles for stats in statistics)
                  + -(-sad_ops // SAD_OPS_PER_CYCLE))
        results.append(ExecutionResult(
            job_id=job.job_id, kind=job.kind, payload=statistics,
            compute_cycles=cycles, sad_operations=sad_ops,
            dct_blocks=dct_blocks,
            output_bits=sum(stats.estimated_bits for stats in statistics)))
    return results


def _dct_results(jobs: Sequence[DctJob]) -> List[ExecutionResult]:
    """One concatenated transform + quantise pass over compatible DCT jobs."""
    stacked = np.concatenate([job.blocks for job in jobs])
    levels = quantise(dct_2d_batched(stacked), jobs[0].qp)
    block_bits = estimate_block_bits_batched(levels)
    results = []
    start = 0
    for job in jobs:
        count = int(job.blocks.shape[0])
        piece = levels[start:start + count]
        results.append(ExecutionResult(
            job_id=job.job_id, kind=job.kind, payload=piece,
            compute_cycles=count * DCT_CYCLES_PER_BLOCK, dct_blocks=count,
            output_bits=int(block_bits[start:start + count].sum())))
        start += count
    return results


def _fir_results(jobs: Sequence[FirJob]) -> List[ExecutionResult]:
    """FIR jobs share a dispatch slot but filter their streams one by one."""
    results = []
    for job in jobs:
        kernel = fir_filter(job.fir_name)
        outputs = kernel.filter(job.samples)
        results.append(ExecutionResult(
            job_id=job.job_id, kind=job.kind, payload=outputs,
            compute_cycles=int(job.samples.size) * kernel.cycles_per_sample,
            filter_samples=int(job.samples.size),
            output_bits=int(job.samples.size) * FIR_OUTPUT_SAMPLE_BITS))
    return results


def execute_batch(jobs: Sequence[Job]) -> List[ExecutionResult]:
    """Execute a group of compatible jobs through one batched dispatch.

    All jobs must share one :attr:`batch_key`; results come back in input
    order and are bit-identical to :func:`execute_serial` of the same
    jobs.
    """
    jobs = list(jobs)
    if not jobs:
        return []
    keys = {job.batch_key for job in jobs}
    if len(keys) != 1:
        raise ConfigurationError(
            f"a batch must share one batch_key, got {sorted(map(str, keys))}")
    if isinstance(jobs[0], EncodeJob):
        return _encode_results(jobs)
    if isinstance(jobs[0], DctJob):
        return _dct_results(jobs)
    return _fir_results(jobs)


def execute_serial(jobs: Sequence[Job]) -> List[ExecutionResult]:
    """Naive reference: every job in its own dispatch, in input order."""
    return [result for job in jobs for result in execute_batch([job])]
