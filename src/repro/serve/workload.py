"""Seeded traffic mixes: reproducible job traces for tests and benchmarks.

Three mixes covering the serving design space, all deterministic under a
seed (every random draw goes through one ``numpy`` generator):

``steady_encode``  a homogeneous camera farm — GOP shards and short
                   encode requests on one DCT kernel and one search
                   range, smooth arrivals.  Batching shines, kernels
                   never switch.
``kernel_churn``   heterogeneous tenants interleaving DCT kernels,
                   search ranges and small DCT/FIR invocations — the
                   paper's time-multiplexing story.  Residency-blind
                   policies pay a bitstream per dispatch; the affinity
                   policy drains same-kernel runs.
``bursty_mixed``   everything at once in bursts (a notification fan-out):
                   bursts of mixed jobs land on one cycle, idle gaps
                   between — exercises admission control and the
                   backpressure path.
``diurnal``        a day/night tenant — two sinusoidal periods of
                   arrival-rate modulation over the trace, mixed job
                   kinds.  Troughs are what the fleet autoscaler gates
                   through; peaks stress queueing.
``flash_crowd``    steady mixed load until a contiguous window where
                   gaps collapse tenfold and one hot DCT kernel
                   dominates — the SLO-shedding and predictive-prewarm
                   stress case.

New mixes append to :data:`TRAFFIC_MIXES` (never reorder): the generator
is seeded with ``[seed, index-of-mix]``, so appending keeps every
previously published trace bit-identical.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.exceptions import ConfigurationError
from repro.serve.jobs import DctJob, EncodeJob, FirJob, split_sequence_job
from repro.video.scenes import scene_frames

#: The mixes :func:`generate_jobs` can draw (append-only, see above).
TRAFFIC_MIXES = ("steady_encode", "kernel_churn", "bursty_mixed",
                 "diurnal", "flash_crowd")

#: Frame geometry of generated encode jobs (kept small so randomized
#: conformance suites can afford hundreds of drawn traces).
FRAME_HEIGHT = 32
FRAME_WIDTH = 32

_SCENES = ("static", "pan", "zoom", "noise")
_CHURN_DCTS = ("mixed_rom", "scc_direct", "cordic2")


def _encode_job(job_id: int, arrival: int, rng: np.random.Generator,
                dct_name: str, search_range: int, kind: str = "gop",
                min_frames: int = 2, max_frames: int = 4) -> EncodeJob:
    frames = scene_frames(_SCENES[int(rng.integers(len(_SCENES)))],
                          count=int(rng.integers(min_frames, max_frames + 1)),
                          height=FRAME_HEIGHT, width=FRAME_WIDTH,
                          seed=int(rng.integers(1 << 16)))
    return EncodeJob(job_id=job_id, arrival_cycle=arrival, frames=frames,
                     dct_name=dct_name, search_range=search_range, kind=kind)


def _dct_job(job_id: int, arrival: int, rng: np.random.Generator,
             dct_name: str) -> DctJob:
    blocks = rng.integers(-128, 128,
                          (int(rng.integers(8, 48)), 8, 8)).astype(np.float64)
    return DctJob(job_id=job_id, arrival_cycle=arrival, blocks=blocks,
                  dct_name=dct_name)


def _fir_job(job_id: int, arrival: int, rng: np.random.Generator,
             fir_name: str = "lowpass8") -> FirJob:
    samples = rng.integers(0, 256, int(rng.integers(64, 257)))
    return FirJob(job_id=job_id, arrival_cycle=arrival, samples=samples,
                  fir_name=fir_name)


def _steady_encode(rng: np.random.Generator, job_count: int,
                   mean_gap: int) -> List:
    jobs: List = []
    arrival = 0
    for job_id in range(job_count):
        arrival += int(rng.integers(mean_gap // 2, mean_gap * 3 // 2 + 1))
        jobs.append(_encode_job(job_id, arrival, rng, dct_name="mixed_rom",
                                search_range=8))
    return jobs


def _kernel_churn(rng: np.random.Generator, job_count: int,
                  mean_gap: int) -> List:
    jobs: List = []
    arrival = 0
    for job_id in range(job_count):
        arrival += int(rng.integers(mean_gap // 2, mean_gap * 3 // 2 + 1))
        draw = int(rng.integers(10))
        dct_name = _CHURN_DCTS[job_id % len(_CHURN_DCTS)]
        if draw < 4:
            jobs.append(_encode_job(job_id, arrival, rng, dct_name=dct_name,
                                    search_range=(4, 8)[job_id % 2]))
        elif draw < 8:
            jobs.append(_dct_job(job_id, arrival, rng, dct_name=dct_name))
        else:
            jobs.append(_fir_job(job_id, arrival, rng,
                                 fir_name=("lowpass4", "lowpass8")[job_id % 2]))
    return jobs


def _bursty_mixed(rng: np.random.Generator, job_count: int,
                  mean_gap: int) -> List:
    jobs: List = []
    arrival = 0
    job_id = 0
    while job_id < job_count:
        arrival += int(rng.integers(mean_gap * 2, mean_gap * 5))
        burst = min(int(rng.integers(3, 7)), job_count - job_id)
        for _ in range(burst):
            draw = int(rng.integers(10))
            if draw < 5:
                jobs.append(_encode_job(job_id, arrival, rng,
                                        dct_name="mixed_rom", search_range=8))
            elif draw < 8:
                jobs.append(_dct_job(job_id, arrival, rng,
                                     dct_name=_CHURN_DCTS[job_id % 2]))
            else:
                jobs.append(_fir_job(job_id, arrival, rng))
            job_id += 1
    return jobs


def _mixed_job(job_id: int, arrival: int, rng: np.random.Generator,
               dct_name: str) -> object:
    """One job of the draw mix shared by the diurnal/flash-crowd tenants."""
    draw = int(rng.integers(10))
    if draw < 4:
        return _encode_job(job_id, arrival, rng, dct_name=dct_name,
                           search_range=8)
    if draw < 8:
        return _dct_job(job_id, arrival, rng, dct_name=dct_name)
    return _fir_job(job_id, arrival, rng)


#: Sinusoidal day/night periods and depth of the ``diurnal`` mix.
DIURNAL_PERIODS = 2.0
DIURNAL_AMPLITUDE = 0.75


def _diurnal(rng: np.random.Generator, job_count: int,
             mean_gap: int) -> List:
    jobs: List = []
    arrival = 0
    for job_id in range(job_count):
        gap = int(rng.integers(mean_gap // 2, mean_gap * 3 // 2 + 1))
        phase = 2.0 * np.pi * DIURNAL_PERIODS * job_id / job_count
        rate = 1.0 + DIURNAL_AMPLITUDE * np.sin(phase)
        arrival += max(1, int(round(gap / rate)))
        jobs.append(_mixed_job(job_id, arrival, rng,
                               dct_name=_CHURN_DCTS[job_id % len(_CHURN_DCTS)]))
    return jobs


#: Fraction of the trace inside the ``flash_crowd`` burst window, the
#: gap-collapse factor, and the kernel that dominates the window.
CROWD_FRACTION = 0.2
CROWD_SURGE = 10
CROWD_DCT = "mixed_rom"


def _flash_crowd(rng: np.random.Generator, job_count: int,
                 mean_gap: int) -> List:
    length = max(1, int(round(CROWD_FRACTION * job_count)))
    start = int(rng.integers(job_count // 4,
                             max(job_count // 4 + 1, job_count - length)))
    jobs: List = []
    arrival = 0
    for job_id in range(job_count):
        gap = int(rng.integers(mean_gap // 2, mean_gap * 3 // 2 + 1))
        in_crowd = start <= job_id < start + length
        arrival += max(1, gap // CROWD_SURGE if in_crowd else gap)
        if in_crowd and int(rng.integers(100)) < 85:
            jobs.append(_dct_job(job_id, arrival, rng, dct_name=CROWD_DCT))
        else:
            jobs.append(_mixed_job(
                job_id, arrival, rng,
                dct_name=_CHURN_DCTS[job_id % len(_CHURN_DCTS)]))
    return jobs


_GENERATORS = {"steady_encode": _steady_encode,
               "kernel_churn": _kernel_churn,
               "bursty_mixed": _bursty_mixed,
               "diurnal": _diurnal,
               "flash_crowd": _flash_crowd}


def generate_jobs(mix: str, job_count: int = 24, seed: int = 0,
                  mean_gap: int = 20_000,
                  sequence_frames: Optional[int] = None) -> List:
    """Draw a deterministic job trace of one traffic mix.

    ``mean_gap`` scales the inter-arrival cycles (smaller means heavier
    load and more queueing).  When ``sequence_frames`` is given, the
    trace additionally opens with one multi-GOP encode request of that
    many frames, pre-split into GOP-shard jobs via
    :func:`~repro.serve.jobs.split_sequence_job` (ids continue after
    ``job_count``).
    """
    if mix not in _GENERATORS:
        raise ConfigurationError(
            f"unknown traffic mix {mix!r}; known: {TRAFFIC_MIXES}")
    if job_count <= 0:
        raise ConfigurationError("a trace needs at least one job")
    rng = np.random.default_rng([seed, TRAFFIC_MIXES.index(mix)])
    jobs = _GENERATORS[mix](rng, job_count, mean_gap)
    if sequence_frames:
        request = EncodeJob(
            job_id=job_count, arrival_cycle=int(rng.integers(mean_gap)),
            frames=scene_frames("cut", count=sequence_frames,
                                height=FRAME_HEIGHT, width=FRAME_WIDTH,
                                seed=seed),
            dct_name="mixed_rom", search_range=8, kind="encode")
        jobs.extend(split_sequence_job(request, first_job_id=job_count + 1,
                                       gop_size=4))
    return jobs


def trace_kinds(jobs: Sequence) -> List[str]:
    """Job kinds of a trace, in id order (handy for test assertions)."""
    return [job.kind for job in sorted(jobs, key=lambda j: j.job_id)]
