"""Pluggable scheduling policies for the serving runtime.

A policy picks which queued job the next free SoC should serve; the
runtime then grows that choice into a batch of compatible jobs and
handles admission control and the anti-starvation aging guard, so every
policy inherits the same bounded-wait guarantee.  All policies are
deterministic: ties break on ``(arrival_cycle, job_id)``.

``fifo``         arrival order — the baseline every mix can fall back to;
``sjf``          shortest predicted service first (static
                 :meth:`service_estimate`, no execution needed);
``affinity``     reconfiguration-cost-aware: prefer jobs whose kernels
                 are already resident on the SoC, then the cheapest
                 switch — the policy the paper's time-multiplexing story
                 asks for;
``round_robin``  jobs striped across the fleet by ``job_id`` — the naive
                 load balancer multi-SoC deployments start from.
"""

from __future__ import annotations

from typing import Dict, Sequence, Type

from repro.core.exceptions import ConfigurationError
from repro.serve.soc import ServingSoC


class Policy:
    """Base policy: selects the index of the next job to dispatch."""

    name = "policy"

    def select(self, queue: Sequence, soc: ServingSoC, now: int) -> int:
        """Index into ``queue`` of the job the SoC should serve next."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class FifoPolicy(Policy):
    """First come, first served."""

    name = "fifo"

    def select(self, queue: Sequence, soc: ServingSoC, now: int) -> int:
        return min(range(len(queue)),
                   key=lambda i: (queue[i].arrival_cycle, queue[i].job_id))


class ShortestJobPolicy(Policy):
    """Smallest static service estimate first (latency-optimal under load)."""

    name = "sjf"

    def select(self, queue: Sequence, soc: ServingSoC, now: int) -> int:
        return min(range(len(queue)),
                   key=lambda i: (queue[i].service_estimate(),
                                  queue[i].arrival_cycle, queue[i].job_id))


class AffinityPolicy(Policy):
    """Reconfiguration-cost-aware: cheapest kernel switch first.

    Scores every queued job by the bitstream bits the SoC would have to
    stream to serve it *right now* (zero when the job's kernels are all
    resident), so the scheduler drains same-kernel runs before paying
    for a switch.  Bits come from the shared kernel library's measured
    compilations, making the score exact, not heuristic.
    """

    name = "affinity"

    def select(self, queue: Sequence, soc: ServingSoC, now: int) -> int:
        return min(range(len(queue)),
                   key=lambda i: (soc.reconfiguration_bits(queue[i]),
                                  queue[i].arrival_cycle, queue[i].job_id))


class RoundRobinPolicy(Policy):
    """Stripe jobs across the fleet by ``job_id`` modulo fleet size.

    Models the residency-blind load balancer: each SoC serves "its"
    stripe in arrival order and only steals from other stripes when its
    own is empty (never idling while work is queued).
    """

    name = "round_robin"

    def select(self, queue: Sequence, soc: ServingSoC, now: int) -> int:
        fleet = max(1, soc.fleet_size)
        mine = [i for i in range(len(queue))
                if queue[i].job_id % fleet == soc.index % fleet]
        candidates = mine or range(len(queue))
        return min(candidates,
                   key=lambda i: (queue[i].arrival_cycle, queue[i].job_id))


#: Policy classes by short name.
POLICIES: Dict[str, Type[Policy]] = {
    policy.name: policy
    for policy in (FifoPolicy, ShortestJobPolicy, AffinityPolicy,
                   RoundRobinPolicy)}


def policy_by_name(name: str) -> Policy:
    """Instantiate a registered policy from its short name."""
    try:
        return POLICIES[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown scheduling policy {name!r}; known: "
            f"{sorted(POLICIES)}") from None
