"""The serving kernel library: named hardware kernels and their bitstreams.

A serving kernel is one configuration an array can hold: a Table-1 DCT
implementation on the DA array, a systolic motion-estimation engine sized
for a search range on the ME array, or a DA FIR filter.  Each kernel name
maps to a builder returning a :mod:`repro.flow` design, and the library
compiles it through the shared :class:`~repro.flow.cache.FlowCache` —
place-and-route happens once per process, and the *measured*
:meth:`~repro.core.configuration.ConfigurationBitstream.total_bits` of the
result is what a reconfiguration streams over the NoC.

Kernel names are namespaced: ``dct:<impl>`` (Table-1 short names),
``me:full_r<range>`` (full search at a window radius) and ``fir:<proto>``.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Optional, Sequence

from repro.core.exceptions import ConfigurationError
from repro.filters.fir import DistributedArithmeticFIR, symmetric_lowpass
from repro.flow.pipeline import FlowResult
from repro.me.systolic import SystolicArray

#: Table-1 DCT implementation short names served on the DA array.
DCT_KERNEL_NAMES = ("mixed_rom", "cordic1", "cordic2", "scc_evenodd",
                    "scc_direct")


def _dct_builder(short_name: str) -> Callable[[], object]:
    def build():
        from repro.video.scenes import dct_implementation_by_name

        return dct_implementation_by_name(short_name)
    return build


#: Builders for every kernel the serving runtime can load, by kernel name.
#: A smaller search window needs fewer PE modules, so the two ME kernels
#: genuinely differ in netlist — and therefore in measured bitstream bits.
KERNEL_BUILDERS: Dict[str, Callable[[], object]] = {
    **{f"dct:{name}": _dct_builder(name) for name in DCT_KERNEL_NAMES},
    "me:full_r4": lambda: SystolicArray(module_count=2),
    "me:full_r8": lambda: SystolicArray(),
    "fir:lowpass4": lambda: DistributedArithmeticFIR(symmetric_lowpass(4)),
    "fir:lowpass8": lambda: DistributedArithmeticFIR(symmetric_lowpass(8)),
}

#: ME kernel serving each supported search range.
ME_KERNEL_BY_RANGE = {4: "me:full_r4", 8: "me:full_r8"}


def me_kernel_for_range(search_range: int) -> str:
    """Name of the ME kernel that serves a search range."""
    try:
        return ME_KERNEL_BY_RANGE[search_range]
    except KeyError:
        raise ConfigurationError(
            f"no ME kernel serves search range {search_range}; supported "
            f"ranges: {sorted(ME_KERNEL_BY_RANGE)}") from None


_FIR_FILTERS: Dict[str, DistributedArithmeticFIR] = {}
_FIR_LOCK = threading.Lock()


def fir_filter(fir_name: str) -> DistributedArithmeticFIR:
    """The (deterministic, memoised) filter object behind ``fir:<name>``."""
    kernel = f"fir:{fir_name}"
    if kernel not in KERNEL_BUILDERS:
        raise ConfigurationError(
            f"unknown FIR kernel {fir_name!r}; known: "
            f"{sorted(n[4:] for n in KERNEL_BUILDERS if n.startswith('fir:'))}")
    with _FIR_LOCK:
        if fir_name not in _FIR_FILTERS:
            _FIR_FILTERS[fir_name] = KERNEL_BUILDERS[kernel]()
        return _FIR_FILTERS[fir_name]


class KernelLibrary:
    """Compiles serving kernels on demand and memoises the results.

    Every compilation goes through :func:`repro.flow.compile` and
    therefore the shared flow cache — a fleet of :class:`ServingSoC`
    instances sharing one library places and routes each kernel exactly
    once, and :meth:`prewarm` lets the scheduler heat the cache for the
    kernels of newly queued jobs before they are dispatched.
    """

    def __init__(self) -> None:
        self._results: Dict[str, FlowResult] = {}
        self._bits: Dict[str, int] = {}
        self._lock = threading.Lock()

    def design(self, kernel: str):
        """Fresh design instance for a kernel name."""
        try:
            builder = KERNEL_BUILDERS[kernel]
        except KeyError:
            raise ConfigurationError(
                f"unknown serving kernel {kernel!r}; known: "
                f"{sorted(KERNEL_BUILDERS)}") from None
        return builder()

    def result(self, kernel: str) -> FlowResult:
        """Compiled :class:`FlowResult` of a kernel (cached per library)."""
        from repro.flow import compile as flow_compile

        with self._lock:
            result = self._results.get(kernel)
        if result is not None:
            return result
        result = flow_compile(self.design(kernel))
        with self._lock:
            return self._results.setdefault(kernel, result)

    def bitstream_bits(self, kernel: str) -> int:
        """Measured configuration bits a reconfiguration to ``kernel`` streams.

        Memoised: affinity-aware scheduling scores every queued job
        against every SoC, so this is the hottest library query by far.
        """
        bits = self._bits.get(kernel)
        if bits is None:
            bits = self._bits[kernel] = self.result(kernel).bitstream.total_bits()
        return bits

    def target_array(self, kernel: str) -> str:
        """Array family the kernel configures."""
        return self.result(kernel).fabric_name

    def prewarm(self, kernels: Sequence[str],
                max_workers: Optional[int] = None) -> Dict[str, int]:
        """Heat the shared flow cache for a set of kernel names.

        Deduplicates and skips kernels this library already holds, fans
        the rest out through the shared-cache :func:`compile_many`, and
        memoises the returned results — so re-prewarming an already-warm
        kernel (every admission does this) is a dictionary lookup, and a
        cold kernel pays exactly one design build and one compile.
        Returns the warm-up's hit/miss delta (all zeros when everything
        was already resident; approximate under concurrent cache use).
        """
        from repro.flow.cache import DEFAULT_CACHE, compile_many

        with self._lock:
            fresh = [kernel for kernel in dict.fromkeys(kernels)
                     if kernel not in self._results]
        if not fresh:
            return {"designs": 0, "hits": 0, "misses": 0}
        before = DEFAULT_CACHE.stats()
        results = compile_many([self.design(kernel) for kernel in fresh],
                               max_workers=max_workers)
        after = DEFAULT_CACHE.stats()
        with self._lock:
            for kernel, result in zip(fresh, results):
                self._results.setdefault(kernel, result)
        return {"designs": len(fresh),
                "hits": after["hits"] - before["hits"],
                "misses": after["misses"] - before["misses"]}
