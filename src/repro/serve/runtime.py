"""The deterministic virtual-time serving loop.

:func:`serve` replays a trace of jobs (each stamped with an arrival
cycle) against a fleet of :class:`~repro.serve.soc.ServingSoC` instances
under one scheduling policy, entirely in *virtual* cycles — no wall
clock, no threads — so every run of the same trace is bit-identical.

Event order is fixed: arrivals are admitted in ``(arrival, job_id)``
order and *before* any dispatch at the same timestamp (so a burst
landing on one cycle can batch together), and the earliest-free SoC
(ties to the lowest index) dispatches next.  A dispatch asks the policy
for one job, grows it into a batch of queued jobs sharing its
:attr:`batch_key` (in queue order), makes
the batch's kernels resident (paying measured bitstream + NoC cost),
executes the batch bit-exactly through :mod:`repro.serve.execution`, and
streams each job's output bits to memory.

Two guarantees hold for every policy:

* **conservation** — every submitted job is exactly once completed or
  rejected (admission control bounds the queue);
* **bounded wait** — a job overdue past ``starvation_limit`` preempts
  the policy's choice (oldest first), so no policy can starve a job
  beyond ``starvation_limit + queue_capacity * longest_batch``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.exceptions import ConfigurationError
from repro.obs import tracer as obs_tracer
from repro.power.models import serving_compute_energy
from repro.serve.execution import ExecutionResult, execute_batch
from repro.serve.kernels import KernelLibrary
from repro.serve.policies import policy_by_name
from repro.serve.soc import ServingSoC


@dataclass
class ServeSettings:
    """Knobs of one serving run."""

    policy: str = "fifo"
    soc_count: int = 1
    queue_capacity: int = 32
    max_batch: int = 8
    topology_name: str = "mesh"
    placement_strategy: str = "spread"
    configuration_bus_bits: int = 8
    #: Cycles a queued job may wait before it preempts the policy.
    starvation_limit: int = 1_000_000
    #: Fixed per-dispatch overhead (pipeline fill, descriptor fetch) —
    #: what batching amortises.
    batch_setup_cycles: int = 64
    #: Pre-compile the kernels of newly admitted jobs through the shared
    #: flow cache so no dispatch waits on place-and-route.
    prewarm: bool = True

    def __post_init__(self) -> None:
        if self.soc_count <= 0:
            raise ConfigurationError("the fleet needs at least one SoC")
        if self.queue_capacity <= 0:
            raise ConfigurationError("the queue needs room for one job")
        if self.max_batch <= 0:
            raise ConfigurationError("batches need at least one slot")
        if self.starvation_limit < 0 or self.batch_setup_cycles < 0:
            raise ConfigurationError(
                "starvation limit and batch setup must be non-negative")


@dataclass
class JobRecord:
    """Ledger entry of one completed job."""

    job_id: int
    kind: str
    soc: str
    arrival_cycle: int
    start_cycle: int
    completion_cycle: int
    compute_cycles: int
    energy: float
    batch_id: int
    batch_size: int
    output_bits: int
    digest: str
    sequence_id: Optional[int] = None
    gop_index: int = 0

    @property
    def latency_cycles(self) -> int:
        """Arrival-to-completion cycles."""
        return self.completion_cycle - self.arrival_cycle

    @property
    def wait_cycles(self) -> int:
        """Arrival-to-dispatch cycles."""
        return self.start_cycle - self.arrival_cycle


def percentile(values: Sequence, fraction: float) -> float:
    """Deterministic nearest-rank percentile (``fraction`` in [0, 1])."""
    if not 0.0 <= fraction <= 1.0:
        raise ConfigurationError("percentile fraction must be in [0, 1]")
    ordered = sorted(values)
    if not ordered:
        return 0.0
    rank = max(1, -(-int(fraction * len(ordered) * 1_000_000) // 1_000_000))
    return float(ordered[min(rank, len(ordered)) - 1])


@dataclass
class ServeReport:
    """Everything one serving run produced."""

    policy: str
    settings: ServeSettings
    records: List[JobRecord] = field(default_factory=list)
    rejected_job_ids: List[int] = field(default_factory=list)
    payloads: Dict[int, object] = field(default_factory=dict)
    batches: int = 0
    makespan_cycles: int = 0
    reconfigurations: int = 0
    reconfiguration_bits: int = 0
    reconfiguration_cycles: int = 0
    reconfiguration_energy: float = 0.0
    socs: List[ServingSoC] = field(default_factory=list)

    @property
    def submitted(self) -> int:
        """Jobs that entered the runtime."""
        return len(self.records) + len(self.rejected_job_ids)

    @property
    def completed(self) -> int:
        """Jobs served to completion."""
        return len(self.records)

    @property
    def rejected(self) -> int:
        """Jobs refused at admission (queue full)."""
        return len(self.rejected_job_ids)

    @property
    def digests(self) -> Dict[int, str]:
        """Payload content hash per completed job id."""
        return {record.job_id: record.digest for record in self.records}

    @property
    def latencies(self) -> List[int]:
        """Per-job latency in cycles, in dispatch order (on a multi-SoC
        fleet a later dispatch can complete earlier; sort records by
        ``completion_cycle`` for a completion-ordered view)."""
        return [record.latency_cycles for record in self.records]

    @property
    def total_energy(self) -> float:
        """Energy over all completed jobs (compute + NoC + reconfiguration)."""
        return sum(record.energy for record in self.records)

    @property
    def mean_batch_size(self) -> float:
        """Average jobs per dispatch."""
        if not self.batches:
            return 0.0
        return len(self.records) / self.batches

    def latency_percentiles(self) -> Dict[str, float]:
        """p50/p95/p99 of job latency in cycles."""
        values = self.latencies
        return {"p50": percentile(values, 0.50),
                "p95": percentile(values, 0.95),
                "p99": percentile(values, 0.99)}

    def throughput_jobs_per_megacycle(self) -> float:
        """Completed jobs per million virtual cycles of makespan."""
        if self.makespan_cycles <= 0:
            return 0.0
        return 1e6 * self.completed / self.makespan_cycles

    def energy_per_job(self) -> float:
        """Mean energy per completed job."""
        if not self.records:
            return 0.0
        return self.total_energy / len(self.records)

    def summary(self) -> Dict[str, object]:
        """Flat headline numbers for reporting tables."""
        summary: Dict[str, object] = {
            "policy": self.policy,
            "completed": self.completed,
            "rejected": self.rejected,
            "batches": self.batches,
            "mean_batch": round(self.mean_batch_size, 2),
            "makespan_cycles": self.makespan_cycles,
            "throughput_jobs_per_mcycle": round(
                self.throughput_jobs_per_megacycle(), 3),
            "energy_per_job": round(self.energy_per_job(), 1),
            "reconfigurations": self.reconfigurations,
            "reconfiguration_bits": self.reconfiguration_bits,
        }
        for key, value in self.latency_percentiles().items():
            summary[f"latency_{key}"] = int(value)
        return summary


def _admit(job, queue: List, report: ServeReport,
           settings: ServeSettings, library: KernelLibrary) -> None:
    if len(queue) >= settings.queue_capacity:
        report.rejected_job_ids.append(job.job_id)
        tracer = obs_tracer.TRACER
        if tracer.enabled:
            tracer.count("serve.rejected")
            tracer.virtual_event("serve.reject", "serve", job.arrival_cycle,
                                 {"job": job.job_id})
        return
    queue.append(job)
    if settings.prewarm:
        library.prewarm(list(job.kernels.values()))


def _select_batch(queue: List, soc: ServingSoC, policy, now: int,
                  settings: ServeSettings) -> List:
    """Pick the next job (aging guard first, then policy) and grow its batch."""
    overdue = [i for i in range(len(queue))
               if now - queue[i].arrival_cycle > settings.starvation_limit]
    if overdue:
        chosen = min(overdue, key=lambda i: (queue[i].arrival_cycle,
                                             queue[i].job_id))
    else:
        chosen = policy.select(queue, soc, now)
        if not 0 <= chosen < len(queue):
            raise ConfigurationError(
                f"policy {policy.name!r} selected index {chosen} outside the "
                f"queue of {len(queue)}")
    selected = queue[chosen]
    mates = [job for job in queue
             if job is not selected and job.batch_key == selected.batch_key]
    batch = [selected] + mates[:settings.max_batch - 1]
    for job in batch:
        queue.remove(job)
    return batch


def _dispatch(batch: List, soc: ServingSoC, start: int, batch_id: int,
              report: ServeReport, settings: ServeSettings) -> int:
    """Execute one batch on one SoC; returns the completion cycle."""
    reconfig_cycles, reconfig_energy, switches = soc.load_kernels(batch[0])
    results: List[ExecutionResult] = execute_batch(batch)
    service = settings.batch_setup_cycles + reconfig_cycles
    output_costs = []
    for result in results:
        cycles, energy = soc.result_cost(result.output_bits)
        output_costs.append((cycles, energy))
        service += result.compute_cycles + cycles
    completion = start + service
    reconfig_share = reconfig_energy / len(batch)
    for job, result, (out_cycles, out_energy) in zip(batch, results,
                                                     output_costs):
        energy = (serving_compute_energy(result.sad_operations,
                                         result.dct_blocks,
                                         result.filter_samples)
                  + out_energy + reconfig_share)
        report.records.append(JobRecord(
            job_id=job.job_id, kind=job.kind, soc=soc.name,
            arrival_cycle=job.arrival_cycle, start_cycle=start,
            completion_cycle=completion,
            compute_cycles=result.compute_cycles, energy=energy,
            batch_id=batch_id, batch_size=len(batch),
            output_bits=result.output_bits, digest=result.digest,
            sequence_id=getattr(job, "sequence_id", None),
            gop_index=getattr(job, "gop_index", 0)))
        report.payloads[job.job_id] = result.payload
    soc.free_at = completion
    soc.jobs_executed += len(batch)
    soc.batches_executed += 1
    report.reconfigurations += switches
    report.reconfiguration_cycles += reconfig_cycles
    report.reconfiguration_energy += reconfig_energy
    tracer = obs_tracer.TRACER
    if tracer.enabled:
        tracer.count("serve.batches")
        tracer.observe("serve.batch_size", len(batch))
        tracer.virtual_span("serve.batch", "serve", start, service,
                            {"batch": batch_id, "soc": soc.index,
                             "jobs": len(batch),
                             "reconfigurations": switches})
    return completion


def serve(jobs: Sequence, settings: Optional[ServeSettings] = None,
          library: Optional[KernelLibrary] = None) -> ServeReport:
    """Serve a trace of jobs and return the full ledger.

    ``jobs`` is any iterable of :mod:`repro.serve.jobs` instances; the
    trace is replayed in ``(arrival_cycle, job_id)`` order.  A shared
    ``library`` lets a fleet comparison reuse compiled kernels across
    runs (the underlying flow cache already deduplicates across
    libraries within a process).
    """
    settings = settings or ServeSettings()
    library = library or KernelLibrary()
    policy = policy_by_name(settings.policy)
    socs = [ServingSoC(index, library=library,
                       topology_name=settings.topology_name,
                       placement_strategy=settings.placement_strategy,
                       configuration_bus_bits=settings.configuration_bus_bits)
            for index in range(settings.soc_count)]
    for soc in socs:
        soc.fleet_size = settings.soc_count
    report = ServeReport(policy=settings.policy, settings=settings, socs=socs)

    pending = deque(sorted(jobs, key=lambda job: (job.arrival_cycle,
                                                  job.job_id)))
    if not pending:
        return report
    ids = [job.job_id for job in pending]
    if len(set(ids)) != len(ids):
        raise ConfigurationError("job ids in a trace must be unique")
    queue: List = []
    first_arrival = pending[0].arrival_cycle
    now = 0
    batch_id = 0
    last_completion = 0

    while pending or queue:
        if not queue:
            job = pending.popleft()
            now = job.arrival_cycle
            _admit(job, queue, report, settings, library)
            continue
        soc = min(socs, key=lambda s: (s.free_at, s.index))
        dispatch_at = max(soc.free_at, now)
        if pending and pending[0].arrival_cycle <= dispatch_at:
            job = pending.popleft()
            now = job.arrival_cycle
            _admit(job, queue, report, settings, library)
            continue
        batch = _select_batch(queue, soc, policy, dispatch_at, settings)
        completion = _dispatch(batch, soc, dispatch_at, batch_id, report,
                               settings)
        batch_id += 1
        now = dispatch_at
        last_completion = max(last_completion, completion)

    report.batches = batch_id
    report.makespan_cycles = max(0, last_completion - first_arrival)
    report.reconfiguration_bits = sum(soc.reconfiguration_bits_streamed
                                      for soc in socs)
    return report
