"""Job types accepted by the serving runtime.

Three families, mirroring the paper's time-multiplexed workload mix:

* :class:`EncodeJob` — a closed run of frames to encode (a whole request
  or one GOP shard of a longer sequence, see :func:`split_sequence_job`);
* :class:`DctJob` — a batch of 8x8 blocks through transform + quantise
  (the "offload this kernel" invocation path);
* :class:`FirJob` — an integer sample stream through a DA FIR filter.

Every job knows which hardware kernels it needs resident
(:attr:`kernels`, per array), which queued jobs it can be batched with
(:attr:`batch_key` — jobs with equal keys execute through one stacked
engine dispatch, bit-identically to running alone), and a static
:meth:`service_estimate` in cycles for size-aware scheduling policies.

A deliberate modelling split, mirroring the PR-3/PR-4 reconfiguration
planning (:func:`repro.video.scenes.plan_reconfiguration`,
:func:`repro.noc.traffic.traffic_from_reconfiguration`): ``dct_name``
selects which *hardware realisation* must be resident — its measured
bitstream, reconfiguration traffic and energy — while the payload
numerics always run the engine's batched reference kernels.  The
per-block Table-1 models (`MixedRomDCT.forward_2d` and friends) are
bit-level hardware references, three orders of magnitude slower than the
batched engine, so a serving loop emulating them would bury scheduling
effects under simulation cost; the batch key still separates
``dct_name`` because a physical batch executes on one resident kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.exceptions import ConfigurationError
from repro.dct.quantization import DEFAULT_QP
from repro.filters.fir import FIR_INPUT_BITS
from repro.serve.kernels import me_kernel_for_range
from repro.video.blocks import MACROBLOCK_SIZE
from repro.video.codec import DEFAULT_SEARCH_RANGE, EncoderConfiguration
from repro.video.gop import DEFAULT_GOP_SIZE, split_into_gops

#: Job kinds the runtime accepts (``gop`` marks a shard of a sequence).
JOB_KINDS = ("encode", "gop", "dct", "fir")

#: SAD operations the ME array retires per cycle (its ABS_DIFF lanes work
#: in parallel); converts the encoder's integer SAD-operation counts into
#: virtual service cycles.
SAD_OPS_PER_CYCLE = 16

#: Cycles the DA array spends transforming one 8x8 block — read off the
#: encoder's configuration default so the estimate cannot drift from the
#: cycles the executed statistics report.
DCT_CYCLES_PER_BLOCK = EncoderConfiguration.dct_cycles_per_block

#: Bit-serial cycles per FIR output sample (the DA datapath's input width).
FIR_CYCLES_PER_SAMPLE = FIR_INPUT_BITS


def _padded(extent: int) -> int:
    """Frame extent after padding to a whole number of macroblocks."""
    blocks = -(-extent // MACROBLOCK_SIZE)
    return blocks * MACROBLOCK_SIZE


@dataclass(eq=False)
class EncodeJob:
    """Encode ``frames`` as one closed GOP (first frame intra-coded)."""

    job_id: int
    arrival_cycle: int
    frames: List[np.ndarray] = field(default_factory=list)
    qp: int = DEFAULT_QP
    search_range: int = DEFAULT_SEARCH_RANGE
    dct_name: str = "mixed_rom"
    kind: str = "encode"
    #: Request this shard belongs to (set by :func:`split_sequence_job`).
    sequence_id: Optional[int] = None
    #: Presentation-order position of the shard within its request.
    gop_index: int = 0

    def __post_init__(self) -> None:
        if self.arrival_cycle < 0:
            raise ConfigurationError("jobs cannot arrive before cycle 0")
        if not self.frames:
            raise ConfigurationError(
                f"encode job {self.job_id} has no frames")
        if self.kind not in ("encode", "gop"):
            raise ConfigurationError(
                f"encode job kind must be 'encode' or 'gop', got {self.kind!r}")
        shapes = {np.asarray(frame).shape for frame in self.frames}
        if len(shapes) != 1:
            raise ConfigurationError(
                f"encode job {self.job_id} mixes frame shapes "
                f"{sorted(shapes)}; a job is one uniformly sized GOP")
        me_kernel_for_range(self.search_range)  # validate eagerly

    @property
    def frame_shape(self) -> Tuple[int, int]:
        """Shape of the job's (uniform) frames."""
        return tuple(np.asarray(self.frames[0]).shape)

    @property
    def kernels(self) -> Dict[str, str]:
        """Required resident kernels, by array name."""
        return {"da_array": f"dct:{self.dct_name}",
                "me_array": me_kernel_for_range(self.search_range)}

    @property
    def batch_key(self) -> Tuple:
        """Jobs sharing this key can execute in one lockstep batch."""
        return ("encode", self.frame_shape, self.qp, self.search_range,
                self.dct_name)

    def configuration(self) -> EncoderConfiguration:
        """Encoder configuration realising the job (batched engine path)."""
        return EncoderConfiguration(qp=self.qp, search_name="full",
                                    search_range=self.search_range,
                                    vectorized=True)

    def service_estimate(self) -> int:
        """Predicted compute cycles (no execution needed — for SJF)."""
        height, width = self.frame_shape
        positions = ((_padded(height) // MACROBLOCK_SIZE)
                     * (_padded(width) // MACROBLOCK_SIZE))
        dct = 4 * positions * DCT_CYCLES_PER_BLOCK * len(self.frames)
        candidates = (2 * self.search_range + 1) ** 2
        sad_ops = (candidates * MACROBLOCK_SIZE * MACROBLOCK_SIZE
                   * positions * (len(self.frames) - 1))
        return dct + -(-sad_ops // SAD_OPS_PER_CYCLE)


@dataclass(eq=False)
class DctJob:
    """Transform and quantise a batch of 8x8 blocks on the DA array."""

    job_id: int
    arrival_cycle: int
    blocks: np.ndarray = None
    qp: int = DEFAULT_QP
    dct_name: str = "mixed_rom"
    kind: str = "dct"

    def __post_init__(self) -> None:
        if self.arrival_cycle < 0:
            raise ConfigurationError("jobs cannot arrive before cycle 0")
        self.blocks = np.asarray(self.blocks, dtype=np.float64)
        if self.blocks.ndim != 3 or self.blocks.shape[1:] != (8, 8):
            raise ConfigurationError(
                f"dct job {self.job_id} needs blocks shaped (N, 8, 8), got "
                f"{self.blocks.shape}")
        if self.kind != "dct":
            raise ConfigurationError("DctJob kind must be 'dct'")

    @property
    def kernels(self) -> Dict[str, str]:
        """Required resident kernels, by array name."""
        return {"da_array": f"dct:{self.dct_name}"}

    @property
    def batch_key(self) -> Tuple:
        """Jobs sharing this key concatenate into one transform batch."""
        return ("dct", self.qp, self.dct_name)

    def service_estimate(self) -> int:
        """Predicted compute cycles."""
        return int(self.blocks.shape[0]) * DCT_CYCLES_PER_BLOCK


@dataclass(eq=False)
class FirJob:
    """Filter an integer sample stream through a DA FIR kernel."""

    job_id: int
    arrival_cycle: int
    samples: np.ndarray = None
    fir_name: str = "lowpass8"
    kind: str = "fir"

    def __post_init__(self) -> None:
        if self.arrival_cycle < 0:
            raise ConfigurationError("jobs cannot arrive before cycle 0")
        self.samples = np.asarray(self.samples, dtype=np.int64)
        if self.samples.ndim != 1 or self.samples.size == 0:
            raise ConfigurationError(
                f"fir job {self.job_id} needs a non-empty 1-D sample stream")
        if self.kind != "fir":
            raise ConfigurationError("FirJob kind must be 'fir'")

    @property
    def kernels(self) -> Dict[str, str]:
        """Required resident kernels, by array name."""
        return {"da_array": f"fir:{self.fir_name}"}

    @property
    def batch_key(self) -> Tuple:
        """FIR jobs share a dispatch only with same-kernel jobs."""
        return ("fir", self.fir_name)

    def service_estimate(self) -> int:
        """Predicted compute cycles (bit-serial datapath)."""
        return int(self.samples.size) * FIR_CYCLES_PER_SAMPLE


def split_sequence_job(job: EncodeJob, first_job_id: int,
                       gop_size: int = DEFAULT_GOP_SIZE,
                       scene_cut_threshold: Optional[float] = None
                       ) -> List[EncodeJob]:
    """Split a multi-GOP encode request into independent GOP-shard jobs.

    Reuses the GOP strategies of :mod:`repro.video.gop` (cadence plus
    optional scene-cut detection).  The shards carry ``kind='gop'``, the
    parent's ``job_id`` as ``sequence_id`` and their presentation-order
    ``gop_index``, so a client can reassemble the encoded stream whatever
    order the scheduler completes them in; shard ids are assigned
    consecutively from ``first_job_id``.
    """
    gops = split_into_gops(job.frames, gop_size, scene_cut_threshold)
    return [EncodeJob(job_id=first_job_id + gop.index,
                      arrival_cycle=job.arrival_cycle,
                      frames=[job.frames[index] for index in gop.frame_indices],
                      qp=job.qp, search_range=job.search_range,
                      dct_name=job.dct_name, kind="gop",
                      sequence_id=job.sequence_id if job.sequence_id is not None
                      else job.job_id,
                      gop_index=gop.index)
            for gop in gops]
