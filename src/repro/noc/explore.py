"""Design-space exploration: topology x placement x workload sweeps.

The explorer evaluates every topology family on every extracted workload
under every placement strategy, and reduces the sweep to its Pareto
front over (latency, energy, router area) — the three axes a SoC
architect trades when sizing the on-chip network.  Workloads sharing an
agent set are simulated through one batched call per topology/placement,
so the sweep cost is dominated by the number of *topologies*, not the
number of traffic matrices.

:func:`grid_sweep` scales the same evaluation to parameter grids:
thousands of (family, knob, placement, workload) points enumerated from
picklable ``(family, params)`` specs — :func:`default_grid` builds the
standard grid over cluster side, hub speedup, pillar density, express
stride and TSV latency — with an optional ``parallel="processes"`` path
over :mod:`repro.par` that shards the spec list across worker processes
and is bit-identical to the serial order.  :func:`pareto_front` reduces
any such sweep with a vectorized skyline scan that matches the O(n²)
dominance reference point for point.

:func:`saturation_curve` adds the load axis: one workload swept over
``scaled_peak`` injection levels (the peak flow rescaled *to* each
level, up or down) through a single batched cycle-stepped simulation,
reporting delivered-only latency per level and the knee — the last
level the network absorbs before the saturation flag trips.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.core.exceptions import ConfigurationError
from repro.noc.sim import NocSimResult, resolve_flit_cap, simulate_batched
from repro.noc.topology import (
    HUB_LINK_CYCLES,
    TSV_CYCLES,
    Topology,
    _near_square,
    build_topology,
    place_agents,
    standard_topologies,
)
from repro.noc.traffic import TrafficMatrix

#: A picklable topology description: ``(family, constructor_params)``.
TopologySpec = Tuple[str, Dict[str, int]]

#: Objectives a :func:`pareto_front` can minimise, mapped to the
#: :class:`DesignPoint` attribute carrying them.
OBJECTIVES = ("latency_cycles", "mean_latency_cycles",
              "delivered_mean_latency_cycles", "energy",
              "router_area", "link_count")

#: The default three-way trade: worst-flow latency, transfer energy and
#: router silicon.
DEFAULT_OBJECTIVES = ("latency_cycles", "energy", "router_area")


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated (topology, placement, workload) combination."""

    topology: str
    placement: str
    workload: str
    node_count: int
    link_count: int
    latency_cycles: int
    mean_latency_cycles: float
    energy: float
    router_area: float
    peak_link_utilisation: float
    saturated: bool
    delivered_mean_latency_cycles: float = 0.0
    censored_flows: int = 0

    def objectives(self, names: Sequence[str] = DEFAULT_OBJECTIVES
                   ) -> Tuple[float, ...]:
        """The point's coordinates along the named (minimised) objectives."""
        for name in names:
            if name not in OBJECTIVES:
                raise ConfigurationError(
                    f"unknown objective {name!r}; expected one of {OBJECTIVES}")
        return tuple(float(getattr(self, name)) for name in names)

    def summary(self) -> Dict[str, object]:
        """Flat dictionary for reporting."""
        return {
            "topology": self.topology,
            "placement": self.placement,
            "workload": self.workload,
            "routers": self.node_count,
            "links": self.link_count,
            "latency_cycles": self.latency_cycles,
            "mean_latency_cycles": round(self.mean_latency_cycles, 1),
            "noc_energy": round(self.energy, 1),
            "router_area": round(self.router_area, 1),
            "peak_link_utilisation": round(self.peak_link_utilisation, 3),
            "saturated": self.saturated,
            "delivered_mean_latency_cycles":
                round(self.delivered_mean_latency_cycles, 1),
            "censored_flows": self.censored_flows,
        }


def _point(topology: Topology, placement_name: str,
           result: NocSimResult) -> DesignPoint:
    return DesignPoint(
        topology=topology.name,
        placement=placement_name,
        workload=result.traffic_name,
        node_count=topology.node_count,
        link_count=topology.link_count,
        latency_cycles=result.max_latency_cycles,
        mean_latency_cycles=result.mean_latency_cycles,
        energy=result.energy,
        router_area=topology.router_area_elements(),
        peak_link_utilisation=result.peak_link_utilisation,
        saturated=result.saturated,
        delivered_mean_latency_cycles=result.delivered_mean_latency_cycles,
        censored_flows=result.censored_flow_count,
    )


def sweep(workloads: Mapping[str, TrafficMatrix],
          topologies: Optional[Sequence[Topology]] = None,
          placements: Sequence[str] = ("linear", "spread"),
          model: str = "analytic",
          max_flits_per_flow="auto") -> List[DesignPoint]:
    """Evaluate every topology x placement x workload combination.

    ``workloads`` maps workload names to traffic matrices (the name on
    the matrix is overridden by the mapping key).  ``topologies``
    defaults to one instance of every family in
    :data:`~repro.noc.topology.TOPOLOGY_FAMILIES`, sized for the largest
    agent set.  Workloads with identical agent tuples share one batched
    simulator call per (topology, placement).

    The closed-form analytic model runs the full traffic volume by
    default; the cycle-stepped wormhole model caps each flow at a
    representative load first (``max_flits_per_flow`` overrides either).
    """
    max_flits_per_flow = resolve_flit_cap(model, max_flits_per_flow)
    if not workloads:
        raise ConfigurationError("a sweep needs at least one workload")
    named = [TrafficMatrix(traffic.agents, traffic.flits, name=name)
             for name, traffic in workloads.items()]
    if topologies is None:
        largest = max(traffic.agent_count for traffic in named)
        topologies = standard_topologies(largest)

    points: List[DesignPoint] = []
    groups = _group_by_agents(named)
    for topology in topologies:
        points.extend(_evaluate_topology(topology, groups, placements,
                                         model, max_flits_per_flow))
    return points


def _group_by_agents(traffics: Sequence[TrafficMatrix]
                     ) -> Dict[Tuple[str, ...], List[TrafficMatrix]]:
    """Workloads keyed by agent tuple, preserving input order."""
    groups: Dict[Tuple[str, ...], List[TrafficMatrix]] = {}
    for traffic in traffics:
        groups.setdefault(traffic.agents, []).append(traffic)
    return groups


def _evaluate_topology(topology: Topology,
                       groups: Mapping[Tuple[str, ...],
                                       Sequence[TrafficMatrix]],
                       placements: Sequence[str], model: str,
                       max_flits_per_flow: Optional[int]
                       ) -> List[DesignPoint]:
    """All placement x workload points of one topology (batched sim)."""
    points: List[DesignPoint] = []
    for placement_name in placements:
        for agents, group in groups.items():
            placement = place_agents(agents, topology, placement_name)
            results = simulate_batched(
                topology, group, placement=placement, model=model,
                max_flits_per_flow=max_flits_per_flow)
            points.extend(_point(topology, placement_name, result)
                          for result in results)
    return points


# --------------------------------------------------------------------------
# Parameter-grid sweeps over the hierarchical families
# --------------------------------------------------------------------------

def default_grid(node_count: int, *,
                 cluster_sides: Sequence[int] = (2, 3),
                 hub_speedups: Sequence[int] = (1, 2),
                 pillar_strides: Sequence[int] = (1, 2, 3),
                 tsv_latencies: Sequence[int] = (TSV_CYCLES,),
                 express_strides: Sequence[int] = (2, 3),
                 io_latencies: Sequence[int] = (HUB_LINK_CYCLES,),
                 hub_counts: Sequence[int] = (1,),
                 families: Optional[Sequence[str]] = None
                 ) -> List[TopologySpec]:
    """The standard knob grid, sized for ``node_count`` agents.

    Enumerates one spec per knob combination of each family: cluster
    side x hub speedup for ``cluster_hub``, pillar stride x TSV latency
    for the stacked families, express stride for ``express``, IO-link
    latency for ``mesh_io``, hub count for ``hub``, and the single
    canonical instance of the flat families.  Every spec is a picklable
    ``(family, params)`` pair accepted by
    :func:`repro.noc.topology.build_topology`.
    """
    if node_count < 1:
        raise ConfigurationError("a grid needs at least one agent")
    chosen = set(TOPOLOGY_GRID_FAMILIES if families is None else families)
    unknown = chosen - set(TOPOLOGY_GRID_FAMILIES)
    if unknown:
        raise ConfigurationError(
            f"unknown grid families {sorted(unknown)}; expected a subset "
            f"of {TOPOLOGY_GRID_FAMILIES}")
    rows, cols = _near_square(node_count)
    half_rows, half_cols = _near_square(-(-node_count // 2))
    specs: List[TopologySpec] = []
    if "mesh" in chosen:
        specs.append(("mesh", {"rows": rows, "cols": cols}))
    if "torus" in chosen:
        specs.append(("torus", {"rows": rows, "cols": cols}))
    if "ring" in chosen:
        specs.append(("ring", {"count": max(3, node_count)}))
    if "mesh3d" in chosen:
        specs.extend(("mesh3d", {"rows": half_rows, "cols": half_cols,
                                 "layers": 2, "tsv_latency": tsv})
                     for tsv in tsv_latencies)
    if "hub" in chosen:
        specs.extend(("hub", {"spokes": max(1, node_count - hubs),
                              "hubs": hubs})
                     for hubs in hub_counts)
    if "cluster_hub" in chosen:
        for side in cluster_sides:
            clusters = -(-node_count // side ** 2)
            cluster_rows, cluster_cols = _near_square(clusters)
            specs.extend(("cluster_hub",
                          {"cluster_rows": cluster_rows,
                           "cluster_cols": cluster_cols,
                           "cluster_side": side, "hub_speedup": speedup})
                         for speedup in hub_speedups)
    if "mesh3d_sparse" in chosen:
        specs.extend(("mesh3d_sparse",
                      {"rows": half_rows, "cols": half_cols, "layers": 2,
                       "pillar_stride": stride, "tsv_latency": tsv})
                     for stride in pillar_strides for tsv in tsv_latencies)
    if "pillar_torus" in chosen:
        specs.extend(("pillar_torus",
                      {"rows": half_rows, "cols": half_cols, "layers": 2,
                       "pillar_stride": stride, "tsv_latency": tsv})
                     for stride in pillar_strides for tsv in tsv_latencies)
    if "express" in chosen:
        specs.extend(("express", {"rows": rows, "cols": cols,
                                  "stride": stride})
                     for stride in express_strides)
    if "mesh_io" in chosen:
        specs.extend(("mesh_io", {"rows": rows, "cols": max(2, cols),
                                  "io_link_latency": latency})
                     for latency in io_latencies)
    return specs


#: Families :func:`default_grid` can enumerate (insertion order is the
#: spec order of the grid).
TOPOLOGY_GRID_FAMILIES = ("mesh", "torus", "ring", "mesh3d", "hub",
                          "cluster_hub", "mesh3d_sparse", "pillar_torus",
                          "express", "mesh_io")


def _evaluate_spec(spec: TopologySpec,
                   groups: Mapping[Tuple[str, ...],
                                   Sequence[TrafficMatrix]],
                   placements: Sequence[str], model: str,
                   max_flits_per_flow: Optional[int],
                   agent_floor: int) -> List[DesignPoint]:
    """Build one spec's topology and evaluate it over the workloads."""
    family, params = spec
    topology = build_topology(family, **params)
    if topology.node_count < agent_floor:
        raise ConfigurationError(
            f"grid spec {family}:{params} produced {topology.node_count} "
            f"routers for {agent_floor} agents")
    return _evaluate_topology(topology, groups, placements, model,
                              max_flits_per_flow)


def _grid_shard(specs: Sequence[TopologySpec],
                groups: Mapping[Tuple[str, ...], Sequence[TrafficMatrix]],
                placements: Sequence[str], model: str,
                max_flits_per_flow: Optional[int],
                agent_floor: int) -> List[DesignPoint]:
    """One worker's contiguous slice of the spec list (module-level so
    the processes backend can pickle it)."""
    points: List[DesignPoint] = []
    for spec in specs:
        points.extend(_evaluate_spec(spec, groups, placements, model,
                                     max_flits_per_flow, agent_floor))
    return points


def grid_sweep(workloads: Mapping[str, TrafficMatrix],
               specs: Optional[Sequence[TopologySpec]] = None,
               placements: Sequence[str] = ("linear", "spread"),
               model: str = "analytic",
               max_flits_per_flow="auto",
               parallel: Optional[str] = None,
               workers: Optional[int] = None,
               backend=None) -> List[DesignPoint]:
    """Evaluate a parameter grid of topology specs over the workloads.

    The grid-scale form of :func:`sweep`: ``specs`` is a list of
    picklable ``(family, params)`` pairs (default: the
    :func:`default_grid` sized for the largest workload), evaluated
    spec-major then placement then workload, exactly like the serial
    sweep order.

    ``parallel="processes"`` shards the spec list contiguously across
    worker processes via :mod:`repro.par` and concatenates the shard
    results in order — the returned points are bit-identical to the
    serial path because every shard runs the same batched simulator on
    the same specs in the same order.  ``workers`` defaults to the
    available CPUs; pass a warm ``backend``
    (:class:`repro.par.ProcessBackend`) to reuse a spawned pool.
    """
    max_flits_per_flow = resolve_flit_cap(model, max_flits_per_flow)
    if not workloads:
        raise ConfigurationError("a grid sweep needs at least one workload")
    named = [TrafficMatrix(traffic.agents, traffic.flits, name=name)
             for name, traffic in workloads.items()]
    largest = max(traffic.agent_count for traffic in named)
    if specs is None:
        specs = default_grid(largest)
    specs = [(family, dict(params)) for family, params in specs]
    if not specs:
        raise ConfigurationError("a grid sweep needs at least one spec")
    groups = _group_by_agents(named)

    if parallel in (None, "serial"):
        return _grid_shard(specs, groups, placements, model,
                           max_flits_per_flow, largest)
    if parallel != "processes":
        raise ConfigurationError(
            f"unknown parallel mode {parallel!r}; expected None, 'serial' "
            f"or 'processes'")
    from repro.engine.sharding import shard_slices
    from repro.par.pool import available_cpus, run_tasks

    worker_count = max(1, min(workers or available_cpus(), len(specs)))
    slices = [(start, stop)
              for start, stop in shard_slices(len(specs), worker_count)
              if stop > start]
    shards = run_tasks(
        _grid_shard,
        [(specs[start:stop], groups, placements, model, max_flits_per_flow,
          largest) for start, stop in slices],
        labels=[f"grid[{start}:{stop}]" for start, stop in slices],
        workers=worker_count, backend=backend)
    return [point for shard in shards for point in shard]


def _dominates(a: Tuple[float, ...], b: Tuple[float, ...]) -> bool:
    """True when ``a`` is no worse than ``b`` everywhere and better once."""
    return all(x <= y for x, y in zip(a, b)) and any(x < y for x, y in zip(a, b))


def _pareto_mask(coordinates: np.ndarray) -> np.ndarray:
    """Boolean keep-mask of the non-dominated rows of ``coordinates``.

    Vectorized skyline scan: candidates are visited in ascending
    coordinate-sum order (a dominator's sum can never exceed its
    victim's), and each surviving candidate eliminates everything it
    dominates with one broadcast comparison against the whole set.
    Dominated rows never eliminate a front member — domination requires
    being strictly better somewhere — so visiting one early only
    removes points its own dominator would have removed anyway
    (dominance is transitive), and the mask is order-independent.
    """
    count = coordinates.shape[0]
    keep = np.ones(count, dtype=bool)
    for index in np.argsort(coordinates.sum(axis=1), kind="stable"):
        if not keep[index]:
            continue
        mine = coordinates[index]
        dominated = ((coordinates >= mine).all(axis=1)
                     & (coordinates > mine).any(axis=1))
        keep &= ~dominated
    return keep


def pareto_front(points: Iterable[DesignPoint],
                 objectives: Sequence[str] = DEFAULT_OBJECTIVES
                 ) -> List[DesignPoint]:
    """The non-dominated subset of a sweep, in input order.

    A point is kept when no other point is at least as good on every
    objective and strictly better on one.  Saturated points only survive
    if no unsaturated point dominates them (saturation is treated as an
    extra, worst-valued objective).  Reduced with the vectorized
    :func:`_pareto_mask` skyline, which keeps fronts over thousands of
    grid points sub-second; :func:`pareto_front_reference` is the
    original O(n²) scan kept as the conformance oracle.
    """
    points = list(points)
    if not points:
        return []
    coordinates = np.asarray(
        [point.objectives(objectives) + (float(point.saturated),)
         for point in points], dtype=np.float64)
    keep = _pareto_mask(coordinates)
    return [point for point, kept in zip(points, keep) if kept]


def pareto_front_reference(points: Iterable[DesignPoint],
                           objectives: Sequence[str] = DEFAULT_OBJECTIVES
                           ) -> List[DesignPoint]:
    """O(n²) dominance scan — the oracle :func:`pareto_front` must match."""
    points = list(points)
    coordinates = [point.objectives(objectives) + (float(point.saturated),)
                   for point in points]
    front = []
    for index, point in enumerate(points):
        mine = coordinates[index]
        dominated = any(_dominates(other, mine)
                        for position, other in enumerate(coordinates)
                        if position != index)
        if not dominated:
            front.append(point)
    return front


def pareto_by_workload(points: Sequence[DesignPoint],
                       objectives: Sequence[str] = DEFAULT_OBJECTIVES
                       ) -> Dict[str, List[DesignPoint]]:
    """Per-workload Pareto fronts (topologies compete within a workload)."""
    by_workload: Dict[str, List[DesignPoint]] = {}
    for point in points:
        by_workload.setdefault(point.workload, []).append(point)
    return {workload: pareto_front(group, objectives)
            for workload, group in by_workload.items()}


# --------------------------------------------------------------------------
# Latency-vs-injection-rate saturation curves
# --------------------------------------------------------------------------

#: Default ``scaled_peak`` injection levels for :func:`saturation_curve`:
#: doubling peak-flow sizes from a near-idle network to well past
#: saturation.
DEFAULT_INJECTION_LEVELS = (1, 2, 4, 8, 16, 32, 64)


@dataclass(frozen=True)
class SaturationPoint:
    """One injection level of a latency-vs-load curve."""

    level: int
    total_flits: int
    delivered_flits: int
    mean_latency_cycles: float
    delivered_mean_latency_cycles: float
    max_latency_cycles: int
    peak_link_utilisation: float
    censored_flows: int
    saturated: bool

    def summary(self) -> Dict[str, object]:
        """Flat dictionary for reporting."""
        return {
            "level": self.level,
            "total_flits": self.total_flits,
            "delivered_flits": self.delivered_flits,
            "mean_latency_cycles": round(self.mean_latency_cycles, 2),
            "delivered_mean_latency_cycles":
                round(self.delivered_mean_latency_cycles, 2),
            "max_latency_cycles": self.max_latency_cycles,
            "peak_link_utilisation": round(self.peak_link_utilisation, 3),
            "censored_flows": self.censored_flows,
            "saturated": self.saturated,
        }


@dataclass(frozen=True)
class SaturationCurve:
    """Latency versus injection rate for one topology x workload pair.

    ``knee`` is the largest injection level the network absorbs without
    saturating — past it, latency is dominated by queueing and the
    mean over *all* flows is censored by the cycle budget, so readers
    should switch to ``delivered_mean_latency_cycles`` per point.
    """

    topology: str
    workload: str
    model: str
    points: Tuple[SaturationPoint, ...]

    @property
    def knee(self) -> Optional[int]:
        """Largest unsaturated injection level; None when even the
        lightest level saturates."""
        unsaturated = [point.level for point in self.points
                       if not point.saturated]
        return max(unsaturated) if unsaturated else None

    def summary(self) -> Dict[str, object]:
        """Flat dictionary for reporting."""
        return {
            "topology": self.topology,
            "workload": self.workload,
            "model": self.model,
            "knee": self.knee,
            "points": [point.summary() for point in self.points],
        }


def saturation_curve(topology: Topology, traffic: TrafficMatrix,
                     levels: Sequence[int] = DEFAULT_INJECTION_LEVELS,
                     model: str = "wormhole_adaptive",
                     placement: Optional[Mapping[str, int]] = None,
                     max_cycles: Optional[int] = None) -> SaturationCurve:
    """Sweep one workload over ``scaled_peak`` injection levels.

    Each level rescales the workload so its largest flow carries exactly
    ``level`` flits — up *or* down, preserving the flow structure — and
    all levels run through a single batched cycle-stepped simulation.
    The curve's knee is the largest level whose result is unsaturated —
    the classic latency-vs-injection plot reduced to one number per
    topology x workload pair.  (Scaling up matters: with the shrink-only
    ``scaled_to``, levels above the workload's natural peak re-simulated
    identical traffic and inflated the reported knee.)
    """
    if not levels:
        raise ConfigurationError(
            "a saturation curve needs at least one injection level")
    ordered = sorted({int(level) for level in levels})
    if ordered[0] < 1:
        raise ConfigurationError(
            f"injection levels must be >= 1 flit per flow, got {ordered[0]}")
    if model == "analytic":
        raise ConfigurationError(
            "saturation curves need a cycle-stepped model; the analytic "
            "model has no queueing and never exhibits a knee")
    scaled = [traffic.scaled_peak(level).renamed(f"{traffic.name}@{level}")
              for level in ordered]
    results = simulate_batched(topology, scaled, placement=placement,
                               model=model, max_flits_per_flow=None,
                               max_cycles=max_cycles)
    points = tuple(
        SaturationPoint(
            level=level,
            total_flits=result.total_flits,
            delivered_flits=result.delivered_flits,
            mean_latency_cycles=result.mean_latency_cycles,
            delivered_mean_latency_cycles=result.delivered_mean_latency_cycles,
            max_latency_cycles=result.max_latency_cycles,
            peak_link_utilisation=result.peak_link_utilisation,
            censored_flows=result.censored_flow_count,
            saturated=result.saturated,
        )
        for level, result in zip(ordered, results))
    return SaturationCurve(topology=topology.name, workload=traffic.name,
                           model=model, points=points)


def saturation_curves(topologies: Sequence[Topology],
                      workloads: Mapping[str, TrafficMatrix],
                      levels: Sequence[int] = DEFAULT_INJECTION_LEVELS,
                      model: str = "wormhole_adaptive",
                      max_cycles: Optional[int] = None
                      ) -> List[SaturationCurve]:
    """One :func:`saturation_curve` per topology x workload pair."""
    if not workloads:
        raise ConfigurationError(
            "saturation curves need at least one workload")
    curves: List[SaturationCurve] = []
    for topology in topologies:
        for name, traffic in workloads.items():
            curves.append(saturation_curve(
                topology, traffic.renamed(name), levels=levels, model=model,
                max_cycles=max_cycles))
    return curves
