"""Design-space exploration: topology x placement x workload sweeps.

The explorer evaluates every topology family on every extracted workload
under every placement strategy, and reduces the sweep to its Pareto
front over (latency, energy, router area) — the three axes a SoC
architect trades when sizing the on-chip network.  Workloads sharing an
agent set are simulated through one batched call per topology/placement,
so the sweep cost is dominated by the number of *topologies*, not the
number of traffic matrices.

:func:`saturation_curve` adds the load axis: one workload swept over
``scaled_to`` injection levels through a single batched cycle-stepped
simulation, reporting delivered-only latency per level and the knee —
the last level the network absorbs before the saturation flag trips.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.exceptions import ConfigurationError
from repro.noc.sim import NocSimResult, resolve_flit_cap, simulate_batched
from repro.noc.topology import (
    Topology,
    place_agents,
    standard_topologies,
)
from repro.noc.traffic import TrafficMatrix

#: Objectives a :func:`pareto_front` can minimise, mapped to the
#: :class:`DesignPoint` attribute carrying them.
OBJECTIVES = ("latency_cycles", "mean_latency_cycles",
              "delivered_mean_latency_cycles", "energy",
              "router_area", "link_count")

#: The default three-way trade: worst-flow latency, transfer energy and
#: router silicon.
DEFAULT_OBJECTIVES = ("latency_cycles", "energy", "router_area")


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated (topology, placement, workload) combination."""

    topology: str
    placement: str
    workload: str
    node_count: int
    link_count: int
    latency_cycles: int
    mean_latency_cycles: float
    energy: float
    router_area: float
    peak_link_utilisation: float
    saturated: bool
    delivered_mean_latency_cycles: float = 0.0
    censored_flows: int = 0

    def objectives(self, names: Sequence[str] = DEFAULT_OBJECTIVES
                   ) -> Tuple[float, ...]:
        """The point's coordinates along the named (minimised) objectives."""
        for name in names:
            if name not in OBJECTIVES:
                raise ConfigurationError(
                    f"unknown objective {name!r}; expected one of {OBJECTIVES}")
        return tuple(float(getattr(self, name)) for name in names)

    def summary(self) -> Dict[str, object]:
        """Flat dictionary for reporting."""
        return {
            "topology": self.topology,
            "placement": self.placement,
            "workload": self.workload,
            "routers": self.node_count,
            "links": self.link_count,
            "latency_cycles": self.latency_cycles,
            "mean_latency_cycles": round(self.mean_latency_cycles, 1),
            "noc_energy": round(self.energy, 1),
            "router_area": round(self.router_area, 1),
            "peak_link_utilisation": round(self.peak_link_utilisation, 3),
            "saturated": self.saturated,
            "delivered_mean_latency_cycles":
                round(self.delivered_mean_latency_cycles, 1),
            "censored_flows": self.censored_flows,
        }


def _point(topology: Topology, placement_name: str,
           result: NocSimResult) -> DesignPoint:
    return DesignPoint(
        topology=topology.name,
        placement=placement_name,
        workload=result.traffic_name,
        node_count=topology.node_count,
        link_count=topology.link_count,
        latency_cycles=result.max_latency_cycles,
        mean_latency_cycles=result.mean_latency_cycles,
        energy=result.energy,
        router_area=topology.router_area_elements(),
        peak_link_utilisation=result.peak_link_utilisation,
        saturated=result.saturated,
        delivered_mean_latency_cycles=result.delivered_mean_latency_cycles,
        censored_flows=result.censored_flow_count,
    )


def sweep(workloads: Mapping[str, TrafficMatrix],
          topologies: Optional[Sequence[Topology]] = None,
          placements: Sequence[str] = ("linear", "spread"),
          model: str = "analytic",
          max_flits_per_flow="auto") -> List[DesignPoint]:
    """Evaluate every topology x placement x workload combination.

    ``workloads`` maps workload names to traffic matrices (the name on
    the matrix is overridden by the mapping key).  ``topologies``
    defaults to one instance of every family in
    :data:`~repro.noc.topology.TOPOLOGY_FAMILIES`, sized for the largest
    agent set.  Workloads with identical agent tuples share one batched
    simulator call per (topology, placement).

    The closed-form analytic model runs the full traffic volume by
    default; the cycle-stepped wormhole model caps each flow at a
    representative load first (``max_flits_per_flow`` overrides either).
    """
    max_flits_per_flow = resolve_flit_cap(model, max_flits_per_flow)
    if not workloads:
        raise ConfigurationError("a sweep needs at least one workload")
    named = [TrafficMatrix(traffic.agents, traffic.flits, name=name)
             for name, traffic in workloads.items()]
    if topologies is None:
        largest = max(traffic.agent_count for traffic in named)
        topologies = standard_topologies(largest)

    groups: Dict[Tuple[str, ...], List[TrafficMatrix]] = {}
    for traffic in named:
        groups.setdefault(traffic.agents, []).append(traffic)

    points: List[DesignPoint] = []
    for topology in topologies:
        for placement_name in placements:
            for agents, group in groups.items():
                placement = place_agents(agents, topology, placement_name)
                results = simulate_batched(
                    topology, group, placement=placement, model=model,
                    max_flits_per_flow=max_flits_per_flow)
                points.extend(_point(topology, placement_name, result)
                              for result in results)
    return points


def _dominates(a: Tuple[float, ...], b: Tuple[float, ...]) -> bool:
    """True when ``a`` is no worse than ``b`` everywhere and better once."""
    return all(x <= y for x, y in zip(a, b)) and any(x < y for x, y in zip(a, b))


def pareto_front(points: Iterable[DesignPoint],
                 objectives: Sequence[str] = DEFAULT_OBJECTIVES
                 ) -> List[DesignPoint]:
    """The non-dominated subset of a sweep, in input order.

    A point is kept when no other point is at least as good on every
    objective and strictly better on one.  Saturated points only survive
    if no unsaturated point dominates them (saturation is treated as an
    extra, worst-valued objective).
    """
    points = list(points)
    coordinates = [point.objectives(objectives) + (float(point.saturated),)
                   for point in points]
    front = []
    for index, point in enumerate(points):
        mine = coordinates[index]
        dominated = any(_dominates(other, mine)
                        for position, other in enumerate(coordinates)
                        if position != index)
        if not dominated:
            front.append(point)
    return front


def pareto_by_workload(points: Sequence[DesignPoint],
                       objectives: Sequence[str] = DEFAULT_OBJECTIVES
                       ) -> Dict[str, List[DesignPoint]]:
    """Per-workload Pareto fronts (topologies compete within a workload)."""
    by_workload: Dict[str, List[DesignPoint]] = {}
    for point in points:
        by_workload.setdefault(point.workload, []).append(point)
    return {workload: pareto_front(group, objectives)
            for workload, group in by_workload.items()}


# --------------------------------------------------------------------------
# Latency-vs-injection-rate saturation curves
# --------------------------------------------------------------------------

#: Default ``scaled_to`` injection levels for :func:`saturation_curve`:
#: doubling flow caps from a near-idle network to well past saturation.
DEFAULT_INJECTION_LEVELS = (1, 2, 4, 8, 16, 32, 64)


@dataclass(frozen=True)
class SaturationPoint:
    """One injection level of a latency-vs-load curve."""

    level: int
    total_flits: int
    delivered_flits: int
    mean_latency_cycles: float
    delivered_mean_latency_cycles: float
    max_latency_cycles: int
    peak_link_utilisation: float
    censored_flows: int
    saturated: bool

    def summary(self) -> Dict[str, object]:
        """Flat dictionary for reporting."""
        return {
            "level": self.level,
            "total_flits": self.total_flits,
            "delivered_flits": self.delivered_flits,
            "mean_latency_cycles": round(self.mean_latency_cycles, 2),
            "delivered_mean_latency_cycles":
                round(self.delivered_mean_latency_cycles, 2),
            "max_latency_cycles": self.max_latency_cycles,
            "peak_link_utilisation": round(self.peak_link_utilisation, 3),
            "censored_flows": self.censored_flows,
            "saturated": self.saturated,
        }


@dataclass(frozen=True)
class SaturationCurve:
    """Latency versus injection rate for one topology x workload pair.

    ``knee`` is the largest injection level the network absorbs without
    saturating — past it, latency is dominated by queueing and the
    mean over *all* flows is censored by the cycle budget, so readers
    should switch to ``delivered_mean_latency_cycles`` per point.
    """

    topology: str
    workload: str
    model: str
    points: Tuple[SaturationPoint, ...]

    @property
    def knee(self) -> Optional[int]:
        """Largest unsaturated injection level; None when even the
        lightest level saturates."""
        unsaturated = [point.level for point in self.points
                       if not point.saturated]
        return max(unsaturated) if unsaturated else None

    def summary(self) -> Dict[str, object]:
        """Flat dictionary for reporting."""
        return {
            "topology": self.topology,
            "workload": self.workload,
            "model": self.model,
            "knee": self.knee,
            "points": [point.summary() for point in self.points],
        }


def saturation_curve(topology: Topology, traffic: TrafficMatrix,
                     levels: Sequence[int] = DEFAULT_INJECTION_LEVELS,
                     model: str = "wormhole_adaptive",
                     placement: Optional[Mapping[str, int]] = None,
                     max_cycles: Optional[int] = None) -> SaturationCurve:
    """Sweep one workload over ``scaled_to`` injection levels.

    Each level caps the workload's largest flow at ``level`` flits
    (preserving the flow structure), and all levels run through a single
    batched cycle-stepped simulation.  The curve's knee is the largest
    level whose result is unsaturated — the classic latency-vs-injection
    plot reduced to one number per topology x workload pair.
    """
    if not levels:
        raise ConfigurationError(
            "a saturation curve needs at least one injection level")
    ordered = sorted({int(level) for level in levels})
    if ordered[0] < 1:
        raise ConfigurationError(
            f"injection levels must be >= 1 flit per flow, got {ordered[0]}")
    if model == "analytic":
        raise ConfigurationError(
            "saturation curves need a cycle-stepped model; the analytic "
            "model has no queueing and never exhibits a knee")
    scaled = [traffic.scaled_to(level).renamed(f"{traffic.name}@{level}")
              for level in ordered]
    results = simulate_batched(topology, scaled, placement=placement,
                               model=model, max_flits_per_flow=None,
                               max_cycles=max_cycles)
    points = tuple(
        SaturationPoint(
            level=level,
            total_flits=result.total_flits,
            delivered_flits=result.delivered_flits,
            mean_latency_cycles=result.mean_latency_cycles,
            delivered_mean_latency_cycles=result.delivered_mean_latency_cycles,
            max_latency_cycles=result.max_latency_cycles,
            peak_link_utilisation=result.peak_link_utilisation,
            censored_flows=result.censored_flow_count,
            saturated=result.saturated,
        )
        for level, result in zip(ordered, results))
    return SaturationCurve(topology=topology.name, workload=traffic.name,
                           model=model, points=points)


def saturation_curves(topologies: Sequence[Topology],
                      workloads: Mapping[str, TrafficMatrix],
                      levels: Sequence[int] = DEFAULT_INJECTION_LEVELS,
                      model: str = "wormhole_adaptive",
                      max_cycles: Optional[int] = None
                      ) -> List[SaturationCurve]:
    """One :func:`saturation_curve` per topology x workload pair."""
    if not workloads:
        raise ConfigurationError(
            "saturation curves need at least one workload")
    curves: List[SaturationCurve] = []
    for topology in topologies:
        for name, traffic in workloads.items():
            curves.append(saturation_curve(
                topology, traffic.renamed(name), levels=levels, model=model,
                max_cycles=max_cycles))
    return curves
