"""Design-space exploration: topology x placement x workload sweeps.

The explorer evaluates every topology family on every extracted workload
under every placement strategy, and reduces the sweep to its Pareto
front over (latency, energy, router area) — the three axes a SoC
architect trades when sizing the on-chip network.  Workloads sharing an
agent set are simulated through one batched call per topology/placement,
so the sweep cost is dominated by the number of *topologies*, not the
number of traffic matrices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.exceptions import ConfigurationError
from repro.noc.sim import NocSimResult, resolve_flit_cap, simulate_batched
from repro.noc.topology import (
    Topology,
    place_agents,
    standard_topologies,
)
from repro.noc.traffic import TrafficMatrix

#: Objectives a :func:`pareto_front` can minimise, mapped to the
#: :class:`DesignPoint` attribute carrying them.
OBJECTIVES = ("latency_cycles", "mean_latency_cycles", "energy",
              "router_area", "link_count")

#: The default three-way trade: worst-flow latency, transfer energy and
#: router silicon.
DEFAULT_OBJECTIVES = ("latency_cycles", "energy", "router_area")


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated (topology, placement, workload) combination."""

    topology: str
    placement: str
    workload: str
    node_count: int
    link_count: int
    latency_cycles: int
    mean_latency_cycles: float
    energy: float
    router_area: float
    peak_link_utilisation: float
    saturated: bool

    def objectives(self, names: Sequence[str] = DEFAULT_OBJECTIVES
                   ) -> Tuple[float, ...]:
        """The point's coordinates along the named (minimised) objectives."""
        for name in names:
            if name not in OBJECTIVES:
                raise ConfigurationError(
                    f"unknown objective {name!r}; expected one of {OBJECTIVES}")
        return tuple(float(getattr(self, name)) for name in names)

    def summary(self) -> Dict[str, object]:
        """Flat dictionary for reporting."""
        return {
            "topology": self.topology,
            "placement": self.placement,
            "workload": self.workload,
            "routers": self.node_count,
            "links": self.link_count,
            "latency_cycles": self.latency_cycles,
            "mean_latency_cycles": round(self.mean_latency_cycles, 1),
            "noc_energy": round(self.energy, 1),
            "router_area": round(self.router_area, 1),
            "peak_link_utilisation": round(self.peak_link_utilisation, 3),
            "saturated": self.saturated,
        }


def _point(topology: Topology, placement_name: str,
           result: NocSimResult) -> DesignPoint:
    return DesignPoint(
        topology=topology.name,
        placement=placement_name,
        workload=result.traffic_name,
        node_count=topology.node_count,
        link_count=topology.link_count,
        latency_cycles=result.max_latency_cycles,
        mean_latency_cycles=result.mean_latency_cycles,
        energy=result.energy,
        router_area=topology.router_area_elements(),
        peak_link_utilisation=result.peak_link_utilisation,
        saturated=result.saturated,
    )


def sweep(workloads: Mapping[str, TrafficMatrix],
          topologies: Optional[Sequence[Topology]] = None,
          placements: Sequence[str] = ("linear", "spread"),
          model: str = "analytic",
          max_flits_per_flow="auto") -> List[DesignPoint]:
    """Evaluate every topology x placement x workload combination.

    ``workloads`` maps workload names to traffic matrices (the name on
    the matrix is overridden by the mapping key).  ``topologies``
    defaults to one instance of every family in
    :data:`~repro.noc.topology.TOPOLOGY_FAMILIES`, sized for the largest
    agent set.  Workloads with identical agent tuples share one batched
    simulator call per (topology, placement).

    The closed-form analytic model runs the full traffic volume by
    default; the cycle-stepped wormhole model caps each flow at a
    representative load first (``max_flits_per_flow`` overrides either).
    """
    max_flits_per_flow = resolve_flit_cap(model, max_flits_per_flow)
    if not workloads:
        raise ConfigurationError("a sweep needs at least one workload")
    named = [TrafficMatrix(traffic.agents, traffic.flits, name=name)
             for name, traffic in workloads.items()]
    if topologies is None:
        largest = max(traffic.agent_count for traffic in named)
        topologies = standard_topologies(largest)

    groups: Dict[Tuple[str, ...], List[TrafficMatrix]] = {}
    for traffic in named:
        groups.setdefault(traffic.agents, []).append(traffic)

    points: List[DesignPoint] = []
    for topology in topologies:
        for placement_name in placements:
            for agents, group in groups.items():
                placement = place_agents(agents, topology, placement_name)
                results = simulate_batched(
                    topology, group, placement=placement, model=model,
                    max_flits_per_flow=max_flits_per_flow)
                points.extend(_point(topology, placement_name, result)
                              for result in results)
    return points


def _dominates(a: Tuple[float, ...], b: Tuple[float, ...]) -> bool:
    """True when ``a`` is no worse than ``b`` everywhere and better once."""
    return all(x <= y for x, y in zip(a, b)) and any(x < y for x, y in zip(a, b))


def pareto_front(points: Iterable[DesignPoint],
                 objectives: Sequence[str] = DEFAULT_OBJECTIVES
                 ) -> List[DesignPoint]:
    """The non-dominated subset of a sweep, in input order.

    A point is kept when no other point is at least as good on every
    objective and strictly better on one.  Saturated points only survive
    if no unsaturated point dominates them (saturation is treated as an
    extra, worst-valued objective).
    """
    points = list(points)
    coordinates = [point.objectives(objectives) + (float(point.saturated),)
                   for point in points]
    front = []
    for index, point in enumerate(points):
        mine = coordinates[index]
        dominated = any(_dominates(other, mine)
                        for position, other in enumerate(coordinates)
                        if position != index)
        if not dominated:
            front.append(point)
    return front


def pareto_by_workload(points: Sequence[DesignPoint],
                       objectives: Sequence[str] = DEFAULT_OBJECTIVES
                       ) -> Dict[str, List[DesignPoint]]:
    """Per-workload Pareto fronts (topologies compete within a workload)."""
    by_workload: Dict[str, List[DesignPoint]] = {}
    for point in points:
        by_workload.setdefault(point.workload, []).append(point)
    return {workload: pareto_front(group, objectives)
            for workload, group in by_workload.items()}
