"""Traffic extraction: flow matrices from the repository's real workloads.

A :class:`TrafficMatrix` is a square flit-count matrix over named agents
(SoC blocks or fabric tiles).  Rather than inventing synthetic load, the
extractors here derive the matrices from the artifacts the rest of the
stack already produces:

* :func:`traffic_from_routing` — a routed netlist's
  :class:`~repro.core.router.Route` paths, projected onto a coarse tile
  grid over the fabric (every tile-boundary crossing becomes flits);
* :func:`traffic_from_video` — a :class:`~repro.video.codec.VideoEncoder`
  statistics stream: raw frames in, reference fetches, residual
  coefficients and entropy bits out;
* :func:`traffic_from_gop_shards` — the GOP-parallel sharding of
  :mod:`repro.engine.sharding`: frames fanned out to workers, encoded
  substreams collected back;
* :func:`traffic_from_reconfiguration` — the per-frame kernel switching
  plan of :func:`repro.video.scenes.plan_reconfiguration`, with bitstream
  words from the compiled kernels' :class:`ConfigurationBitstream`.

Synthetic patterns (uniform / hotspot / transpose) are included for the
explorer and tests.  All flit counts are integers; one flit carries
:data:`FLIT_BITS` bits of payload.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.exceptions import ConfigurationError
from repro.core.router import RoutingResult

#: Payload bits carried by one flit (the SoC bus is modelled as 32-bit).
FLIT_BITS = 32

#: Bits of one raw luminance pixel.
PIXEL_BITS = 8

#: The SoC-level agents of the paper's Fig. 1 used by the video extractors.
VIDEO_AGENTS: Tuple[str, ...] = ("io", "memory", "me_array", "dct_array", "cpu")


def _flits(bits: float, flit_bits: int = FLIT_BITS) -> int:
    """Flits needed to carry ``bits`` of payload (at least one if any)."""
    if bits <= 0:
        return 0
    return -(-int(math.ceil(bits)) // flit_bits)


@dataclass
class TrafficMatrix:
    """Flit counts between named agents: ``flits[i, j]`` from i to j.

    ``burst`` is an optional ``(on, off)`` duty cycle: every flow injects
    one flit per cycle for ``on`` cycles, then idles for ``off`` cycles,
    synchronised across all flows — the bursty variant of a pattern the
    cycle-stepped wormhole simulators honour (the closed-form analytic
    model ignores injection timing).
    """

    agents: Tuple[str, ...]
    flits: np.ndarray
    name: str = "traffic"
    burst: Optional[Tuple[int, int]] = None

    def __post_init__(self) -> None:
        self.agents = tuple(self.agents)
        self.flits = np.asarray(self.flits, dtype=np.int64)
        if self.burst is not None:
            on, off = self.burst
            if on < 1 or off < 0:
                raise ConfigurationError(
                    f"burst duty cycle {self.burst} needs on >= 1, off >= 0")
            self.burst = (int(on), int(off))
        count = len(self.agents)
        if len(set(self.agents)) != count:
            raise ConfigurationError(f"duplicate agent names in {self.agents}")
        if self.flits.shape != (count, count):
            raise ConfigurationError(
                f"flit matrix shape {self.flits.shape} does not match "
                f"{count} agents")
        if (self.flits < 0).any():
            raise ConfigurationError("flit counts must be non-negative")
        if np.diagonal(self.flits).any():
            raise ConfigurationError("self-traffic (diagonal flits) is not "
                                     "network load; zero the diagonal")

    @property
    def agent_count(self) -> int:
        """Number of agents."""
        return len(self.agents)

    @property
    def total_flits(self) -> int:
        """Flits injected by all flows together."""
        return int(self.flits.sum())

    @property
    def flow_count(self) -> int:
        """Number of non-zero source->destination flows."""
        return int(np.count_nonzero(self.flits))

    def flows(self) -> List[Tuple[int, int, int]]:
        """Non-zero flows as ``(source_index, dest_index, flits)`` triples."""
        sources, sinks = np.nonzero(self.flits)
        return [(int(a), int(b), int(self.flits[a, b]))
                for a, b in zip(sources, sinks)]

    def index_of(self, agent: str) -> int:
        """Index of an agent by name."""
        try:
            return self.agents.index(agent)
        except ValueError:
            raise ConfigurationError(
                f"unknown agent {agent!r}; have {self.agents}") from None

    def scaled_to(self, max_flits_per_flow: int) -> "TrafficMatrix":
        """Proportionally shrink so the largest flow carries at most
        ``max_flits_per_flow`` flits (non-zero flows stay non-zero).

        The cycle-stepped wormhole simulator walks every flit, so real
        workload matrices (millions of pixel bits) are scaled down to a
        representative load before simulation; relative flow intensities
        are preserved up to integer rounding.
        """
        if max_flits_per_flow <= 0:
            raise ConfigurationError("max_flits_per_flow must be positive")
        peak = int(self.flits.max()) if self.flits.size else 0
        if peak <= max_flits_per_flow:
            return self
        # Integer ceiling division: float ceil(flits * cap/peak) can land
        # one flit over the cap when cap/peak rounds up.
        scaled = (self.flits * max_flits_per_flow + peak - 1) // peak
        return TrafficMatrix(self.agents, scaled, name=self.name,
                             burst=self.burst)

    def scaled_peak(self, peak_flits: int) -> "TrafficMatrix":
        """Proportionally rescale so the largest flow carries exactly
        ``peak_flits`` flits — scaling **up or down** as needed.

        This is the injection-level knob of
        :func:`repro.noc.explore.saturation_curve`: unlike
        :meth:`scaled_to` (a shrink-only cap for pre-simulation load
        reduction), a level above the matrix's natural peak genuinely
        inflates the traffic, so successive levels always inject more
        flits.  Relative flow intensities are preserved up to integer
        ceiling rounding, and non-zero flows stay non-zero.
        """
        if peak_flits <= 0:
            raise ConfigurationError("peak_flits must be positive")
        peak = int(self.flits.max()) if self.flits.size else 0
        if peak == 0 or peak == peak_flits:
            return self
        # Same integer ceiling division as scaled_to, without the
        # shrink-only early-out: the peak flow lands exactly on
        # peak_flits in both directions.
        scaled = (self.flits * peak_flits + peak - 1) // peak
        return TrafficMatrix(self.agents, scaled, name=self.name,
                             burst=self.burst)

    def with_burst(self, on: int, off: int,
                   name: Optional[str] = None) -> "TrafficMatrix":
        """The same flows injected on an ``on``/``off`` duty cycle."""
        return TrafficMatrix(self.agents, self.flits, burst=(on, off),
                             name=name or f"{self.name}_burst{on}_{off}")

    def renamed(self, name: str) -> "TrafficMatrix":
        """The same matrix carrying a different reporting name."""
        if name == self.name:
            return self
        return TrafficMatrix(self.agents, self.flits, name=name,
                             burst=self.burst)

    def merged_with(self, other: "TrafficMatrix",
                    name: Optional[str] = None) -> "TrafficMatrix":
        """Element-wise sum of two matrices over the same agents."""
        if other.agents != self.agents:
            raise ConfigurationError(
                f"cannot merge traffic over different agents: "
                f"{self.agents} vs {other.agents}")
        if other.burst != self.burst:
            raise ConfigurationError(
                f"cannot merge traffic with different burst duty cycles: "
                f"{self.burst} vs {other.burst}")
        return TrafficMatrix(self.agents, self.flits + other.flits,
                             name=name or f"{self.name}+{other.name}",
                             burst=self.burst)

    def __repr__(self) -> str:
        return (f"TrafficMatrix({self.name!r}, agents={self.agent_count}, "
                f"flows={self.flow_count}, flits={self.total_flits})")


class _MatrixBuilder:
    """Accumulates flits between named agents, then freezes a matrix."""

    def __init__(self, agents: Sequence[str], name: str) -> None:
        self.agents = tuple(agents)
        self.name = name
        self._index = {agent: i for i, agent in enumerate(self.agents)}
        self._flits = np.zeros((len(self.agents), len(self.agents)),
                               dtype=np.int64)

    def add(self, source: str, sink: str, flits: int) -> None:
        if flits <= 0 or source == sink:
            return
        self._flits[self._index[source], self._index[sink]] += flits

    def build(self) -> TrafficMatrix:
        return TrafficMatrix(self.agents, self._flits, name=self.name)


# -- routed netlists ----------------------------------------------------------

def traffic_from_routing(routing: RoutingResult, fabric_rows: int,
                         fabric_cols: int, tiles: Tuple[int, int] = (2, 2),
                         flit_bits: int = FLIT_BITS,
                         name: str = "netlist") -> TrafficMatrix:
    """Project a routed netlist onto a coarse tile grid over the fabric.

    The fabric's ``rows x cols`` cluster grid is divided into
    ``tiles[0] x tiles[1]`` rectangular tiles, each served by one NoC
    router.  Walking every net's routed path, each step that crosses a
    tile boundary contributes one word of ``width_bits`` between the two
    tiles — so the matrix reflects the actual shape of the routed design
    (a design routed within one tile generates no NoC load), not just its
    endpoints.
    """
    tile_rows, tile_cols = tiles
    if tile_rows <= 0 or tile_cols <= 0:
        raise ConfigurationError("tile grid dimensions must be positive")
    if fabric_rows <= 0 or fabric_cols <= 0:
        raise ConfigurationError("fabric dimensions must be positive")
    tile_rows = min(tile_rows, fabric_rows)
    tile_cols = min(tile_cols, fabric_cols)

    def tile_of(position: Tuple[int, int]) -> str:
        row = min(position[0] * tile_rows // fabric_rows, tile_rows - 1)
        col = min(position[1] * tile_cols // fabric_cols, tile_cols - 1)
        return f"tile{row}_{col}"

    agents = [f"tile{r}_{c}" for r in range(tile_rows)
              for c in range(tile_cols)]
    builder = _MatrixBuilder(agents, name)
    for route in routing.routes:
        words = _flits(route.width_bits, flit_bits)
        for here, there in zip(route.path, route.path[1:]):
            builder.add(tile_of(here), tile_of(there), words)
    return builder.build()


def tile_grid_for(tiles: Tuple[int, int]) -> Tuple[str, ...]:
    """Agent names of the routing extractor's tile grid (row-major)."""
    return tuple(f"tile{r}_{c}" for r in range(tiles[0])
                 for c in range(tiles[1]))


# -- video pipelines ----------------------------------------------------------

def traffic_from_video(statistics: Sequence, frame_shape: Tuple[int, int],
                       flit_bits: int = FLIT_BITS,
                       name: str = "video") -> TrafficMatrix:
    """Per-frame encoder streams as SoC traffic.

    For every frame of a :class:`~repro.video.codec.FrameStatistics`
    stream:

    * the raw frame arrives ``io -> memory`` and streams
      ``memory -> me_array`` (the current macroblocks);
    * P-frames additionally fetch the reference ``memory -> me_array``
      and write motion-compensated residuals ``me_array -> dct_array``
      (I-frames feed the transform directly, modelled the same way);
    * the quantised coefficient stream leaves ``dct_array -> cpu`` at the
      frame's entropy estimate, and the reconstruction is written back
      ``dct_array -> memory`` for the next frame's reference.
    """
    height, width = frame_shape
    if height <= 0 or width <= 0:
        raise ConfigurationError("frame dimensions must be positive")
    frame_bits = height * width * PIXEL_BITS
    builder = _MatrixBuilder(VIDEO_AGENTS, name)
    for stats in statistics:
        frame_flits = _flits(frame_bits, flit_bits)
        builder.add("io", "memory", frame_flits)
        builder.add("memory", "me_array", frame_flits)
        if stats.frame_type == "P":
            builder.add("memory", "me_array", frame_flits)   # reference fetch
        builder.add("me_array", "dct_array", frame_flits)    # residual/source
        builder.add("dct_array", "cpu", _flits(stats.estimated_bits, flit_bits))
        builder.add("dct_array", "memory", frame_flits)      # reconstruction
    return builder.build()


# -- GOP-parallel sharding ----------------------------------------------------

def gop_worker_agents(workers: int) -> Tuple[str, ...]:
    """Agent names of the GOP sharding extractor."""
    return ("io",) + tuple(f"worker{i}" for i in range(workers)) + ("cpu",)


def traffic_from_gop_shards(frame_count: int, workers: int,
                            frame_shape: Tuple[int, int],
                            encoded_bits_per_frame: Optional[Sequence[int]] = None,
                            flit_bits: int = FLIT_BITS,
                            name: str = "gop_shards") -> TrafficMatrix:
    """Frame fan-out and substream collection of a GOP-parallel encode.

    Frames shard over ``workers`` exactly as
    :func:`repro.engine.sharding.shard_slices` assigns them: worker ``w``
    receives its contiguous frame range raw (``io -> worker``) and ships
    the encoded substream back (``worker -> cpu``).  Pass the real
    ``encoded_bits_per_frame`` from a
    :class:`~repro.video.gop.GopEncodeOutcome` statistics stream for
    measured output sizes; the default assumes 8:1 compression.
    """
    from repro.engine.sharding import shard_slices

    if frame_count <= 0:
        raise ConfigurationError("a GOP workload needs at least one frame")
    height, width = frame_shape
    frame_bits = height * width * PIXEL_BITS
    if encoded_bits_per_frame is not None:
        if len(encoded_bits_per_frame) != frame_count:
            raise ConfigurationError(
                f"encoded_bits_per_frame has {len(encoded_bits_per_frame)} "
                f"entries for {frame_count} frames")
        encoded = [int(bits) for bits in encoded_bits_per_frame]
    else:
        encoded = [frame_bits // 8] * frame_count

    builder = _MatrixBuilder(gop_worker_agents(workers), name)
    for worker, (start, stop) in enumerate(shard_slices(frame_count, workers)):
        frames = stop - start
        builder.add("io", f"worker{worker}",
                    frames * _flits(frame_bits, flit_bits))
        builder.add(f"worker{worker}", "cpu",
                    _flits(sum(encoded[start:stop]), flit_bits))
    return builder.build()


# -- reconfiguration events ---------------------------------------------------

#: Agents of the reconfiguration extractor: the configuration controller
#: streaming bitstreams into the two switchable arrays.
RECONFIGURATION_AGENTS: Tuple[str, ...] = ("config", "me_array", "dct_array")

#: Nominal bitstream bits of an ME-array search-mode switch, used when the
#: caller provides no measured value: switching between full / three-step /
#: diamond reprograms control modes, not the datapath, so it is far cheaper
#: than a DCT kernel swap.
SEARCH_SWITCH_BITS = 256


def kernel_bitstream_bits(names: Sequence[str] = ()) -> Dict[str, int]:
    """Measured bitstream bits of the Table-1 DCT kernels, by short name.

    Compiles each kernel through the shared :mod:`repro.flow` cache (one
    place-and-route per process) and reads
    :meth:`~repro.core.configuration.ConfigurationBitstream.total_bits`
    off the result — the actual words a reconfiguration event streams.
    """
    from repro.flow import compile as flow_compile
    from repro.video.scenes import dct_implementation_by_name

    names = tuple(names) or ("mixed_rom", "cordic1", "cordic2",
                             "scc_evenodd", "scc_direct")
    bits: Dict[str, int] = {}
    for name in names:
        result = flow_compile(dct_implementation_by_name(name))
        bits[name] = result.bitstream.total_bits()
    return bits


def traffic_from_reconfiguration(plan: Sequence[Mapping[str, str]],
                                 bitstream_bits: Optional[Mapping[str, int]] = None,
                                 flit_bits: int = FLIT_BITS,
                                 name: str = "reconfiguration") -> TrafficMatrix:
    """Bitstream traffic of a per-frame kernel-switching plan.

    ``plan`` is the output of
    :func:`repro.video.scenes.plan_reconfiguration`: per frame, the
    search and DCT kernel to run.  Every *change* of DCT kernel streams
    that kernel's bitstream ``config -> dct_array`` (frame 0 loads the
    initial kernel); every search change streams a mode update
    ``config -> me_array``.  ``bitstream_bits`` maps DCT short names to
    measured bitstream bits (see :func:`kernel_bitstream_bits`); omitted
    kernels fall back to the largest provided value, and with no mapping
    at all the kernels are compiled on demand.
    """
    if not plan:
        raise ConfigurationError("an empty plan carries no traffic")
    if bitstream_bits is None:
        bitstream_bits = kernel_bitstream_bits(
            sorted({step["dct_name"] for step in plan}))
    fallback = max(bitstream_bits.values()) if bitstream_bits else 0

    builder = _MatrixBuilder(RECONFIGURATION_AGENTS, name)
    previous_dct: Optional[str] = None
    previous_search: Optional[str] = None
    for step in plan:
        dct = step["dct_name"]
        search = step["search_name"]
        if dct != previous_dct:
            builder.add("config", "dct_array",
                        _flits(bitstream_bits.get(dct, fallback), flit_bits))
        if search != previous_search and previous_search is not None:
            builder.add("config", "me_array",
                        _flits(SEARCH_SWITCH_BITS, flit_bits))
        previous_dct, previous_search = dct, search
    return builder.build()


# -- synthetic patterns -------------------------------------------------------

def uniform_traffic(agent_count: int, flits_per_flow: int = 4,
                    name: str = "uniform") -> TrafficMatrix:
    """Every agent sends ``flits_per_flow`` to every other agent."""
    matrix = np.full((agent_count, agent_count), flits_per_flow,
                     dtype=np.int64)
    np.fill_diagonal(matrix, 0)
    return TrafficMatrix(tuple(f"n{i}" for i in range(agent_count)), matrix,
                         name=name)


def hotspot_traffic(agent_count: int, hotspot: int = 0,
                    flits_per_flow: int = 4,
                    name: str = "hotspot") -> TrafficMatrix:
    """Every agent sends to (and receives from) one hotspot agent."""
    if not 0 <= hotspot < agent_count:
        raise ConfigurationError("hotspot index out of range")
    matrix = np.zeros((agent_count, agent_count), dtype=np.int64)
    matrix[:, hotspot] = flits_per_flow
    matrix[hotspot, :] = flits_per_flow
    np.fill_diagonal(matrix, 0)
    return TrafficMatrix(tuple(f"n{i}" for i in range(agent_count)), matrix,
                         name=name)


def transpose_traffic(agent_count: int, flits_per_flow: int = 4,
                      name: str = "transpose") -> TrafficMatrix:
    """Agent ``i`` sends to agent ``count - 1 - i`` (corner turn)."""
    matrix = np.zeros((agent_count, agent_count), dtype=np.int64)
    for index in range(agent_count):
        partner = agent_count - 1 - index
        if partner != index:
            matrix[index, partner] = flits_per_flow
    return TrafficMatrix(tuple(f"n{i}" for i in range(agent_count)), matrix,
                         name=name)


def tornado_traffic(agent_count: int, flits_per_flow: int = 4,
                    name: str = "tornado") -> TrafficMatrix:
    """Agent ``i`` sends halfway around the ring: ``(i + count//2) % count``.

    The classic adversarial pattern for rings and tori — every flow
    travels the maximum minimal distance, so locality-exploiting
    topologies gain nothing.  Each agent sources exactly one flow of
    ``flits_per_flow``.
    """
    if agent_count < 2:
        raise ConfigurationError("tornado traffic needs at least two agents")
    matrix = np.zeros((agent_count, agent_count), dtype=np.int64)
    offset = agent_count // 2
    for index in range(agent_count):
        partner = (index + offset) % agent_count
        if partner != index:
            matrix[index, partner] = flits_per_flow
    return TrafficMatrix(tuple(f"n{i}" for i in range(agent_count)), matrix,
                         name=name)


def clustered_traffic(agent_count: int, cluster_size: int = 4,
                      local_flits: int = 8, global_flits: int = 1,
                      name: str = "clustered") -> TrafficMatrix:
    """Hierarchical locality pattern: heavy intra-cluster, light global.

    Agents partition into consecutive blocks of ``cluster_size``; every
    ordered pair inside a block exchanges ``local_flits``, and each
    agent additionally sends ``global_flits`` to its counterpart in the
    next cluster (``(i + cluster_size) % agent_count``).  The workload
    shape the hierarchical families (cluster hubs, sparse pillars) are
    built for: most traffic stays local, a thin stream crosses.
    """
    if agent_count < 2:
        raise ConfigurationError("clustered traffic needs at least two agents")
    if cluster_size < 1:
        raise ConfigurationError("cluster size must be positive")
    if local_flits < 0 or global_flits < 0:
        raise ConfigurationError("flit counts cannot be negative")
    matrix = np.zeros((agent_count, agent_count), dtype=np.int64)
    for index in range(agent_count):
        cluster = index // cluster_size
        for other in range(cluster * cluster_size,
                           min((cluster + 1) * cluster_size, agent_count)):
            if other != index:
                matrix[index, other] += local_flits
        partner = (index + cluster_size) % agent_count
        if partner != index:
            matrix[index, partner] += global_flits
    return TrafficMatrix(tuple(f"n{i}" for i in range(agent_count)), matrix,
                         name=name)


#: The adversarial patterns accepted by :func:`adversarial_traffic` /
#: :func:`burst_traffic` — the stress set of the saturation benchmarks.
ADVERSARIAL_PATTERNS = ("transpose", "shuffle", "tornado", "hotspot")


def adversarial_traffic(pattern: str, agent_count: int,
                        flits_per_flow: int = 4,
                        name: Optional[str] = None) -> TrafficMatrix:
    """One of the named adversarial patterns, by string.

    Dispatches over :data:`ADVERSARIAL_PATTERNS` so sweeps and benches
    can iterate the stress set without hard-coding the constructors
    (``hotspot`` centres on agent ``0`` — a corner router under the
    linear placement on meshes, the worst-served position).
    """
    if pattern == "transpose":
        return transpose_traffic(agent_count, flits_per_flow,
                                 name=name or pattern)
    if pattern == "shuffle":
        return shuffle_traffic(agent_count, flits_per_flow,
                               name=name or pattern)
    if pattern == "tornado":
        return tornado_traffic(agent_count, flits_per_flow,
                               name=name or pattern)
    if pattern == "hotspot":
        return hotspot_traffic(agent_count, 0,
                               flits_per_flow, name=name or pattern)
    raise ConfigurationError(
        f"unknown adversarial pattern {pattern!r}; expected one of "
        f"{ADVERSARIAL_PATTERNS}")


def burst_traffic(pattern: str, agent_count: int, flits_per_flow: int = 4,
                  burst_on: int = 4, burst_off: int = 12,
                  name: Optional[str] = None) -> TrafficMatrix:
    """Burst variant of an adversarial pattern: synchronised on/off
    injection (all flows fire together for ``burst_on`` cycles, then idle
    ``burst_off``), the duty-cycled load shape of frame-synchronous video
    traffic."""
    base = adversarial_traffic(pattern, agent_count, flits_per_flow)
    return base.with_burst(burst_on, burst_off, name=name)


def shuffle_traffic(agent_count: int, flits_per_flow: int = 4,
                    name: str = "shuffle") -> TrafficMatrix:
    """Perfect-shuffle permutation traffic.

    For power-of-two counts, agent ``i`` sends to the left bit-rotation
    of its index (the butterfly/FFT exchange pattern); otherwise to
    ``(2 * i) % (count - 1)`` — the modular card-shuffle permutation over
    the first ``count - 1`` agents (the last agent idles).  Self-mapped
    agents source no flow; everyone else sources exactly one flow of
    ``flits_per_flow``.
    """
    if agent_count < 2:
        raise ConfigurationError("shuffle traffic needs at least two agents")
    matrix = np.zeros((agent_count, agent_count), dtype=np.int64)
    width = agent_count.bit_length() - 1
    power_of_two = agent_count & (agent_count - 1) == 0
    for index in range(agent_count):
        if power_of_two:
            partner = ((index << 1) | (index >> (width - 1))) \
                & (agent_count - 1)
        elif index < agent_count - 1:
            partner = (2 * index) % (agent_count - 1)
        else:
            partner = index
        if partner != index:
            matrix[index, partner] = flits_per_flow
    return TrafficMatrix(tuple(f"n{i}" for i in range(agent_count)), matrix,
                         name=name)
