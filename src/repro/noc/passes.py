"""Flow passes mapping compiled designs onto the SoC network-on-chip.

Two passes extend the standard pipeline (``Flow.with_noc()`` appends
both):

* :class:`NocMapPass` projects the routed design onto a NoC topology —
  it tiles the fabric, extracts the tile-to-tile traffic matrix from the
  actual :class:`~repro.core.router.Route` paths and places the tiles on
  the routers;
* :class:`NocMetricsPass` simulates that mapping (batched analytic model
  by default; ``Flow.with_noc(model="wormhole")`` or
  ``model="wormhole_adaptive"`` select the cycle-stepped simulators,
  the latter with congestion-aware routing) and folds
  ``noc_latency_cycles`` / ``noc_energy`` into the design's
  :class:`~repro.core.metrics.DesignMetrics`, so a ``compile()`` caller
  sees communication cost next to area and timing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.exceptions import ConfigurationError
from repro.flow.pipeline import Pass
from repro.noc.sim import (
    MODELS,
    resolve_flit_cap,
    simulate,
    simulate_batched,
)
from repro.noc.topology import (
    PLACEMENT_STRATEGIES,
    Mesh2D,
    Topology,
    place_agents,
)
from repro.noc.traffic import FLIT_BITS, TrafficMatrix, traffic_from_routing


@dataclass
class NocMap:
    """A compiled design mapped onto the SoC network: who talks to whom,
    over which topology, from which router."""

    topology: Topology
    traffic: TrafficMatrix
    placement: Dict[str, int]

    def __repr__(self) -> str:
        return (f"NocMap({self.traffic.name!r} on {self.topology.name!r}, "
                f"flows={self.traffic.flow_count})")


class NocMapPass(Pass):
    """Derive the design's NoC traffic and place it on a topology.

    The fabric is divided into a ``tiles`` grid of NoC endpoints; the
    routed netlist's tile-boundary crossings become the traffic matrix
    (see :func:`~repro.noc.traffic.traffic_from_routing`).  ``topology``
    defaults to a 2-D mesh matching the tile grid; pass any
    :class:`~repro.noc.topology.Topology` with at least as many routers
    to explore alternatives inside the flow.
    """

    name = "noc.map"
    requires = ("routing",)
    provides = ("noc_map",)

    def __init__(self, topology: Optional[Topology] = None,
                 tiles: Tuple[int, int] = (2, 2),
                 flit_bits: int = FLIT_BITS,
                 placement_strategy: str = "linear") -> None:
        if placement_strategy not in PLACEMENT_STRATEGIES:
            raise ConfigurationError(
                f"unknown placement strategy {placement_strategy!r}; "
                f"expected one of {PLACEMENT_STRATEGIES}")
        self.topology = topology
        self.tiles = tuple(tiles)
        self.flit_bits = flit_bits
        self.placement_strategy = placement_strategy

    def run(self, context) -> None:
        # The traffic extractor clamps the tile grid to the fabric; the
        # topology must be built from the *clamped* grid or the agents
        # land on misaligned routers.
        tiles = (min(self.tiles[0], context.fabric.rows),
                 min(self.tiles[1], context.fabric.cols))
        traffic = traffic_from_routing(
            context.routing, context.fabric.rows, context.fabric.cols,
            tiles=tiles, flit_bits=self.flit_bits,
            name=context.netlist.name)
        topology = self.topology or Mesh2D(*tiles)
        placement = place_agents(traffic.agents, topology,
                                 self.placement_strategy)
        context.noc_map = NocMap(topology=topology, traffic=traffic,
                                 placement=placement)

    def signature(self) -> Tuple:
        # The structural fingerprint, not the name: link latencies (TSV,
        # hub links) vary between same-named topologies and must miss.
        topology_key = self.topology.fingerprint() if self.topology else None
        return (self.name, topology_key, self.tiles, self.flit_bits,
                self.placement_strategy)


class NocMetricsPass(Pass):
    """Simulate the NoC mapping and report communication latency/energy.

    Runs the batched simulator (batch of one — the same code path the
    explorer batches over) and records the :class:`NocSimResult` on the
    context; when the metrics pass has run, its
    ``noc_latency_cycles`` / ``noc_energy`` fields are filled in so
    ``FlowResult.summary()`` carries the communication cost.
    """

    name = "noc.metrics"
    requires = ("noc_map", "metrics")
    provides = ("noc",)

    def __init__(self, model: str = "analytic",
                 max_flits_per_flow="auto", batched: bool = True) -> None:
        if model not in MODELS:
            raise ConfigurationError(
                f"unknown model {model!r}; expected one of {MODELS}")
        self.model = model
        self.max_flits_per_flow: Optional[int] = resolve_flit_cap(
            model, max_flits_per_flow)
        self.batched = batched

    def run(self, context) -> None:
        noc_map: NocMap = context.noc_map
        if self.batched:
            result = simulate_batched(
                noc_map.topology, [noc_map.traffic],
                placement=noc_map.placement, model=self.model,
                max_flits_per_flow=self.max_flits_per_flow)[0]
        else:
            result = simulate(
                noc_map.topology, noc_map.traffic,
                placement=noc_map.placement, model=self.model,
                max_flits_per_flow=self.max_flits_per_flow)
        context.noc = result
        context.metrics.noc_latency_cycles = result.max_latency_cycles
        context.metrics.noc_energy = result.energy

    def signature(self) -> Tuple:
        return (self.name, self.model, self.max_flits_per_flow, self.batched)
