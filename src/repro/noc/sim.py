"""NoC simulation: analytic contention model plus cycle-stepped wormhole.

Two models, each with a scalar reference and a batched numpy
implementation kept **integer-exact** against each other (mirroring the
scalar-parity discipline of :mod:`repro.engine`):

``analytic``  every flow follows its deterministic route; per-link loads
              are accumulated and each flow's latency is its zero-load
              path latency plus its own serialisation plus the flits of
              other flows sharing its links.  Closed-form, vectorises to
              matrix products over ``B`` traffic matrices at once.

``wormhole``  a cycle-stepped flit model: flow ``f``'s ``k``-th flit
              becomes ready at cycle ``k`` (one injection per cycle),
              every link moves at most one flit per cycle, and
              contention resolves deterministically to the lowest global
              flit id.  The batched implementation advances all ``B``
              traffic matrices through each cycle with vectorized
              winner-per-link selection, the way the
              :class:`~repro.engine.program.VectorEngine` steps ``B``
              value streams per cycle.

``wormhole_adaptive``  the wormhole model with congestion-aware minimal-
              adaptive routing, mirroring the gem5-Garnet scheme: every
              ready flit consults its router's weighted minimal table
              (:meth:`~repro.noc.topology.Topology.routing_table`) and
              picks the admissible outport with the most credits (the
              fewest flits occupying that directed link's downstream
              buffer); when every minimal outport is out of credits the
              flit falls back to the *escape channel* — the deterministic
              static hop (:meth:`~repro.noc.topology.Topology.escape_hop`),
              which ignores credits and strictly decreases the distance
              to the destination, so the escape network per destination
              is a DAG and the model is deadlock-free by construction.

All three models report the same :class:`NocSimResult`: per-flow
latencies, link loads and utilisation, delivered-flit conservation,
saturation and transfer energy (hop-energy constants from
:mod:`repro.power.models`).  The cycle-stepped models honour a traffic
matrix's ``burst`` duty cycle (synchronised on/off injection); the
closed-form analytic model ignores injection timing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.exceptions import ConfigurationError
from repro.noc.topology import ROUTER_CYCLES, Topology, place_agents
from repro.noc.traffic import TrafficMatrix
from repro.obs import tracer as obs_tracer

#: Simulation models accepted by :func:`simulate` / :func:`simulate_batched`.
MODELS = ("analytic", "wormhole", "wormhole_adaptive")

#: Peak link utilisation above which a run is flagged saturated — the
#: knee of a wormhole network's latency/throughput curve.  Applied to the
#: analytic model's utilisation estimate *and* to the cycle-stepped
#: wormhole results (a run scaled down by the flit cap can deliver every
#: capped flit while the busiest link runs essentially every cycle).
SATURATION_UTILISATION = 0.75

#: Default per-flow flit cap applied before a cycle-stepped wormhole walk
#: (the walk visits every flit, so heavy matrices are scaled to a
#: representative load first).  The closed-form analytic model needs no
#: cap and runs the full traffic volume by default.
WORMHOLE_FLIT_CAP = 64

#: Input-buffer depth of one adaptive virtual channel, in flits: the
#: credits a minimal outport can hand out before the adaptive simulator
#: falls back to the escape channel.
ADAPTIVE_BUFFER_DEPTH = 4


def resolve_flit_cap(model: str, max_flits_per_flow) -> Optional[int]:
    """The per-flow flit cap a caller's ``"auto"`` resolves to.

    One place for the policy the flow pass and the explorer share:
    uncapped for the closed-form analytic model (so reported metrics
    track actual traffic volume), :data:`WORMHOLE_FLIT_CAP` for both
    cycle-stepped wormhole walks (static and adaptive).
    """
    if max_flits_per_flow == "auto":
        return None if model == "analytic" else WORMHOLE_FLIT_CAP
    return max_flits_per_flow


@dataclass
class NocSimResult:
    """Outcome of simulating one traffic matrix on one topology.

    ``per_flow_latency`` is ordered like ``traffic.flows()``; for a flow
    the wormhole models could not fully deliver within the cycle budget
    the recorded latency is **censored at the budget** — a lower bound
    that depends on the (arbitrary) budget, not a measurement.
    ``per_flow_delivered`` marks the flows whose every flit arrived;
    :attr:`mean_latency_cycles` averages the censored values in (useful
    only as a budget-relative floor), while
    :attr:`delivered_mean_latency_cycles` averages delivered flows only
    and is the number saturation curves and benchmarks should report.
    ``flit_link_cycles`` / ``flit_router_crossings`` are the integer
    energy aggregates: flit-cycles spent on links and flit-router
    traversals (crossings plus network entries).
    """

    topology_name: str
    traffic_name: str
    model: str
    flow_count: int
    total_flits: int
    delivered_flits: int
    cycles: int
    per_flow_latency: np.ndarray
    per_flow_delivered: np.ndarray
    link_loads: np.ndarray
    flit_link_cycles: int
    flit_router_crossings: int
    saturated: bool

    @property
    def mean_latency_cycles(self) -> float:
        """Mean per-flow latency, censored flows included (see class
        docstring — prefer :attr:`delivered_mean_latency_cycles`)."""
        if self.per_flow_latency.size == 0:
            return 0.0
        return float(self.per_flow_latency.mean())

    @property
    def censored_flow_count(self) -> int:
        """Flows whose latency is budget-censored (not fully delivered)."""
        return int(self.flow_count - self.per_flow_delivered.sum())

    @property
    def delivered_mean_latency_cycles(self) -> float:
        """Mean latency over fully delivered flows only (0.0 if none)."""
        delivered = self.per_flow_latency[self.per_flow_delivered]
        if delivered.size == 0:
            return 0.0
        return float(delivered.mean())

    @property
    def max_latency_cycles(self) -> int:
        """Worst per-flow latency (the communication-bound frame time)."""
        if self.per_flow_latency.size == 0:
            return 0
        return int(self.per_flow_latency.max())

    @property
    def peak_link_load(self) -> int:
        """Flits carried by the busiest link."""
        if self.link_loads.size == 0:
            return 0
        return int(self.link_loads.max())

    @property
    def peak_link_utilisation(self) -> float:
        """Busiest link's load as a fraction of the simulated cycles."""
        if self.cycles <= 0:
            return 0.0
        return self.peak_link_load / self.cycles

    @property
    def mean_link_utilisation(self) -> float:
        """Average link load as a fraction of the simulated cycles."""
        if self.cycles <= 0 or self.link_loads.size == 0:
            return 0.0
        return float(self.link_loads.mean()) / self.cycles

    @property
    def energy(self) -> float:
        """Transfer energy in the power model's switched-capacitance units."""
        from repro.power.models import noc_transfer_energy

        return noc_transfer_energy(self.flit_link_cycles,
                                   self.flit_router_crossings)

    def summary(self) -> Dict[str, object]:
        """Flat dictionary for reporting."""
        return {
            "topology": self.topology_name,
            "workload": self.traffic_name,
            "model": self.model,
            "flows": self.flow_count,
            "flits": self.total_flits,
            "delivered": self.delivered_flits,
            "cycles": self.cycles,
            "mean_latency_cycles": round(self.mean_latency_cycles, 2),
            "delivered_mean_latency_cycles":
                round(self.delivered_mean_latency_cycles, 2),
            "censored_flows": self.censored_flow_count,
            "max_latency_cycles": self.max_latency_cycles,
            "peak_link_utilisation": round(self.peak_link_utilisation, 3),
            "noc_energy": round(self.energy, 2),
            "saturated": self.saturated,
        }

    def __repr__(self) -> str:
        return (f"NocSimResult({self.traffic_name!r} on "
                f"{self.topology_name!r}, model={self.model!r}, "
                f"cycles={self.cycles}, "
                f"delivered={self.delivered_flits}/{self.total_flits})")


@dataclass
class _FlowTable:
    """Flows resolved onto a topology: routes, link ids and latencies.

    ``path_links`` / ``path_latencies`` are the deterministic static
    routes (what the static wormhole walks and the adaptive model's
    escape channel follows); ``sources`` / ``dests`` are the endpoint
    router ids the adaptive model routes between; ``burst`` is the
    traffic matrix's injection duty cycle.
    """

    flits: List[int]
    path_links: List[Tuple[int, ...]]
    path_latencies: List[Tuple[int, ...]]
    sources: List[int]
    dests: List[int]
    burst: Optional[Tuple[int, int]] = None

    @property
    def flow_count(self) -> int:
        return len(self.flits)

    @property
    def total_flits(self) -> int:
        return sum(self.flits)


def _resolve_placement(traffic: TrafficMatrix, topology: Topology,
                       placement: Optional[Dict[str, int]]) -> Dict[str, int]:
    if placement is None:
        return place_agents(traffic.agents, topology)
    missing = [agent for agent in traffic.agents if agent not in placement]
    if missing:
        raise ConfigurationError(f"placement is missing agents {missing}")
    for agent in traffic.agents:
        router = placement[agent]
        if not 0 <= router < topology.node_count:
            raise ConfigurationError(
                f"agent {agent!r} is placed on router {router}, but "
                f"topology {topology.name!r} only has routers "
                f"0..{topology.node_count - 1}")
    return placement


def _flow_table(topology: Topology, traffic: TrafficMatrix,
                placement: Dict[str, int]) -> _FlowTable:
    """Resolve a traffic matrix's flows onto topology routes."""
    flits: List[int] = []
    links: List[Tuple[int, ...]] = []
    latencies: List[Tuple[int, ...]] = []
    sources: List[int] = []
    dests: List[int] = []
    for source, sink, count in traffic.flows():
        here = placement[traffic.agents[source]]
        there = placement[traffic.agents[sink]]
        path = topology.route(here, there)
        hop_links = tuple(topology.link_index(a, b)
                          for a, b in zip(path, path[1:]))
        flits.append(count)
        links.append(hop_links)
        latencies.append(tuple(topology.links[l].latency for l in hop_links))
        sources.append(here)
        dests.append(there)
    return _FlowTable(flits, links, latencies, sources, dests,
                      burst=traffic.burst)


def _injection_times(count: int, burst: Optional[Tuple[int, int]]) -> List[int]:
    """Ready cycle of each of a flow's ``count`` flits.

    One flit per cycle back to back, or grouped into the traffic
    matrix's ``(on, off)`` duty cycle when it carries one.
    """
    if burst is None:
        return list(range(count))
    on, off = burst
    period = on + off
    return [(k // on) * period + k % on for k in range(count)]


def _injection_span(count: int, burst: Optional[Tuple[int, int]]) -> int:
    """Cycles from the first to one past the last injection of a flow."""
    if count <= 0:
        return 0
    if burst is None:
        return count
    on, off = burst
    return ((count - 1) // on) * (on + off) + (count - 1) % on + 1


def default_cycle_budget(table: _FlowTable) -> int:
    """A cycle budget the wormhole models cannot exhaust unsaturated.

    Every cycle with a ready flit moves at least one flit one hop
    (minimal-adaptive hops and escape hops both strictly decrease the
    distance to the destination, so this holds for the adaptive model
    too), and idle cycles only bridge in-flight link latencies or burst
    gaps, so four times the total flit-link work plus the injection
    window is a generous bound.
    """
    work = sum(q * sum(lats) for q, lats in
               zip(table.flits, table.path_latencies))
    span = max((_injection_span(q, table.burst) for q in table.flits),
               default=0)
    return max(64, 4 * work + table.total_flits + span)


# -- analytic model -----------------------------------------------------------

def _analytic_scalar(table: _FlowTable, link_count: int
                     ) -> Tuple[np.ndarray, np.ndarray, int, int]:
    """Reference implementation: pure-Python loops over flows and links."""
    loads = [0] * link_count
    for q, hop_links in zip(table.flits, table.path_links):
        for link in hop_links:
            loads[link] += q
    latencies = []
    flit_link_cycles = 0
    flit_router_crossings = 0
    for q, hop_links, hop_lats in zip(table.flits, table.path_links,
                                      table.path_latencies):
        hops = len(hop_links)
        base = sum(hop_lats) + hops * ROUTER_CYCLES
        queueing = sum(loads[link] - q for link in hop_links)
        latencies.append(base + (q - 1) + queueing)
        flit_link_cycles += q * sum(hop_lats)
        flit_router_crossings += q * (hops + 1)
    return (np.asarray(latencies, dtype=np.int64),
            np.asarray(loads, dtype=np.int64),
            flit_link_cycles, flit_router_crossings)


def _pair_geometry(topology: Topology, agents: Sequence[str],
                   placement: Dict[str, int]
                   ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Route geometry of every ordered agent pair, flattened row-major.

    Returns ``(hops, latency_sums, incidence)`` where ``incidence`` is a
    dense ``[pairs, links]`` crossing-count matrix — the one-off setup
    that lets a whole batch of traffic matrices evaluate as two matrix
    products.
    """
    count = len(agents)
    pairs = count * count
    hops = np.zeros(pairs, dtype=np.int64)
    latency_sums = np.zeros(pairs, dtype=np.int64)
    incidence = np.zeros((pairs, topology.link_count), dtype=np.int64)
    for source in range(count):
        for sink in range(count):
            if source == sink:
                continue
            pair = source * count + sink
            path = topology.route(placement[agents[source]],
                                  placement[agents[sink]])
            hops[pair] = len(path) - 1
            for a, b in zip(path, path[1:]):
                link = topology.link_index(a, b)
                incidence[pair, link] += 1
                latency_sums[pair] += topology.links[link].latency
    return hops, latency_sums, incidence


def _analytic_batched(traffics: Sequence[TrafficMatrix], topology: Topology,
                      placement: Dict[str, int]
                      ) -> List[Tuple[np.ndarray, np.ndarray, int, int]]:
    """Vectorized analytic model over ``B`` traffic matrices at once.

    All matrices share one agent set, so the pair geometry is computed
    once and the whole batch reduces to integer matrix products:
    ``loads = flits @ incidence`` and the queueing gather is
    ``loads @ incidence.T``.  Every step stays in int64, so results
    equal the scalar reference exactly.
    """
    agents = traffics[0].agents
    hops, latency_sums, incidence = _pair_geometry(topology, agents,
                                                   placement)
    flits = np.stack([traffic.flits.ravel() for traffic in traffics])
    loads = flits @ incidence
    shared = loads @ incidence.T
    base = latency_sums + hops * ROUTER_CYCLES
    latencies = base[None, :] + (flits - 1) + (shared - hops[None, :] * flits)
    flit_link_cycles = (flits * latency_sums[None, :]).sum(axis=1)
    flit_router_crossings = (flits * (hops[None, :] + 1)).sum(axis=1)

    outputs = []
    for row in range(len(traffics)):
        active = flits[row] > 0
        outputs.append((latencies[row, active],
                        loads[row],
                        int(flit_link_cycles[row]),
                        int(flit_router_crossings[row])))
    return outputs


# -- wormhole model -----------------------------------------------------------

def _wormhole_scalar(table: _FlowTable, link_count: int, max_cycles: int
                     ) -> Tuple[np.ndarray, np.ndarray, np.ndarray,
                                int, int, int, int]:
    """Reference cycle-stepped wormhole simulation (pure-Python loops)."""
    flit_flow: List[int] = []
    flit_ready: List[int] = []
    for flow, q in enumerate(table.flits):
        flit_flow.extend([flow] * q)
        flit_ready.extend(_injection_times(q, table.burst))
    total = len(flit_flow)
    stage = [0] * total
    arrive = list(flit_ready)
    finish = [-1] * total
    link_busy = [0] * link_count
    entered = [False] * total
    flit_link_cycles = 0
    remaining = total
    # Zero-hop flows (both agents on one router) deliver at injection
    # without touching the network.
    for flit in range(total):
        if not table.path_links[flit_flow[flit]]:
            finish[flit] = arrive[flit]
            remaining -= 1
    cycle = 0
    while remaining and cycle < max_cycles:
        winners: Dict[int, int] = {}
        for flit in range(total):
            if finish[flit] >= 0 or arrive[flit] > cycle:
                continue
            link = table.path_links[flit_flow[flit]][stage[flit]]
            if link not in winners:
                winners[link] = flit
        for link, flit in winners.items():
            flow = flit_flow[flit]
            latency = table.path_latencies[flow][stage[flit]]
            arrive[flit] = cycle + latency
            stage[flit] += 1
            link_busy[link] += 1
            flit_link_cycles += latency
            entered[flit] = True
            if stage[flit] == len(table.path_links[flow]):
                finish[flit] = arrive[flit]
                remaining -= 1
        cycle += 1
    makespan = max((t for t in finish if t >= 0), default=0)
    cycles = makespan if remaining == 0 else max_cycles
    per_flow = []
    flow_delivered = []
    offset = 0
    delivered = 0
    for flow, q in enumerate(table.flits):
        times = finish[offset:offset + q]
        delivered += sum(1 for t in times if t >= 0)
        complete = all(t >= 0 for t in times)
        flow_delivered.append(complete)
        per_flow.append(max(times) if complete else cycles)
        offset += q
    crossings = sum(link_busy)
    flit_router_crossings = crossings + sum(entered)
    return (np.asarray(per_flow, dtype=np.int64),
            np.asarray(flow_delivered, dtype=bool),
            np.asarray(link_busy, dtype=np.int64),
            flit_link_cycles, flit_router_crossings, delivered, cycles)


def _wormhole_batched(tables: Sequence[_FlowTable], link_count: int,
                      max_cycles_per_table: Sequence[int]
                      ) -> List[Tuple[np.ndarray, np.ndarray, np.ndarray,
                                      int, int, int, int]]:
    """Vectorized wormhole simulation over a batch of flow tables.

    All batch elements advance through the same cycle loop on ``[B, F]``
    state arrays; per-link winner selection is one ``np.minimum.at``
    scatter, exactly reproducing the scalar model's lowest-flit-id
    arbitration for every element at once.
    """
    batch = len(tables)
    if batch == 0:
        return []
    flow_counts = [table.flow_count for table in tables]
    totals = [sum(table.flits) for table in tables]
    flit_cap = max(totals) if totals else 0
    if flit_cap == 0:
        return [(np.zeros(count, dtype=np.int64),
                 np.ones(count, dtype=bool),
                 np.zeros(link_count, dtype=np.int64), 0, 0, 0, 0)
                for count in flow_counts]

    # Per-batch-element flow geometry, padded to common widths.
    max_flows = max(flow_counts)
    max_hops = max((len(links) for table in tables
                    for links in table.path_links), default=1)
    path_links = np.zeros((batch, max_flows, max_hops), dtype=np.int64)
    path_lats = np.zeros((batch, max_flows, max_hops), dtype=np.int64)
    path_len = np.zeros((batch, max_flows), dtype=np.int64)
    for b, table in enumerate(tables):
        for f, (links, lats) in enumerate(zip(table.path_links,
                                              table.path_latencies)):
            path_links[b, f, :len(links)] = links
            path_lats[b, f, :len(lats)] = lats
            path_len[b, f] = len(links)

    # Flit state, padded to the largest flit population in the batch.
    flit_flow = np.zeros((batch, flit_cap), dtype=np.int64)
    arrive = np.zeros((batch, flit_cap), dtype=np.int64)
    active = np.zeros((batch, flit_cap), dtype=bool)
    for b, table in enumerate(tables):
        position = 0
        for flow, q in enumerate(table.flits):
            flit_flow[b, position:position + q] = flow
            arrive[b, position:position + q] = _injection_times(q, table.burst)
            active[b, position:position + q] = True
            position += q
    stage = np.zeros((batch, flit_cap), dtype=np.int64)
    finish = np.full((batch, flit_cap), -1, dtype=np.int64)
    entered = np.zeros((batch, flit_cap), dtype=bool)
    link_busy = np.zeros((batch, link_count), dtype=np.int64)
    flit_link_cycles = np.zeros(batch, dtype=np.int64)
    budgets = np.asarray(max_cycles_per_table, dtype=np.int64)

    # Zero-hop flows deliver at injection without touching the network.
    zero_hop = active & (np.take_along_axis(
        path_len, flit_flow, axis=1) == 0)
    finish[zero_hop] = arrive[zero_hop]
    active[zero_hop] = False

    cycle = 0
    while True:
        in_budget = (cycle < budgets)[:, None]
        ready = active & (arrive <= cycle) & in_budget
        if not (active & in_budget).any():
            break
        if ready.any():
            b_idx, f_idx = np.nonzero(ready)
            flow_idx = flit_flow[b_idx, f_idx]
            link_idx = path_links[b_idx, flow_idx, stage[b_idx, f_idx]]
            winners = np.full((batch, link_count), flit_cap, dtype=np.int64)
            np.minimum.at(winners, (b_idx, link_idx), f_idx)
            won_b, won_l = np.nonzero(winners < flit_cap)
            won_f = winners[won_b, won_l]
            won_flow = flit_flow[won_b, won_f]
            won_stage = stage[won_b, won_f]
            latency = path_lats[won_b, won_flow, won_stage]
            arrive[won_b, won_f] = cycle + latency
            stage[won_b, won_f] = won_stage + 1
            entered[won_b, won_f] = True
            link_busy[won_b, won_l] += 1
            np.add.at(flit_link_cycles, won_b, latency)
            done = stage[won_b, won_f] == path_len[won_b, won_flow]
            finish[won_b[done], won_f[done]] = arrive[won_b[done], won_f[done]]
            active[won_b[done], won_f[done]] = False
        cycle += 1

    outputs = []
    for b, table in enumerate(tables):
        position = 0
        per_flow = []
        flow_delivered = []
        delivered = 0
        makespan = int(finish[b].max()) if (finish[b] >= 0).any() else 0
        cycles = makespan if not active[b].any() else int(budgets[b])
        for q in table.flits:
            times = finish[b, position:position + q]
            delivered += int((times >= 0).sum())
            complete = bool((times >= 0).all())
            flow_delivered.append(complete)
            per_flow.append(int(times.max()) if complete else cycles)
            position += q
        crossings = int(link_busy[b].sum())
        outputs.append((np.asarray(per_flow, dtype=np.int64),
                        np.asarray(flow_delivered, dtype=bool),
                        link_busy[b].copy(),
                        int(flit_link_cycles[b]),
                        crossings + int(entered[b].sum()),
                        delivered, cycles))
    return outputs


# -- adaptive wormhole model --------------------------------------------------

@dataclass
class _AdaptiveGeometry:
    """A topology's routing tables lowered to simulator form.

    Links are split into two *directed* channels (``2 * link_index +
    (0 if low->high else 1)``).  The same tables are exposed twice —
    plain dicts for the pure-Python scalar reference and dense padded
    arrays for the batched implementation — built from one source
    (:meth:`Topology.routing_table` / :meth:`Topology.escape_hop`), so
    the two simulators cannot disagree on admissible outports.
    """

    dir_count: int
    dir_latency: np.ndarray          # [dir] link latency
    dir_link: np.ndarray             # [dir] undirected link index
    dir_head: np.ndarray             # [dir] downstream router
    # Scalar-side tables: (node, dest) -> ((neighbour, dir), ...) and
    # (node, dest) -> (escape neighbour, escape dir).
    candidates: Dict[Tuple[int, int], Tuple[Tuple[int, int], ...]]
    escape: Dict[Tuple[int, int], Tuple[int, int]]
    # Batched-side tables, -1 padded: [node, dest, K] and [node, dest].
    cand_node: np.ndarray
    cand_dir: np.ndarray
    escape_dir: np.ndarray


def _adaptive_geometry(topology: Topology) -> _AdaptiveGeometry:
    """Build (and memoise on the topology) the adaptive routing tables."""
    cached = getattr(topology, "_adaptive_geometry", None)
    if cached is not None:
        return cached
    count = topology.node_count
    dir_count = 2 * topology.link_count
    dir_latency = np.zeros(dir_count, dtype=np.int64)
    dir_link = np.zeros(dir_count, dtype=np.int64)
    dir_head = np.zeros(dir_count, dtype=np.int64)
    dir_id: Dict[Tuple[int, int], int] = {}
    for index, link in enumerate(topology.links):
        low, high = link.endpoints
        for half, (tail, head) in enumerate(((low, high), (high, low))):
            channel = 2 * index + half
            dir_id[(tail, head)] = channel
            dir_latency[channel] = link.latency
            dir_link[channel] = index
            dir_head[channel] = head

    width = max(topology.max_degree(), 1)
    candidates: Dict[Tuple[int, int], Tuple[Tuple[int, int], ...]] = {}
    escape: Dict[Tuple[int, int], Tuple[int, int]] = {}
    cand_node = np.full((count, count, width), -1, dtype=np.int64)
    cand_dir = np.full((count, count, width), -1, dtype=np.int64)
    escape_dir = np.full((count, count), -1, dtype=np.int64)
    for dest in range(count):
        for node, outports in topology.routing_table(dest).items():
            entries = tuple((n, dir_id[(node, n)]) for n in outports)
            candidates[(node, dest)] = entries
            for slot, (n, channel) in enumerate(entries):
                cand_node[node, dest, slot] = n
                cand_dir[node, dest, slot] = channel
            hop = topology.escape_hop(node, dest)
            escape[(node, dest)] = (hop, dir_id[(node, hop)])
            escape_dir[node, dest] = dir_id[(node, hop)]

    geometry = _AdaptiveGeometry(
        dir_count=dir_count, dir_latency=dir_latency, dir_link=dir_link,
        dir_head=dir_head, candidates=candidates, escape=escape,
        cand_node=cand_node, cand_dir=cand_dir, escape_dir=escape_dir)
    topology._adaptive_geometry = geometry
    return geometry


def _wormhole_adaptive_scalar(table: _FlowTable, geometry: _AdaptiveGeometry,
                              link_count: int, max_cycles: int,
                              depth: int = ADAPTIVE_BUFFER_DEPTH
                              ) -> Tuple[np.ndarray, np.ndarray, np.ndarray,
                                         int, int, int, int]:
    """Reference adaptive wormhole simulation (pure-Python loops).

    Per cycle: every ready flit scores its minimal outports by credits
    (``depth`` minus the flits occupying the directed link — in flight
    or parked in its downstream input buffer) and requests the credit-
    richest one, ties toward the lowest neighbour id; with no credits
    anywhere it requests the escape channel, which is always admissible.
    One flit per *link* then moves (whichever direction it requested),
    lowest global flit id first — links carry one flit per cycle exactly
    as in the static model, so the two models compare at matched
    bandwidth.
    """
    flit_flow: List[int] = []
    flit_ready: List[int] = []
    for flow, q in enumerate(table.flits):
        flit_flow.extend([flow] * q)
        flit_ready.extend(_injection_times(q, table.burst))
    total = len(flit_flow)
    node = [table.sources[flow] for flow in flit_flow]
    dest = [table.dests[flow] for flow in flit_flow]
    arrive = list(flit_ready)
    last_dir = [-1] * total
    finish = [-1] * total
    entered = [False] * total
    link_busy = [0] * link_count
    flit_link_cycles = 0
    remaining = total
    # Zero-hop flows (both agents on one router) deliver at injection.
    for flit in range(total):
        if node[flit] == dest[flit]:
            finish[flit] = arrive[flit]
            remaining -= 1
    cycle = 0
    while remaining and cycle < max_cycles:
        occupancy = [0] * geometry.dir_count
        for flit in range(total):
            channel = last_dir[flit]
            if channel >= 0 and (finish[flit] < 0 or finish[flit] > cycle):
                occupancy[channel] += 1
        winners: Dict[int, int] = {}
        for flit in range(total):
            if finish[flit] >= 0 or arrive[flit] > cycle:
                continue
            key = (node[flit], dest[flit])
            best: Optional[Tuple[Tuple[int, int], int]] = None
            for neighbour, channel in geometry.candidates[key]:
                credits = depth - occupancy[channel]
                if credits <= 0:
                    continue
                score = (credits, -neighbour)
                if best is None or score > best[0]:
                    best = (score, channel)
            channel = best[1] if best is not None else geometry.escape[key][1]
            link = int(geometry.dir_link[channel])
            if link not in winners:
                winners[link] = (flit, channel)
        for flit, channel in winners.values():
            latency = int(geometry.dir_latency[channel])
            arrive[flit] = cycle + latency
            node[flit] = int(geometry.dir_head[channel])
            last_dir[flit] = channel
            entered[flit] = True
            link_busy[int(geometry.dir_link[channel])] += 1
            flit_link_cycles += latency
            if node[flit] == dest[flit]:
                finish[flit] = arrive[flit]
                remaining -= 1
        cycle += 1
    makespan = max((t for t in finish if t >= 0), default=0)
    cycles = makespan if remaining == 0 else max_cycles
    per_flow = []
    flow_delivered = []
    offset = 0
    delivered = 0
    for flow, q in enumerate(table.flits):
        times = finish[offset:offset + q]
        delivered += sum(1 for t in times if t >= 0)
        complete = all(t >= 0 for t in times)
        flow_delivered.append(complete)
        per_flow.append(max(times) if complete else cycles)
        offset += q
    crossings = sum(link_busy)
    return (np.asarray(per_flow, dtype=np.int64),
            np.asarray(flow_delivered, dtype=bool),
            np.asarray(link_busy, dtype=np.int64),
            flit_link_cycles, crossings + sum(entered), delivered, cycles)


def _wormhole_adaptive_batched(tables: Sequence[_FlowTable],
                               geometry: _AdaptiveGeometry, link_count: int,
                               max_cycles_per_table: Sequence[int],
                               depth: int = ADAPTIVE_BUFFER_DEPTH
                               ) -> List[Tuple[np.ndarray, np.ndarray,
                                               np.ndarray, int, int, int, int]]:
    """Vectorized adaptive wormhole simulation over a batch of tables.

    The same cycle structure as :func:`_wormhole_adaptive_scalar` on
    ``[B, F]`` state arrays.  Outport selection encodes the scalar's
    ``(credits, -neighbour)`` ranking as one integer key
    (``credits * (nodes + 1) - neighbour``) so a single ``argmax``
    reproduces the scalar choice exactly; arbitration is the same
    ``np.minimum.at`` lowest-flit-id scatter as the static model.
    """
    batch = len(tables)
    if batch == 0:
        return []
    flow_counts = [table.flow_count for table in tables]
    totals = [table.total_flits for table in tables]
    flit_cap = max(totals) if totals else 0
    if flit_cap == 0:
        return [(np.zeros(count, dtype=np.int64),
                 np.ones(count, dtype=bool),
                 np.zeros(link_count, dtype=np.int64), 0, 0, 0, 0)
                for count in flow_counts]

    node_count = geometry.dir_head.max(initial=0) + 1 if geometry.dir_count \
        else 1
    flit_flow = np.zeros((batch, flit_cap), dtype=np.int64)
    arrive = np.zeros((batch, flit_cap), dtype=np.int64)
    node = np.zeros((batch, flit_cap), dtype=np.int64)
    dest = np.zeros((batch, flit_cap), dtype=np.int64)
    active = np.zeros((batch, flit_cap), dtype=bool)
    for b, table in enumerate(tables):
        position = 0
        for flow, q in enumerate(table.flits):
            flit_flow[b, position:position + q] = flow
            arrive[b, position:position + q] = _injection_times(q, table.burst)
            node[b, position:position + q] = table.sources[flow]
            dest[b, position:position + q] = table.dests[flow]
            active[b, position:position + q] = True
            position += q
    last_dir = np.full((batch, flit_cap), -1, dtype=np.int64)
    finish = np.full((batch, flit_cap), -1, dtype=np.int64)
    entered = np.zeros((batch, flit_cap), dtype=bool)
    link_busy = np.zeros((batch, link_count), dtype=np.int64)
    flit_link_cycles = np.zeros(batch, dtype=np.int64)
    budgets = np.asarray(max_cycles_per_table, dtype=np.int64)

    # Zero-hop flows deliver at injection without touching the network.
    zero_hop = active & (node == dest)
    finish[zero_hop] = arrive[zero_hop]
    active[zero_hop] = False

    cycle = 0
    while True:
        in_budget = (cycle < budgets)[:, None]
        if not (active & in_budget).any():
            break
        ready = active & (arrive <= cycle) & in_budget
        if ready.any():
            occupying = (last_dir >= 0) & (active | (finish > cycle))
            occupancy = np.zeros((batch, geometry.dir_count), dtype=np.int64)
            occ_b, occ_f = np.nonzero(occupying)
            np.add.at(occupancy, (occ_b, last_dir[occ_b, occ_f]), 1)

            r_b, r_f = np.nonzero(ready)
            here = node[r_b, r_f]
            there = dest[r_b, r_f]
            cands = geometry.cand_node[here, there]        # [R, K]
            cand_channels = geometry.cand_dir[here, there]  # [R, K]
            credits = depth - occupancy[
                r_b[:, None], np.where(cand_channels >= 0, cand_channels, 0)]
            admissible = (cands >= 0) & (credits > 0)
            # Integer encoding of the scalar's (credits, -neighbour)
            # ranking; 0 marks inadmissible, so all-zero rows escape.
            score = np.where(admissible,
                             credits * (node_count + 1) - cands, 0)
            choice = np.argmax(score, axis=1)
            rows = np.arange(len(r_b))
            adaptive = score[rows, choice] > 0
            requested = np.where(adaptive, cand_channels[rows, choice],
                                 geometry.escape_dir[here, there])

            # One flit per undirected link per cycle (matching the
            # static model's capacity): arbitrate on the link, then
            # recover the winner's own requested direction.
            requested_channel = np.full((batch, flit_cap), -1, dtype=np.int64)
            requested_channel[r_b, r_f] = requested
            winners = np.full((batch, link_count), flit_cap, dtype=np.int64)
            np.minimum.at(winners, (r_b, geometry.dir_link[requested]), r_f)
            won_b, won_l = np.nonzero(winners < flit_cap)
            won_f = winners[won_b, won_l]
            won_d = requested_channel[won_b, won_f]
            latency = geometry.dir_latency[won_d]
            arrive[won_b, won_f] = cycle + latency
            node[won_b, won_f] = geometry.dir_head[won_d]
            last_dir[won_b, won_f] = won_d
            entered[won_b, won_f] = True
            np.add.at(link_busy, (won_b, geometry.dir_link[won_d]), 1)
            np.add.at(flit_link_cycles, won_b, latency)
            done = geometry.dir_head[won_d] == dest[won_b, won_f]
            finish[won_b[done], won_f[done]] = arrive[won_b[done], won_f[done]]
            active[won_b[done], won_f[done]] = False
        cycle += 1

    outputs = []
    for b, table in enumerate(tables):
        position = 0
        per_flow = []
        flow_delivered = []
        delivered = 0
        makespan = int(finish[b].max()) if (finish[b] >= 0).any() else 0
        cycles = makespan if not active[b].any() else int(budgets[b])
        for q in table.flits:
            times = finish[b, position:position + q]
            delivered += int((times >= 0).sum())
            complete = bool((times >= 0).all())
            flow_delivered.append(complete)
            per_flow.append(int(times.max()) if complete else cycles)
            position += q
        crossings = int(link_busy[b].sum())
        outputs.append((np.asarray(per_flow, dtype=np.int64),
                        np.asarray(flow_delivered, dtype=bool),
                        link_busy[b].copy(),
                        int(flit_link_cycles[b]),
                        crossings + int(entered[b].sum()),
                        delivered, cycles))
    return outputs


# -- public API ---------------------------------------------------------------

def _package(topology: Topology, traffic: TrafficMatrix, model: str,
             raw: Tuple[np.ndarray, np.ndarray, int, int],
             delivered: Optional[int] = None,
             cycles: Optional[int] = None,
             delivered_flows: Optional[np.ndarray] = None) -> NocSimResult:
    per_flow, loads, flit_link_cycles, crossings = raw
    total_flits = traffic.total_flits
    if cycles is None:
        cycles = int(per_flow.max()) if per_flow.size else 0
    if delivered is None:
        delivered = total_flits
    if delivered_flows is None:
        delivered_flows = np.ones(per_flow.shape, dtype=bool)
    # Undelivered flits are direct evidence of saturation; the peak-link
    # utilisation check catches the rest — the analytic estimate, and
    # wormhole runs whose flit cap scaled the offered load down to what
    # the busiest link can just barely carry (delivering every capped
    # flit over the knee must still read as saturated).
    peak = int(loads.max()) if loads.size else 0
    saturated = delivered < total_flits
    if cycles > 0:
        saturated = saturated or peak / cycles > SATURATION_UTILISATION
    tracer = obs_tracer.TRACER
    if tracer.enabled:
        # Both simulate() and simulate_batched() funnel through here, so
        # scalar and batched runs of the same matrices emit identical
        # virtual events — the parity discipline extends to the trace.
        censored = int((~delivered_flows).sum())
        tracer.count("noc.runs")
        if censored:
            tracer.count("noc.censored_flows", censored)
        if cycles > 0:
            tracer.observe("noc.link_utilisation", peak / cycles)
        tracer.virtual_span(
            "noc.sim", "noc", 0, cycles,
            {"topology": topology.name, "traffic": traffic.name,
             "model": model, "delivered": delivered,
             "flits": total_flits, "censored": censored})
    return NocSimResult(
        topology_name=topology.name,
        traffic_name=traffic.name,
        model=model,
        flow_count=traffic.flow_count,
        total_flits=total_flits,
        delivered_flits=delivered,
        cycles=cycles,
        per_flow_latency=per_flow,
        per_flow_delivered=delivered_flows,
        link_loads=loads,
        flit_link_cycles=flit_link_cycles,
        flit_router_crossings=crossings,
        saturated=saturated,
    )


def simulate(topology: Topology, traffic: TrafficMatrix,
             placement: Optional[Dict[str, int]] = None,
             model: str = "analytic",
             max_flits_per_flow: Optional[int] = None,
             max_cycles: Optional[int] = None) -> NocSimResult:
    """Scalar-reference simulation of one traffic matrix on one topology.

    ``max_flits_per_flow`` proportionally scales heavy matrices before
    simulation (see :meth:`TrafficMatrix.scaled_to`); ``max_cycles``
    bounds the wormhole model (exceeding it flags saturation).
    """
    if model not in MODELS:
        raise ConfigurationError(
            f"unknown model {model!r}; expected one of {MODELS}")
    if max_flits_per_flow is not None:
        traffic = traffic.scaled_to(max_flits_per_flow)
    placement = _resolve_placement(traffic, topology, placement)
    table = _flow_table(topology, traffic, placement)
    if model == "analytic":
        return _package(topology, traffic, "analytic",
                        _analytic_scalar(table, topology.link_count))
    budget = max_cycles if max_cycles is not None else default_cycle_budget(table)
    if model == "wormhole_adaptive":
        raw = _wormhole_adaptive_scalar(table, _adaptive_geometry(topology),
                                        topology.link_count, budget)
    else:
        raw = _wormhole_scalar(table, topology.link_count, budget)
    per_flow, flow_delivered, busy, flc, frc, delivered, cycles = raw
    return _package(topology, traffic, model,
                    (per_flow, busy, flc, frc), delivered, cycles,
                    flow_delivered)


def simulate_batched(topology: Topology, traffics: Sequence[TrafficMatrix],
                     placement: Optional[Dict[str, int]] = None,
                     model: str = "analytic",
                     max_flits_per_flow: Optional[int] = None,
                     max_cycles: Optional[int] = None) -> List[NocSimResult]:
    """Vectorized simulation of ``B`` traffic matrices on one topology.

    All matrices must share the same agent tuple (one placement maps
    them onto the routers); results are integer-identical to calling
    :func:`simulate` per matrix, which the parity tests assert.
    """
    if model not in MODELS:
        raise ConfigurationError(
            f"unknown model {model!r}; expected one of {MODELS}")
    traffics = list(traffics)
    if not traffics:
        return []
    agents = traffics[0].agents
    for traffic in traffics[1:]:
        if traffic.agents != agents:
            raise ConfigurationError(
                "batched simulation needs a uniform agent set; got "
                f"{agents} and {traffic.agents}")
    if max_flits_per_flow is not None:
        traffics = [traffic.scaled_to(max_flits_per_flow)
                    for traffic in traffics]
    placement = _resolve_placement(traffics[0], topology, placement)
    if model == "analytic":
        raws = _analytic_batched(traffics, topology, placement)
        return [_package(topology, traffic, "analytic", raw)
                for traffic, raw in zip(traffics, raws)]
    tables = [_flow_table(topology, traffic, placement)
              for traffic in traffics]
    budgets = [max_cycles if max_cycles is not None
               else default_cycle_budget(table) for table in tables]
    if model == "wormhole_adaptive":
        raws = _wormhole_adaptive_batched(tables, _adaptive_geometry(topology),
                                          topology.link_count, budgets)
    else:
        raws = _wormhole_batched(tables, topology.link_count, budgets)
    return [_package(topology, traffic, model,
                     (raw[0], raw[2], raw[3], raw[4]), raw[5], raw[6], raw[1])
            for traffic, raw in zip(traffics, raws)]
