"""NoC simulation: analytic contention model plus cycle-stepped wormhole.

Two models, each with a scalar reference and a batched numpy
implementation kept **integer-exact** against each other (mirroring the
scalar-parity discipline of :mod:`repro.engine`):

``analytic``  every flow follows its deterministic route; per-link loads
              are accumulated and each flow's latency is its zero-load
              path latency plus its own serialisation plus the flits of
              other flows sharing its links.  Closed-form, vectorises to
              matrix products over ``B`` traffic matrices at once.

``wormhole``  a cycle-stepped flit model: flow ``f``'s ``k``-th flit
              becomes ready at cycle ``k`` (one injection per cycle),
              every link moves at most one flit per cycle, and
              contention resolves deterministically to the lowest global
              flit id.  The batched implementation advances all ``B``
              traffic matrices through each cycle with vectorized
              winner-per-link selection, the way the
              :class:`~repro.engine.program.VectorEngine` steps ``B``
              value streams per cycle.

Both models report the same :class:`NocSimResult`: per-flow latencies,
link loads and utilisation, delivered-flit conservation, saturation and
transfer energy (hop-energy constants from :mod:`repro.power.models`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.exceptions import ConfigurationError
from repro.noc.topology import ROUTER_CYCLES, Topology, place_agents
from repro.noc.traffic import TrafficMatrix

#: Simulation models accepted by :func:`simulate` / :func:`simulate_batched`.
MODELS = ("analytic", "wormhole")

#: Peak link utilisation above which the analytic model flags saturation
#: (the knee of a wormhole network's latency/throughput curve).
SATURATION_UTILISATION = 0.75

#: Default per-flow flit cap applied before a cycle-stepped wormhole walk
#: (the walk visits every flit, so heavy matrices are scaled to a
#: representative load first).  The closed-form analytic model needs no
#: cap and runs the full traffic volume by default.
WORMHOLE_FLIT_CAP = 64


def resolve_flit_cap(model: str, max_flits_per_flow) -> Optional[int]:
    """The per-flow flit cap a caller's ``"auto"`` resolves to.

    One place for the policy the flow pass and the explorer share:
    uncapped for the closed-form analytic model (so reported metrics
    track actual traffic volume), :data:`WORMHOLE_FLIT_CAP` for the
    cycle-stepped walk.
    """
    if max_flits_per_flow == "auto":
        return None if model == "analytic" else WORMHOLE_FLIT_CAP
    return max_flits_per_flow


@dataclass
class NocSimResult:
    """Outcome of simulating one traffic matrix on one topology.

    ``per_flow_latency`` is ordered like ``traffic.flows()``; for an
    undelivered (saturated) wormhole flow the latency is censored at the
    cycle budget.  ``flit_link_cycles`` / ``flit_router_crossings`` are
    the integer energy aggregates: flit-cycles spent on links and
    flit-router traversals (crossings plus network entries).
    """

    topology_name: str
    traffic_name: str
    model: str
    flow_count: int
    total_flits: int
    delivered_flits: int
    cycles: int
    per_flow_latency: np.ndarray
    link_loads: np.ndarray
    flit_link_cycles: int
    flit_router_crossings: int
    saturated: bool

    @property
    def mean_latency_cycles(self) -> float:
        """Mean per-flow latency."""
        if self.per_flow_latency.size == 0:
            return 0.0
        return float(self.per_flow_latency.mean())

    @property
    def max_latency_cycles(self) -> int:
        """Worst per-flow latency (the communication-bound frame time)."""
        if self.per_flow_latency.size == 0:
            return 0
        return int(self.per_flow_latency.max())

    @property
    def peak_link_load(self) -> int:
        """Flits carried by the busiest link."""
        if self.link_loads.size == 0:
            return 0
        return int(self.link_loads.max())

    @property
    def peak_link_utilisation(self) -> float:
        """Busiest link's load as a fraction of the simulated cycles."""
        if self.cycles <= 0:
            return 0.0
        return self.peak_link_load / self.cycles

    @property
    def mean_link_utilisation(self) -> float:
        """Average link load as a fraction of the simulated cycles."""
        if self.cycles <= 0 or self.link_loads.size == 0:
            return 0.0
        return float(self.link_loads.mean()) / self.cycles

    @property
    def energy(self) -> float:
        """Transfer energy in the power model's switched-capacitance units."""
        from repro.power.models import noc_transfer_energy

        return noc_transfer_energy(self.flit_link_cycles,
                                   self.flit_router_crossings)

    def summary(self) -> Dict[str, object]:
        """Flat dictionary for reporting."""
        return {
            "topology": self.topology_name,
            "workload": self.traffic_name,
            "model": self.model,
            "flows": self.flow_count,
            "flits": self.total_flits,
            "delivered": self.delivered_flits,
            "cycles": self.cycles,
            "mean_latency_cycles": round(self.mean_latency_cycles, 2),
            "max_latency_cycles": self.max_latency_cycles,
            "peak_link_utilisation": round(self.peak_link_utilisation, 3),
            "noc_energy": round(self.energy, 2),
            "saturated": self.saturated,
        }

    def __repr__(self) -> str:
        return (f"NocSimResult({self.traffic_name!r} on "
                f"{self.topology_name!r}, model={self.model!r}, "
                f"cycles={self.cycles}, "
                f"delivered={self.delivered_flits}/{self.total_flits})")


@dataclass
class _FlowTable:
    """Flows resolved onto a topology: routes, link ids and latencies."""

    flits: List[int]
    path_links: List[Tuple[int, ...]]
    path_latencies: List[Tuple[int, ...]]

    @property
    def flow_count(self) -> int:
        return len(self.flits)

    @property
    def total_flits(self) -> int:
        return sum(self.flits)


def _resolve_placement(traffic: TrafficMatrix, topology: Topology,
                       placement: Optional[Dict[str, int]]) -> Dict[str, int]:
    if placement is None:
        return place_agents(traffic.agents, topology)
    missing = [agent for agent in traffic.agents if agent not in placement]
    if missing:
        raise ConfigurationError(f"placement is missing agents {missing}")
    return placement


def _flow_table(topology: Topology, traffic: TrafficMatrix,
                placement: Dict[str, int]) -> _FlowTable:
    """Resolve a traffic matrix's flows onto topology routes."""
    flits: List[int] = []
    links: List[Tuple[int, ...]] = []
    latencies: List[Tuple[int, ...]] = []
    for source, sink, count in traffic.flows():
        path = topology.route(placement[traffic.agents[source]],
                              placement[traffic.agents[sink]])
        hop_links = tuple(topology.link_index(a, b)
                          for a, b in zip(path, path[1:]))
        flits.append(count)
        links.append(hop_links)
        latencies.append(tuple(topology.links[l].latency for l in hop_links))
    return _FlowTable(flits, links, latencies)


def default_cycle_budget(table: _FlowTable) -> int:
    """A cycle budget the wormhole model cannot exhaust unsaturated.

    Every cycle with a ready flit moves at least one flit one hop, and
    idle cycles only bridge in-flight link latencies, so four times the
    total flit-link work plus the injection window is a generous bound.
    """
    work = sum(q * sum(lats) for q, lats in
               zip(table.flits, table.path_latencies))
    return max(64, 4 * work + table.total_flits)


# -- analytic model -----------------------------------------------------------

def _analytic_scalar(table: _FlowTable, link_count: int
                     ) -> Tuple[np.ndarray, np.ndarray, int, int]:
    """Reference implementation: pure-Python loops over flows and links."""
    loads = [0] * link_count
    for q, hop_links in zip(table.flits, table.path_links):
        for link in hop_links:
            loads[link] += q
    latencies = []
    flit_link_cycles = 0
    flit_router_crossings = 0
    for q, hop_links, hop_lats in zip(table.flits, table.path_links,
                                      table.path_latencies):
        hops = len(hop_links)
        base = sum(hop_lats) + hops * ROUTER_CYCLES
        queueing = sum(loads[link] - q for link in hop_links)
        latencies.append(base + (q - 1) + queueing)
        flit_link_cycles += q * sum(hop_lats)
        flit_router_crossings += q * (hops + 1)
    return (np.asarray(latencies, dtype=np.int64),
            np.asarray(loads, dtype=np.int64),
            flit_link_cycles, flit_router_crossings)


def _pair_geometry(topology: Topology, agents: Sequence[str],
                   placement: Dict[str, int]
                   ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Route geometry of every ordered agent pair, flattened row-major.

    Returns ``(hops, latency_sums, incidence)`` where ``incidence`` is a
    dense ``[pairs, links]`` crossing-count matrix — the one-off setup
    that lets a whole batch of traffic matrices evaluate as two matrix
    products.
    """
    count = len(agents)
    pairs = count * count
    hops = np.zeros(pairs, dtype=np.int64)
    latency_sums = np.zeros(pairs, dtype=np.int64)
    incidence = np.zeros((pairs, topology.link_count), dtype=np.int64)
    for source in range(count):
        for sink in range(count):
            if source == sink:
                continue
            pair = source * count + sink
            path = topology.route(placement[agents[source]],
                                  placement[agents[sink]])
            hops[pair] = len(path) - 1
            for a, b in zip(path, path[1:]):
                link = topology.link_index(a, b)
                incidence[pair, link] += 1
                latency_sums[pair] += topology.links[link].latency
    return hops, latency_sums, incidence


def _analytic_batched(traffics: Sequence[TrafficMatrix], topology: Topology,
                      placement: Dict[str, int]
                      ) -> List[Tuple[np.ndarray, np.ndarray, int, int]]:
    """Vectorized analytic model over ``B`` traffic matrices at once.

    All matrices share one agent set, so the pair geometry is computed
    once and the whole batch reduces to integer matrix products:
    ``loads = flits @ incidence`` and the queueing gather is
    ``loads @ incidence.T``.  Every step stays in int64, so results
    equal the scalar reference exactly.
    """
    agents = traffics[0].agents
    hops, latency_sums, incidence = _pair_geometry(topology, agents,
                                                   placement)
    flits = np.stack([traffic.flits.ravel() for traffic in traffics])
    loads = flits @ incidence
    shared = loads @ incidence.T
    base = latency_sums + hops * ROUTER_CYCLES
    latencies = base[None, :] + (flits - 1) + (shared - hops[None, :] * flits)
    flit_link_cycles = (flits * latency_sums[None, :]).sum(axis=1)
    flit_router_crossings = (flits * (hops[None, :] + 1)).sum(axis=1)

    outputs = []
    for row in range(len(traffics)):
        active = flits[row] > 0
        outputs.append((latencies[row, active],
                        loads[row],
                        int(flit_link_cycles[row]),
                        int(flit_router_crossings[row])))
    return outputs


# -- wormhole model -----------------------------------------------------------

def _wormhole_scalar(table: _FlowTable, link_count: int, max_cycles: int
                     ) -> Tuple[np.ndarray, np.ndarray, int, int, int, int]:
    """Reference cycle-stepped wormhole simulation (pure-Python loops)."""
    flit_flow: List[int] = []
    flit_ready: List[int] = []
    for flow, q in enumerate(table.flits):
        flit_flow.extend([flow] * q)
        flit_ready.extend(range(q))
    total = len(flit_flow)
    stage = [0] * total
    arrive = list(flit_ready)
    finish = [-1] * total
    link_busy = [0] * link_count
    entered = [False] * total
    flit_link_cycles = 0
    remaining = total
    # Zero-hop flows (both agents on one router) deliver at injection
    # without touching the network.
    for flit in range(total):
        if not table.path_links[flit_flow[flit]]:
            finish[flit] = arrive[flit]
            remaining -= 1
    cycle = 0
    while remaining and cycle < max_cycles:
        winners: Dict[int, int] = {}
        for flit in range(total):
            if finish[flit] >= 0 or arrive[flit] > cycle:
                continue
            link = table.path_links[flit_flow[flit]][stage[flit]]
            if link not in winners:
                winners[link] = flit
        for link, flit in winners.items():
            flow = flit_flow[flit]
            latency = table.path_latencies[flow][stage[flit]]
            arrive[flit] = cycle + latency
            stage[flit] += 1
            link_busy[link] += 1
            flit_link_cycles += latency
            entered[flit] = True
            if stage[flit] == len(table.path_links[flow]):
                finish[flit] = arrive[flit]
                remaining -= 1
        cycle += 1
    makespan = max((t for t in finish if t >= 0), default=0)
    cycles = makespan if remaining == 0 else max_cycles
    per_flow = []
    offset = 0
    delivered = 0
    for flow, q in enumerate(table.flits):
        times = finish[offset:offset + q]
        delivered += sum(1 for t in times if t >= 0)
        per_flow.append(max(times) if all(t >= 0 for t in times) else cycles)
        offset += q
    crossings = sum(link_busy)
    flit_router_crossings = crossings + sum(entered)
    return (np.asarray(per_flow, dtype=np.int64),
            np.asarray(link_busy, dtype=np.int64),
            flit_link_cycles, flit_router_crossings, delivered, cycles)


def _wormhole_batched(tables: Sequence[_FlowTable], link_count: int,
                      max_cycles_per_table: Sequence[int]
                      ) -> List[Tuple[np.ndarray, np.ndarray, int, int, int, int]]:
    """Vectorized wormhole simulation over a batch of flow tables.

    All batch elements advance through the same cycle loop on ``[B, F]``
    state arrays; per-link winner selection is one ``np.minimum.at``
    scatter, exactly reproducing the scalar model's lowest-flit-id
    arbitration for every element at once.
    """
    batch = len(tables)
    if batch == 0:
        return []
    flow_counts = [table.flow_count for table in tables]
    totals = [sum(table.flits) for table in tables]
    flit_cap = max(totals) if totals else 0
    if flit_cap == 0:
        return [(np.zeros(count, dtype=np.int64),
                 np.zeros(link_count, dtype=np.int64), 0, 0, 0, 0)
                for count in flow_counts]

    # Per-batch-element flow geometry, padded to common widths.
    max_flows = max(flow_counts)
    max_hops = max((len(links) for table in tables
                    for links in table.path_links), default=1)
    path_links = np.zeros((batch, max_flows, max_hops), dtype=np.int64)
    path_lats = np.zeros((batch, max_flows, max_hops), dtype=np.int64)
    path_len = np.zeros((batch, max_flows), dtype=np.int64)
    for b, table in enumerate(tables):
        for f, (links, lats) in enumerate(zip(table.path_links,
                                              table.path_latencies)):
            path_links[b, f, :len(links)] = links
            path_lats[b, f, :len(lats)] = lats
            path_len[b, f] = len(links)

    # Flit state, padded to the largest flit population in the batch.
    flit_flow = np.zeros((batch, flit_cap), dtype=np.int64)
    arrive = np.zeros((batch, flit_cap), dtype=np.int64)
    active = np.zeros((batch, flit_cap), dtype=bool)
    for b, table in enumerate(tables):
        position = 0
        for flow, q in enumerate(table.flits):
            flit_flow[b, position:position + q] = flow
            arrive[b, position:position + q] = np.arange(q)
            active[b, position:position + q] = True
            position += q
    stage = np.zeros((batch, flit_cap), dtype=np.int64)
    finish = np.full((batch, flit_cap), -1, dtype=np.int64)
    entered = np.zeros((batch, flit_cap), dtype=bool)
    link_busy = np.zeros((batch, link_count), dtype=np.int64)
    flit_link_cycles = np.zeros(batch, dtype=np.int64)
    budgets = np.asarray(max_cycles_per_table, dtype=np.int64)

    # Zero-hop flows deliver at injection without touching the network.
    zero_hop = active & (np.take_along_axis(
        path_len, flit_flow, axis=1) == 0)
    finish[zero_hop] = arrive[zero_hop]
    active[zero_hop] = False

    cycle = 0
    while True:
        in_budget = (cycle < budgets)[:, None]
        ready = active & (arrive <= cycle) & in_budget
        if not (active & in_budget).any():
            break
        if ready.any():
            b_idx, f_idx = np.nonzero(ready)
            flow_idx = flit_flow[b_idx, f_idx]
            link_idx = path_links[b_idx, flow_idx, stage[b_idx, f_idx]]
            winners = np.full((batch, link_count), flit_cap, dtype=np.int64)
            np.minimum.at(winners, (b_idx, link_idx), f_idx)
            won_b, won_l = np.nonzero(winners < flit_cap)
            won_f = winners[won_b, won_l]
            won_flow = flit_flow[won_b, won_f]
            won_stage = stage[won_b, won_f]
            latency = path_lats[won_b, won_flow, won_stage]
            arrive[won_b, won_f] = cycle + latency
            stage[won_b, won_f] = won_stage + 1
            entered[won_b, won_f] = True
            link_busy[won_b, won_l] += 1
            np.add.at(flit_link_cycles, won_b, latency)
            done = stage[won_b, won_f] == path_len[won_b, won_flow]
            finish[won_b[done], won_f[done]] = arrive[won_b[done], won_f[done]]
            active[won_b[done], won_f[done]] = False
        cycle += 1

    outputs = []
    for b, table in enumerate(tables):
        position = 0
        per_flow = []
        delivered = 0
        completed = True
        makespan = int(finish[b].max()) if (finish[b] >= 0).any() else 0
        cycles = makespan if not active[b].any() else int(budgets[b])
        for q in table.flits:
            times = finish[b, position:position + q]
            delivered += int((times >= 0).sum())
            per_flow.append(int(times.max()) if (times >= 0).all() else cycles)
            position += q
        crossings = int(link_busy[b].sum())
        outputs.append((np.asarray(per_flow, dtype=np.int64),
                        link_busy[b].copy(),
                        int(flit_link_cycles[b]),
                        crossings + int(entered[b].sum()),
                        delivered, cycles))
    return outputs


# -- public API ---------------------------------------------------------------

def _package(topology: Topology, traffic: TrafficMatrix, model: str,
             raw: Tuple[np.ndarray, np.ndarray, int, int],
             delivered: Optional[int] = None,
             cycles: Optional[int] = None) -> NocSimResult:
    per_flow, loads, flit_link_cycles, crossings = raw
    total_flits = traffic.total_flits
    if cycles is None:
        cycles = int(per_flow.max()) if per_flow.size else 0
    if delivered is None:
        delivered = total_flits
    # The analytic model flags saturation from its utilisation estimate;
    # the wormhole model observes it directly as undelivered flits.
    peak = int(loads.max()) if loads.size else 0
    saturated = delivered < total_flits
    if model == "analytic" and cycles > 0:
        saturated = saturated or peak / cycles > SATURATION_UTILISATION
    return NocSimResult(
        topology_name=topology.name,
        traffic_name=traffic.name,
        model=model,
        flow_count=traffic.flow_count,
        total_flits=total_flits,
        delivered_flits=delivered,
        cycles=cycles,
        per_flow_latency=per_flow,
        link_loads=loads,
        flit_link_cycles=flit_link_cycles,
        flit_router_crossings=crossings,
        saturated=saturated,
    )


def simulate(topology: Topology, traffic: TrafficMatrix,
             placement: Optional[Dict[str, int]] = None,
             model: str = "analytic",
             max_flits_per_flow: Optional[int] = None,
             max_cycles: Optional[int] = None) -> NocSimResult:
    """Scalar-reference simulation of one traffic matrix on one topology.

    ``max_flits_per_flow`` proportionally scales heavy matrices before
    simulation (see :meth:`TrafficMatrix.scaled_to`); ``max_cycles``
    bounds the wormhole model (exceeding it flags saturation).
    """
    if model not in MODELS:
        raise ConfigurationError(
            f"unknown model {model!r}; expected one of {MODELS}")
    if max_flits_per_flow is not None:
        traffic = traffic.scaled_to(max_flits_per_flow)
    placement = _resolve_placement(traffic, topology, placement)
    table = _flow_table(topology, traffic, placement)
    if model == "analytic":
        return _package(topology, traffic, "analytic",
                        _analytic_scalar(table, topology.link_count))
    budget = max_cycles if max_cycles is not None else default_cycle_budget(table)
    per_flow, busy, flc, frc, delivered, cycles = _wormhole_scalar(
        table, topology.link_count, budget)
    return _package(topology, traffic, "wormhole",
                    (per_flow, busy, flc, frc), delivered, cycles)


def simulate_batched(topology: Topology, traffics: Sequence[TrafficMatrix],
                     placement: Optional[Dict[str, int]] = None,
                     model: str = "analytic",
                     max_flits_per_flow: Optional[int] = None,
                     max_cycles: Optional[int] = None) -> List[NocSimResult]:
    """Vectorized simulation of ``B`` traffic matrices on one topology.

    All matrices must share the same agent tuple (one placement maps
    them onto the routers); results are integer-identical to calling
    :func:`simulate` per matrix, which the parity tests assert.
    """
    if model not in MODELS:
        raise ConfigurationError(
            f"unknown model {model!r}; expected one of {MODELS}")
    traffics = list(traffics)
    if not traffics:
        return []
    agents = traffics[0].agents
    for traffic in traffics[1:]:
        if traffic.agents != agents:
            raise ConfigurationError(
                "batched simulation needs a uniform agent set; got "
                f"{agents} and {traffic.agents}")
    if max_flits_per_flow is not None:
        traffics = [traffic.scaled_to(max_flits_per_flow)
                    for traffic in traffics]
    placement = _resolve_placement(traffics[0], topology, placement)
    if model == "analytic":
        raws = _analytic_batched(traffics, topology, placement)
        return [_package(topology, traffic, "analytic", raw)
                for traffic, raw in zip(traffics, raws)]
    tables = [_flow_table(topology, traffic, placement)
              for traffic in traffics]
    budgets = [max_cycles if max_cycles is not None
               else default_cycle_budget(table) for table in tables]
    raws = _wormhole_batched(tables, topology.link_count, budgets)
    return [_package(topology, traffic, "wormhole",
                     raw[:4], raw[4], raw[5])
            for traffic, raw in zip(traffics, raws)]
