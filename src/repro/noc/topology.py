"""SoC-level network-on-chip topologies.

The intra-fabric segmented mesh (:mod:`repro.core.interconnect`) wires
clusters *inside* one array; this module models the level above it — the
on-chip network that moves frames, residuals, GOP shards and
reconfiguration bitstreams between the SoC's agents (CPU, frame memory,
the ME / DA / filter arrays, IO).  Ten topology families are provided,
mirroring the comparison harnesses of the related NoC repos (3-D mesh and
torus variants, chiplet-style hub layouts, hierarchical cluster and
express designs):

``mesh``           2-D mesh — the baseline tile grid,
``torus``          2-D torus — the mesh plus wraparound links,
``ring``           a single cycle — minimal routers, long paths,
``mesh3d``         a stacked (two or more layer) mesh whose vertical TSV
                   links are slower than in-plane links,
``hub``            chiplet-style hub-and-spoke — every spoke hangs off
                   one (or a few fully connected) central IO-hub
                   router(s),
``cluster_hub``    leaf clusters star-connected to per-cluster hub
                   routers that run faster than the leaves and mesh
                   among themselves,
``mesh3d_sparse``  the stacked mesh with TSV pillars only at a
                   configurable density instead of under every tile,
``pillar_torus``   torus planes joined by the same sparse TSV pillars,
``express``        a 2-D mesh plus express links that skip a
                   configurable stride of routers per hop,
``mesh_io``        a chiplet grid with a column of IO routers through
                   the center (the Mesh_IO_Center arrangement).

Every topology exposes the same surface: integer node ids, undirected
latency-annotated links, deterministic shortest-latency routes, hop and
latency distances, degree/diameter statistics and a crossbar-area model
(`router_area_elements`), so the simulator and the design-space explorer
treat all families uniformly.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.exceptions import ConfigurationError

#: Cycles a flit spends traversing one router (arbitration + crossbar).
ROUTER_CYCLES = 1

#: Default latency (cycles) of one in-plane link.
LINK_CYCLES = 1

#: Default latency multiplier of a vertical through-silicon via in the
#: stacked mesh (TSVs are slower than in-plane wires, as in the 3-D NoC
#: comparison repo this family is modelled after).
TSV_CYCLES = 2

#: Default latency of a chiplet-crossing hub link (off-die SerDes hop).
HUB_LINK_CYCLES = 2


@dataclass(frozen=True)
class Link:
    """One undirected network link between two routers."""

    a: int
    b: int
    latency: int = LINK_CYCLES

    def __post_init__(self) -> None:
        if self.a == self.b:
            raise ConfigurationError(f"link {self.a}->{self.b} is a self-loop")
        if self.latency <= 0:
            raise ConfigurationError("link latency must be positive")

    @property
    def endpoints(self) -> Tuple[int, int]:
        """Canonical (low, high) endpoint pair."""
        return (self.a, self.b) if self.a < self.b else (self.b, self.a)


class Topology:
    """Base class: a named set of routers joined by latency-weighted links.

    Subclasses populate ``links`` at construction; everything else
    (adjacency, deterministic routing, distance statistics) derives from
    that list.  Routes are computed lazily per source with a
    deterministic uniform-cost search (latency-weighted, node-id
    tie-break) and cached, so repeated simulator calls pay for each
    source once.
    """

    def __init__(self, name: str, node_count: int, links: Sequence[Link]) -> None:
        if node_count <= 0:
            raise ConfigurationError("a topology needs at least one router")
        self.name = name
        self.node_count = node_count
        self.links: List[Link] = list(links)
        self._adjacency: Dict[int, List[Tuple[int, int]]] = {
            node: [] for node in range(node_count)}
        self._link_index: Dict[Tuple[int, int], int] = {}
        for index, link in enumerate(self.links):
            if not (0 <= link.a < node_count and 0 <= link.b < node_count):
                raise ConfigurationError(
                    f"link {link.a}-{link.b} references a missing router")
            if link.endpoints in self._link_index:
                raise ConfigurationError(
                    f"duplicate link between {link.a} and {link.b}")
            self._link_index[link.endpoints] = index
            self._adjacency[link.a].append((link.b, link.latency))
            self._adjacency[link.b].append((link.a, link.latency))
        for neighbours in self._adjacency.values():
            neighbours.sort()
        self._route_cache: Dict[int, Dict[int, Tuple[int, ...]]] = {}
        self._distance_cache: Dict[int, Dict[int, int]] = {}
        self._table_cache: Dict[int, Dict[int, Tuple[int, ...]]] = {}

    # -- structure --------------------------------------------------------
    @property
    def link_count(self) -> int:
        """Number of undirected links."""
        return len(self.links)

    @property
    def router_count(self) -> int:
        """Number of routers (one per node)."""
        return self.node_count

    def neighbours(self, node: int) -> List[int]:
        """Adjacent routers of ``node`` in ascending id order."""
        return [other for other, _ in self._adjacency[node]]

    def degree(self, node: int) -> int:
        """Number of network links attached to ``node``."""
        return len(self._adjacency[node])

    def link_index(self, a: int, b: int) -> int:
        """Index into :attr:`links` of the link joining two adjacent nodes."""
        key = (a, b) if a < b else (b, a)
        try:
            return self._link_index[key]
        except KeyError:
            raise ConfigurationError(f"no link between {a} and {b}") from None

    def link_latency(self, a: int, b: int) -> int:
        """Latency of the link joining two adjacent nodes."""
        return self.links[self.link_index(a, b)].latency

    # -- routing ----------------------------------------------------------
    def route(self, source: int, sink: int) -> Tuple[int, ...]:
        """Deterministic minimum-latency node path from source to sink.

        Ties between equal-latency paths break toward lower node ids, so
        every caller (scalar and batched simulators, the explorer) sees
        the same path for the same pair.
        """
        if source == sink:
            return (source,)
        routes = self._route_cache.get(source)
        if routes is None:
            routes = self._routes_from(source)
            self._route_cache[source] = routes
        try:
            return routes[sink]
        except KeyError:
            raise ConfigurationError(
                f"router {sink} is unreachable from {source} "
                f"on topology {self.name!r}") from None

    def _routes_from(self, source: int) -> Dict[int, Tuple[int, ...]]:
        """Single-source deterministic shortest-latency paths."""
        best: Dict[int, Tuple[int, int]] = {source: (0, source)}
        came_from: Dict[int, int] = {}
        frontier: List[Tuple[int, int]] = [(0, source)]
        while frontier:
            cost, current = heapq.heappop(frontier)
            if cost > best[current][0]:
                continue
            for neighbour, latency in self._adjacency[current]:
                candidate = (cost + latency, current)
                if candidate < best.get(neighbour, (math.inf, math.inf)):
                    best[neighbour] = candidate
                    came_from[neighbour] = current
                    heapq.heappush(frontier, (candidate[0], neighbour))
        routes: Dict[int, Tuple[int, ...]] = {}
        for sink in best:
            if sink == source:
                continue
            path = [sink]
            while path[-1] != source:
                path.append(came_from[path[-1]])
            routes[sink] = tuple(reversed(path))
        return routes

    # -- adaptive routing tables ------------------------------------------
    def latency_distance(self, a: int, b: int) -> int:
        """Minimum link-latency distance between two routers (no router
        cycles) — the weight the minimal routing tables are built from."""
        distances = self._distances_to(b)
        try:
            return distances[a]
        except KeyError:
            raise ConfigurationError(
                f"router {b} is unreachable from {a} "
                f"on topology {self.name!r}") from None

    def _distances_to(self, dest: int) -> Dict[int, int]:
        """Cached single-destination link-latency distances (Dijkstra)."""
        distances = self._distance_cache.get(dest)
        if distances is not None:
            return distances
        distances = {dest: 0}
        frontier: List[Tuple[int, int]] = [(0, dest)]
        while frontier:
            cost, current = heapq.heappop(frontier)
            if cost > distances[current]:
                continue
            for neighbour, latency in self._adjacency[current]:
                candidate = cost + latency
                if candidate < distances.get(neighbour, math.inf):
                    distances[neighbour] = candidate
                    heapq.heappush(frontier, (candidate, neighbour))
        self._distance_cache[dest] = distances
        return distances

    def minimal_outports(self, node: int, dest: int) -> Tuple[int, ...]:
        """All equal-weight minimal next hops from ``node`` toward ``dest``.

        A neighbour is admissible when stepping to it lies on *some*
        minimum-latency path — i.e. the link's latency plus the
        neighbour's distance to ``dest`` equals ``node``'s distance.
        Every admissible hop strictly decreases the distance, so a
        walk that only takes table entries can never cycle.  Returned
        in ascending neighbour-id order; empty when ``node == dest``.
        """
        if node == dest:
            return ()
        distances = self._distances_to(dest)
        if node not in distances:
            raise ConfigurationError(
                f"router {dest} is unreachable from {node} "
                f"on topology {self.name!r}")
        here = distances[node]
        return tuple(neighbour for neighbour, latency in self._adjacency[node]
                     if distances.get(neighbour, math.inf) + latency == here)

    def routing_table(self, dest: int) -> Dict[int, Tuple[int, ...]]:
        """Per-router minimal outports toward one destination.

        The weighted-table form of the deterministic routes: for every
        router that can reach ``dest``, the tuple of all equal-weight
        minimal next hops (the adaptive simulator picks among them by
        credits; the deterministic :meth:`route` is always one of them).
        """
        table = self._table_cache.get(dest)
        if table is not None:
            return table
        table = {node: self.minimal_outports(node, dest)
                 for node in self._distances_to(dest) if node != dest}
        self._table_cache[dest] = table
        return table

    def escape_hop(self, node: int, dest: int) -> int:
        """The deterministic escape next hop from ``node`` toward ``dest``.

        The first step of the static :meth:`route` — one entry of the
        minimal table, so it also strictly decreases the latency distance
        to ``dest``.  The escape hops toward any one destination therefore
        form a DAG, which is what makes the escape channel deadlock-free.
        """
        if node == dest:
            raise ConfigurationError(
                f"router {node} needs no escape hop to itself")
        return self.route(node, dest)[1]

    def hop_distance(self, a: int, b: int) -> int:
        """Links crossed by the deterministic route between two routers."""
        return len(self.route(a, b)) - 1

    def route_latency(self, a: int, b: int) -> int:
        """Link plus router cycles along the route (excluding queueing)."""
        path = self.route(a, b)
        links = sum(self.link_latency(x, y) for x, y in zip(path, path[1:]))
        return links + (len(path) - 1) * ROUTER_CYCLES

    def transfer_aggregates(self, a: int, b: int,
                            flits: int) -> Tuple[int, int]:
        """Integer energy aggregates of one point-to-point transfer.

        Returns ``(flit_link_cycles, flit_router_crossings)`` for
        ``flits`` flits streamed ``a -> b`` along the deterministic
        route, using the same counting rules as the simulators in
        :mod:`repro.noc.sim` (each link crossing weighted by the link's
        latency; a flow through ``h`` links traverses ``h + 1``
        routers), so :func:`repro.power.models.noc_transfer_energy` of
        the result matches a one-flow analytic simulation.
        """
        if flits < 0:
            raise ConfigurationError("a transfer cannot carry negative flits")
        if flits == 0 or a == b:
            return (0, 0)
        path = self.route(a, b)
        link_cycles = sum(self.link_latency(x, y)
                          for x, y in zip(path, path[1:]))
        return (flits * link_cycles, flits * len(path))

    def transfer_latency(self, a: int, b: int, flits: int) -> int:
        """Cycles for ``flits`` flits to stream ``a -> b`` uncontended.

        The wormhole pipeline fill (:meth:`route_latency`) plus one cycle
        per trailing flit — the single-flow case of the analytic model's
        per-flow latency.
        """
        if flits < 0:
            raise ConfigurationError("a transfer cannot carry negative flits")
        if flits == 0 or a == b:
            return 0
        return self.route_latency(a, b) + (flits - 1)

    # -- statistics -------------------------------------------------------
    def diameter(self) -> int:
        """Largest hop distance over all router pairs."""
        return max((self.hop_distance(a, b)
                    for a in range(self.node_count)
                    for b in range(a + 1, self.node_count)), default=0)

    def average_hop_distance(self) -> float:
        """Mean hop distance over all ordered router pairs."""
        if self.node_count < 2:
            return 0.0
        total = sum(self.hop_distance(a, b)
                    for a in range(self.node_count)
                    for b in range(self.node_count) if a != b)
        return total / (self.node_count * (self.node_count - 1))

    def max_degree(self) -> int:
        """Largest router degree (crossbar size driver)."""
        return max(self.degree(node) for node in range(self.node_count))

    def router_area_elements(self) -> float:
        """Total router area in the repo's 4-bit-element units.

        A router's crossbar grows quadratically with its port count (the
        network links plus one local injection/ejection port), which is
        what separates a hub — one huge router — from a mesh of small
        ones at equal node count.
        """
        from repro.power.models import NOC_ROUTER_PORT_AREA_ELEMENTS

        return sum(NOC_ROUTER_PORT_AREA_ELEMENTS * (self.degree(node) + 1) ** 2
                   for node in range(self.node_count))

    def fingerprint(self) -> str:
        """Stable content hash of the topology's structure.

        Covers node count and every link's endpoints *and latency* —
        parameters like TSV or hub-link latency do not appear in the
        name, so cache keys (``NocMapPass.signature``) use this digest
        instead of the name alone.
        """
        import hashlib

        digest = hashlib.sha256(f"{self.name}:{self.node_count}".encode())
        for link in self.links:
            digest.update(f"|{link.a}-{link.b}:{link.latency}".encode())
        return digest.hexdigest()[:16]

    def describe(self) -> Dict[str, object]:
        """Flat summary of the topology's headline numbers."""
        return {
            "topology": self.name,
            "routers": self.router_count,
            "links": self.link_count,
            "diameter": self.diameter(),
            "avg_hops": round(self.average_hop_distance(), 3),
            "max_degree": self.max_degree(),
            "router_area_elements": round(self.router_area_elements(), 1),
        }

    def __repr__(self) -> str:
        return (f"{type(self).__name__}({self.name!r}, nodes={self.node_count}, "
                f"links={self.link_count})")


def _grid_links(rows: int, cols: int,
                node_at: Callable[[int, int], int]) -> List[Link]:
    """In-plane neighbour links of one ``rows x cols`` grid plane."""
    links: List[Link] = []
    for row in range(rows):
        for col in range(cols):
            here = node_at(row, col)
            if col + 1 < cols:
                links.append(Link(here, node_at(row, col + 1)))
            if row + 1 < rows:
                links.append(Link(here, node_at(row + 1, col)))
    return links


class Mesh2D(Topology):
    """A ``rows x cols`` 2-D mesh of routers."""

    def __init__(self, rows: int, cols: int, name: Optional[str] = None) -> None:
        if rows <= 0 or cols <= 0:
            raise ConfigurationError("mesh dimensions must be positive")
        self.rows = rows
        self.cols = cols
        super().__init__(name or f"mesh_{rows}x{cols}", rows * cols,
                         _grid_links(rows, cols, self.node_at))

    def node_at(self, row: int, col: int) -> int:
        """Router id of grid position ``(row, col)``."""
        return row * self.cols + col


class Torus2D(Topology):
    """A 2-D torus: the mesh plus row/column wraparound links."""

    def __init__(self, rows: int, cols: int) -> None:
        if rows <= 0 or cols <= 0:
            raise ConfigurationError("torus dimensions must be positive")
        self.rows = rows
        self.cols = cols
        links = _grid_links(rows, cols, self.node_at)
        # A wraparound on a dimension of length <= 2 would duplicate an
        # existing mesh link, so it is only added for longer dimensions.
        if cols > 2:
            links.extend(Link(self.node_at(row, 0), self.node_at(row, cols - 1))
                         for row in range(rows))
        if rows > 2:
            links.extend(Link(self.node_at(0, col), self.node_at(rows - 1, col))
                         for col in range(cols))
        super().__init__(f"torus_{rows}x{cols}", rows * cols, links)

    def node_at(self, row: int, col: int) -> int:
        """Router id of grid position ``(row, col)``."""
        return row * self.cols + col


class Ring(Topology):
    """A single cycle of routers: two links per node, long average paths."""

    def __init__(self, count: int) -> None:
        if count < 3:
            raise ConfigurationError("a ring needs at least three routers")
        links = [Link(index, (index + 1) % count) for index in range(count - 1)]
        links.append(Link(0, count - 1))
        super().__init__(f"ring_{count}", count, links)


class Mesh3D(Topology):
    """A stacked mesh: ``layers`` planes of ``rows x cols`` joined by TSVs.

    Vertical links cost :data:`TSV_CYCLES` (through-silicon vias are
    slower than in-plane wires), so routes prefer staying in-plane unless
    crossing layers pays for itself — the trade the 3-D NoC comparison
    harness this family mirrors is built to expose.
    """

    def __init__(self, rows: int, cols: int, layers: int = 2,
                 tsv_latency: int = TSV_CYCLES) -> None:
        if rows <= 0 or cols <= 0 or layers <= 0:
            raise ConfigurationError("mesh3d dimensions must be positive")
        self.rows = rows
        self.cols = cols
        self.layers = layers
        self.tsv_latency = tsv_latency
        links = []
        for layer in range(layers):
            links.extend(_grid_links(
                rows, cols,
                lambda row, col, layer=layer: self.node_at(layer, row, col)))
            if layer + 1 < layers:
                links.extend(
                    Link(self.node_at(layer, row, col),
                         self.node_at(layer + 1, row, col),
                         latency=tsv_latency)
                    for row in range(rows) for col in range(cols))
        super().__init__(f"mesh3d_{rows}x{cols}x{layers}",
                         rows * cols * layers, links)

    def node_at(self, layer: int, row: int, col: int) -> int:
        """Router id of stacked grid position ``(layer, row, col)``."""
        return layer * self.rows * self.cols + row * self.cols + col


class HubAndSpoke(Topology):
    """Chiplet-style layout: spokes hang off central fully-meshed hubs.

    Spokes are routers ``0 .. spokes-1``; hubs follow.  Spoke ``i``
    connects only to hub ``i % hubs`` over a chiplet-crossing link, and
    the hubs are fully connected among themselves — the AMD-style
    compute-die / IO-die arrangement of the chiplet-config repo.
    """

    def __init__(self, spokes: int, hubs: int = 1,
                 hub_link_latency: int = HUB_LINK_CYCLES) -> None:
        if spokes <= 0:
            raise ConfigurationError("hub-and-spoke needs at least one spoke")
        if hubs <= 0:
            raise ConfigurationError("hub-and-spoke needs at least one hub")
        self.spokes = spokes
        self.hubs = hubs
        links = [Link(spoke, spokes + spoke % hubs, latency=hub_link_latency)
                 for spoke in range(spokes)]
        links.extend(Link(spokes + a, spokes + b)
                     for a in range(hubs) for b in range(a + 1, hubs))
        super().__init__(f"hub_{spokes}s{hubs}h", spokes + hubs, links)

    def hub_nodes(self) -> List[int]:
        """Router ids of the hub(s)."""
        return list(range(self.spokes, self.spokes + self.hubs))


class ClusterHubMesh(Topology):
    """Hierarchical cluster-hub mesh: leaf clusters feeding fast hubs.

    The chip is a ``cluster_rows x cluster_cols`` grid of clusters; each
    cluster is ``cluster_side ** 2`` leaf routers star-connected to one
    hub router, and the hubs form a 2-D mesh among themselves.  The hubs
    run ``hub_speedup``x faster than the leaf tiles, so with all
    latencies expressed in hub cycles a hub-hub hop costs
    :data:`LINK_CYCLES` while a leaf-hub hop costs ``hub_speedup``
    cycles — the 2x2-cluster-plus-fast-hub design of the 3-D NoC
    comparison repo.

    Leaves are routers ``0 .. leaf_count - 1`` (cluster-major, so leaves
    of cluster ``c`` are contiguous); hubs follow, one per cluster in
    row-major cluster order.
    """

    def __init__(self, cluster_rows: int, cluster_cols: int,
                 cluster_side: int = 2, hub_speedup: int = 2) -> None:
        if cluster_rows <= 0 or cluster_cols <= 0:
            raise ConfigurationError("cluster grid dimensions must be positive")
        if cluster_side <= 0:
            raise ConfigurationError("cluster side must be positive")
        if hub_speedup <= 0:
            raise ConfigurationError("hub speedup must be positive")
        self.cluster_rows = cluster_rows
        self.cluster_cols = cluster_cols
        self.cluster_side = cluster_side
        self.hub_speedup = hub_speedup
        self.cluster_count = cluster_rows * cluster_cols
        self.leaves_per_cluster = cluster_side ** 2
        self.leaf_count = self.cluster_count * self.leaves_per_cluster
        links = [Link(cluster * self.leaves_per_cluster + leaf,
                      self.hub_of(cluster), latency=hub_speedup)
                 for cluster in range(self.cluster_count)
                 for leaf in range(self.leaves_per_cluster)]
        links.extend(_grid_links(
            cluster_rows, cluster_cols,
            lambda row, col: self.hub_of(row * cluster_cols + col)))
        super().__init__(
            f"chub_{cluster_rows}x{cluster_cols}s{cluster_side}f{hub_speedup}",
            self.leaf_count + self.cluster_count, links)

    def hub_of(self, cluster: int) -> int:
        """Router id of the hub serving ``cluster``."""
        return self.leaf_count + cluster

    def hub_nodes(self) -> List[int]:
        """Router ids of the per-cluster hubs."""
        return list(range(self.leaf_count, self.node_count))

    def cluster_of(self, node: int) -> int:
        """Cluster index a router (leaf or hub) belongs to."""
        if node >= self.leaf_count:
            return node - self.leaf_count
        return node // self.leaves_per_cluster


def _pillar_links(rows: int, cols: int, layers: int, stride: int,
                  latency: int,
                  node_at: Callable[[int, int, int], int]) -> List[Link]:
    """Vertical TSV links at every pillar site of a stacked topology.

    Pillars sit where both coordinates are multiples of ``stride``;
    ``(0, 0)`` always qualifies, so the layers stay connected at any
    density, and ``stride == 1`` recovers a TSV under every tile.
    """
    return [Link(node_at(layer, row, col), node_at(layer + 1, row, col),
                 latency=latency)
            for layer in range(layers - 1)
            for row in range(0, rows, stride)
            for col in range(0, cols, stride)]


class Mesh3DSparse(Topology):
    """A stacked mesh with TSV pillars only at a configurable density.

    Like :class:`Mesh3D`, but vertical TSVs exist only at pillar sites —
    grid positions whose row *and* column are multiples of
    ``pillar_stride`` — so in-plane detours to the nearest pillar are
    part of every cross-layer route.  ``pillar_stride=1`` recovers the
    fully-pillared :class:`Mesh3D` structure.
    """

    def __init__(self, rows: int, cols: int, layers: int = 2,
                 pillar_stride: int = 2,
                 tsv_latency: int = TSV_CYCLES) -> None:
        if rows <= 0 or cols <= 0 or layers <= 0:
            raise ConfigurationError("mesh3d dimensions must be positive")
        if pillar_stride <= 0:
            raise ConfigurationError("pillar stride must be positive")
        self.rows = rows
        self.cols = cols
        self.layers = layers
        self.pillar_stride = pillar_stride
        self.tsv_latency = tsv_latency
        links: List[Link] = []
        for layer in range(layers):
            links.extend(_grid_links(
                rows, cols,
                lambda row, col, layer=layer: self.node_at(layer, row, col)))
        links.extend(_pillar_links(rows, cols, layers, pillar_stride,
                                   tsv_latency, self.node_at))
        super().__init__(f"mesh3ds_{rows}x{cols}x{layers}p{pillar_stride}",
                         rows * cols * layers, links)

    def node_at(self, layer: int, row: int, col: int) -> int:
        """Router id of stacked grid position ``(layer, row, col)``."""
        return layer * self.rows * self.cols + row * self.cols + col

    def pillar_sites(self) -> List[Tuple[int, int]]:
        """In-plane ``(row, col)`` positions that carry a TSV pillar."""
        return [(row, col)
                for row in range(0, self.rows, self.pillar_stride)
                for col in range(0, self.cols, self.pillar_stride)]


class PillarTorus(Topology):
    """Torus planes joined by sparse TSV pillars.

    Each layer is a 2-D torus (wraparound links on dimensions longer
    than two, as in :class:`Torus2D`); layers connect through the same
    pillar sites as :class:`Mesh3DSparse`, so the wraparound shortcuts
    and the pillar detours trade off against each other.
    """

    def __init__(self, rows: int, cols: int, layers: int = 2,
                 pillar_stride: int = 2,
                 tsv_latency: int = TSV_CYCLES) -> None:
        if rows <= 0 or cols <= 0 or layers <= 0:
            raise ConfigurationError("pillar-torus dimensions must be positive")
        if pillar_stride <= 0:
            raise ConfigurationError("pillar stride must be positive")
        self.rows = rows
        self.cols = cols
        self.layers = layers
        self.pillar_stride = pillar_stride
        self.tsv_latency = tsv_latency
        links: List[Link] = []
        for layer in range(layers):
            def node_at(row: int, col: int, layer: int = layer) -> int:
                return self.node_at(layer, row, col)
            links.extend(_grid_links(rows, cols, node_at))
            # Same rule as Torus2D: a wraparound on a dimension of
            # length <= 2 would duplicate an existing mesh link.
            if cols > 2:
                links.extend(Link(node_at(row, 0), node_at(row, cols - 1))
                             for row in range(rows))
            if rows > 2:
                links.extend(Link(node_at(0, col), node_at(rows - 1, col))
                             for col in range(cols))
        links.extend(_pillar_links(rows, cols, layers, pillar_stride,
                                   tsv_latency, self.node_at))
        super().__init__(f"ptorus_{rows}x{cols}x{layers}p{pillar_stride}",
                         rows * cols * layers, links)

    def node_at(self, layer: int, row: int, col: int) -> int:
        """Router id of stacked grid position ``(layer, row, col)``."""
        return layer * self.rows * self.cols + row * self.cols + col

    def pillar_sites(self) -> List[Tuple[int, int]]:
        """In-plane ``(row, col)`` positions that carry a TSV pillar."""
        return [(row, col)
                for row in range(0, self.rows, self.pillar_stride)
                for col in range(0, self.cols, self.pillar_stride)]


class ExpressMesh(Topology):
    """A 2-D mesh plus express links that skip ``stride`` routers a hop.

    Express channels join every ``stride``-th router along each row and
    column (the small-world express-link design of the related NoC
    repos).  An express hop's link costs ``express_latency`` cycles —
    default ``stride``, since the wire still spans ``stride`` tiles —
    but crosses a single router, so a long haul over it skips
    ``stride - 1`` router traversals compared to the local path.
    """

    def __init__(self, rows: int, cols: int, stride: int = 2,
                 express_latency: Optional[int] = None) -> None:
        if rows <= 0 or cols <= 0:
            raise ConfigurationError("mesh dimensions must be positive")
        if stride < 2:
            raise ConfigurationError(
                "express stride must be at least 2 (stride-1 links would "
                "duplicate the mesh)")
        self.rows = rows
        self.cols = cols
        self.stride = stride
        self.express_latency = stride if express_latency is None \
            else express_latency
        links = _grid_links(rows, cols, self.node_at)
        for row in range(rows):
            for col in range(0, cols - stride, stride):
                links.append(Link(self.node_at(row, col),
                                  self.node_at(row, col + stride),
                                  latency=self.express_latency))
        for col in range(cols):
            for row in range(0, rows - stride, stride):
                links.append(Link(self.node_at(row, col),
                                  self.node_at(row + stride, col),
                                  latency=self.express_latency))
        super().__init__(f"xmesh_{rows}x{cols}e{stride}", rows * cols, links)

    def node_at(self, row: int, col: int) -> int:
        """Router id of grid position ``(row, col)``."""
        return row * self.cols + col


class MeshIoCenter(Topology):
    """Chiplet grid with a column of IO routers through the center.

    ``rows x cols`` compute chiplets with an extra column of IO dies
    inserted in the middle, giving a ``rows x (cols + 1)`` router grid —
    the Mesh_IO_Center arrangement of the chiplet-config repo.  A link
    between an IO router and a horizontal compute neighbour crosses a
    die boundary and costs ``io_link_latency`` cycles; every other grid
    link (compute-compute, and IO-IO down the center column) costs
    :data:`LINK_CYCLES`.
    """

    def __init__(self, rows: int, cols: int,
                 io_link_latency: int = HUB_LINK_CYCLES) -> None:
        if rows <= 0:
            raise ConfigurationError("mesh_io needs at least one row")
        if cols < 2:
            raise ConfigurationError(
                "mesh_io needs at least two compute columns around the "
                "IO column")
        self.rows = rows
        self.cols = cols
        self.grid_cols = cols + 1
        self.io_col = self.grid_cols // 2
        self.io_link_latency = io_link_latency
        links: List[Link] = []
        for row in range(rows):
            for col in range(self.grid_cols):
                here = self.node_at(row, col)
                if col + 1 < self.grid_cols:
                    crossing = self.io_col in (col, col + 1)
                    links.append(Link(
                        here, self.node_at(row, col + 1),
                        latency=io_link_latency if crossing
                        else LINK_CYCLES))
                if row + 1 < rows:
                    links.append(Link(here, self.node_at(row + 1, col)))
        super().__init__(f"meshio_{rows}x{cols}", rows * self.grid_cols,
                         links)

    def node_at(self, row: int, col: int) -> int:
        """Router id of grid position ``(row, col)`` (IO column included)."""
        return row * self.grid_cols + col

    def io_nodes(self) -> List[int]:
        """Router ids of the center IO column, top to bottom."""
        return [self.node_at(row, self.io_col) for row in range(self.rows)]


def _near_square(count: int) -> Tuple[int, int]:
    """Rows/cols of the most square grid holding at least ``count`` nodes.

    Rows are the *nearest* integer to the square root (not the floor):
    3 nodes get a 2x2 grid rather than a degenerate 1x3 strip, and 8
    nodes a 3x3 rather than a 2x4.
    """
    rows = max(1, round(math.sqrt(count)))
    cols = -(-count // rows)
    return rows, cols


def _io_grid(count: int) -> Tuple[int, int]:
    """Compute-grid rows/cols for a :class:`MeshIoCenter` of ``count``."""
    rows, cols = _near_square(count)
    return rows, max(2, cols)


#: Topology families by short name, each a ``node_count -> Topology``
#: factory producing a layout with **at least** that many routers.
TOPOLOGY_FAMILIES: Dict[str, Callable[[int], Topology]] = {
    "mesh": lambda n: Mesh2D(*_near_square(n)),
    "torus": lambda n: Torus2D(*_near_square(n)),
    "ring": lambda n: Ring(max(3, n)),
    "mesh3d": lambda n: Mesh3D(*_near_square(-(-n // 2)), layers=2),
    "hub": lambda n: HubAndSpoke(max(1, n - 1), hubs=1),
    "cluster_hub": lambda n: ClusterHubMesh(*_near_square(-(-n // 4)),
                                            cluster_side=2),
    "mesh3d_sparse": lambda n: Mesh3DSparse(*_near_square(-(-n // 2)),
                                            layers=2, pillar_stride=2),
    "pillar_torus": lambda n: PillarTorus(*_near_square(-(-n // 2)),
                                          layers=2, pillar_stride=2),
    "express": lambda n: ExpressMesh(*_near_square(n), stride=2),
    "mesh_io": lambda n: MeshIoCenter(*_io_grid(n)),
}

#: Topology classes by family name — the explicit-parameter counterpart
#: of :data:`TOPOLOGY_FAMILIES` used by :func:`build_topology`.
TOPOLOGY_CLASSES: Dict[str, type] = {
    "mesh": Mesh2D,
    "torus": Torus2D,
    "ring": Ring,
    "mesh3d": Mesh3D,
    "hub": HubAndSpoke,
    "cluster_hub": ClusterHubMesh,
    "mesh3d_sparse": Mesh3DSparse,
    "pillar_torus": PillarTorus,
    "express": ExpressMesh,
    "mesh_io": MeshIoCenter,
}


def build_topology(family: str, **params: int) -> Topology:
    """Instantiate a family from explicit constructor parameters.

    The picklable spec form the grid explorer uses: a ``(family,
    params)`` pair travels to worker processes as plain data and
    rebuilds the exact same topology on the other side (structure is
    what matters — :meth:`Topology.fingerprint` covers every link).
    """
    try:
        cls = TOPOLOGY_CLASSES[family]
    except KeyError:
        raise ConfigurationError(
            f"unknown topology family {family!r}; expected one of "
            f"{sorted(TOPOLOGY_CLASSES)}") from None
    return cls(**params)


def topology_by_name(family: str, node_count: int) -> Topology:
    """Instantiate a topology family sized for ``node_count`` agents."""
    try:
        factory = TOPOLOGY_FAMILIES[family]
    except KeyError:
        raise ConfigurationError(
            f"unknown topology family {family!r}; expected one of "
            f"{sorted(TOPOLOGY_FAMILIES)}") from None
    topology = factory(node_count)
    if topology.node_count < node_count:
        raise ConfigurationError(
            f"{family} factory produced {topology.node_count} routers for "
            f"{node_count} agents")
    return topology


def standard_topologies(node_count: int) -> List[Topology]:
    """One instance of every family, sized for ``node_count`` agents."""
    return [topology_by_name(family, node_count)
            for family in TOPOLOGY_FAMILIES]


#: Agent-placement strategies accepted by :func:`place_agents`.
PLACEMENT_STRATEGIES = ("linear", "spread", "hub")


def _nearest_free(intended: int, taken: set, node_count: int) -> int:
    """Closest unoccupied router to ``intended`` (ties toward higher ids).

    Rounding collisions in the spread placement resolve by probing
    outward from the intended slot — never by wrapping around the id
    range, which would teleport a late agent from the top of the range
    to router 0 (the opposite of "spread").
    """
    for offset in range(node_count):
        for candidate in (intended + offset, intended - offset):
            if 0 <= candidate < node_count and candidate not in taken:
                return candidate
    raise ConfigurationError(
        f"no free router among {node_count} for another agent")


def place_agents(agents: Sequence[str], topology: Topology,
                 strategy: str = "linear") -> Dict[str, int]:
    """Deterministically assign each named agent to a router.

    ``linear``  agents take router ids in order (tile grids onto meshes),
    ``spread``  agents are spaced evenly across the id range,
    ``hub``     the first agent (the memory/IO hub of the video
                workloads) lands on the highest-degree router, the rest
                fill the remaining ids in order.
    """
    agents = list(agents)
    if len(agents) > topology.node_count:
        raise ConfigurationError(
            f"{len(agents)} agents do not fit on {topology.node_count} routers "
            f"of {topology.name!r}")
    if strategy == "linear":
        return {agent: index for index, agent in enumerate(agents)}
    if strategy == "spread":
        placement: Dict[str, int] = {}
        taken: set = set()
        span = topology.node_count - 1
        denominator = max(1, len(agents) - 1)
        for index, agent in enumerate(agents):
            node = _nearest_free(round(index * span / denominator), taken,
                                 topology.node_count)
            placement[agent] = node
            taken.add(node)
        return placement
    if strategy == "hub":
        by_degree = sorted(range(topology.node_count),
                           key=lambda node: (-topology.degree(node), node))
        placement = {agents[0]: by_degree[0]}
        remaining = (node for node in range(topology.node_count)
                     if node != by_degree[0])
        for agent in agents[1:]:
            placement[agent] = next(remaining)
        return placement
    raise ConfigurationError(
        f"unknown placement strategy {strategy!r}; expected one of "
        f"{PLACEMENT_STRATEGIES}")
