"""repro.noc — the SoC-level network-on-chip model.

The layer above the intra-fabric mesh: topologies joining the SoC's
agents (CPU, frame memory, the ME / DA / filter arrays, IO), traffic
matrices extracted from the repository's real workloads (routed
netlists, video pipelines, GOP sharding, reconfiguration bitstreams),
scalar-parity batched simulation, flow passes folding communication
latency/energy into :class:`~repro.core.metrics.DesignMetrics`, and a
topology x placement x workload design-space explorer.

Layering (see README "Architecture"):

    fabric / clusters → flow (compile) → engine (execute) → workloads
                              │
                         repro.noc (communicate): topology + traffic +
                         simulation + exploration
"""

from repro.noc.explore import (
    DEFAULT_INJECTION_LEVELS,
    DEFAULT_OBJECTIVES,
    DesignPoint,
    SaturationCurve,
    SaturationPoint,
    pareto_by_workload,
    pareto_front,
    saturation_curve,
    saturation_curves,
    sweep,
)
from repro.noc.passes import NocMap, NocMapPass, NocMetricsPass
from repro.noc.sim import (
    ADAPTIVE_BUFFER_DEPTH,
    MODELS,
    SATURATION_UTILISATION,
    WORMHOLE_FLIT_CAP,
    NocSimResult,
    resolve_flit_cap,
    simulate,
    simulate_batched,
)
from repro.noc.topology import (
    HUB_LINK_CYCLES,
    LINK_CYCLES,
    PLACEMENT_STRATEGIES,
    ROUTER_CYCLES,
    TOPOLOGY_FAMILIES,
    TSV_CYCLES,
    HubAndSpoke,
    Link,
    Mesh2D,
    Mesh3D,
    Ring,
    Topology,
    Torus2D,
    place_agents,
    standard_topologies,
    topology_by_name,
)
from repro.noc.traffic import (
    ADVERSARIAL_PATTERNS,
    FLIT_BITS,
    TrafficMatrix,
    adversarial_traffic,
    burst_traffic,
    gop_worker_agents,
    hotspot_traffic,
    kernel_bitstream_bits,
    shuffle_traffic,
    tile_grid_for,
    tornado_traffic,
    traffic_from_gop_shards,
    traffic_from_reconfiguration,
    traffic_from_routing,
    traffic_from_video,
    transpose_traffic,
    uniform_traffic,
)

__all__ = [
    "ADAPTIVE_BUFFER_DEPTH",
    "ADVERSARIAL_PATTERNS",
    "DEFAULT_INJECTION_LEVELS",
    "DEFAULT_OBJECTIVES",
    "DesignPoint",
    "FLIT_BITS",
    "HUB_LINK_CYCLES",
    "HubAndSpoke",
    "LINK_CYCLES",
    "Link",
    "MODELS",
    "Mesh2D",
    "Mesh3D",
    "NocMap",
    "NocMapPass",
    "NocMetricsPass",
    "NocSimResult",
    "PLACEMENT_STRATEGIES",
    "ROUTER_CYCLES",
    "Ring",
    "SATURATION_UTILISATION",
    "SaturationCurve",
    "SaturationPoint",
    "TOPOLOGY_FAMILIES",
    "TSV_CYCLES",
    "Topology",
    "Torus2D",
    "TrafficMatrix",
    "WORMHOLE_FLIT_CAP",
    "adversarial_traffic",
    "burst_traffic",
    "gop_worker_agents",
    "hotspot_traffic",
    "kernel_bitstream_bits",
    "pareto_by_workload",
    "pareto_front",
    "place_agents",
    "resolve_flit_cap",
    "saturation_curve",
    "saturation_curves",
    "shuffle_traffic",
    "simulate",
    "simulate_batched",
    "standard_topologies",
    "sweep",
    "tile_grid_for",
    "topology_by_name",
    "tornado_traffic",
    "traffic_from_gop_shards",
    "traffic_from_reconfiguration",
    "traffic_from_routing",
    "traffic_from_video",
    "transpose_traffic",
    "uniform_traffic",
]
