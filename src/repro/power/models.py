"""Power / area / timing comparison between the arrays and the FPGA baseline.

The companion papers quote, for the same mapped computation:

* ME array vs generic FPGA ([1]):  −75 % power, −45 % area, +23 % timing.
* DA array vs generic FPGA ([2]):  −38 % power, −14 % area, −54 % maximum
  operating frequency (the DA array trades clock speed for its bit-serial
  distributed-arithmetic datapath).

This module provides the domain-specific-array cost model and the
comparison harness.  The FPGA side lives in
:mod:`repro.arrays.fpga_baseline`; both sides consume the *same netlist*
and the same switching activity, so the ratios reported by the benchmarks
are produced by the models rather than copied from the paper.  The
per-cluster constants below are calibrated against the [1]/[2] figures
(see DESIGN.md, substitution table); EXPERIMENTS.md records how close the
regenerated ratios come.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.arrays.fpga_baseline import FPGAImplementation, map_to_fpga
from repro.core.clusters import ClusterKind, elements_for_width
from repro.core.fabric import Fabric
from repro.core.metrics import DesignMetrics, evaluate_design
from repro.core.netlist import Netlist
from repro.core.router import RoutingResult

#: Switched capacitance of one cluster per 4-bit element per unit activity.
#: Coarse-grain clusters drive short hard-wired intra-cluster nets instead
#: of programmable fine-grain routing, which is where the bulk of the power
#: saving of the ME array comes from.  The Add-Shift and Memory clusters of
#: the DA array keep more per-element configurability (shift networks,
#: address decoders), so their advantage over the FPGA is smaller — exactly
#: the asymmetry between the [1] and [2] figures.
CLUSTER_SWITCHED_CAP: Dict[ClusterKind, float] = {
    ClusterKind.REGISTER_MUX: 1.3,
    ClusterKind.ABS_DIFF: 6.2,
    ClusterKind.ADD_ACC: 5.0,
    ClusterKind.COMPARATOR: 4.2,
    ClusterKind.ADD_SHIFT: 10.0,
    ClusterKind.MEMORY: 9.0,
}

#: Switched capacitance per memory bit (address decode + bit-line charge).
MEMORY_BIT_SWITCHED_CAP = 0.012

#: Interconnect capacitance of the byte-wide mesh relative to the logic it
#: connects (much lower than the fine-grain FPGA factor of 2.6).
MESH_INTERCONNECT_CAP_FACTOR = 0.55

# -- SoC-level network-on-chip constants (consumed by repro.noc) -------------

#: Switched capacitance of carrying one flit across one link for one cycle
#: (a longer / slower link integrates more wire capacitance, so the energy
#: scales with the link's latency cycles).
NOC_LINK_ENERGY_PER_FLIT_CYCLE = 0.18

#: Switched capacitance of one flit traversing one router (buffer write,
#: arbitration, crossbar).
NOC_ROUTER_ENERGY_PER_FLIT = 0.45

#: Area of one router port in 4-bit-element units; a router's crossbar
#: area grows with the square of its port count (see
#: :meth:`repro.noc.topology.Topology.router_area_elements`).
NOC_ROUTER_PORT_AREA_ELEMENTS = 2.5


# -- serving-runtime compute-energy constants (consumed by repro.serve) ------

#: Switched capacitance of one absolute-difference SAD operation on the ME
#: array (one ABS_DIFF element evaluating one pixel pair).
SERVE_SAD_OP_ENERGY = 0.02

#: Switched capacitance of transforming one 8x8 block on the DA array
#: (ROM lookups plus the accumulation tree for 64 coefficients).
SERVE_DCT_BLOCK_ENERGY = 3.5

#: Switched capacitance of filtering one sample through the bit-serial
#: DA FIR datapath.
SERVE_FILTER_SAMPLE_ENERGY = 0.3


def serving_compute_energy(sad_operations: int, dct_blocks: int,
                           filter_samples: int = 0) -> float:
    """Compute (non-NoC) energy of one served job from its integer activity.

    The serving runtime keeps per-job activity integral — SAD operations,
    transformed blocks, filtered samples — so scheduled and serial
    executions of the same job report bit-identical energies; NoC
    reconfiguration and result traffic are accounted separately through
    :func:`noc_transfer_energy`.
    """
    if min(sad_operations, dct_blocks, filter_samples) < 0:
        raise ValueError("serving activity aggregates must be non-negative")
    return (SERVE_SAD_OP_ENERGY * sad_operations
            + SERVE_DCT_BLOCK_ENERGY * dct_blocks
            + SERVE_FILTER_SAMPLE_ENERGY * filter_samples)


# -- fleet autoscaling constants (consumed by repro.fleet) -------------------

#: Switched capacitance one *idle* (clocked but unloaded) SoC burns per
#: virtual cycle — clock tree, configuration memory retention, sequencer.
#: Small against active compute (one 8x8 DCT block costs 3.5), but over a
#: million-cycle diurnal trough an idle SoC wastes 10k units, which is
#: what power gating reclaims.
SOC_IDLE_ENERGY_PER_CYCLE = 0.01

#: Switched capacitance a *power-gated* SoC burns per cycle (retention
#: rails only — 20x below idle).
SOC_GATED_ENERGY_PER_CYCLE = 0.0005

#: One-time energy of waking a gated SoC (rail ramp, clock restart, PLL
#: relock).  Together with the idle/gated gap this sets the break-even
#: idle span: gating pays off only for idle periods longer than about
#: ``SOC_WAKE_ENERGY / (idle - gated)`` cycles (~53k at the defaults),
#: which is why the autoscaler waits out an idle timeout before gating.
SOC_WAKE_ENERGY = 500.0


def soc_static_energy(idle_cycles: int, gated_cycles: int,
                      wakes: int = 0) -> float:
    """Static (non-compute) energy of one SoC from its integer state log.

    The fleet autoscaler accounts every SoC's virtual time as busy, idle
    or gated; busy energy flows through :func:`serving_compute_energy`
    per job, and this function prices the remainder — keeping the inputs
    integral so scheduled and re-simulated runs report bit-identical
    energies.
    """
    if min(idle_cycles, gated_cycles, wakes) < 0:
        raise ValueError("SoC state aggregates must be non-negative")
    return (SOC_IDLE_ENERGY_PER_CYCLE * idle_cycles
            + SOC_GATED_ENERGY_PER_CYCLE * gated_cycles
            + SOC_WAKE_ENERGY * wakes)


def noc_transfer_energy(flit_link_cycles: int,
                        flit_router_crossings: int) -> float:
    """Energy of a NoC transfer from its integer activity aggregates.

    ``flit_link_cycles`` counts flit-cycles spent on links (each crossing
    weighted by the link's latency) and ``flit_router_crossings`` counts
    flit-router traversals; keeping both integral lets the scalar and
    batched simulators report bit-identical energies.
    """
    if flit_link_cycles < 0 or flit_router_crossings < 0:
        raise ValueError("NoC activity aggregates must be non-negative")
    return (NOC_LINK_ENERGY_PER_FLIT_CYCLE * flit_link_cycles
            + NOC_ROUTER_ENERGY_PER_FLIT * flit_router_crossings)


@dataclass(frozen=True)
class ArrayCalibration:
    """Per-array calibration of the analytical cost model.

    The raw cluster-level model captures how the implementations compare
    with *each other* (more clusters, deeper ROMs and longer routes cost
    more); these three factors anchor its absolute array-vs-FPGA ratios to
    the measurements published for each array in the companion papers
    ([1] for the ME array, [2] for the DA array).  They fold in everything
    the behavioural model cannot see — configuration memory, clock tree,
    the exact standard-cell mapping — and are the single documented point
    where published silicon data enters the reproduction.
    """

    name: str
    area_factor: float = 1.0
    delay_factor: float = 1.0
    power_factor: float = 1.0


#: Calibrated against [1]: ME array vs FPGA at -75 % power, -45 % area,
#: +23 % timing for the full-search systolic mapping.
ME_ARRAY_CALIBRATION = ArrayCalibration("me_array", area_factor=5.24,
                                        delay_factor=1.26, power_factor=0.73)
#: Calibrated against [2]: DA array vs FPGA at -38 % power, -14 % area,
#: -54 % maximum frequency for the Distributed-Arithmetic DCT mapping.
DA_ARRAY_CALIBRATION = ArrayCalibration("da_array", area_factor=6.37,
                                        delay_factor=2.77, power_factor=2.19)
#: Used when a netlist mixes cluster kinds from both arrays (no published
#: reference point exists, so the raw model is reported unscaled).
UNCALIBRATED = ArrayCalibration("uncalibrated")

#: Cluster kinds provided by each domain-specific array, used to pick the
#: calibration automatically from a netlist's contents.
_ME_KINDS = {ClusterKind.REGISTER_MUX, ClusterKind.ABS_DIFF,
             ClusterKind.ADD_ACC, ClusterKind.COMPARATOR}
_DA_KINDS = {ClusterKind.ADD_SHIFT, ClusterKind.MEMORY}


def calibration_for(netlist: Netlist) -> ArrayCalibration:
    """Select the calibration matching the array a netlist targets."""
    kinds = {node.kind for node in netlist.nodes}
    if kinds and kinds <= _ME_KINDS:
        return ME_ARRAY_CALIBRATION
    if kinds and kinds <= _DA_KINDS:
        return DA_ARRAY_CALIBRATION
    return UNCALIBRATED


@dataclass
class DomainSpecificCost:
    """Cost of a netlist mapped onto its domain-specific array."""

    netlist_name: str
    fabric_name: str
    metrics: DesignMetrics
    switched_capacitance_per_cycle: float
    critical_path_delay: float
    area_scale: float = 1.0

    @property
    def area_elements(self) -> float:
        """Total (calibrated) area in 4-bit-element units."""
        return self.metrics.total_area_elements * self.area_scale

    @property
    def max_frequency(self) -> float:
        """Reciprocal of the critical path (arbitrary frequency units)."""
        if self.critical_path_delay <= 0:
            return float("inf")
        return 1.0 / self.critical_path_delay


@dataclass
class ArchitectureComparison:
    """Relative figures of merit: domain-specific array vs generic FPGA.

    All reductions are expressed the way the paper quotes them: a power
    reduction of 0.75 means the array consumes 75 % *less* power than the
    FPGA; a timing improvement of 0.23 means the array's critical path is
    23 % shorter; a negative frequency change means the array clocks slower.
    """

    netlist_name: str
    array: DomainSpecificCost
    fpga: FPGAImplementation

    @property
    def power_reduction(self) -> float:
        """Fractional power saving of the array relative to the FPGA."""
        if self.fpga.switched_capacitance_per_cycle <= 0:
            return 0.0
        return 1.0 - (self.array.switched_capacitance_per_cycle
                      / self.fpga.switched_capacitance_per_cycle)

    @property
    def area_reduction(self) -> float:
        """Fractional area saving of the array relative to the FPGA."""
        if self.fpga.area_elements <= 0:
            return 0.0
        return 1.0 - self.array.area_elements / self.fpga.area_elements

    @property
    def timing_improvement(self) -> float:
        """Fractional critical-path reduction (positive = array faster)."""
        if self.fpga.critical_path_delay <= 0:
            return 0.0
        return 1.0 - (self.array.critical_path_delay
                      / self.fpga.critical_path_delay)

    @property
    def max_frequency_change(self) -> float:
        """Fractional change in maximum frequency (negative = array slower)."""
        if self.fpga.max_frequency <= 0:
            return 0.0
        return self.array.max_frequency / self.fpga.max_frequency - 1.0

    def summary(self) -> Dict[str, float]:
        """Flat dictionary for reporting."""
        return {
            "power_reduction_pct": round(100 * self.power_reduction, 1),
            "area_reduction_pct": round(100 * self.area_reduction, 1),
            "timing_improvement_pct": round(100 * self.timing_improvement, 1),
            "max_frequency_change_pct": round(100 * self.max_frequency_change, 1),
        }


def domain_specific_cost(netlist: Netlist, fabric: Fabric,
                         activity: float = 0.25,
                         routing: Optional[RoutingResult] = None,
                         calibration: Optional[ArrayCalibration] = None) -> DomainSpecificCost:
    """Evaluate a netlist on its domain-specific array.

    Parameters
    ----------
    netlist, fabric:
        The mapped design and its target array.
    activity:
        Average switching activity of the datapath signals.
    routing:
        Optional routed result; refines the wire contribution.
    calibration:
        Calibration factors anchoring the model to the published
        array-vs-FPGA ratios; chosen automatically from the netlist's
        cluster kinds when omitted.  Pass :data:`UNCALIBRATED` to inspect
        the raw, uncalibrated model.
    """
    metrics = evaluate_design(netlist, fabric, routing=routing)
    calibration = calibration or calibration_for(netlist)

    logic_cap = 0.0
    for node in netlist.nodes:
        elements = elements_for_width(node.width_bits)
        logic_cap += CLUSTER_SWITCHED_CAP[node.kind] * elements
        if node.kind is ClusterKind.MEMORY and node.depth_words > 0:
            logic_cap += node.depth_words * node.width_bits * MEMORY_BIT_SWITCHED_CAP
    switched_cap = (logic_cap * activity * (1.0 + MESH_INTERCONNECT_CAP_FACTOR)
                    * calibration.power_factor)

    return DomainSpecificCost(
        netlist_name=netlist.name,
        fabric_name=fabric.name,
        metrics=metrics,
        switched_capacitance_per_cycle=switched_cap,
        critical_path_delay=metrics.critical_path_delay * calibration.delay_factor,
        area_scale=calibration.area_factor,
    )


def compare_to_fpga(netlist: Netlist, fabric: Fabric, activity: float = 0.25,
                    routing: Optional[RoutingResult] = None,
                    calibration: Optional[ArrayCalibration] = None) -> ArchitectureComparison:
    """Compare one netlist mapped on its array against the FPGA baseline."""
    array_cost = domain_specific_cost(netlist, fabric, activity, routing, calibration)
    fpga_cost = map_to_fpga(netlist, activity, routing)
    return ArchitectureComparison(netlist.name, array_cost, fpga_cost)


def power_per_block(cost: DomainSpecificCost, cycles_per_block: int) -> float:
    """Energy (switched capacitance) to process one block of data.

    Multiplying the per-cycle switched capacitance by the cycle count of
    one block (e.g. one 8-point DCT, or one macroblock search) gives the
    energy figure the implementation comparison of Sec. 3.6 talks about:
    a smaller implementation that needs more cycles can still lose.
    """
    if cycles_per_block <= 0:
        raise ValueError("cycles_per_block must be positive")
    return cost.switched_capacitance_per_cycle * cycles_per_block
