"""Switching-activity and power/area/timing comparison models."""

from repro.power.activity import (
    block_activity,
    cluster_activity,
    combined_activity,
    stream_activity,
    toggle_count,
)
from repro.power.models import (
    DA_ARRAY_CALIBRATION,
    ME_ARRAY_CALIBRATION,
    UNCALIBRATED,
    ArchitectureComparison,
    ArrayCalibration,
    DomainSpecificCost,
    calibration_for,
    compare_to_fpga,
    domain_specific_cost,
    power_per_block,
)

__all__ = [
    "block_activity",
    "cluster_activity",
    "combined_activity",
    "stream_activity",
    "toggle_count",
    "DA_ARRAY_CALIBRATION",
    "ME_ARRAY_CALIBRATION",
    "UNCALIBRATED",
    "ArchitectureComparison",
    "ArrayCalibration",
    "DomainSpecificCost",
    "calibration_for",
    "compare_to_fpga",
    "domain_specific_cost",
    "power_per_block",
]
