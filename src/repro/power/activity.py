"""Switching-activity estimation.

The paper notes (Sec. 3.6) that the DCT implementations "can have
different power consumption due to the different area usage and different
signal activities in the design".  Power in CMOS is dominated by dynamic
switching, so the power model needs an activity figure: the average
probability that a signal bit toggles from one cycle to the next.

Two sources of activity are supported:

* **data-driven** — :func:`stream_activity` measures bit-level toggle
  rates of an actual data stream (e.g. the pixel samples or DCT inputs a
  workload produces), which is what makes the implementation comparison
  workload-dependent;
* **measured** — the cluster behavioural models count output toggles while
  simulating; :func:`cluster_activity` converts those counters into an
  activity factor.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np


def toggle_count(previous: int, current: int) -> int:
    """Number of bit positions that differ between two integer samples."""
    return bin((int(previous) ^ int(current)) & ((1 << 64) - 1)).count("1")


def stream_activity(samples: Sequence[int], width_bits: int) -> float:
    """Average per-bit toggle probability of an integer sample stream.

    Parameters
    ----------
    samples:
        Successive word values carried by a bus (e.g. the pixel stream fed
        to the ME array, or the serialised DCT input bits).
    width_bits:
        Bus width; toggles are normalised per bit per transition.

    Returns
    -------
    float
        Activity in ``[0, 1]``: 0 for a constant stream, 1 when every bit
        toggles on every sample.
    """
    if width_bits <= 0:
        raise ValueError("width_bits must be positive")
    values = [int(sample) & ((1 << width_bits) - 1) for sample in samples]
    if len(values) < 2:
        return 0.0
    toggles = sum(toggle_count(a, b) for a, b in zip(values, values[1:]))
    return toggles / ((len(values) - 1) * width_bits)


def block_activity(block: np.ndarray, width_bits: int = 8) -> float:
    """Activity of streaming a 2-D pixel block in raster order."""
    flattened = np.asarray(block).astype(np.int64).ravel()
    return stream_activity(flattened.tolist(), width_bits)


def cluster_activity(toggles: int, cycles: int, width_bits: int) -> float:
    """Activity factor from a cluster's toggle / cycle counters."""
    if cycles <= 0 or width_bits <= 0:
        return 0.0
    return min(1.0, toggles / (cycles * width_bits))


def combined_activity(activities: Iterable[float]) -> float:
    """Mean of several activity figures, ignoring empty input."""
    values = list(activities)
    if not values:
        return 0.0
    return float(np.mean(values))
