"""Autoscaling: power-gate idle SoCs, pay a wake-up latency to return.

Each SoC is a three-state machine — ``awake``, ``gated``, ``waking``:

* a SoC idle (free, empty queue) for ``idle_timeout`` cycles is gated,
  dropping its static burn from
  :data:`~repro.power.models.SOC_IDLE_ENERGY_PER_CYCLE` to
  :data:`~repro.power.models.SOC_GATED_ENERGY_PER_CYCLE`;
* assigning work to a gated SoC starts a wake costing ``wake_latency``
  cycles (jobs queue meanwhile) plus
  :data:`~repro.power.models.SOC_WAKE_ENERGY` once;
* at least ``min_awake`` SoCs always stay awake so the cluster can never
  deadlock itself dark.

Gating decisions ride the event heap: going idle schedules a
:data:`~repro.fleet.events.GATE` check at ``now + idle_timeout`` stamped
with the SoC's *idle epoch*; any activity bumps the epoch, so a stale
check fires as a no-op — the deterministic version of cancelling a
timer.  All interval bookkeeping is integer cycles, so re-running a
trace reproduces the energy ledger bit for bit.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.exceptions import ConfigurationError
from repro.power.models import (
    SOC_IDLE_ENERGY_PER_CYCLE,
    soc_static_energy,
)

AWAKE = "awake"
GATED = "gated"
WAKING = "waking"


class SocPowerState:
    """Power bookkeeping of one SoC."""

    def __init__(self) -> None:
        self.state = AWAKE
        self.idle_epoch = 0
        self.gated_at = 0
        self.gated_cycles = 0
        self.wakes = 0

    @property
    def awake(self) -> bool:
        """True iff the SoC can dispatch right now."""
        return self.state == AWAKE


class Autoscaler:
    """Fleet-wide gating controller and static-energy accountant."""

    def __init__(self, slot_count: int, enabled: bool = False,
                 idle_timeout: int = 200_000, wake_latency: int = 5_000,
                 min_awake: int = 1) -> None:
        if slot_count <= 0:
            raise ConfigurationError("the autoscaler needs at least one SoC")
        if idle_timeout <= 0 or wake_latency < 0:
            raise ConfigurationError(
                "idle_timeout must be positive and wake_latency non-negative")
        if not 1 <= min_awake <= slot_count:
            raise ConfigurationError(
                f"min_awake must be in [1, {slot_count}], got {min_awake}")
        self.enabled = enabled
        self.idle_timeout = idle_timeout
        self.wake_latency = wake_latency
        self.min_awake = min_awake
        self.states: List[SocPowerState] = [SocPowerState()
                                            for _ in range(slot_count)]

    # -- state machine -----------------------------------------------------
    def awake_count(self) -> int:
        """SoCs currently not gated (awake or already waking)."""
        return sum(1 for state in self.states if state.state != GATED)

    def note_activity(self, index: int) -> None:
        """Invalidate any pending idle check for a SoC (work touched it)."""
        self.states[index].idle_epoch += 1

    def idle_check_epoch(self, index: int) -> int:
        """Epoch to stamp a GATE event scheduled right now."""
        return self.states[index].idle_epoch

    def try_gate(self, index: int, epoch: int, now: int,
                 idle: bool) -> bool:
        """Gate a SoC if its idle check is still valid; True on gating."""
        state = self.states[index]
        if (not self.enabled or state.state != AWAKE or not idle
                or epoch != state.idle_epoch
                or self.awake_count() <= self.min_awake):
            return False
        state.state = GATED
        state.gated_at = now
        return True

    def request_wake(self, index: int, now: int) -> Optional[int]:
        """Start waking a gated SoC; returns the cycle it becomes ready.

        Returns ``None`` when no wake is needed (already awake or mid
        wake) — callers enqueue work unconditionally and the WAKE event
        makes the SoC dispatchable.
        """
        state = self.states[index]
        if state.state != GATED:
            return None
        state.state = WAKING
        state.gated_cycles += now - state.gated_at
        state.wakes += 1
        return now + self.wake_latency

    def complete_wake(self, index: int) -> None:
        """A WAKE event fired: the SoC is dispatchable again."""
        state = self.states[index]
        if state.state != WAKING:
            raise ConfigurationError(
                f"soc{index} got a WAKE event while {state.state}")
        state.state = AWAKE
        state.idle_epoch += 1

    def finalize(self, end: int) -> None:
        """Close gated intervals still open when the trace drains."""
        for state in self.states:
            if state.state == GATED:
                state.gated_cycles += max(0, end - state.gated_at)
                state.state = AWAKE
                state.idle_epoch += 1

    # -- energy accounting -------------------------------------------------
    def static_energy(self, busy_cycles: Sequence[int],
                      span: int) -> Dict[str, float]:
        """Fleet static-energy ledger over a ``span`` of virtual cycles.

        ``busy_cycles`` is each SoC's summed batch service time; the
        remainder of the span splits into idle and gated cycles per the
        recorded intervals.  ``saved`` is the counterfactual: what the
        same schedule would have burned with every SoC merely idling
        (no gating, no wakes) minus what it actually burned.
        """
        if len(busy_cycles) != len(self.states):
            raise ConfigurationError(
                f"{len(busy_cycles)} busy counts for {len(self.states)} SoCs")
        idle_total = 0
        gated_total = 0
        wakes_total = 0
        for state, busy in zip(self.states, busy_cycles):
            non_busy = max(0, span - int(busy))
            gated = min(state.gated_cycles, non_busy)
            idle_total += non_busy - gated
            gated_total += gated
            wakes_total += state.wakes
        actual = soc_static_energy(idle_total, gated_total, wakes_total)
        ungated = SOC_IDLE_ENERGY_PER_CYCLE * (idle_total + gated_total)
        return {"idle_cycles": idle_total,
                "gated_cycles": gated_total,
                "wakes": wakes_total,
                "static_energy": actual,
                "ungated_static_energy": ungated,
                "saved": ungated - actual}
