"""The event-driven virtual-time core of the fleet runtime.

PR-5's :func:`repro.serve.runtime.serve` steps a small cycle-group loop:
every scheduling decision rescans the fleet, which is fine for a handful
of SoCs and dozens of jobs but quadratic in spirit — a 100k-job trace
over hundreds of SoCs must instead *jump* from event to event.  This
module provides that core: a binary heap of ``(virtual_time, kind, key)``
events with **fully deterministic tie-breaking**, so two runs of the same
trace — or the same events pushed in a different order — pop identically.

Ordering at equal virtual time is by event *kind* first (wake-ups before
completions before gating checks before arrivals, so a SoC that finishes
waking or serving at cycle ``t`` is dispatchable to jobs arriving at
``t``), then by the integer ``key`` (job id for arrivals, SoC index for
the rest), then by push order as a final fallback for exact duplicates.
"""

from __future__ import annotations

import heapq
from typing import List, Tuple

from repro.core.exceptions import ConfigurationError

#: Event kinds, in tie-break priority order at equal virtual time.
WAKE = 0         #: a power-gated SoC finished waking (key = SoC index)
COMPLETION = 1   #: a SoC finished its running batch (key = SoC index)
GATE = 2         #: autoscaler idle check fires (key = SoC index)
ARRIVAL = 3      #: a job enters the cluster (key = job id)

EVENT_KINDS = (WAKE, COMPLETION, GATE, ARRIVAL)

Event = Tuple[int, int, int, int]


class EventHeap:
    """A deterministic min-heap of ``(time, kind, key)`` events.

    Events pop in non-decreasing virtual time; ties break on
    ``(kind, key, push order)`` so the pop sequence is a pure function of
    the *set* of pushed events (push order only matters between exact
    ``(time, kind, key)`` duplicates, which the runtime never produces).
    """

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._pushed = 0
        self._last_popped_time: int = 0

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, time: int, kind: int, key: int) -> None:
        """Schedule an event at virtual cycle ``time``."""
        if kind not in EVENT_KINDS:
            raise ConfigurationError(f"unknown event kind {kind!r}")
        if time < 0:
            raise ConfigurationError("events cannot fire before cycle 0")
        if self._pushed and time < self._last_popped_time:
            raise ConfigurationError(
                f"event at cycle {time} scheduled behind the clock "
                f"(already at cycle {self._last_popped_time})")
        heapq.heappush(self._heap, (time, kind, key, self._pushed))
        self._pushed += 1

    def pop(self) -> Tuple[int, int, int]:
        """Next ``(time, kind, key)`` in deterministic order."""
        if not self._heap:
            raise ConfigurationError("cannot pop from an empty event heap")
        time, kind, key, _ = heapq.heappop(self._heap)
        self._last_popped_time = time
        return time, kind, key

    def peek_time(self) -> int:
        """Virtual time of the next event (heap must be non-empty)."""
        if not self._heap:
            raise ConfigurationError("cannot peek an empty event heap")
        return self._heap[0][0]

    @property
    def pushed(self) -> int:
        """Events pushed over the heap's lifetime."""
        return self._pushed
