"""Synthetic fleet jobs: 100k-trace workloads the event core can afford.

The conformance anchor runs *real* payloads — encode/DCT/FIR jobs from
:mod:`repro.serve.workload` executed through the engine — but a real
encode costs milliseconds of wallclock, so a 100k-job datacenter trace
would take hours.  :class:`SyntheticJob` closes the gap: a lightweight
job that still exercises every scheduling surface (named kernels through
the shared library, residency and reconfiguration bitstreams, batching
keys, service estimates, values for SLO shedding) while its payload is a
cheap *deterministic* function of the job's seed — a vectorized
splitmix64 stream — so bit-identity between scheduled and serial
execution remains a meaningful, hash-checked property at any scale.

:func:`synthetic_trace` draws seeded datacenter arrival processes in the
:mod:`repro.engine` idiom (every per-job quantity is one vectorized
draw): ``steady`` Poisson-like load, ``diurnal`` day/night sinusoidal
modulation, and ``flash_crowd`` — a burst window where gaps collapse and
one hot kernel dominates the mix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.exceptions import ConfigurationError
from repro.noc.traffic import FLIT_BITS
from repro.serve.execution import (
    ExecutionResult,
    execute_batch as _serve_execute_batch,
)
from repro.serve.jobs import (
    DCT_CYCLES_PER_BLOCK,
    FIR_CYCLES_PER_SAMPLE,
    SAD_OPS_PER_CYCLE,
)
from repro.serve.kernels import KERNEL_BUILDERS
from repro.video.blocks import MACROBLOCK_SIZE

#: Arrival patterns :func:`synthetic_trace` can draw.
FLEET_PATTERNS = ("steady", "diurnal", "flash_crowd")

#: Kernel pool of the synthetic mixes (all compiled through the shared
#: library, so residency and bitstream costs are measured, not invented).
SYNTHETIC_KERNELS = ("dct:mixed_rom", "dct:scc_direct", "dct:cordic2",
                     "fir:lowpass8", "me:full_r8")

#: SAD operations one synthetic work unit retires on the ME array (one
#: macroblock's worth), mirroring the encode path's activity accounting.
SAD_OPS_PER_UNIT = MACROBLOCK_SIZE * MACROBLOCK_SIZE

#: Output bits of one synthetic work unit (one splitmix64 word).
OUTPUT_BITS_PER_UNIT = 64

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)


def _splitmix64(values: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer over a uint64 array."""
    z = values.astype(np.uint64) + _GOLDEN
    z = (z ^ (z >> np.uint64(30))) * _MIX1
    z = (z ^ (z >> np.uint64(27))) * _MIX2
    return z ^ (z >> np.uint64(31))


@dataclass(eq=False)
class SyntheticJob:
    """A lightweight serving job whose payload is a seeded splitmix stream.

    ``kernel`` names a real serving kernel (the measured bitstream of
    which a reconfiguration streams); ``work_units`` sizes compute,
    output and payload; ``value`` is what SLO-aware admission protects
    (higher-value work sheds last).
    """

    job_id: int
    arrival_cycle: int
    kernel: str = "dct:mixed_rom"
    work_units: int = 32
    seed: int = 0
    value: float = 1.0
    kind: str = "synthetic"

    def __post_init__(self) -> None:
        if self.arrival_cycle < 0:
            raise ConfigurationError("jobs cannot arrive before cycle 0")
        if self.work_units <= 0:
            raise ConfigurationError(
                f"synthetic job {self.job_id} needs at least one work unit")
        if self.kernel not in KERNEL_BUILDERS:
            raise ConfigurationError(
                f"synthetic job {self.job_id} names unknown kernel "
                f"{self.kernel!r}; known: {sorted(KERNEL_BUILDERS)}")
        if self.value <= 0:
            raise ConfigurationError("job value must be positive")
        if self.kind != "synthetic":
            raise ConfigurationError("SyntheticJob kind must be 'synthetic'")

    @property
    def target_array(self) -> str:
        """Array the job's kernel configures."""
        return "me_array" if self.kernel.startswith("me:") else "da_array"

    @property
    def kernels(self) -> Dict[str, str]:
        """Required resident kernels, by array name."""
        return {self.target_array: self.kernel}

    @property
    def batch_key(self) -> Tuple:
        """Jobs sharing this key execute in one stacked dispatch."""
        return ("synthetic", self.kernel)

    @property
    def input_bits(self) -> int:
        """Bits a queue migration of this job ships between SoCs."""
        return self.work_units * FLIT_BITS

    def service_estimate(self) -> int:
        """Exact compute cycles (synthetic work is statically sized)."""
        if self.kernel.startswith("me:"):
            sad_ops = self.work_units * SAD_OPS_PER_UNIT
            return -(-sad_ops // SAD_OPS_PER_CYCLE)
        if self.kernel.startswith("fir:"):
            return self.work_units * FIR_CYCLES_PER_SAMPLE
        return self.work_units * DCT_CYCLES_PER_BLOCK

    def payload(self) -> np.ndarray:
        """The deterministic output stream (one int64 word per unit)."""
        words = np.arange(self.work_units, dtype=np.uint64) + np.uint64(
            self.seed % (1 << 64))
        return _splitmix64(words).view(np.int64)


def execute_synthetic_batch(jobs: Sequence[SyntheticJob]
                            ) -> List[ExecutionResult]:
    """Execute compatible synthetic jobs through one stacked dispatch.

    Each job's payload depends only on its own seed, so batching is
    bit-identical to serial execution *by construction* — and the
    conformance suite still hashes both sides, keeping the check honest
    against future edits.
    """
    keys = {job.batch_key for job in jobs}
    if len(keys) != 1:
        raise ConfigurationError(
            f"a batch must share one batch_key, got {sorted(map(str, keys))}")
    results = []
    for job in jobs:
        sad_ops = (job.work_units * SAD_OPS_PER_UNIT
                   if job.kernel.startswith("me:") else 0)
        results.append(ExecutionResult(
            job_id=job.job_id, kind=job.kind, payload=job.payload(),
            compute_cycles=job.service_estimate(),
            sad_operations=sad_ops,
            dct_blocks=(job.work_units
                        if job.kernel.startswith("dct:") else 0),
            filter_samples=(job.work_units
                            if job.kernel.startswith("fir:") else 0),
            output_bits=job.work_units * OUTPUT_BITS_PER_UNIT))
    return results


def execute_fleet_batch(jobs: Sequence) -> List[ExecutionResult]:
    """One stacked dispatch over compatible jobs of any fleet-served kind.

    Synthetic jobs take the vectorized path above; encode/DCT/FIR jobs
    go through :func:`repro.serve.execution.execute_batch` unchanged, so
    the PR-5 bit-identity guarantees carry over verbatim.
    """
    jobs = list(jobs)
    if not jobs:
        return []
    if isinstance(jobs[0], SyntheticJob):
        return execute_synthetic_batch(jobs)
    return _serve_execute_batch(jobs)


def execute_fleet_serial(jobs: Sequence) -> List[ExecutionResult]:
    """Naive reference: every job in its own dispatch, in input order."""
    return [result for job in jobs for result in execute_fleet_batch([job])]


def synthetic_trace(pattern: str, job_count: int, seed: int = 0,
                    mean_gap: int = 2_000,
                    kernel_pool: Sequence[str] = SYNTHETIC_KERNELS,
                    diurnal_periods: float = 2.0,
                    diurnal_amplitude: float = 0.75,
                    crowd_fraction: float = 0.15,
                    crowd_surge: int = 12,
                    hot_kernel: str = "dct:mixed_rom",
                    min_work: int = 16, max_work: int = 96
                    ) -> List[SyntheticJob]:
    """Draw one seeded synthetic arrival trace, fully vectorized.

    ``steady`` jitters gaps uniformly around ``mean_gap``;
    ``diurnal`` modulates the arrival *rate* with ``diurnal_periods``
    sinusoidal day/night cycles of ``diurnal_amplitude`` (troughs are
    what the autoscaler gates through); ``flash_crowd`` collapses gaps
    by ``crowd_surge`` over a contiguous ``crowd_fraction`` window in
    which ``hot_kernel`` dominates the mix (what predictive prewarm and
    SLO shedding are for).  Same arguments ⇒ identical trace, job for
    job.
    """
    if pattern not in FLEET_PATTERNS:
        raise ConfigurationError(
            f"unknown fleet pattern {pattern!r}; known: {FLEET_PATTERNS}")
    if job_count <= 0:
        raise ConfigurationError("a trace needs at least one job")
    if mean_gap <= 1:
        raise ConfigurationError("mean_gap must exceed one cycle")
    if not kernel_pool:
        raise ConfigurationError("the kernel pool cannot be empty")
    rng = np.random.default_rng([seed, FLEET_PATTERNS.index(pattern)])

    gaps = rng.integers(mean_gap // 2, mean_gap * 3 // 2 + 1,
                        job_count).astype(np.float64)
    kernel_index = rng.integers(len(kernel_pool), size=job_count)
    if pattern == "diurnal":
        phase = (2.0 * np.pi * diurnal_periods
                 * np.arange(job_count) / job_count)
        gaps = gaps / (1.0 + diurnal_amplitude * np.sin(phase))
    elif pattern == "flash_crowd":
        if hot_kernel not in kernel_pool:
            raise ConfigurationError(
                f"hot kernel {hot_kernel!r} is not in the pool "
                f"{tuple(kernel_pool)}")
        length = max(1, int(round(crowd_fraction * job_count)))
        start = int(rng.integers(job_count // 4,
                                 max(job_count // 4 + 1,
                                     job_count - length)))
        window = slice(start, start + length)
        gaps[window] = np.maximum(1.0, gaps[window] / crowd_surge)
        hot = rng.random(length) < 0.85
        kernel_index[window] = np.where(
            hot, list(kernel_pool).index(hot_kernel), kernel_index[window])
    arrivals = np.cumsum(np.maximum(1, np.rint(gaps).astype(np.int64)))

    work = rng.integers(min_work, max_work + 1, job_count)
    values = rng.choice(np.array([1.0, 2.0, 4.0]), size=job_count,
                        p=[0.5, 0.3, 0.2])
    seeds = rng.integers(0, 1 << 62, job_count)
    return [SyntheticJob(job_id=index, arrival_cycle=int(arrivals[index]),
                         kernel=kernel_pool[int(kernel_index[index])],
                         work_units=int(work[index]),
                         seed=int(seeds[index]),
                         value=float(values[index]))
            for index in range(job_count)]
