"""The event-driven fleet runtime: datacenter-scale serving in virtual time.

:func:`simulate_fleet` replays a job trace against a fleet of
:class:`~repro.serve.soc.ServingSoC` instances, jumping from event to
event on the deterministic heap of :mod:`repro.fleet.events` instead of
stepping PR-5's scan loop — a 100k-job trace over hundreds of SoCs runs
in seconds of wallclock while staying **bit-identical** run to run.

Scheduling is two-level, the classic datacenter split:

1. a cluster **balancer** (:mod:`repro.fleet.balancer`) assigns every
   arrival to one SoC's bounded queue;
2. the per-SoC **policy** — PR-5's :mod:`repro.serve.policies`, reused
   unchanged — picks what that SoC dispatches next, with the same aging
   guard and batch-growing rules as :func:`repro.serve.runtime.serve`.

Between the two, the runtime layers the fleet mechanisms:

* **work stealing** — an idle SoC takes a policy-selected batch from the
  deepest queue, paying a migration priced on the *cluster* NoC
  (:meth:`~repro.noc.topology.Topology.transfer_latency` over the batch's
  input bits);
* **SLO-aware shedding** — when a queue's predicted completion overruns
  ``slo_target_p99``, the lowest-value (youngest first) work is shed at
  admission and counted in the ledger;
* **autoscaling** — SoCs idle past ``idle_timeout`` power-gate through
  epoch-validated GATE events and wake (paying ``wake_latency``) when
  work lands on them, with static energy through
  :func:`repro.power.models.soc_static_energy`;
* **predictive prewarm** — a windowed arrival-mix predictor
  (:mod:`repro.fleet.prewarm`) keeps the likely-next kernels compiled in
  the shared flow cache.

Every mechanism only moves *where and when* a job executes — never what
it computes — so each completed job's payload digest equals the naive
serial execution of the same trace (the PR-5 discipline, enforced at
fleet scale by the randomized conformance suite).

Event order at one virtual cycle is fixed: WAKE, COMPLETION and GATE
events drain before ARRIVALs, arrivals are admitted in ``(arrival,
job_id)`` order, and only then does the dispatch phase visit SoCs that
need attention (in index order).  The dispatch phase touches a *ready
set* — never the whole fleet — which is what keeps a 256-SoC run linear
in events rather than ``events x SoCs``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.exceptions import ConfigurationError
from repro.filters.fir import FIR_INPUT_BITS
from repro.fleet.autoscale import Autoscaler
from repro.fleet.balancer import Balancer, balancer_by_name
from repro.fleet.events import ARRIVAL, COMPLETION, GATE, WAKE, EventHeap
from repro.fleet.ledger import JobLedger
from repro.fleet.prewarm import PrewarmDriver
from repro.fleet.synthetic import execute_fleet_batch
from repro.noc.topology import Topology, topology_by_name
from repro.noc.traffic import FLIT_BITS, PIXEL_BITS
from repro.obs import tracer as obs_tracer
from repro.power.models import noc_transfer_energy, serving_compute_energy
from repro.serve.kernels import KernelLibrary
from repro.serve.policies import policy_by_name
from repro.serve.soc import ServingSoC


@dataclass
class FleetSettings:
    """Knobs of one fleet run (superset of PR-5's :class:`ServeSettings`)."""

    balancer: str = "jsq"
    policy: str = "fifo"
    soc_count: int = 4
    queue_capacity: int = 64
    max_batch: int = 8
    #: Intra-SoC NoC (prices reconfiguration and result streams).
    topology_name: str = "mesh"
    placement_strategy: str = "spread"
    configuration_bus_bits: int = 8
    #: Cluster-level NoC between SoCs (prices stolen-work migrations).
    cluster_topology_name: str = "mesh"
    starvation_limit: int = 1_000_000
    batch_setup_cycles: int = 64
    #: PR-5-style reactive prewarm of each admitted job's kernels.
    admission_prewarm: bool = False
    #: Windowed arrival-mix prediction driving periodic prewarms.
    predictive_prewarm: bool = True
    prewarm_window: int = 64
    prewarm_top_k: int = 4
    prewarm_interval: int = 16
    #: Idle SoCs steal policy-selected batches from the deepest queue.
    steal: bool = True
    steal_threshold: int = 2
    #: Shed lowest-value queued work once a queue's predicted completion
    #: exceeds this many cycles (``None`` disables shedding).
    slo_target_p99: Optional[int] = None
    #: Power-gate SoCs idle past ``idle_timeout`` (wake costs latency).
    autoscale: bool = False
    idle_timeout: int = 200_000
    wake_latency: int = 5_000
    min_awake: int = 1

    def __post_init__(self) -> None:
        if self.soc_count <= 0:
            raise ConfigurationError("the fleet needs at least one SoC")
        if self.queue_capacity <= 0:
            raise ConfigurationError("the queue needs room for one job")
        if self.max_batch <= 0:
            raise ConfigurationError("batches need at least one slot")
        if self.starvation_limit < 0 or self.batch_setup_cycles < 0:
            raise ConfigurationError(
                "starvation limit and batch setup must be non-negative")
        if self.steal_threshold < 1:
            raise ConfigurationError("steal_threshold must be >= 1")
        if self.slo_target_p99 is not None and self.slo_target_p99 <= 0:
            raise ConfigurationError("slo_target_p99 must be positive cycles")
        if self.idle_timeout <= 0 or self.wake_latency < 0:
            raise ConfigurationError(
                "idle_timeout must be positive and wake_latency non-negative")
        if not 1 <= self.min_awake <= self.soc_count:
            raise ConfigurationError(
                f"min_awake must be in [1, {self.soc_count}], "
                f"got {self.min_awake}")


class SocSlot:
    """One fleet position: a serving SoC, its bounded queue, and counters."""

    def __init__(self, index: int, soc: ServingSoC, power) -> None:
        self.index = index
        self.soc = soc
        self.power = power
        self.queue: List = []
        #: Summed service estimates of queued jobs (SLO prediction input).
        self.backlog_cycles = 0
        #: Summed batch service time (static-energy accounting input).
        self.busy_cycles = 0
        #: Batches this SoC stole from other queues.
        self.steals = 0
        #: Virtual cycle of the last enqueue/dispatch/wake touching this
        #: SoC (what the autoscaler's idle checks measure against).
        self.last_activity = 0

    @property
    def awake(self) -> bool:
        """True iff the SoC can dispatch right now (balancer input)."""
        return self.power.awake

    def __repr__(self) -> str:
        return (f"SocSlot({self.index}, depth={len(self.queue)}, "
                f"state={self.power.state!r}, free_at={self.soc.free_at})")


def job_input_bits(job) -> int:
    """Bits a queue migration of ``job`` ships over the cluster NoC."""
    bits = getattr(job, "input_bits", None)
    if bits is not None:
        return int(bits)
    kind = getattr(job, "kind", None)
    if kind in ("encode", "gop"):
        height, width = job.frame_shape
        return len(job.frames) * height * width * PIXEL_BITS
    if kind == "dct":
        return int(job.blocks.shape[0]) * 64 * PIXEL_BITS
    if kind == "fir":
        return int(job.samples.size) * FIR_INPUT_BITS
    raise ConfigurationError(
        f"cannot size the migration payload of job kind {kind!r}")


@dataclass
class FleetReport:
    """Everything one fleet run produced."""

    settings: FleetSettings
    ledger: JobLedger
    slots: List[SocSlot] = field(default_factory=list)
    batches: int = 0
    makespan_cycles: int = 0
    events_processed: int = 0
    steals: int = 0
    migrated_jobs: int = 0
    migration_cycles: int = 0
    migration_energy: float = 0.0
    reconfigurations: int = 0
    reconfiguration_bits: int = 0
    reconfiguration_cycles: int = 0
    reconfiguration_energy: float = 0.0
    gatings: int = 0
    autoscale: Dict[str, float] = field(default_factory=dict)
    prewarm: Dict[str, int] = field(default_factory=dict)

    @property
    def submitted(self) -> int:
        """Jobs that entered the cluster."""
        return self.ledger.submitted

    @property
    def completed(self) -> int:
        """Jobs served to completion."""
        return self.ledger.completed

    @property
    def rejected(self) -> int:
        """Jobs refused at admission (queue full fleet-wide)."""
        return self.ledger.rejected

    @property
    def shed(self) -> int:
        """Jobs evicted by SLO-aware admission."""
        return self.ledger.shed

    @property
    def digests(self) -> Dict[int, str]:
        """Payload content hash per completed job id (conformance anchor)."""
        return self.ledger.digests

    @property
    def conserved(self) -> bool:
        """Every submitted job resolved exactly once."""
        return (self.ledger.unresolved == 0
                and self.submitted == self.completed + self.rejected
                + self.shed)

    @property
    def mean_batch_size(self) -> float:
        """Average jobs per dispatch."""
        if not self.batches:
            return 0.0
        return self.completed / self.batches

    @property
    def total_energy(self) -> float:
        """Job energy (compute + NoC + reconfiguration + migration) plus
        the fleet's static idle/gated/wake energy."""
        return (self.ledger.total_energy
                + float(self.autoscale.get("static_energy", 0.0)))

    def latency_percentiles(self) -> Dict[str, float]:
        """p50/p95/p99 of completed-job latency in cycles."""
        return self.ledger.latency_percentiles()

    def throughput_jobs_per_megacycle(self) -> float:
        """Completed jobs per million virtual cycles of makespan."""
        if self.makespan_cycles <= 0:
            return 0.0
        return 1e6 * self.completed / self.makespan_cycles

    def summary(self) -> Dict[str, object]:
        """Flat headline numbers for reporting tables."""
        summary: Dict[str, object] = {
            "balancer": self.settings.balancer,
            "policy": self.settings.policy,
            "socs": self.settings.soc_count,
            "completed": self.completed,
            "rejected": self.rejected,
            "shed": self.shed,
            "batches": self.batches,
            "mean_batch": round(self.mean_batch_size, 2),
            "steals": self.steals,
            "migrated_jobs": self.migrated_jobs,
            "gatings": self.gatings,
            "makespan_cycles": self.makespan_cycles,
            "throughput_jobs_per_mcycle": round(
                self.throughput_jobs_per_megacycle(), 3),
            "reconfigurations": self.reconfigurations,
            "static_saved": round(
                float(self.autoscale.get("saved", 0.0)), 1),
        }
        for key, value in self.latency_percentiles().items():
            summary[f"latency_{key}"] = int(value)
        return summary


class _FleetSimulation:
    """One run's mutable state; :func:`simulate_fleet` drives it."""

    def __init__(self, jobs: Sequence, settings: FleetSettings,
                 library: KernelLibrary) -> None:
        self.settings = settings
        self.library = library
        self.trace = sorted(jobs, key=lambda job: (job.arrival_cycle,
                                                   job.job_id))
        self.ledger = JobLedger(self.trace)
        self.policy = policy_by_name(settings.policy)
        self.balancer: Balancer = balancer_by_name(settings.balancer)
        self.scaler = Autoscaler(settings.soc_count,
                                 enabled=settings.autoscale,
                                 idle_timeout=settings.idle_timeout,
                                 wake_latency=settings.wake_latency,
                                 min_awake=settings.min_awake)
        self.slots = []
        for index in range(settings.soc_count):
            soc = ServingSoC(
                index, library=library,
                topology_name=settings.topology_name,
                placement_strategy=settings.placement_strategy,
                configuration_bus_bits=settings.configuration_bus_bits)
            soc.fleet_size = settings.soc_count
            self.slots.append(SocSlot(index, soc, self.scaler.states[index]))
        self.cluster: Topology = topology_by_name(
            settings.cluster_topology_name, settings.soc_count)
        self.driver: Optional[PrewarmDriver] = None
        if settings.predictive_prewarm:
            self.driver = PrewarmDriver(library,
                                        window=settings.prewarm_window,
                                        top_k=settings.prewarm_top_k,
                                        interval=settings.prewarm_interval)
        self.heap = EventHeap()
        self.ready: Set[int] = set()
        self.idle_thieves: Set[int] = set()
        # Numpy mirrors of per-slot state, kept in lockstep with the
        # slots so balancer fast paths and victim picking are one
        # vectorized reduction instead of a fleet-wide Python scan.
        self._qlen = np.zeros(settings.soc_count, dtype=np.int32)
        self._free_at_arr = np.zeros(settings.soc_count, dtype=np.int64)
        self._asleep = np.zeros(settings.soc_count, dtype=np.int8)
        self._estimates: Dict[int, int] = {}
        self._gate_epochs: Dict[int, int] = {}
        self._arrival_index = 0
        self.report = FleetReport(settings=settings, ledger=self.ledger,
                                  slots=self.slots)
        self.last_completion = 0
        self.clock = 0
        # Bound once per run: the event loop is the hottest path in the
        # repo, and a module-global lookup per event would show up.
        self._tracer = obs_tracer.TRACER

    # -- helpers -------------------------------------------------------------
    def _estimate(self, job) -> int:
        estimate = self._estimates.get(job.job_id)
        if estimate is None:
            estimate = self._estimates[job.job_id] = job.service_estimate()
        return estimate

    def _arrivals_pending(self) -> bool:
        return self._arrival_index < len(self.trace)

    def _push_next_arrival(self) -> None:
        if self._arrivals_pending():
            job = self.trace[self._arrival_index]
            self.heap.push(job.arrival_cycle, ARRIVAL, job.job_id)

    # -- autoscaling ---------------------------------------------------------
    def _maybe_schedule_gate(self, slot: SocSlot, now: int) -> None:
        """Arm one idle check for a just-idled SoC (while work remains)."""
        if (not self.settings.autoscale or not self._arrivals_pending()
                or not slot.power.awake or slot.queue
                or slot.soc.free_at > now
                or slot.index in self._gate_epochs):
            return
        self._gate_epochs[slot.index] = self.scaler.idle_check_epoch(
            slot.index)
        self.heap.push(now + self.settings.idle_timeout, GATE, slot.index)

    def _handle_gate(self, index: int, now: int) -> None:
        epoch = self._gate_epochs.pop(index, None)
        slot = self.slots[index]
        idle = (not slot.queue and slot.power.awake
                and slot.soc.free_at <= now)
        if epoch is not None and self.scaler.try_gate(index, epoch, now,
                                                      idle):
            self.report.gatings += 1
            self.idle_thieves.discard(index)
            self._asleep[index] = 1
            tracer = self._tracer
            if tracer.enabled:
                tracer.count("fleet.gatings")
                tracer.virtual_event("fleet.gate", "fleet", now,
                                     {"soc": index})
        else:
            # The check went stale (work touched the SoC since it was
            # armed) — re-arm from the current idle stretch, if any.
            self._maybe_schedule_gate(slot, now)

    # -- admission -----------------------------------------------------------
    def _admit(self, job, now: int) -> None:
        tracer = self._tracer
        if self.driver is not None:
            firings = self.driver.firings
            self.driver.observe(list(job.kernels.values()))
            if tracer.enabled and self.driver.firings > firings:
                tracer.count("fleet.prewarms")
                tracer.virtual_event("fleet.prewarm", "fleet", now, None)
        if self.settings.admission_prewarm:
            self.library.prewarm(list(job.kernels.values()))
        choice = self.balancer.assign_vectorized(
            job, self._qlen, self._free_at_arr, self._asleep, now)
        if choice is None:
            choice = self.balancer.assign(job, self.slots, now)
        if not 0 <= choice < len(self.slots):
            raise ConfigurationError(
                f"balancer {self.balancer.name!r} chose SoC {choice} in a "
                f"fleet of {len(self.slots)}")
        slot = self.slots[choice]
        if len(slot.queue) >= self.settings.queue_capacity:
            # Balancer's pick is full: fall back to the genuinely
            # shortest queue before rejecting (bounds worst-case loss of
            # load-blind balancers to what the fleet truly cannot hold).
            fallback = min(range(len(self.slots)),
                           key=lambda i: (len(self.slots[i].queue), i))
            slot = self.slots[fallback]
            if len(slot.queue) >= self.settings.queue_capacity:
                self.ledger.mark_rejected(job.job_id)
                if tracer.enabled:
                    tracer.count("fleet.rejected")
                    tracer.virtual_event("fleet.reject", "fleet", now,
                                         {"job": job.job_id})
                return
        if (self.settings.slo_target_p99 is not None
                and not self._admit_slo(slot, job, now)):
            return
        self._enqueue(slot, job, now)

    def _admit_slo(self, slot: SocSlot, job, now: int) -> bool:
        """Shed lowest-value work until the queue meets the SLO target.

        Predicted completion of the arrival = remaining service of the
        running batch + wake latency (if the SoC must wake) + dispatch
        overhead + queued backlog + the arrival's own service.  While it
        overruns the target, the lowest-value candidate (youngest first
        among equals, the arrival included) is shed.  Returns ``True``
        iff the arrival itself survived.
        """
        target = self.settings.slo_target_p99
        wake = (0 if slot.power.awake else self.scaler.wake_latency)
        fixed = (max(0, slot.soc.free_at - now) + wake
                 + self.settings.batch_setup_cycles + self._estimate(job))
        tracer = self._tracer
        while fixed + slot.backlog_cycles > target:
            victim = min(
                slot.queue + [job],
                key=lambda j: (float(getattr(j, "value", 1.0)),
                               -j.arrival_cycle, -j.job_id))
            self.ledger.mark_shed(victim.job_id)
            if tracer.enabled:
                tracer.count("fleet.sheds")
                tracer.virtual_event("fleet.shed", "fleet", now,
                                     {"job": victim.job_id,
                                      "soc": slot.index})
            if victim is job:
                return False
            slot.queue.remove(victim)
            slot.backlog_cycles -= self._estimate(victim)
            self._qlen[slot.index] -= 1
        return True

    def _enqueue(self, slot: SocSlot, job, now: int) -> None:
        slot.queue.append(job)
        slot.backlog_cycles += self._estimate(job)
        self._qlen[slot.index] += 1
        slot.last_activity = now
        self.scaler.note_activity(slot.index)
        self.idle_thieves.discard(slot.index)
        wake_ready = self.scaler.request_wake(slot.index, now)
        if wake_ready is not None:
            self.heap.push(wake_ready, WAKE, slot.index)
        if slot.power.awake and slot.soc.free_at <= now:
            self.ready.add(slot.index)
        elif (self.settings.steal and self.idle_thieves
              and len(slot.queue) >= self.settings.steal_threshold):
            # The owner cannot drain this queue right now; give idle
            # SoCs a dispatch-phase look at stealing from it.
            self.ready.update(self.idle_thieves)

    # -- dispatch ------------------------------------------------------------
    def _select_batch(self, owner: SocSlot, executing_soc: ServingSoC,
                      now: int) -> List:
        """PR-5 batch selection (aging guard, then policy, then batch-key
        mates in queue order) over ``owner``'s queue, scored against the
        SoC that will actually execute (the thief's, when stealing)."""
        queue = owner.queue
        overdue = [i for i in range(len(queue))
                   if now - queue[i].arrival_cycle
                   > self.settings.starvation_limit]
        if overdue:
            chosen = min(overdue, key=lambda i: (queue[i].arrival_cycle,
                                                 queue[i].job_id))
        else:
            chosen = self.policy.select(queue, executing_soc, now)
            if not 0 <= chosen < len(queue):
                raise ConfigurationError(
                    f"policy {self.policy.name!r} selected index {chosen} "
                    f"outside the queue of {len(queue)}")
        selected = queue[chosen]
        mates = [job for job in queue if job is not selected
                 and job.batch_key == selected.batch_key]
        batch = [selected] + mates[:self.settings.max_batch - 1]
        for job in batch:
            queue.remove(job)
            owner.backlog_cycles -= self._estimate(job)
        self._qlen[owner.index] -= len(batch)
        return batch

    def _pick_victim(self, thief: SocSlot) -> Optional[SocSlot]:
        """Deepest stealable queue (lowest index on ties), or ``None``.

        One vectorized argmax — the thief's own queue is empty when this
        is called, so it can never out-rank a stealable victim.
        """
        victim_index = int(np.argmax(self._qlen))
        if self._qlen[victim_index] < self.settings.steal_threshold:
            return None
        return self.slots[victim_index]

    def _attempt_dispatch(self, index: int, now: int) -> None:
        slot = self.slots[index]
        if not slot.power.awake or slot.soc.free_at > now:
            return
        migration: Optional[Tuple[int, float]] = None
        if slot.queue:
            batch = self._select_batch(slot, slot.soc, now)
        elif self.settings.steal:
            victim = self._pick_victim(slot)
            if victim is None:
                self._go_idle(slot, now)
                return
            batch = self._select_batch(victim, slot.soc, now)
            bits = sum(job_input_bits(job) for job in batch)
            flits = -(-bits // FLIT_BITS) if bits > 0 else 0
            migration = (
                self.cluster.transfer_latency(victim.index, slot.index,
                                              flits),
                noc_transfer_energy(*self.cluster.transfer_aggregates(
                    victim.index, slot.index, flits)))
            slot.steals += 1
            self.scaler.note_activity(victim.index)
            victim.last_activity = now
            tracer = self._tracer
            if tracer.enabled:
                tracer.count("fleet.steals")
                tracer.virtual_event("fleet.steal", "fleet", now,
                                     {"victim": victim.index,
                                      "thief": slot.index,
                                      "jobs": len(batch)})
        else:
            self._go_idle(slot, now)
            return
        self._execute(slot, batch, now, migration)

    def _go_idle(self, slot: SocSlot, now: int) -> None:
        self.idle_thieves.add(slot.index)
        self._maybe_schedule_gate(slot, now)

    def _execute(self, slot: SocSlot, batch: List, now: int,
                 migration: Optional[Tuple[int, float]]) -> None:
        reconfig_cycles, reconfig_energy, switches = (
            slot.soc.load_kernels(batch[0]))
        results = execute_fleet_batch(batch)
        mig_cycles, mig_energy = migration or (0, 0.0)
        service = (self.settings.batch_setup_cycles + reconfig_cycles
                   + mig_cycles)
        output_costs = []
        for result in results:
            cycles, energy = slot.soc.result_cost(result.output_bits)
            output_costs.append((cycles, energy))
            service += result.compute_cycles + cycles
        completion = now + max(1, service)
        reconfig_share = reconfig_energy / len(batch)
        mig_share = mig_energy / len(batch)
        for job, result, (out_cycles, out_energy) in zip(batch, results,
                                                         output_costs):
            energy = (serving_compute_energy(result.sad_operations,
                                             result.dct_blocks,
                                             result.filter_samples)
                      + out_energy + reconfig_share + mig_share)
            self.ledger.mark_completed(
                job.job_id, soc=slot.index, start=now,
                completion=completion,
                compute_cycles=result.compute_cycles,
                output_bits=result.output_bits,
                batch_id=self.report.batches, batch_size=len(batch),
                energy=energy, digest=result.digest,
                migrated=migration is not None)
        slot.soc.free_at = completion
        self._free_at_arr[slot.index] = completion
        slot.soc.jobs_executed += len(batch)
        slot.soc.batches_executed += 1
        slot.busy_cycles += completion - now
        slot.last_activity = completion
        self.scaler.note_activity(slot.index)
        self.idle_thieves.discard(slot.index)
        self.heap.push(completion, COMPLETION, slot.index)
        self.last_completion = max(self.last_completion, completion)
        report = self.report
        tracer = self._tracer
        if tracer.enabled:
            tracer.count("fleet.batches")
            tracer.observe("fleet.batch_size", len(batch))
            tracer.virtual_span("fleet.batch", "fleet", now,
                                completion - now,
                                {"batch": report.batches,
                                 "soc": slot.index, "jobs": len(batch),
                                 "stolen": int(migration is not None)})
        report.batches += 1
        report.reconfigurations += switches
        report.reconfiguration_cycles += reconfig_cycles
        report.reconfiguration_energy += reconfig_energy
        if migration is not None:
            report.steals += 1
            report.migrated_jobs += len(batch)
            report.migration_cycles += mig_cycles
            report.migration_energy += mig_energy

    # -- the loop ------------------------------------------------------------
    def run(self) -> FleetReport:
        if not self.trace:
            return self.report
        first_arrival = self.trace[0].arrival_cycle
        tracer_enabled = self._tracer.enabled
        self._push_next_arrival()
        for slot in self.slots:
            self._maybe_schedule_gate(slot, 0)
        while self.heap:
            now = self.heap.peek_time()
            self.clock = now
            # Drain every event at this cycle (WAKE < COMPLETION < GATE
            # < ARRIVAL), then give the touched SoCs one dispatch look —
            # so a same-cycle burst can batch and a SoC freed at ``now``
            # serves jobs arriving at ``now``.
            while self.heap and self.heap.peek_time() == now:
                _, kind, key = self.heap.pop()
                self.report.events_processed += 1
                if kind == ARRIVAL:
                    job = self.trace[self._arrival_index]
                    self._arrival_index += 1
                    self._push_next_arrival()
                    if tracer_enabled:
                        self._tracer.count("fleet.arrivals")
                        self._tracer.virtual_event("fleet.arrival", "fleet",
                                                   now, {"job": job.job_id})
                    self._admit(job, now)
                elif kind == COMPLETION:
                    self.slots[key].last_activity = now
                    self.ready.add(key)
                elif kind == WAKE:
                    self.scaler.complete_wake(key)
                    self._asleep[key] = 0
                    self.slots[key].last_activity = now
                    self.ready.add(key)
                    if tracer_enabled:
                        self._tracer.count("fleet.wakes")
                        self._tracer.virtual_event("fleet.wake", "fleet",
                                                   now, {"soc": key})
                else:
                    self._handle_gate(key, now)
            for index in sorted(self.ready):
                self._attempt_dispatch(index, now)
            self.ready.clear()
        if self.ledger.unresolved:
            raise ConfigurationError(
                f"fleet run left {self.ledger.unresolved} jobs unresolved")
        end = max(self.last_completion, self.clock)
        self.scaler.finalize(end)
        report = self.report
        report.makespan_cycles = max(0, self.last_completion - first_arrival)
        report.reconfiguration_bits = sum(
            slot.soc.reconfiguration_bits_streamed for slot in self.slots)
        report.autoscale = self.scaler.static_energy(
            np.fromiter((slot.busy_cycles for slot in self.slots),
                        dtype=np.int64, count=len(self.slots)), end)
        if self.driver is not None:
            report.prewarm = self.driver.stats()
        return report


def simulate_fleet(jobs: Sequence,
                   settings: Optional[FleetSettings] = None,
                   library: Optional[KernelLibrary] = None) -> FleetReport:
    """Serve a trace through the event-driven fleet and return the ledger.

    ``jobs`` is any iterable of :mod:`repro.serve.jobs` or
    :mod:`repro.fleet.synthetic` instances; the trace is replayed in
    ``(arrival_cycle, job_id)`` order.  Same trace, same settings ⇒
    bit-identical report, and every completed payload digest equals
    naive serial execution of the same jobs.
    """
    return _FleetSimulation(jobs, settings or FleetSettings(),
                            library or KernelLibrary()).run()
