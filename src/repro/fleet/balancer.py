"""Cluster-level load balancers: the first of the two scheduling levels.

The fleet runtime schedules in two stages, the classic datacenter split:
a **balancer** assigns every arriving job to one SoC's bounded queue
(this module), and the per-SoC **policy** — reused unchanged from
:mod:`repro.serve.policies` — picks what that SoC dispatches next.  Work
stealing then corrects balancer mistakes after the fact.

All balancers are deterministic; ties break toward the lowest SoC index.
Each receives the full slot list (queue, backlog, wake state, the
underlying :class:`~repro.serve.soc.ServingSoC`), so a balancer can be
as blind (round-robin) or as informed (kernel residency) as it likes.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Type

import numpy as np

from repro.core.exceptions import ConfigurationError


def _busy(slot, now: int) -> int:
    """1 if the slot's SoC is mid-batch at ``now`` (counts as queue depth)."""
    return 1 if slot.soc.free_at > now else 0


def _asleep(slot) -> int:
    """1 if dispatching here first pays a wake-up (autoscaler gated it)."""
    return 0 if slot.awake else 1


class Balancer:
    """Base balancer: chooses the SoC queue an arriving job joins."""

    name = "balancer"

    def assign(self, job, slots: Sequence, now: int) -> int:
        """Index into ``slots`` of the queue ``job`` should join."""
        raise NotImplementedError

    def assign_vectorized(self, job, queue_depth: np.ndarray,
                          free_at: np.ndarray, asleep: np.ndarray,
                          now: int) -> Optional[int]:
        """Fast path over the runtime's state arrays, or ``None``.

        The runtime mirrors every slot's queue depth, ``free_at`` and
        gating flag in numpy arrays; a balancer that can decide from
        those alone returns the chosen index here and skips the per-slot
        Python scan — the difference between linear and quadratic time
        at 256 SoCs.  Must agree with :meth:`assign` decision for
        decision (pinned by the tests).
        """
        return None

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class JoinShortestQueue(Balancer):
    """Join the shortest queue (in-service batch counts as one slot).

    The textbook cluster balancer: queue depth first, then prefer awake
    SoCs (a gated SoC costs a wake-up), then the lowest index.
    """

    name = "jsq"

    def assign(self, job, slots: Sequence, now: int) -> int:
        return min(range(len(slots)),
                   key=lambda i: (len(slots[i].queue) + _busy(slots[i], now),
                                  _asleep(slots[i]), i))

    def assign_vectorized(self, job, queue_depth: np.ndarray,
                          free_at: np.ndarray, asleep: np.ndarray,
                          now: int) -> Optional[int]:
        # Lexicographic (depth, asleep) packed into one integer score;
        # np.argmin keeps the lowest-index tie-break of :meth:`assign`.
        score = (queue_depth + (free_at > now)) * 2 + asleep
        return int(np.argmin(score))


class KernelAffinityBalancer(Balancer):
    """Route jobs to SoCs already holding their kernels.

    Scores each SoC by the measured bitstream bits it would stream to
    serve the job right now (exact, via the shared kernel library — the
    same score the PR-5 ``affinity`` policy uses per queue), breaking
    ties by queue depth so residency cannot starve the fleet onto one
    SoC.  This is the balancer the paper's time-multiplexing story asks
    for at cluster level: same-kernel tenants pool onto the same
    hardware and reconfiguration traffic collapses.
    """

    name = "kernel_affinity"

    def assign(self, job, slots: Sequence, now: int) -> int:
        return min(range(len(slots)),
                   key=lambda i: (slots[i].soc.reconfiguration_bits(job),
                                  len(slots[i].queue) + _busy(slots[i], now),
                                  _asleep(slots[i]), i))


class RoundRobinBalancer(Balancer):
    """Stripe arrivals across the fleet in admission order.

    The residency- and load-blind baseline: an internal counter advances
    one SoC per assignment regardless of queue state, so imbalance under
    heterogeneous job sizes is exactly what work stealing must repair.
    """

    name = "round_robin"

    def __init__(self) -> None:
        self._next = 0

    def assign(self, job, slots: Sequence, now: int) -> int:
        index = self._next % len(slots)
        self._next += 1
        return index


#: Balancer classes by short name.
BALANCERS: Dict[str, Type[Balancer]] = {
    balancer.name: balancer
    for balancer in (JoinShortestQueue, KernelAffinityBalancer,
                     RoundRobinBalancer)}


def balancer_by_name(name: str) -> Balancer:
    """Instantiate a registered balancer from its short name."""
    try:
        return BALANCERS[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown load balancer {name!r}; known: "
            f"{sorted(BALANCERS)}") from None
