"""Partitioned fleet simulation: SoC index ranges sharded across processes.

:func:`repro.fleet.runtime.simulate_fleet` is one Python event loop — at
256 SoCs it is the single-process ceiling the ROADMAP names.  This
module statically partitions a fleet into disjoint SoC index ranges,
routes every job to one partition by a deterministic content-independent
rule (``job_id mod partitions``), simulates each partition with the
*unchanged* event-driven runtime — in worker processes via
:mod:`repro.par`, or inline for the serial reference — and merges the
per-partition event streams deterministically at the partition
boundaries: completion events heap-merge on ``(completion_cycle,
partition, job_id)``, counters sum, the makespan spans the earliest
arrival to the latest completion.

Bit-identity is preserved by construction: a partition *is* a fleet run
(the existing serial-conformance discipline applies to each one
verbatim), partitions share no mutable state, and the job→partition map
does not depend on scheduling — so the merged digests equal
:func:`~repro.fleet.synthetic.execute_fleet_serial` over the whole
trace, and ``parallel="processes"`` equals ``parallel="serial"`` report
field for report field.  The trade against one shared fleet is explicit:
balancing and stealing stop crossing partition boundaries, which is the
price of linear core scaling.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field, replace
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.exceptions import ConfigurationError
from repro.fleet.ledger import percentile_array
from repro.fleet.runtime import FleetReport, FleetSettings, simulate_fleet
from repro.obs import tracer as obs_tracer
from repro.par.pool import ProcessBackend, available_cpus, run_tasks

#: Execution backends :func:`simulate_fleet_partitioned` accepts.
PARTITION_BACKENDS = ("serial", "processes")


def partition_jobs(jobs: Sequence, partitions: int) -> List[List]:
    """Route jobs to partitions by ``job_id mod partitions``.

    Content-independent and scheduling-independent — the rule is the
    partitioned mode's determinism anchor, so it must never consult
    queue depths or arrival times.  Order within a partition follows the
    input order.
    """
    if partitions <= 0:
        raise ConfigurationError("need at least one partition")
    shards: List[List] = [[] for _ in range(partitions)]
    for job in jobs:
        shards[job.job_id % partitions].append(job)
    return shards


def partition_soc_counts(soc_count: int, partitions: int) -> List[int]:
    """Split ``soc_count`` SoCs into contiguous per-partition ranges.

    Near-even: the first ``soc_count mod partitions`` partitions hold one
    extra SoC.  A fleet cannot be cut finer than one SoC per partition.
    """
    if partitions <= 0:
        raise ConfigurationError("need at least one partition")
    if soc_count < partitions:
        raise ConfigurationError(
            f"cannot split {soc_count} SoCs into {partitions} partitions: "
            f"every partition needs at least one SoC")
    size, remainder = divmod(soc_count, partitions)
    return [size + (1 if index < remainder else 0)
            for index in range(partitions)]


def _partition_settings(settings: FleetSettings,
                        soc_count: int) -> FleetSettings:
    """The sub-fleet's settings: same knobs, its own SoC range."""
    return replace(settings, soc_count=soc_count,
                   min_awake=min(settings.min_awake, soc_count))


@dataclass
class PartitionResult:
    """The picklable extract of one partition's :class:`FleetReport`.

    Everything the merged report needs crosses the process boundary —
    the full report (with its live SoC objects) stays in the worker.
    """

    index: int
    soc_count: int
    submitted: int
    completed: int
    rejected: int
    shed: int
    batches: int
    steals: int
    migrated_jobs: int
    gatings: int
    reconfigurations: int
    events_processed: int
    first_arrival: int
    last_completion: int
    total_energy: float
    digests: Dict[int, str] = field(default_factory=dict)
    latencies: List[int] = field(default_factory=list)
    #: Completion events ``(cycle, job_id)`` in partition event order.
    completions: List[Tuple[int, int]] = field(default_factory=list)


def _extract(index: int, settings: FleetSettings,
             report: FleetReport, jobs: Sequence) -> PartitionResult:
    ledger = report.ledger
    mask = ledger.completed_mask
    completions = sorted(
        (int(cycle), int(job_id))
        for cycle, job_id in zip(ledger.completion[mask], ledger.job_id[mask]))
    first_arrival = min((job.arrival_cycle for job in jobs), default=0)
    last_completion = int(ledger.completion[mask].max()) if mask.any() else 0
    return PartitionResult(
        index=index, soc_count=settings.soc_count,
        submitted=report.submitted, completed=report.completed,
        rejected=report.rejected, shed=report.shed,
        batches=report.batches, steals=report.steals,
        migrated_jobs=report.migrated_jobs, gatings=report.gatings,
        reconfigurations=report.reconfigurations,
        events_processed=report.events_processed,
        first_arrival=first_arrival, last_completion=last_completion,
        total_energy=report.total_energy,
        digests=dict(report.digests),
        latencies=[int(value) for value in ledger.latencies()],
        completions=completions)


def _simulate_partition(index: int, jobs: Sequence,
                        settings: FleetSettings) -> PartitionResult:
    """Worker body: one partition through the unchanged event runtime.

    Builds its own :class:`~repro.serve.kernels.KernelLibrary` — kernel
    compiles hit the worker cache warmed from the parent's export.
    """
    from repro.serve.kernels import KernelLibrary

    # The track scope labels this partition's lane in the merged trace;
    # tracks are excluded from trace_digest(), so serial and multiprocess
    # partitioned runs still hash identically.
    with obs_tracer.TRACER.track_scope(f"partition{index}"):
        report = simulate_fleet(jobs, settings, library=KernelLibrary())
    return _extract(index, settings, report, jobs)


@dataclass
class PartitionedFleetReport:
    """The deterministic merge of per-partition fleet runs."""

    settings: FleetSettings
    parallel: str
    partitions: List[PartitionResult]

    @property
    def submitted(self) -> int:
        """Jobs that entered the cluster, over all partitions."""
        return sum(part.submitted for part in self.partitions)

    @property
    def completed(self) -> int:
        """Jobs served to completion, over all partitions."""
        return sum(part.completed for part in self.partitions)

    @property
    def rejected(self) -> int:
        """Jobs refused at admission, over all partitions."""
        return sum(part.rejected for part in self.partitions)

    @property
    def shed(self) -> int:
        """Jobs evicted by SLO-aware admission, over all partitions."""
        return sum(part.shed for part in self.partitions)

    @property
    def conserved(self) -> bool:
        """Every submitted job resolved exactly once, fleet-wide."""
        return self.submitted == self.completed + self.rejected + self.shed

    @property
    def digests(self) -> Dict[int, str]:
        """Merged payload digests (job ids are disjoint across partitions)."""
        merged: Dict[int, str] = {}
        for part in self.partitions:
            merged.update(part.digests)
        return merged

    @property
    def events_processed(self) -> int:
        """Heap events drained, over all partitions."""
        return sum(part.events_processed for part in self.partitions)

    @property
    def total_energy(self) -> float:
        """Job plus static energy, over all partitions."""
        return sum(part.total_energy for part in self.partitions)

    @property
    def makespan_cycles(self) -> int:
        """Earliest arrival to latest completion across the whole fleet."""
        active = [part for part in self.partitions if part.submitted]
        if not active:
            return 0
        return max(0, max(part.last_completion for part in active)
                   - min(part.first_arrival for part in active))

    def completion_order(self) -> List[Tuple[int, int]]:
        """The merged completion event stream: ``(cycle, job_id)`` pairs.

        A deterministic heap-merge of the per-partition streams ordered
        by ``(cycle, job_id)`` — the fleet-wide timeline a single shared
        heap would publish for the same completions.
        """
        return list(heapq.merge(*(part.completions
                                  for part in self.partitions)))

    def latency_percentiles(self) -> Dict[str, float]:
        """p50/p95/p99 of completed-job latency over the merged fleet."""
        merged = np.concatenate(
            [np.asarray(part.latencies, dtype=np.int64)
             for part in self.partitions]) if self.partitions else (
            np.zeros(0, dtype=np.int64))
        return {"p50": percentile_array(merged, 0.50),
                "p95": percentile_array(merged, 0.95),
                "p99": percentile_array(merged, 0.99)}

    def summary(self) -> Dict[str, object]:
        """Flat headline numbers for reporting tables."""
        summary: Dict[str, object] = {
            "balancer": self.settings.balancer,
            "policy": self.settings.policy,
            "socs": self.settings.soc_count,
            "partitions": len(self.partitions),
            "parallel": self.parallel,
            "completed": self.completed,
            "rejected": self.rejected,
            "shed": self.shed,
            "batches": sum(part.batches for part in self.partitions),
            "steals": sum(part.steals for part in self.partitions),
            "gatings": sum(part.gatings for part in self.partitions),
            "makespan_cycles": self.makespan_cycles,
        }
        for key, value in self.latency_percentiles().items():
            summary[f"latency_{key}"] = int(value)
        return summary


def simulate_fleet_partitioned(jobs: Sequence,
                               settings: Optional[FleetSettings] = None,
                               *, partitions: Optional[int] = None,
                               parallel: str = "processes",
                               timeout: Optional[float] = None,
                               backend: Optional[ProcessBackend] = None
                               ) -> PartitionedFleetReport:
    """Simulate a fleet as disjoint SoC partitions, one process each.

    ``partitions`` defaults to ``min(cores, soc_count)``; with one core
    (or one partition) the serial path runs inline — the graceful
    fallback, since a single partition is exactly
    :func:`~repro.fleet.runtime.simulate_fleet`.  ``parallel`` may be
    ``"processes"`` or ``"serial"`` (the bit-identical inline
    reference); ``timeout`` and ``backend`` follow
    :func:`repro.par.pool.run_tasks`.
    """
    settings = settings or FleetSettings()
    if parallel not in PARTITION_BACKENDS:
        raise ConfigurationError(
            f"unknown parallel backend {parallel!r}; "
            f"expected one of {PARTITION_BACKENDS}")
    if partitions is None:
        partitions = max(1, min(available_cpus(), settings.soc_count))
    soc_counts = partition_soc_counts(settings.soc_count, partitions)
    shards = partition_jobs(jobs, partitions)
    per_partition = [_partition_settings(settings, count)
                     for count in soc_counts]

    tracer = obs_tracer.TRACER
    wall_started = perf_counter()
    if parallel == "serial" or partitions == 1:
        results = [_simulate_partition(index, shard, part_settings)
                   for index, (shard, part_settings)
                   in enumerate(zip(shards, per_partition))]
        report = PartitionedFleetReport(settings=settings, parallel=parallel,
                                        partitions=results)
    else:
        from repro.flow import cache as flow_cache

        tasks = [(index, shard, part_settings)
                 for index, (shard, part_settings)
                 in enumerate(zip(shards, per_partition))]
        labels = [f"fleet partition {index}/{partitions} "
                  f"({len(shard)} jobs, {part_settings.soc_count} SoCs)"
                  for index, shard, part_settings in tasks]
        results = run_tasks(_simulate_partition, tasks, labels,
                            workers=partitions, timeout=timeout,
                            cache=flow_cache.DEFAULT_CACHE, backend=backend)
        report = PartitionedFleetReport(settings=settings,
                                        parallel="processes",
                                        partitions=results)
    if tracer.enabled:
        tracer.wall_span_at("fleet.partitioned", "fleet", wall_started,
                            perf_counter() - wall_started,
                            {"partitions": partitions, "parallel": parallel})
    return report
