"""Vectorized job-state arrays: the fleet ledger in the engine idiom.

PR-5's runtime appends one :class:`JobRecord` dataclass per completed job
— fine for 36-job mixes, hostile at 100k jobs.  The fleet keeps every
per-job quantity in preallocated numpy arrays indexed by a dense row
(assigned in trace order), exactly like :mod:`repro.engine` keeps batch
state in ``(B,)`` value arrays: writes are O(1) scalar stores during the
event loop, and every statistic the report needs — latency percentiles,
energy sums, shed counts — is one vectorized reduction at the end.

The nearest-rank percentile rule is *identical* to
:func:`repro.serve.runtime.percentile` (the scalar anchor PR 5
established); :func:`percentile_array` is its ``np.sort`` counterpart and
the tests pin the two to each other.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.core.exceptions import ConfigurationError
from repro.serve.runtime import percentile as scalar_percentile

#: Job status codes held in :attr:`JobLedger.status`.
PENDING = 0      #: submitted, not yet resolved
COMPLETED = 1    #: served to completion
REJECTED = 2     #: refused at admission (queue full)
SHED = 3         #: evicted by SLO-aware admission to protect the p99

STATUS_NAMES = {PENDING: "pending", COMPLETED: "completed",
                REJECTED: "rejected", SHED: "shed"}


def percentile_array(values: np.ndarray, fraction: float) -> float:
    """Vectorized nearest-rank percentile, bit-equal to the scalar anchor.

    Applies the exact rank rule of :func:`repro.serve.runtime.percentile`
    to a numpy array via one ``np.sort`` — the tests assert the two
    implementations agree on random draws, so fleet-scale reports and
    PR-5 reports stay comparable number for number.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ConfigurationError("percentile fraction must be in [0, 1]")
    values = np.asarray(values)
    if values.size == 0:
        return 0.0
    ordered = np.sort(values, kind="stable")
    rank = max(1, -(-int(fraction * values.size * 1_000_000) // 1_000_000))
    return float(ordered[min(rank, values.size) - 1])


class JobLedger:
    """Dense per-job state for one fleet run.

    Rows are assigned in ``(arrival_cycle, job_id)`` trace order; the
    ``job_id`` column maps a row back to the trace and :meth:`row_of`
    maps a job id to its row.  All times are virtual cycles; a row's
    timing columns stay zero until the job completes.
    """

    def __init__(self, jobs: Sequence) -> None:
        count = len(jobs)
        self.job_id = np.fromiter((job.job_id for job in jobs),
                                  dtype=np.int64, count=count)
        if len(np.unique(self.job_id)) != count:
            raise ConfigurationError("job ids in a trace must be unique")
        self.arrival = np.fromiter((job.arrival_cycle for job in jobs),
                                   dtype=np.int64, count=count)
        self.value = np.fromiter(
            (float(getattr(job, "value", 1.0)) for job in jobs),
            dtype=np.float64, count=count)
        self.status = np.zeros(count, dtype=np.int8)
        self.soc = np.full(count, -1, dtype=np.int32)
        self.start = np.zeros(count, dtype=np.int64)
        self.completion = np.zeros(count, dtype=np.int64)
        self.compute_cycles = np.zeros(count, dtype=np.int64)
        self.output_bits = np.zeros(count, dtype=np.int64)
        self.batch_id = np.full(count, -1, dtype=np.int64)
        self.batch_size = np.zeros(count, dtype=np.int32)
        self.energy = np.zeros(count, dtype=np.float64)
        self.migrated = np.zeros(count, dtype=bool)
        #: Payload content hash per completed job id (conformance anchor).
        self.digests: Dict[int, str] = {}
        self._row = {int(job_id): row
                     for row, job_id in enumerate(self.job_id)}

    def __len__(self) -> int:
        return len(self.job_id)

    def row_of(self, job_id: int) -> int:
        """Dense row index of a job id."""
        try:
            return self._row[job_id]
        except KeyError:
            raise ConfigurationError(
                f"job {job_id} is not in this ledger") from None

    # -- event-loop writes -------------------------------------------------
    def mark_completed(self, job_id: int, *, soc: int, start: int,
                       completion: int, compute_cycles: int,
                       output_bits: int, batch_id: int, batch_size: int,
                       energy: float, digest: str,
                       migrated: bool = False) -> None:
        """Record one served job (exactly once per job)."""
        row = self.row_of(job_id)
        self._resolve(row, COMPLETED)
        self.soc[row] = soc
        self.start[row] = start
        self.completion[row] = completion
        self.compute_cycles[row] = compute_cycles
        self.output_bits[row] = output_bits
        self.batch_id[row] = batch_id
        self.batch_size[row] = batch_size
        self.energy[row] = energy
        self.migrated[row] = migrated
        self.digests[job_id] = digest

    def mark_rejected(self, job_id: int) -> None:
        """Record an admission rejection (queue full)."""
        self._resolve(self.row_of(job_id), REJECTED)

    def mark_shed(self, job_id: int) -> None:
        """Record an SLO shed."""
        self._resolve(self.row_of(job_id), SHED)

    def _resolve(self, row: int, status: int) -> None:
        if self.status[row] != PENDING:
            raise ConfigurationError(
                f"job {int(self.job_id[row])} already "
                f"{STATUS_NAMES[int(self.status[row])]}")
        self.status[row] = status

    # -- vectorized views --------------------------------------------------
    @property
    def completed_mask(self) -> np.ndarray:
        """Boolean row mask of completed jobs."""
        return self.status == COMPLETED

    def ids_with_status(self, status: int) -> List[int]:
        """Job ids holding one status, in trace order."""
        return [int(job_id) for job_id in self.job_id[self.status == status]]

    @property
    def submitted(self) -> int:
        """Jobs that entered the ledger."""
        return len(self.job_id)

    @property
    def completed(self) -> int:
        """Jobs served to completion."""
        return int(self.completed_mask.sum())

    @property
    def rejected(self) -> int:
        """Jobs refused at admission."""
        return int((self.status == REJECTED).sum())

    @property
    def shed(self) -> int:
        """Jobs evicted by SLO-aware admission."""
        return int((self.status == SHED).sum())

    @property
    def unresolved(self) -> int:
        """Jobs still pending (must be zero after a run)."""
        return int((self.status == PENDING).sum())

    def latencies(self) -> np.ndarray:
        """Arrival-to-completion cycles of completed jobs, in trace order."""
        mask = self.completed_mask
        return self.completion[mask] - self.arrival[mask]

    def wait_cycles(self) -> np.ndarray:
        """Arrival-to-dispatch cycles of completed jobs, in trace order."""
        mask = self.completed_mask
        return self.start[mask] - self.arrival[mask]

    def latency_percentiles(self) -> Dict[str, float]:
        """p50/p95/p99 of completed-job latency in cycles."""
        values = self.latencies()
        return {"p50": percentile_array(values, 0.50),
                "p95": percentile_array(values, 0.95),
                "p99": percentile_array(values, 0.99)}

    @property
    def total_energy(self) -> float:
        """Energy over all completed jobs (compute + NoC + migration)."""
        return float(self.energy[self.completed_mask].sum())

    @property
    def shed_value(self) -> float:
        """Summed value of shed jobs (what SLO admission gave up)."""
        return float(self.value[self.status == SHED].sum())

    @property
    def completed_value(self) -> float:
        """Summed value of completed jobs (what the fleet delivered)."""
        return float(self.value[self.completed_mask].sum())

    def check_scalar_percentile_parity(self, fraction: float) -> bool:
        """True iff the vectorized and scalar percentile rules agree on
        this ledger's latencies (used by tests and the benchmark)."""
        values = self.latencies()
        return (percentile_array(values, fraction)
                == scalar_percentile([int(v) for v in values], fraction))
