"""Predictive kernel prewarm from windowed arrival-mix statistics.

PR-5's runtime prewarms the flow cache for the kernels of each job *at
admission* — reactive, and at fleet scale wasteful: every arrival pays a
library round-trip even when the mix has not changed in thousands of
jobs.  The fleet instead watches the arrival mix through a sliding
window, and periodically drives
:meth:`repro.serve.kernels.KernelLibrary.prewarm` (and through it
:meth:`repro.flow.cache.FlowCache.prewarm`) with the kernels *predicted*
to keep arriving — the hot set stays placed-and-routed and
recency-protected in the shared cache while cold kernels age out
naturally.

Everything is deterministic: the window is a FIFO over arrival order and
the prediction ranks by ``(count desc, kernel name)``.
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Deque, Dict, List, Sequence

from repro.core.exceptions import ConfigurationError


class ArrivalMixPredictor:
    """Sliding-window kernel-frequency tracker with top-k prediction."""

    def __init__(self, window: int = 64, top_k: int = 4) -> None:
        if window <= 0:
            raise ConfigurationError("the prediction window needs >= 1 slot")
        if top_k <= 0:
            raise ConfigurationError("prediction needs top_k >= 1")
        self.window = window
        self.top_k = top_k
        self._recent: Deque[Sequence[str]] = deque()
        self._counts: Counter = Counter()
        self.observed = 0

    def observe(self, kernels: Sequence[str]) -> None:
        """Feed one arrival's kernel requirements into the window."""
        kernels = tuple(kernels)
        self._recent.append(kernels)
        self._counts.update(kernels)
        self.observed += 1
        if len(self._recent) > self.window:
            for kernel in self._recent.popleft():
                self._counts[kernel] -= 1
                if not self._counts[kernel]:
                    del self._counts[kernel]

    def predicted(self) -> List[str]:
        """The top-k kernels of the current window, deterministically ranked
        by ``(frequency desc, name)``."""
        ranked = sorted(self._counts.items(), key=lambda kv: (-kv[1], kv[0]))
        return [kernel for kernel, _ in ranked[:self.top_k]]

    def mix(self) -> Dict[str, int]:
        """Kernel counts currently inside the window."""
        return dict(self._counts)


class PrewarmDriver:
    """Connects a predictor to a kernel library on a fixed arrival cadence.

    Every ``interval`` observed arrivals the driver prewarm-compiles the
    predicted hot set through the shared flow cache.  The library
    memoises per-kernel results, so steady mixes cost a set lookup per
    firing; only a mix *shift* (a flash crowd switching the hot kernel)
    triggers real place-and-route work — which is exactly when paying it
    ahead of the dispatch path is worth it.
    """

    def __init__(self, library, window: int = 64, top_k: int = 4,
                 interval: int = 16) -> None:
        if interval <= 0:
            raise ConfigurationError("the prewarm cadence needs interval >= 1")
        self.library = library
        self.predictor = ArrivalMixPredictor(window=window, top_k=top_k)
        self.interval = interval
        self.firings = 0
        self.designs_compiled = 0
        self.cache_misses = 0

    def observe(self, kernels: Sequence[str]) -> None:
        """Observe one arrival; fire a prewarm on the cadence boundary."""
        self.predictor.observe(kernels)
        if self.predictor.observed % self.interval == 0:
            self.fire()

    def fire(self) -> Dict[str, int]:
        """Prewarm the predicted hot set now; returns the library's delta."""
        delta = self.library.prewarm(self.predictor.predicted())
        self.firings += 1
        self.designs_compiled += delta["designs"]
        self.cache_misses += delta["misses"]
        return delta

    def stats(self) -> Dict[str, int]:
        """Flat counters for the fleet report."""
        return {"prewarm_firings": self.firings,
                "prewarm_designs": self.designs_compiled,
                "prewarm_misses": self.cache_misses,
                "prewarm_window_kernels": len(self.predictor.mix())}
