"""repro.fleet: event-driven datacenter-scale serving on the SoC stack.

The fleet layer scales PR-5's single-cluster serving runtime to
hundreds of SoCs and 100k-job traces: a deterministic event heap in
virtual time (:mod:`~repro.fleet.events`), vectorized per-job state
(:mod:`~repro.fleet.ledger`), two-level scheduling
(:mod:`~repro.fleet.balancer` over the PR-5 policies), work stealing
with NoC-priced migration, SLO-aware shedding, predictive kernel
prewarm (:mod:`~repro.fleet.prewarm`) and autoscaling by power-gating
(:mod:`~repro.fleet.autoscale`) — all while every completed job's
payload stays bit-identical to naive serial execution
(:mod:`~repro.fleet.synthetic`).  :mod:`~repro.fleet.partition` breaks
the single-process ceiling: disjoint SoC index ranges simulated in
worker processes via :mod:`repro.par`, event streams merged
deterministically at the partition boundaries.
"""

from repro.fleet.autoscale import Autoscaler, SocPowerState
from repro.fleet.balancer import (
    BALANCERS,
    Balancer,
    JoinShortestQueue,
    KernelAffinityBalancer,
    RoundRobinBalancer,
    balancer_by_name,
)
from repro.fleet.events import (
    ARRIVAL,
    COMPLETION,
    EVENT_KINDS,
    GATE,
    WAKE,
    EventHeap,
)
from repro.fleet.ledger import (
    COMPLETED,
    PENDING,
    REJECTED,
    SHED,
    STATUS_NAMES,
    JobLedger,
    percentile_array,
)
from repro.fleet.partition import (
    PARTITION_BACKENDS,
    PartitionedFleetReport,
    PartitionResult,
    partition_jobs,
    partition_soc_counts,
    simulate_fleet_partitioned,
)
from repro.fleet.prewarm import ArrivalMixPredictor, PrewarmDriver
from repro.fleet.runtime import (
    FleetReport,
    FleetSettings,
    SocSlot,
    job_input_bits,
    simulate_fleet,
)
from repro.fleet.synthetic import (
    FLEET_PATTERNS,
    SYNTHETIC_KERNELS,
    SyntheticJob,
    execute_fleet_batch,
    execute_fleet_serial,
    execute_synthetic_batch,
    synthetic_trace,
)

__all__ = [
    "ARRIVAL",
    "BALANCERS",
    "COMPLETED",
    "COMPLETION",
    "EVENT_KINDS",
    "FLEET_PATTERNS",
    "GATE",
    "PARTITION_BACKENDS",
    "PENDING",
    "REJECTED",
    "SHED",
    "STATUS_NAMES",
    "SYNTHETIC_KERNELS",
    "WAKE",
    "ArrivalMixPredictor",
    "Autoscaler",
    "Balancer",
    "EventHeap",
    "FleetReport",
    "FleetSettings",
    "JobLedger",
    "JoinShortestQueue",
    "KernelAffinityBalancer",
    "PartitionResult",
    "PartitionedFleetReport",
    "PrewarmDriver",
    "RoundRobinBalancer",
    "SocPowerState",
    "SocSlot",
    "SyntheticJob",
    "balancer_by_name",
    "execute_fleet_batch",
    "execute_fleet_serial",
    "execute_synthetic_batch",
    "job_input_bits",
    "partition_jobs",
    "partition_soc_counts",
    "percentile_array",
    "simulate_fleet",
    "simulate_fleet_partitioned",
    "synthetic_trace",
]
