"""The process-pool harness: spawn-safe sharded execution with a warm cache.

Every multiprocess backend in the repository — GOP encoding
(:mod:`repro.par.gop`), fleet partitions (:mod:`repro.fleet.partition`)
and process-backed :func:`repro.flow.compile_many` — drives its workers
through :func:`run_tasks`, which owns the four problems a
``ProcessPoolExecutor`` leaves to its caller:

* **spawn-safe dispatch** — workers are started with the ``spawn``
  context (no inherited fabric state, identical semantics on every
  platform), so task functions must be importable module-level
  callables with picklable arguments;
* **cache warmth** — the parent exports its
  :class:`~repro.flow.cache.FlowCache` once
  (:meth:`~repro.flow.cache.FlowCache.export_state`), every task imports
  the blob into the worker's ``DEFAULT_CACHE`` before running (a no-op
  after the first task per worker), and entries a worker *adds* travel
  back as a delta the parent merges — each kernel is placed and routed
  once per fleet, not once per process;
* **failure context** — a worker exception comes back as a
  :class:`~repro.par.errors.WorkerFailure` naming the shard, with the
  worker-side traceback attached; a worker that dies outright (poison
  job, segfault) surfaces the same way instead of a bare
  ``BrokenProcessPool``;
* **fail-fast timeouts** — ``timeout=`` is a wall-clock deadline for the
  whole batch; on expiry the worker processes are terminated and
  :class:`~repro.par.errors.WorkerTimeout` raised, so a hung worker can
  never wedge the parent.
"""

from __future__ import annotations

import multiprocessing
import os
import traceback
from concurrent.futures import ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.exceptions import ConfigurationError
from repro.obs import propagate as obs_propagate
from repro.obs import tracer as obs_tracer
from repro.par.errors import WorkerFailure, WorkerTimeout


def available_cpus() -> int:
    """Cores the host exposes (the ``auto`` strategy's multicore test)."""
    return os.cpu_count() or 1


def spawn_context():
    """The ``spawn`` multiprocessing context every backend uses."""
    return multiprocessing.get_context("spawn")


# -- worker side --------------------------------------------------------------

def _run_shard(fn: Callable, label: str, cache_blob: Optional[bytes],
               obs_on: bool, args: Tuple) -> Tuple:
    """Worker body: warm the cache, run one shard, report failures as data.

    Returns ``("ok", payload, cache_delta, obs_state)`` or ``("error",
    label, type, message, traceback)`` — exception chains cannot cross
    the process boundary intact, so failures travel as strings and the
    parent re-raises with shard context.

    When the parent traced this batch (``obs_on``), the worker's local
    tracer records the shard under a wall span and the events travel
    back as an :mod:`repro.obs.propagate` state dict, drained per shard
    so a reused pool worker never re-ships old events.
    """
    from repro.flow import cache as flow_cache
    from repro.obs import propagate as obs_propagate
    from repro.obs import tracer as obs_tracer

    try:
        worker_cache = flow_cache.DEFAULT_CACHE
        if cache_blob is not None:
            worker_cache.import_state(cache_blob)
        obs_state = None
        if obs_on:
            tracer = obs_tracer.enable()
            before = worker_cache.keys()
            with tracer.wall_span("par.shard", "par", {"shard": label}):
                payload = fn(*args)
            obs_state = obs_propagate.export_state(tracer)
            tracer.clear()
        else:
            # A pool worker outlives its shards: make sure a tracer
            # enabled by an earlier traced batch stays off for this one.
            obs_tracer.disable()
            before = worker_cache.keys()
            payload = fn(*args)
        added = worker_cache.keys() - before
        delta = worker_cache.export_state(keys=added) if added else None
        return ("ok", payload, delta, obs_state)
    except BaseException as error:
        return ("error", label, type(error).__name__, str(error),
                traceback.format_exc())


# -- parent side --------------------------------------------------------------

class ProcessBackend:
    """A reusable spawn pool: pay worker startup once, not per call.

    Spawning a Python worker costs a few hundred milliseconds of
    interpreter boot and imports; callers issuing many small parallel
    calls (the randomized conformance suite, the scaling benchmark)
    create one backend and pass it to every call.  A pool broken by a
    dead worker or a timeout is discarded and lazily rebuilt on next
    use.
    """

    def __init__(self, workers: Optional[int] = None) -> None:
        if workers is not None and workers <= 0:
            raise ConfigurationError("a process backend needs >= 1 worker")
        self.workers = workers or available_cpus()
        self._pool: Optional[ProcessPoolExecutor] = None

    def pool(self) -> ProcessPoolExecutor:
        """The live executor, created on first use."""
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers,
                                             mp_context=spawn_context())
        return self._pool

    def discard(self) -> None:
        """Drop a broken pool without waiting (next use rebuilds)."""
        pool, self._pool = self._pool, None
        if pool is not None:
            _terminate_pool(pool)

    def shutdown(self) -> None:
        """Release the pool's worker processes."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "ProcessBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Kill a pool's workers now (timeout path — they may be hung)."""
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        process.terminate()
    pool.shutdown(wait=False, cancel_futures=True)


def run_tasks(fn: Callable, task_args: Sequence[Tuple], labels: Sequence[str],
              *, workers: Optional[int] = None,
              timeout: Optional[float] = None,
              cache=None, backend: Optional[ProcessBackend] = None) -> List:
    """Run ``fn(*args)`` for every entry of ``task_args`` in worker processes.

    Results come back in task order.  ``labels`` name the shards for
    failure context (one per task).  ``cache`` is an optional
    :class:`~repro.flow.cache.FlowCache`: its state is exported once,
    imported by every worker before its first shard, and worker-side
    additions are merged back after the batch.  ``backend`` reuses a
    warm :class:`ProcessBackend`; otherwise an ephemeral pool of
    ``workers`` processes is created for this call.
    """
    task_args = list(task_args)
    labels = list(labels)
    if len(labels) != len(task_args):
        raise ConfigurationError(
            f"got {len(task_args)} tasks but {len(labels)} labels")
    if not task_args:
        return []
    cache_blob = cache.export_state() if cache is not None else None
    parent_tracer = obs_tracer.TRACER
    obs_on = parent_tracer.enabled

    own_pool = backend is None
    if own_pool:
        worker_count = min(workers or available_cpus(), len(task_args))
        pool = ProcessPoolExecutor(max_workers=max(1, worker_count),
                                   mp_context=spawn_context())
    else:
        pool = backend.pool()

    broken = False
    try:
        futures = [pool.submit(_run_shard, fn, label, cache_blob, obs_on,
                               args)
                   for label, args in zip(labels, task_args)]
        done, pending = wait(futures, timeout=timeout)
        if pending:
            broken = True
            stuck = [label for future, label in zip(futures, labels)
                     if not future.done()]
            _terminate_pool(pool)
            raise WorkerTimeout(", ".join(stuck), timeout)
        outcomes = []
        for future, label in zip(futures, labels):
            try:
                outcomes.append(future.result())
            except BrokenProcessPool as error:
                broken = True
                raise WorkerFailure(
                    label, original_type=type(error).__name__,
                    original_message="worker process died before returning "
                                     "a result (poison job or crash)"
                ) from error
        results = []
        for outcome, label in zip(outcomes, labels):
            if outcome[0] == "error":
                _, context, kind, message, worker_tb = outcome
                raise WorkerFailure(context, original_type=kind,
                                    original_message=message,
                                    worker_traceback=worker_tb)
            _, payload, delta, obs_state = outcome
            if cache is not None and delta is not None:
                cache.import_state(delta)
            if obs_on and obs_state is not None:
                obs_propagate.merge_state(parent_tracer, obs_state)
                parent_tracer.count("par.shards")
            results.append(payload)
        return results
    finally:
        if own_pool:
            if broken:
                pool.shutdown(wait=False, cancel_futures=True)
            else:
                pool.shutdown(wait=True)
        elif broken:
            backend.discard()
