"""The ``processes`` GOP strategy: closed GOPs sharded across real cores.

Closed GOPs are standalone-decodable by construction, so encoding each
one in a different *process* produces byte-for-byte the stream a serial
encode produces — the strategy only decides where the work runs.  The
parent stacks the sequence into one shared-memory segment
(:mod:`repro.par.shm`), so workers map the frames instead of unpickling
them; each worker encodes a contiguous run of GOPs with the same
``_encode_single_gop`` body the serial strategy uses, and the parent
reassembles shards in GOP order.  Cache warmth and failure context come
from :func:`repro.par.pool.run_tasks`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.par.pool import ProcessBackend, run_tasks
from repro.par.shm import SharedArray, SharedArraySpec, attached_view
from repro.video.gop import Gop, _encode_single_gop, compile_gop_kernels


def _encode_gop_shard(payload, gop_bounds: List[Tuple[int, int, int]],
                      configuration, rate_controller) -> List[Tuple]:
    """Worker body: encode a contiguous run of GOPs from shared frames.

    ``payload`` is either a :class:`SharedArraySpec` of the stacked
    sequence or (the pickled fallback for non-uniform frames) the frame
    list itself.  Returns ``(gop_index, statistics, reference,
    qp_history)`` per GOP.
    """
    compile_gop_kernels(configuration)
    if isinstance(payload, SharedArraySpec):
        with attached_view(payload) as stack:
            return _encode_bounds(list(stack), gop_bounds, configuration,
                                  rate_controller)
    return _encode_bounds(list(payload), gop_bounds, configuration,
                          rate_controller)


def _encode_bounds(frames: Sequence[np.ndarray],
                   gop_bounds: List[Tuple[int, int, int]],
                   configuration, rate_controller) -> List[Tuple]:
    outputs = []
    for index, start, stop in gop_bounds:
        gop = Gop(index=index, start=start, stop=stop)
        statistics, reference, qp_history = _encode_single_gop(
            frames, gop, configuration, rate_controller,
            compile_kernels=False)
        outputs.append((index, statistics, reference, qp_history))
    return outputs


def _share_frames(frames: List[np.ndarray]):
    """Stack the sequence into shared memory when shapes/dtypes allow.

    Returns ``(shared_or_None, payload)`` — a mixed-geometry sequence
    (different shapes or dtypes per frame) falls back to pickling the
    frames into each task, which is correct but slower.
    """
    arrays = [np.asarray(frame) for frame in frames]
    shapes = {array.shape for array in arrays}
    dtypes = {array.dtype for array in arrays}
    if len(shapes) != 1 or len(dtypes) != 1:
        return None, arrays
    shared = SharedArray.create(np.stack(arrays))
    return shared, shared.spec


def encode_gops_processes(frames: Sequence[np.ndarray], gops: List[Gop],
                          configuration, rate_controller, workers: int,
                          *, timeout: Optional[float] = None,
                          backend: Optional[ProcessBackend] = None,
                          ) -> List[Tuple]:
    """Encode ``gops`` across worker processes; shards in GOP order.

    Returns the same ``(statistics, final_reference, qp_history)`` shard
    list as the serial strategy, bit-identical to it.  The shared-memory
    segment is unlinked in a ``finally`` — worker failures (surfaced as
    :class:`~repro.par.errors.WorkerFailure` with the GOP range in the
    message) cannot leak ``/dev/shm`` entries.
    """
    from repro.flow import cache as flow_cache

    workers = max(1, min(workers, len(gops)))
    size, remainder = divmod(len(gops), workers)
    groups: List[List[Gop]] = []
    start = 0
    for index in range(workers):
        stop = start + size + (1 if index < remainder else 0)
        if stop > start:
            groups.append(gops[start:stop])
        start = stop

    shared, payload = _share_frames(list(frames))
    tasks, labels = [], []
    for group in groups:
        bounds = [(gop.index, gop.start, gop.stop) for gop in group]
        tasks.append((payload, bounds, configuration, rate_controller))
        labels.append(
            f"GOP {group[0].index}..{group[-1].index} "
            f"(frames [{group[0].start}, {group[-1].stop}))")
    try:
        shard_lists = run_tasks(_encode_gop_shard, tasks, labels,
                                workers=workers, timeout=timeout,
                                cache=flow_cache.DEFAULT_CACHE,
                                backend=backend)
    finally:
        if shared is not None:
            shared.close_and_unlink()
    by_index = {index: (statistics, reference, qp_history)
                for shard in shard_lists
                for index, statistics, reference, qp_history in shard}
    return [by_index[gop.index] for gop in gops]
