"""repro.par — the multiprocess execution backend.

Every speedup before this subsystem batched *inside* one Python process;
the GIL capped the stack at one core (``BENCH_gop.json`` measured the
thread pool at 0.97x).  ``repro.par`` breaks that ceiling with one
shared harness — spawn-safe process pools, shared-memory frame buffers,
cache warmth across ``spawn``, shard-labelled failures, fail-fast
timeouts — wired into three layers:

* ``encode_sequence_parallel(strategy="processes")`` — closed GOPs
  sharded across worker processes (:mod:`repro.par.gop`);
* ``simulate_fleet_partitioned`` — SoC index ranges simulated per
  worker, event streams merged deterministically
  (:mod:`repro.fleet.partition`);
* ``compile_many(parallel="processes")`` — placement/routing sharded
  over cores (:mod:`repro.par.flow`).

Spawn-safety rules for callers: task functions must be importable
module-level callables (no lambdas, no closures), arguments picklable,
and scripts that launch pools need the standard ``__main__`` guard.
"""

from repro.par.errors import WorkerFailure, WorkerTimeout
from repro.par.pool import (
    ProcessBackend,
    available_cpus,
    run_tasks,
    spawn_context,
)
from repro.par.shm import (
    SHM_PREFIX,
    SharedArray,
    SharedArraySpec,
    attached_view,
    leaked_segments,
)

__all__ = [
    "WorkerFailure",
    "WorkerTimeout",
    "ProcessBackend",
    "available_cpus",
    "run_tasks",
    "spawn_context",
    "SHM_PREFIX",
    "SharedArray",
    "SharedArraySpec",
    "attached_view",
    "leaked_segments",
]
