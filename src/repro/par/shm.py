"""Shared-memory frame buffers: zero-copy inputs for worker processes.

Pickling a 64-frame QCIF sequence into every worker would ship the same
megabytes ``workers`` times; instead the parent copies the stacked
frames into one POSIX shared-memory segment and workers attach read-only
numpy views.  The protocol has exactly one owner: the **parent** creates
and unlinks the segment (unlink runs in a ``finally``, so a worker
failure cannot leak ``/dev/shm`` entries), workers only ever attach and
close.  Spawned children inherit the parent's resource tracker, so the
attach side needs no unregister gymnastics — the parent's single unlink
is the whole cleanup story, and :func:`leaked_segments` lets tests (and
the benchmark harness) assert the invariant from the outside.
"""

from __future__ import annotations

import os
import secrets
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import List, Optional, Tuple

import numpy as np

from repro.core.exceptions import ConfigurationError

#: Every segment this module creates carries this name prefix, so leak
#: checks can scan ``/dev/shm`` without false positives from other users.
SHM_PREFIX = "repro_par_"


@dataclass(frozen=True)
class SharedArraySpec:
    """Picklable handle a worker needs to attach one shared array."""

    name: str
    shape: Tuple[int, ...]
    dtype: str


class SharedArray:
    """A numpy array backed by one named shared-memory segment.

    Created parent-side with :meth:`create` (copies the source array in)
    and released with :meth:`close_and_unlink`; workers call
    :meth:`read_view` with the picklable :attr:`spec`.
    """

    def __init__(self, shm: shared_memory.SharedMemory,
                 spec: SharedArraySpec) -> None:
        self._shm = shm
        self.spec = spec

    @classmethod
    def create(cls, array: np.ndarray) -> "SharedArray":
        """Copy ``array`` into a fresh uniquely named segment."""
        array = np.ascontiguousarray(array)
        if array.nbytes == 0:
            raise ConfigurationError(
                "cannot share an empty array between processes")
        name = f"{SHM_PREFIX}{secrets.token_hex(8)}"
        shm = shared_memory.SharedMemory(create=True, size=array.nbytes,
                                         name=name)
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf)
        view[...] = array
        return cls(shm, SharedArraySpec(name=shm.name, shape=array.shape,
                                        dtype=str(array.dtype)))

    def close_and_unlink(self) -> None:
        """Release the parent's mapping and remove the segment (idempotent)."""
        try:
            self._shm.close()
        finally:
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass

    def __enter__(self) -> "SharedArray":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close_and_unlink()


class attached_view:
    """Worker-side context manager: attach ``spec`` and yield a frozen view.

    The view is marked non-writeable — workers read frames, they never
    mutate the parent's buffer — and the segment is closed (never
    unlinked; that is the parent's job) on exit, even when the worker
    body raises.
    """

    def __init__(self, spec: SharedArraySpec) -> None:
        self._spec = spec
        self._shm: Optional[shared_memory.SharedMemory] = None

    def __enter__(self) -> np.ndarray:
        self._shm = shared_memory.SharedMemory(name=self._spec.name)
        view = np.ndarray(self._spec.shape, dtype=np.dtype(self._spec.dtype),
                          buffer=self._shm.buf)
        view.flags.writeable = False
        return view

    def __exit__(self, *exc_info) -> None:
        if self._shm is not None:
            self._shm.close()
            self._shm = None


def leaked_segments() -> List[str]:
    """Names of this module's segments still present in ``/dev/shm``.

    Empty on a healthy run; tests assert that around every parallel call
    (including failing ones).  On platforms without a ``/dev/shm``
    directory the check degrades to "nothing observable leaked".
    """
    try:
        return sorted(entry for entry in os.listdir("/dev/shm")
                      if entry.startswith(SHM_PREFIX))
    except (FileNotFoundError, NotADirectoryError, PermissionError):
        return []
