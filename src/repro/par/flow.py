"""Process-backed ``compile_many``: placement and routing on real cores.

The thread backend of :func:`repro.flow.compile_many` is GIL-bound — the
flow's passes are pure Python graph algorithms, so eight threads compile
barely faster than one.  This module shards the design list over spawned
worker processes instead: contiguous groups of designs per worker, each
worker compiling through its own ``DEFAULT_CACHE`` warmed from the
parent's exported state, and worker-side cache additions merged back so
the parent ends the call exactly as warm as a serial compile would have
left it.  Reached via ``compile_many(parallel="processes")``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.flow.pipeline import Flow, FlowResult
from repro.par.pool import ProcessBackend, available_cpus, run_tasks


def _compile_design_group(designs: Sequence, fabric, flow: Flow,
                          use_cache: bool = True) -> List:
    """Worker body: compile one contiguous group through the worker cache.

    ``use_cache`` mirrors the parent's intent: a caller that passed
    ``cache=None`` asked for fresh compilations, so the workers must not
    serve hits from their own (process-lifetime) default cache either.
    """
    from repro.flow import cache as flow_cache

    cache = flow_cache.DEFAULT_CACHE if use_cache else None
    return [flow.compile(design, fabric=fabric, cache=cache)
            for design in designs]


def _contiguous_groups(items: List, group_count: int) -> List[List]:
    """Split ``items`` into ``group_count`` contiguous near-even groups."""
    group_count = max(1, min(group_count, len(items)))
    size, remainder = divmod(len(items), group_count)
    groups, start = [], 0
    for index in range(group_count):
        stop = start + size + (1 if index < remainder else 0)
        groups.append(items[start:stop])
        start = stop
    return groups


def compile_many_processes(designs: Sequence, fabric=None, *,
                           flow: Optional[Flow] = None, cache=None,
                           max_workers: Optional[int] = None,
                           timeout: Optional[float] = None,
                           backend: Optional[ProcessBackend] = None
                           ) -> List[FlowResult]:
    """Compile ``designs`` across worker processes; results in input order.

    Same contract as :func:`repro.flow.compile_many` (own fabric per
    design, deterministic output, optional shared ``cache``), plus the
    :mod:`repro.par` guarantees: shard-labelled
    :class:`~repro.par.errors.WorkerFailure` on a worker exception or
    death, fail-fast ``timeout``, and cache warmth across ``spawn``.
    Designs and the ``fabric`` factory must be picklable (module-level
    factories, not lambdas).
    """
    flow = flow or Flow.default()
    designs = list(designs)
    if not designs:
        return []
    workers = max_workers or (backend.workers if backend is not None
                              else available_cpus())
    groups = _contiguous_groups(designs, workers)
    labels = []
    offset = 0
    for group in groups:
        names = ", ".join(getattr(design, "name", type(design).__name__)
                          for design in group)
        labels.append(f"designs[{offset}:{offset + len(group)}] ({names})")
        offset += len(group)
    shards = run_tasks(_compile_design_group,
                       [(group, fabric, flow, cache is not None)
                        for group in groups],
                       labels, workers=workers, timeout=timeout,
                       cache=cache, backend=backend)
    results = [result for shard in shards for result in shard]
    if cache is not None:
        # The worker-side delta only covers keys the worker *added*; a
        # reused pool may have compiled a design for an earlier caller
        # and served this one a hit.  The parent holds every result, so
        # it can finish the merge exactly: after this call the cache is
        # as warm as a serial compile would have left it.
        present = cache.keys()
        for result in results:
            key = cache.key(result.netlist, result.fabric, flow)
            if key not in present:
                cache.put(key, result)
                present.add(key)
    return results
