"""Failure surface of the multiprocess backend.

A worker process can fail three ways — raise an exception, die outright
(a segfault or ``os._exit``), or hang — and every one of them must come
back to the caller as a :class:`WorkerFailure` that names the shard
(GOP range, fleet partition, design) the worker was holding.  Exception
*chains* do not survive pickling across process boundaries, so workers
report failures as data (type name, message, formatted traceback) and
the parent re-raises with the context attached.
"""

from __future__ import annotations

from typing import Optional


class WorkerFailure(RuntimeError):
    """A process-pool worker failed; carries the shard's context.

    ``context`` names the unit of work (e.g. ``"GOP 3 (frames [24, 32))"``
    or ``"fleet partition 1/4"``), ``original_type`` / ``original_message``
    identify the worker-side exception, and ``worker_traceback`` holds its
    formatted traceback (the chain itself cannot cross the process
    boundary).
    """

    def __init__(self, context: str, original_type: str = "",
                 original_message: str = "",
                 worker_traceback: Optional[str] = None) -> None:
        self.context = context
        self.original_type = original_type
        self.original_message = original_message
        self.worker_traceback = worker_traceback
        detail = f" [{original_type}: {original_message}]" if original_type \
            else ""
        super().__init__(f"worker failed on {context}{detail}")


class WorkerTimeout(WorkerFailure):
    """The pool did not finish within the caller's ``timeout``.

    Raised by :func:`repro.par.pool.run_tasks` after terminating the
    worker processes, so a hung worker fails fast instead of blocking
    the parent forever.
    """

    def __init__(self, context: str, timeout: float) -> None:
        super().__init__(context, original_type="TimeoutError",
                         original_message=f"no result within {timeout}s")
        self.timeout = timeout
