"""Distributed-Arithmetic FIR filtering on the DA array.

Sec. 2.2 of the paper: the DA array "targets Distributed Arithmetic
calculations, which includes computations like filtering, DCT and DWT".
The DCT implementations exercise the transform case; this module provides
the filtering case — a fixed-coefficient FIR filter whose multiply-
accumulate is realised as LUT + shift-accumulate on Add-Shift and Memory
clusters, exactly like one output lane of Fig. 4 with a delay line in
front.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.clusters import ClusterKind
from repro.core.netlist import Netlist
from repro.dct.distributed_arithmetic import DALookupTable, DAQuantisation

FIR_INPUT_BITS = 12
FIR_ROM_WORD_BITS = 8
FIR_ACC_BITS = 20


class DistributedArithmeticFIR:
    """Fixed-coefficient FIR filter implemented with Distributed Arithmetic.

    Parameters
    ----------
    coefficients:
        Filter taps (real-valued; quantised into the LUT).
    quantisation:
        Fixed-point parameters shared with the DCT datapaths.
    """

    name = "da_fir"
    target_array = "da_array"

    def __init__(self, coefficients: Sequence[float],
                 quantisation: Optional[DAQuantisation] = None) -> None:
        self.coefficients = tuple(float(c) for c in coefficients)
        if not self.coefficients:
            raise ValueError("an FIR filter needs at least one tap")
        self.quantisation = quantisation or DAQuantisation(input_bits=FIR_INPUT_BITS)
        self.lookup_table = DALookupTable(self.coefficients, self.quantisation)

    @property
    def tap_count(self) -> int:
        """Number of filter taps."""
        return len(self.coefficients)

    @property
    def cycles_per_sample(self) -> int:
        """Bit-serial cycles to produce one output sample."""
        return self.quantisation.input_bits

    def filter(self, samples: Sequence[int]) -> np.ndarray:
        """Filter an integer sample stream (zero-padded start-up transient).

        Output ``y[n] = sum_k c[k] * x[n - k]`` with ``x`` treated as zero
        before its first sample, matching a hardware delay line that resets
        to zero.
        """
        samples = [int(s) for s in samples]
        taps = self.tap_count
        outputs = np.zeros(len(samples))
        window: List[int] = [0] * taps
        for index, sample in enumerate(samples):
            window = [sample] + window[:-1]
            outputs[index] = self.lookup_table.dot_float(window)
        return outputs

    def filter_reference(self, samples: Sequence[int]) -> np.ndarray:
        """Floating-point reference (numpy convolution) for validation."""
        samples = np.asarray(samples, dtype=np.float64)
        return np.convolve(samples, np.asarray(self.coefficients))[:len(samples)]

    def build_netlist(self) -> Netlist:
        """Structural netlist: delay line, one LUT ROM, one shift-accumulator.

        Each tap of the delay line is an Add-Shift cluster configured as a
        shift register; the LUT occupies one memory cluster (2**taps
        words) and the accumulator one more Add-Shift cluster.
        """
        netlist = Netlist(self.name)
        for tap in range(self.tap_count):
            netlist.add_node(f"delay_{tap}", ClusterKind.ADD_SHIFT,
                             width_bits=FIR_INPUT_BITS, role="shift_register")
        netlist.add_node("rom", ClusterKind.MEMORY, width_bits=FIR_ROM_WORD_BITS,
                         role="rom", depth_words=self.lookup_table.depth_words)
        netlist.add_node("shift_acc", ClusterKind.ADD_SHIFT,
                         width_bits=FIR_ACC_BITS, role="accumulator")
        for tap in range(self.tap_count - 1):
            netlist.connect(f"delay_{tap}", f"delay_{tap + 1}", FIR_INPUT_BITS)
        for tap in range(self.tap_count):
            netlist.connect(f"delay_{tap}", "rom", width_bits=1)
        netlist.connect("rom", "shift_acc", FIR_ROM_WORD_BITS)
        return netlist


def symmetric_lowpass(taps: int = 8, cutoff: float = 0.25) -> List[float]:
    """A Hamming-windowed sinc low-pass prototype (normalised DC gain).

    Convenience generator for the example scripts and tests; the filter it
    produces is representative of the pre-processing filters a video
    pipeline runs before downsampling.
    """
    if taps < 2:
        raise ValueError("a low-pass prototype needs at least two taps")
    n = np.arange(taps)
    centre = (taps - 1) / 2.0
    argument = 2 * cutoff * (n - centre)
    kernel = np.sinc(argument) * np.hamming(taps)
    kernel /= np.sum(kernel)
    return kernel.tolist()
