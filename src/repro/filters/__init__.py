"""Filtering and wavelet kernels for the Distributed-Arithmetic array.

Sec. 2.2 of the paper lists "filtering, DCT and DWT" as the computations
the DA array targets; :mod:`repro.dct` covers the DCT, this subpackage the
other two.
"""

from repro.filters.dwt import (
    build_dwt_netlist,
    dwt53_2d,
    dwt53_2d_inverse,
    dwt53_forward,
    dwt53_inverse,
    dwt53_multilevel,
    dwt53_multilevel_inverse,
)
from repro.filters.fir import DistributedArithmeticFIR, symmetric_lowpass

__all__ = [
    "build_dwt_netlist",
    "dwt53_2d",
    "dwt53_2d_inverse",
    "dwt53_forward",
    "dwt53_inverse",
    "dwt53_multilevel",
    "dwt53_multilevel_inverse",
    "DistributedArithmeticFIR",
    "symmetric_lowpass",
]
