"""Discrete Wavelet Transform on the Add-Shift clusters of the DA array.

The DA array's cluster set (add, subtract, shift, shift-accumulate) is a
natural fit for the lifting formulation of the 5/3 integer wavelet used by
still-image and scalable-video coders: every lifting step is an add of two
neighbours followed by a shift, so the whole transform maps onto Add-Shift
clusters with no memory clusters at all — the other end of the
logic/memory trade-off from the ROM-heavy DCT mappings.

The LeGall 5/3 integer lifting scheme implemented here is exactly
reversible, which the round-trip tests exploit.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.core.clusters import ClusterKind
from repro.core.netlist import Netlist

DWT_SAMPLE_BITS = 16


def _predict_index(values: np.ndarray, index: int) -> int:
    """Clamp neighbour indices at the signal borders (symmetric extension)."""
    return min(max(index, 0), len(values) - 1)


def dwt53_forward(samples: Sequence[int]) -> Tuple[np.ndarray, np.ndarray]:
    """One level of the forward LeGall 5/3 integer lifting DWT.

    Returns (approximation, detail) coefficient arrays.  The signal length
    must be even so the two subbands have equal length.
    """
    values = np.asarray(samples, dtype=np.int64)
    if values.ndim != 1:
        raise ValueError("the 1-D DWT expects a 1-D signal")
    if len(values) % 2:
        raise ValueError("signal length must be even for one lifting level")
    even = values[0::2].copy()
    odd = values[1::2].copy()

    # Predict step: detail = odd - floor((left even + right even) / 2).
    detail = odd.copy()
    for i in range(len(odd)):
        left = even[i]
        right = even[_predict_index(even, i + 1)]
        detail[i] = odd[i] - ((left + right) >> 1)

    # Update step: approx = even + floor((left detail + right detail + 2) / 4).
    approximation = even.copy()
    for i in range(len(even)):
        left = detail[_predict_index(detail, i - 1)]
        right = detail[i]
        approximation[i] = even[i] + ((left + right + 2) >> 2)

    return approximation, detail


def dwt53_inverse(approximation: Sequence[int], detail: Sequence[int]) -> np.ndarray:
    """Exact inverse of :func:`dwt53_forward`."""
    approximation = np.asarray(approximation, dtype=np.int64)
    detail = np.asarray(detail, dtype=np.int64)
    if approximation.shape != detail.shape:
        raise ValueError("approximation and detail lengths differ")

    even = approximation.copy()
    for i in range(len(even)):
        left = detail[_predict_index(detail, i - 1)]
        right = detail[i]
        even[i] = approximation[i] - ((left + right + 2) >> 2)

    odd = detail.copy()
    for i in range(len(odd)):
        left = even[i]
        right = even[_predict_index(even, i + 1)]
        odd[i] = detail[i] + ((left + right) >> 1)

    signal = np.zeros(2 * len(even), dtype=np.int64)
    signal[0::2] = even
    signal[1::2] = odd
    return signal


def dwt53_multilevel(samples: Sequence[int], levels: int) -> List[np.ndarray]:
    """Multi-level decomposition: [approx_L, detail_L, ..., detail_1]."""
    if levels < 1:
        raise ValueError("at least one decomposition level is required")
    current = np.asarray(samples, dtype=np.int64)
    details: List[np.ndarray] = []
    for _ in range(levels):
        if len(current) % 2:
            raise ValueError("signal length must stay even at every level")
        current, detail = dwt53_forward(current)
        details.append(detail)
    return [current] + details[::-1]


def dwt53_multilevel_inverse(bands: Sequence[np.ndarray]) -> np.ndarray:
    """Inverse of :func:`dwt53_multilevel`."""
    if len(bands) < 2:
        raise ValueError("a multi-level decomposition has at least two bands")
    current = np.asarray(bands[0], dtype=np.int64)
    for detail in bands[1:]:
        current = dwt53_inverse(current, detail)
    return current


def dwt53_2d(block: np.ndarray) -> np.ndarray:
    """One separable 2-D level: rows then columns, subbands in quadrants."""
    block = np.asarray(block, dtype=np.int64)
    if block.ndim != 2 or block.shape[0] % 2 or block.shape[1] % 2:
        raise ValueError("the 2-D DWT expects even dimensions")
    rows = np.zeros_like(block)
    half_cols = block.shape[1] // 2
    for r in range(block.shape[0]):
        approximation, detail = dwt53_forward(block[r])
        rows[r, :half_cols] = approximation
        rows[r, half_cols:] = detail
    output = np.zeros_like(block)
    half_rows = block.shape[0] // 2
    for c in range(block.shape[1]):
        approximation, detail = dwt53_forward(rows[:, c])
        output[:half_rows, c] = approximation
        output[half_rows:, c] = detail
    return output


def dwt53_2d_inverse(coefficients: np.ndarray) -> np.ndarray:
    """Inverse of :func:`dwt53_2d`."""
    coefficients = np.asarray(coefficients, dtype=np.int64)
    half_rows = coefficients.shape[0] // 2
    half_cols = coefficients.shape[1] // 2
    columns = np.zeros_like(coefficients)
    for c in range(coefficients.shape[1]):
        columns[:, c] = dwt53_inverse(coefficients[:half_rows, c],
                                      coefficients[half_rows:, c])
    output = np.zeros_like(coefficients)
    for r in range(coefficients.shape[0]):
        output[r] = dwt53_inverse(columns[r, :half_cols], columns[r, half_cols:])
    return output


def build_dwt_netlist(samples_per_block: int = 16, name: str = "dwt53") -> Netlist:
    """Structural netlist of one 5/3 lifting level on the DA array.

    Per pair of input samples the lifting needs one subtracter and one
    shifter for the predict step and one adder and one shifter for the
    update step; the shift operations are additional Add-Shift clusters
    configured as shifters (counted in the ``adders`` role split since a
    shift is the degenerate add configuration).  No memory clusters are
    used — the defining contrast with the DCT mappings.
    """
    if samples_per_block < 2 or samples_per_block % 2:
        raise ValueError("the lifting level processes an even number of samples")
    netlist = Netlist(name)
    pairs = samples_per_block // 2
    for pair in range(pairs):
        netlist.add_node(f"predict_sub_{pair}", ClusterKind.ADD_SHIFT,
                         width_bits=DWT_SAMPLE_BITS, role="subtracter")
        netlist.add_node(f"predict_shift_{pair}", ClusterKind.ADD_SHIFT,
                         width_bits=DWT_SAMPLE_BITS, role="adder")
        netlist.add_node(f"update_add_{pair}", ClusterKind.ADD_SHIFT,
                         width_bits=DWT_SAMPLE_BITS, role="adder")
        netlist.add_node(f"update_shift_{pair}", ClusterKind.ADD_SHIFT,
                         width_bits=DWT_SAMPLE_BITS, role="shift_register")
        netlist.connect(f"predict_shift_{pair}", f"predict_sub_{pair}",
                        DWT_SAMPLE_BITS)
        netlist.connect(f"predict_sub_{pair}", f"update_shift_{pair}",
                        DWT_SAMPLE_BITS)
        netlist.connect(f"update_shift_{pair}", f"update_add_{pair}",
                        DWT_SAMPLE_BITS)
        if pair:
            netlist.connect(f"predict_sub_{pair - 1}", f"update_add_{pair}",
                            DWT_SAMPLE_BITS)
    return netlist
