"""Behavioural models of the reconfigurable-array compute clusters.

The domain-specific arrays of the paper are heterogeneous grids of
*clusters*, each specialised for one operation.  Clusters are built from
4-bit elements that can be cascaded through short intra-cluster
interconnect to form wider datapaths (Sec. 2 of the paper).  This module
models each cluster kind at word level while keeping track of how many
4-bit elements a given datapath width consumes, so the area accounting of
the mapper stays faithful to the hardware.

Cluster kinds
-------------

Motion-estimation array (Sec. 2.1):

* :class:`RegisterMuxCluster`  -- 2-to-1 multiplexer with optional output
  register.
* :class:`AbsDiffCluster`      -- add / subtract with optional absolute
  difference.
* :class:`AddAccCluster`       -- combinational add/subtract plus a
  sequential accumulator.
* :class:`ComparatorCluster`   -- two-input min/max compare and running
  vector min/max detection.

Distributed-arithmetic / DCT array (Sec. 2.2):

* :class:`AddShiftCluster`     -- add, subtract, shift and
  shift-accumulate; also usable as a parallel-to-serial shift register.
* :class:`MemoryCluster`       -- LUT / ROM with configurable geometry.

All sequential clusters expose ``step(**inputs)`` which advances one clock
cycle and returns the registered outputs, plus ``reset()``.  Purely
combinational behaviour is exposed through ``evaluate``-style methods.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.exceptions import ConfigurationError

#: Width in bits of one physical cluster element (Sec. 2: "computations
#: wider than the 4-bits provided by one element" are built by cascading).
ELEMENT_WIDTH_BITS = 4


class ClusterKind(enum.Enum):
    """Enumeration of the cluster types provided by the two arrays."""

    REGISTER_MUX = "register_mux"
    ABS_DIFF = "abs_diff"
    ADD_ACC = "add_acc"
    COMPARATOR = "comparator"
    ADD_SHIFT = "add_shift"
    MEMORY = "memory"

    @property
    def short_name(self) -> str:
        """Compact label used in reports and floorplan drawings."""
        return _SHORT_NAMES[self]


_SHORT_NAMES = {
    ClusterKind.REGISTER_MUX: "MUX",
    ClusterKind.ABS_DIFF: "AD",
    ClusterKind.ADD_ACC: "ACC",
    ClusterKind.COMPARATOR: "CMP",
    ClusterKind.ADD_SHIFT: "ASH",
    ClusterKind.MEMORY: "MEM",
}


def elements_for_width(width_bits: int) -> int:
    """Number of 4-bit elements cascaded to build a ``width_bits`` datapath."""
    if width_bits <= 0:
        raise ConfigurationError(f"datapath width must be positive, got {width_bits}")
    return -(-width_bits // ELEMENT_WIDTH_BITS)


def _mask(width_bits: int) -> int:
    return (1 << width_bits) - 1


def to_signed(value: int, width_bits: int) -> int:
    """Interpret the low ``width_bits`` of ``value`` as a two's-complement int."""
    value &= _mask(width_bits)
    if value & (1 << (width_bits - 1)):
        value -= 1 << width_bits
    return value


def to_unsigned(value: int, width_bits: int) -> int:
    """Wrap ``value`` into the unsigned range of a ``width_bits`` register."""
    return value & _mask(width_bits)


@dataclass(frozen=True)
class ClusterSpec:
    """Static description of one cluster instance inside a fabric.

    Attributes
    ----------
    kind:
        Which of the specialised cluster types this is.
    width_bits:
        Datapath width the cluster is wired for.  The number of physical
        4-bit elements follows from this.
    depth_words:
        Only meaningful for :attr:`ClusterKind.MEMORY`: the number of
        addressable words the memory cluster provides.
    """

    kind: ClusterKind
    width_bits: int = 8
    depth_words: int = 0

    def __post_init__(self) -> None:
        if self.width_bits <= 0:
            raise ConfigurationError("cluster width_bits must be positive")
        if self.kind is ClusterKind.MEMORY and self.depth_words <= 0:
            raise ConfigurationError("memory clusters need depth_words > 0")
        if self.kind is not ClusterKind.MEMORY and self.depth_words:
            raise ConfigurationError(
                f"{self.kind.value} clusters do not take depth_words"
            )

    @property
    def element_count(self) -> int:
        """Physical 4-bit elements consumed by this cluster."""
        return elements_for_width(self.width_bits)

    def describe(self) -> str:
        """Human-readable one-line description."""
        if self.kind is ClusterKind.MEMORY:
            return f"{self.kind.short_name}[{self.depth_words}x{self.width_bits}b]"
        return f"{self.kind.short_name}[{self.width_bits}b]"


class _SequentialCluster:
    """Shared plumbing for clusters that hold state between clock cycles."""

    def __init__(self, width_bits: int) -> None:
        if width_bits <= 0:
            raise ConfigurationError("width_bits must be positive")
        self.width_bits = width_bits
        #: Count of clock cycles stepped since the last reset; used by the
        #: activity model.
        self.cycles = 0
        #: Count of output-bit toggles observed; used by the power model.
        self.toggles = 0
        self._previous_output = 0

    def _track(self, new_output: int) -> None:
        delta = (new_output ^ self._previous_output) & _mask(self.width_bits)
        self.toggles += bin(delta).count("1")
        self._previous_output = new_output & _mask(self.width_bits)
        self.cycles += 1

    def reset(self) -> None:
        """Return the cluster to its power-on state (activity counters kept)."""
        self._previous_output = 0


class RegisterMuxCluster(_SequentialCluster):
    """2-to-1 multiplexer with an optional output register (Sec. 2.1, MUX).

    With ``registered=False`` the cluster behaves combinationally and
    :meth:`step` simply forwards the selected input.  With
    ``registered=True`` the selected input appears on the output one clock
    later, which is how the ME array delays the search-area pixel stream.
    """

    def __init__(self, width_bits: int = 8, registered: bool = True) -> None:
        super().__init__(width_bits)
        self.registered = registered
        self._register = 0

    def reset(self) -> None:
        super().reset()
        self._register = 0

    def step(self, in0: int, in1: int, select: int) -> int:
        """Advance one cycle; return the (possibly registered) selected input."""
        chosen = to_unsigned(in1 if select else in0, self.width_bits)
        if self.registered:
            output = self._register
            self._register = chosen
        else:
            output = chosen
        self._track(output)
        return output

    def peek(self) -> int:
        """Current register contents without advancing the clock."""
        return self._register


class AbsDiffCluster(_SequentialCluster):
    """Absolute-difference calculator (Sec. 2.1, AD).

    Supports plain addition, plain subtraction and |a - b|.  The result is
    produced combinationally; the activity counters still advance so the
    power model sees the switching caused by each evaluation.
    """

    def __init__(self, width_bits: int = 8) -> None:
        super().__init__(width_bits)

    def add(self, a: int, b: int) -> int:
        """Return ``a + b`` wrapped to the cluster width."""
        result = to_unsigned(a + b, self.width_bits)
        self._track(result)
        return result

    def subtract(self, a: int, b: int) -> int:
        """Return ``a - b`` as a two's-complement value of the cluster width."""
        result = to_unsigned(a - b, self.width_bits)
        self._track(result)
        return result

    def absolute_difference(self, a: int, b: int) -> int:
        """Return ``|a - b|`` for unsigned operands."""
        result = to_unsigned(abs(int(a) - int(b)), self.width_bits)
        self._track(result)
        return result


class AddAccCluster(_SequentialCluster):
    """Adder/subtractor with sequential accumulator (Sec. 2.1, ADD/ACC)."""

    def __init__(self, width_bits: int = 16) -> None:
        super().__init__(width_bits)
        self._accumulator = 0

    def reset(self) -> None:
        super().reset()
        self._accumulator = 0

    @property
    def accumulator(self) -> int:
        """Current accumulator contents (unsigned view of the register)."""
        return self._accumulator

    def clear(self) -> None:
        """Synchronously clear the accumulator (start of a new block)."""
        self._accumulator = 0

    def add(self, a: int, b: int) -> int:
        """Combinational add, no accumulator update."""
        result = to_unsigned(a + b, self.width_bits)
        self._track(result)
        return result

    def subtract(self, a: int, b: int) -> int:
        """Combinational subtract, no accumulator update."""
        result = to_unsigned(a - b, self.width_bits)
        self._track(result)
        return result

    def accumulate(self, value: int, subtract: bool = False) -> int:
        """Add (or subtract) ``value`` into the accumulator and return it."""
        if subtract:
            self._accumulator = to_unsigned(self._accumulator - value, self.width_bits)
        else:
            self._accumulator = to_unsigned(self._accumulator + value, self.width_bits)
        self._track(self._accumulator)
        return self._accumulator


class ComparatorCluster(_SequentialCluster):
    """Min/max comparator (Sec. 2.1, COMP).

    Supports a single two-input comparison and a running minimum/maximum
    over a streamed vector, which is what the ME array uses to pick the
    best SAD and its motion vector.
    """

    def __init__(self, width_bits: int = 16, track_minimum: bool = True) -> None:
        super().__init__(width_bits)
        self.track_minimum = track_minimum
        self._best_value: Optional[int] = None
        self._best_tag: Optional[int] = None

    def reset(self) -> None:
        super().reset()
        self._best_value = None
        self._best_tag = None

    @property
    def best_value(self) -> Optional[int]:
        """Best value observed so far, or ``None`` before the first update."""
        return self._best_value

    @property
    def best_tag(self) -> Optional[int]:
        """Tag (e.g. candidate index) that accompanied the best value."""
        return self._best_tag

    def compare(self, a: int, b: int) -> int:
        """Return min(a, b) or max(a, b) depending on the configured mode."""
        result = min(a, b) if self.track_minimum else max(a, b)
        result = to_unsigned(result, self.width_bits)
        self._track(result)
        return result

    def update(self, value: int, tag: Optional[int] = None) -> bool:
        """Feed one vector element; return True when it becomes the new best."""
        value = to_unsigned(value, self.width_bits)
        is_better = self._best_value is None or (
            value < self._best_value if self.track_minimum else value > self._best_value
        )
        if is_better:
            self._best_value = value
            self._best_tag = tag
        self._track(self._best_value if self._best_value is not None else 0)
        return is_better


class AddShiftCluster(_SequentialCluster):
    """Add-Shift cluster of the DA array (Sec. 2.2).

    One cluster supports addition, subtraction, logical/arithmetic shifting
    and shift-accumulation.  Configured as a shift register it performs the
    parallel-to-serial conversion that feeds the Distributed-Arithmetic
    LUT address lines (Fig. 4).
    """

    def __init__(self, width_bits: int = 16) -> None:
        super().__init__(width_bits)
        self._register = 0

    def reset(self) -> None:
        super().reset()
        self._register = 0

    @property
    def register(self) -> int:
        """Current contents of the internal register."""
        return self._register

    # -- combinational operations --------------------------------------
    def add(self, a: int, b: int) -> int:
        """Combinational ``a + b`` wrapped to the cluster width."""
        result = to_unsigned(a + b, self.width_bits)
        self._track(result)
        return result

    def subtract(self, a: int, b: int) -> int:
        """Combinational ``a - b`` wrapped to the cluster width."""
        result = to_unsigned(a - b, self.width_bits)
        self._track(result)
        return result

    def shift(self, value: int, amount: int, arithmetic: bool = False) -> int:
        """Shift right by ``amount`` (arithmetic keeps the sign bit)."""
        if amount < 0:
            raise ConfigurationError("shift amount must be non-negative")
        if arithmetic:
            signed = to_signed(value, self.width_bits)
            result = to_unsigned(signed >> amount, self.width_bits)
        else:
            result = to_unsigned(to_unsigned(value, self.width_bits) >> amount, self.width_bits)
        self._track(result)
        return result

    # -- sequential operations ------------------------------------------
    def load(self, value: int) -> None:
        """Parallel-load the register (start of a bit-serial conversion)."""
        self._register = to_unsigned(value, self.width_bits)
        self._track(self._register)

    def shift_out_lsb(self) -> int:
        """Emit the LSB and shift the register right by one (serial output)."""
        bit = self._register & 1
        self._register >>= 1
        self._track(self._register)
        return bit

    def shift_accumulate(self, addend: int, subtract: bool = False) -> int:
        """One Distributed-Arithmetic step: acc = (acc >> 1) ± addend... reversed.

        The classic DA shift-accumulator adds the LUT word into the running
        sum and shifts; equivalently we keep the accumulator in "growing"
        form ``acc = acc + (addend << k)`` handled by the caller, or in
        hardware form ``acc = (acc ± addend) >> 1`` with the final shift
        skipped.  This method implements the hardware form *without* the
        final-cycle handling — callers decide when to stop shifting.
        """
        signed_acc = to_signed(self._register, self.width_bits)
        signed_add = to_signed(addend, self.width_bits)
        total = signed_acc - signed_add if subtract else signed_acc + signed_add
        self._register = to_unsigned(total, self.width_bits)
        self._track(self._register)
        return self._register

    def shift_right_arithmetic(self) -> int:
        """Arithmetic right shift of the accumulator by one bit."""
        signed = to_signed(self._register, self.width_bits)
        self._register = to_unsigned(signed >> 1, self.width_bits)
        self._track(self._register)
        return self._register


class MemoryCluster(_SequentialCluster):
    """Memory cluster of the DA array (Sec. 2.2).

    Implements LUTs and ROMs with configurable geometry.  Contents are
    loaded at configuration time (they are part of the bitstream) and read
    combinationally during operation, exactly like the DA coefficient ROMs
    of Figs. 4–9.
    """

    def __init__(self, depth_words: int, width_bits: int = 8) -> None:
        super().__init__(width_bits)
        if depth_words <= 0:
            raise ConfigurationError("memory depth must be positive")
        self.depth_words = depth_words
        self._contents: List[int] = [0] * depth_words
        self.reads = 0

    def load_contents(self, words: Sequence[int]) -> None:
        """Load the ROM image; shorter images are zero-padded."""
        if len(words) > self.depth_words:
            raise ConfigurationError(
                f"ROM image of {len(words)} words exceeds depth {self.depth_words}"
            )
        self._contents = [to_unsigned(int(w), self.width_bits) for w in words]
        self._contents.extend([0] * (self.depth_words - len(words)))

    def read(self, address: int) -> int:
        """Combinational read of one word."""
        if not 0 <= address < self.depth_words:
            raise ConfigurationError(
                f"address {address} out of range for {self.depth_words}-word memory"
            )
        value = self._contents[address]
        self.reads += 1
        self._track(value)
        return value

    def dump(self) -> List[int]:
        """Copy of the current memory image (useful in tests)."""
        return list(self._contents)


#: Factory table used by the fabric to instantiate behavioural models from
#: a :class:`ClusterSpec`.
def build_cluster(spec: ClusterSpec):
    """Instantiate the behavioural model matching ``spec``."""
    if spec.kind is ClusterKind.REGISTER_MUX:
        return RegisterMuxCluster(spec.width_bits)
    if spec.kind is ClusterKind.ABS_DIFF:
        return AbsDiffCluster(spec.width_bits)
    if spec.kind is ClusterKind.ADD_ACC:
        return AddAccCluster(spec.width_bits)
    if spec.kind is ClusterKind.COMPARATOR:
        return ComparatorCluster(spec.width_bits)
    if spec.kind is ClusterKind.ADD_SHIFT:
        return AddShiftCluster(spec.width_bits)
    if spec.kind is ClusterKind.MEMORY:
        return MemoryCluster(spec.depth_words, spec.width_bits)
    raise ConfigurationError(f"unknown cluster kind: {spec.kind!r}")


@dataclass
class ClusterUsage:
    """Aggregate cluster usage of a mapped implementation.

    This is the unit Table 1 of the paper is expressed in: the number of
    clusters of each role consumed on the array.  ``add_shift_breakdown``
    mirrors the a)/b)/c)/d) rows of the table (adders, subtracters, shift
    registers, accumulators), all of which are physically Add-Shift
    clusters configured for different roles.
    """

    adders: int = 0
    subtracters: int = 0
    shift_registers: int = 0
    accumulators: int = 0
    memory_clusters: int = 0
    register_mux: int = 0
    abs_diff: int = 0
    add_acc: int = 0
    comparators: int = 0
    extra: Dict[str, int] = field(default_factory=dict)

    @property
    def add_shift_total(self) -> int:
        """Total Add-Shift clusters (sum of the four configured roles)."""
        return self.adders + self.subtracters + self.shift_registers + self.accumulators

    @property
    def total_clusters(self) -> int:
        """Total clusters of any kind consumed on the array."""
        return (
            self.add_shift_total
            + self.memory_clusters
            + self.register_mux
            + self.abs_diff
            + self.add_acc
            + self.comparators
            + sum(self.extra.values())
        )

    def as_table_row(self) -> Dict[str, int]:
        """Row in the shape of Table 1 of the paper."""
        return {
            "adders": self.adders,
            "subtracters": self.subtracters,
            "shift_registers": self.shift_registers,
            "accumulators": self.accumulators,
            "add_shift_total": self.add_shift_total,
            "memory_clusters": self.memory_clusters,
            "total_clusters": self.total_clusters,
        }

    def __add__(self, other: "ClusterUsage") -> "ClusterUsage":
        merged_extra = dict(self.extra)
        for key, value in other.extra.items():
            merged_extra[key] = merged_extra.get(key, 0) + value
        return ClusterUsage(
            adders=self.adders + other.adders,
            subtracters=self.subtracters + other.subtracters,
            shift_registers=self.shift_registers + other.shift_registers,
            accumulators=self.accumulators + other.accumulators,
            memory_clusters=self.memory_clusters + other.memory_clusters,
            register_mux=self.register_mux + other.register_mux,
            abs_diff=self.abs_diff + other.abs_diff,
            add_acc=self.add_acc + other.add_acc,
            comparators=self.comparators + other.comparators,
            extra=merged_extra,
        )
