"""Core model of the domain-specific reconfigurable arrays.

This subpackage provides the architecture-independent pieces of the
reproduction: cluster behavioural models, the heterogeneous fabric, the
two-level reconfigurable interconnect, the configuration-bitstream model
and the mapping flow (placement, routing, metrics) plus a generic
dataflow simulator.
"""

from repro.core.clusters import (
    ClusterKind,
    ClusterSpec,
    ClusterUsage,
    AbsDiffCluster,
    AddAccCluster,
    AddShiftCluster,
    ComparatorCluster,
    MemoryCluster,
    RegisterMuxCluster,
    build_cluster,
    elements_for_width,
    to_signed,
    to_unsigned,
)
from repro.core.configuration import (
    ChannelConfiguration,
    ClusterConfiguration,
    ConfigurationBitstream,
    fabric_configuration_capacity,
)
from repro.core.exceptions import (
    CapacityError,
    ConfigurationError,
    MappingError,
    ReproError,
    RoutingError,
    SimulationError,
)
from repro.core.fabric import Fabric, Site
from repro.core.interconnect import Mesh, MeshSpec, fine_grain_equivalent
from repro.core.mapper import AnnealingPlacer, GreedyPlacer, Placement, wirelength
from repro.core.metrics import DesignMetrics, evaluate_design
from repro.core.netlist import Net, Netlist, Node
from repro.core.router import MeshRouter, Route, RoutingResult
from repro.core.scheduler import ListScheduler, Schedule, ScheduledOperation, fold_factor
from repro.core.simulator import DataflowSimulator
from repro.core.verification import (
    VerificationReport,
    verify_mapped_design,
    verify_placement,
    verify_routing,
)
from repro.core.visualize import congestion_map, design_report, placement_map

__all__ = [
    "ClusterKind",
    "ClusterSpec",
    "ClusterUsage",
    "AbsDiffCluster",
    "AddAccCluster",
    "AddShiftCluster",
    "ComparatorCluster",
    "MemoryCluster",
    "RegisterMuxCluster",
    "build_cluster",
    "elements_for_width",
    "to_signed",
    "to_unsigned",
    "ChannelConfiguration",
    "ClusterConfiguration",
    "ConfigurationBitstream",
    "fabric_configuration_capacity",
    "CapacityError",
    "ConfigurationError",
    "MappingError",
    "ReproError",
    "RoutingError",
    "SimulationError",
    "Fabric",
    "Site",
    "Mesh",
    "MeshSpec",
    "fine_grain_equivalent",
    "AnnealingPlacer",
    "GreedyPlacer",
    "Placement",
    "wirelength",
    "DesignMetrics",
    "evaluate_design",
    "Net",
    "Netlist",
    "Node",
    "MeshRouter",
    "Route",
    "RoutingResult",
    "ListScheduler",
    "Schedule",
    "ScheduledOperation",
    "fold_factor",
    "DataflowSimulator",
    "VerificationReport",
    "verify_mapped_design",
    "verify_placement",
    "verify_routing",
    "congestion_map",
    "design_report",
    "placement_map",
]
