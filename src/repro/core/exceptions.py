"""Exception hierarchy for the reconfigurable-array model.

Every error raised by :mod:`repro.core` derives from :class:`ReproError`
so callers can catch the whole family with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A cluster or fabric was configured with inconsistent settings."""


class MappingError(ReproError):
    """A netlist could not be placed onto the target fabric."""


class RoutingError(ReproError):
    """A placed netlist could not be routed on the interconnect mesh."""


class SimulationError(ReproError):
    """The functional simulator hit an unrecoverable inconsistency."""


class CapacityError(MappingError):
    """The fabric does not provide enough clusters of a required kind."""
