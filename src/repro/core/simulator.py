"""Generic cycle-based dataflow simulator for mapped designs.

The DCT and ME subpackages model their datapaths directly on the cluster
behavioural models; this simulator provides the *generic* execution engine
the SoC uses to run an arbitrary mapped netlist: every node is given a
behaviour (a Python callable), nodes exchange integer word values along
the netlist's nets, and the whole graph advances one clock cycle at a
time.  Registered nodes (shift registers, accumulators, registered muxes)
expose their new value only on the next cycle, combinational nodes
propagate within the cycle in topological order.

This is the piece that lets an end user map their *own* kernel onto one of
the arrays and simulate it without writing a dedicated datapath model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.core.exceptions import SimulationError
from repro.core.netlist import Netlist, Node

#: A node behaviour maps the dict of input values (keyed by source node
#: name) to a single integer output value.  Behaviours may close over
#: mutable state to model registers, accumulators or ROMs.
NodeBehaviour = Callable[[Dict[str, int]], int]


@dataclass
class TraceEntry:
    """Values of every node output at the end of one cycle."""

    cycle: int
    values: Dict[str, int]


class DataflowSimulator:
    """Cycle-based execution of a netlist with user-supplied node behaviours."""

    def __init__(self, netlist: Netlist) -> None:
        netlist.validate()
        self.netlist = netlist
        self._behaviours: Dict[str, NodeBehaviour] = {}
        self._registered: Dict[str, bool] = {}
        self._values: Dict[str, int] = {node.name: 0 for node in netlist.nodes}
        self._next_values: Dict[str, int] = dict(self._values)
        self._inputs: Dict[str, int] = {}
        self.cycle = 0
        self.trace: List[TraceEntry] = []
        self.record_trace = False

    # -- wiring -----------------------------------------------------------
    def bind(self, node_name: str, behaviour: NodeBehaviour,
             registered: bool = False) -> None:
        """Attach a behaviour to a node.

        ``registered=True`` delays the node's computed value by one cycle,
        modelling a clocked output register.
        """
        if node_name not in self.netlist:
            raise SimulationError(f"cannot bind unknown node {node_name!r}")
        self._behaviours[node_name] = behaviour
        self._registered[node_name] = registered

    def bind_constant(self, node_name: str, value: int) -> None:
        """Drive a node with a constant value every cycle."""
        self.bind(node_name, lambda _inputs, v=value: v, registered=False)

    def drive(self, node_name: str, value: int) -> None:
        """Override a node's output for the *next* step (external stimulus)."""
        if node_name not in self.netlist:
            raise SimulationError(f"cannot drive unknown node {node_name!r}")
        self._inputs[node_name] = int(value)

    def value_of(self, node_name: str) -> int:
        """Output value of a node after the most recent step."""
        try:
            return self._values[node_name]
        except KeyError:
            raise SimulationError(f"unknown node {node_name!r}") from None

    # -- execution ----------------------------------------------------------
    def reset(self) -> None:
        """Zero all node values and the cycle counter (behaviours keep state)."""
        self._values = {node.name: 0 for node in self.netlist.nodes}
        self._next_values = dict(self._values)
        self._inputs.clear()
        self.cycle = 0
        self.trace.clear()

    def step(self) -> Dict[str, int]:
        """Advance one clock cycle; returns the node values after the cycle."""
        order = self.netlist.topological_order()
        unbound = [node.name for node in order
                   if node.name not in self._behaviours and node.name not in self._inputs]
        if unbound and self.cycle == 0:
            # Unbound nodes simply hold zero; this is legal (e.g. unused
            # status outputs) but worth failing fast on if *nothing* is bound.
            if len(unbound) == len(order):
                raise SimulationError("no node behaviours bound; nothing to simulate")

        new_values = dict(self._values)
        for node in order:
            name = node.name
            if name in self._inputs:
                new_values[name] = self._inputs[name]
                continue
            behaviour = self._behaviours.get(name)
            if behaviour is None:
                continue
            input_values: Dict[str, int] = {}
            for net in self.netlist.fanin(name):
                # Registered sources feed the value committed last cycle;
                # combinational sources feed this cycle's fresh value.
                if self._registered.get(net.source, False):
                    input_values[net.source] = self._values[net.source]
                else:
                    input_values[net.source] = new_values[net.source]
            result = int(behaviour(input_values))
            if self._registered.get(name, False):
                self._next_values[name] = result
                new_values[name] = self._values[name]
            else:
                new_values[name] = result

        # Commit registered outputs computed this cycle.
        for name, registered in self._registered.items():
            if registered:
                new_values[name] = self._next_values.get(name, new_values[name])
        # Registered nodes must present last cycle's value during the cycle
        # and the new value afterwards; the ordering above achieves this by
        # reading self._values for registered sources.
        self._values = new_values
        self._inputs.clear()
        self.cycle += 1
        if self.record_trace:
            self.trace.append(TraceEntry(self.cycle, dict(self._values)))
        return dict(self._values)

    def run(self, cycles: int) -> Dict[str, int]:
        """Advance ``cycles`` clock cycles and return the final node values."""
        if cycles < 0:
            raise SimulationError("cycle count must be non-negative")
        values = dict(self._values)
        for _ in range(cycles):
            values = self.step()
        return values
