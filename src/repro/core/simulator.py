"""Generic cycle-based dataflow simulator for mapped designs.

This is now a thin compatibility wrapper over the batched execution
runtime of :mod:`repro.engine`: the netlist compiles once into a static
schedule (:class:`~repro.engine.program.CompiledSchedule`) and a
:class:`~repro.engine.program.VectorEngine` with a batch of one executes
it, so stepping no longer re-derives the topological order or re-scans
the net list every cycle.  The public surface — ``bind`` arbitrary Python
callables, ``drive`` stimulus, ``step``/``run``, integer values and the
per-cycle ``trace`` — is unchanged, and semantics are bit-exact with the
original per-node interpreter (the engine parity suite enforces this).

New code that wants throughput should use
:class:`~repro.engine.program.VectorEngine` directly and evaluate many
input streams per call; this wrapper exists so existing single-stream
models and user kernels keep working untouched.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.core.exceptions import SimulationError
from repro.core.netlist import Netlist
from repro.engine.trace import TraceEntry

__all__ = ["DataflowSimulator", "NodeBehaviour", "TraceEntry"]

#: A node behaviour maps the dict of input values (keyed by source node
#: name) to a single integer output value.  Behaviours may close over
#: mutable state to model registers, accumulators or ROMs.
NodeBehaviour = Callable[[Dict[str, int]], int]


class DataflowSimulator:
    """Cycle-based execution of a netlist with user-supplied node behaviours."""

    def __init__(self, netlist: Netlist) -> None:
        # Imported lazily: repro.engine.program imports repro.core, so a
        # module-level import here would be circular.
        from repro.engine.program import VectorEngine

        self.netlist = netlist
        self._engine = VectorEngine(netlist, batch=1)
        self.record_trace = False
        self.trace: List[TraceEntry] = []

    # -- wiring -----------------------------------------------------------
    def bind(self, node_name: str, behaviour: NodeBehaviour,
             registered: bool = False) -> None:
        """Attach a behaviour to a node.

        ``registered=True`` delays the node's computed value by one cycle,
        modelling a clocked output register.
        """
        from repro.engine.ops import ScalarOp

        self._engine.bind(node_name, ScalarOp(behaviour),
                          registered=registered)

    def bind_constant(self, node_name: str, value: int) -> None:
        """Drive a node with a constant value every cycle."""
        self.bind(node_name, lambda _inputs, v=value: v, registered=False)

    def drive(self, node_name: str, value: int) -> None:
        """Override a node's output for the *next* step (external stimulus)."""
        self._engine.drive(node_name, int(value))

    def value_of(self, node_name: str) -> int:
        """Output value of a node after the most recent step."""
        return int(self._engine.value_of(node_name)[0])

    @property
    def cycle(self) -> int:
        """Number of clock cycles stepped since the last reset."""
        return self._engine.cycle

    # -- execution ----------------------------------------------------------
    def reset(self) -> None:
        """Zero all node values and the cycle counter (behaviours keep state).

        Matching the legacy interpreter, state held *inside* a bound
        behaviour (a closure's accumulator) survives a reset; only node
        values, pending register commits and the trace are cleared.
        """
        # ScalarOp.reset is a no-op, so closure state survives as before.
        self._engine.reset()
        self.trace.clear()

    def step(self) -> Dict[str, int]:
        """Advance one clock cycle; returns the node values after the cycle."""
        values = self._engine.step()
        out = {name: int(array[0]) for name, array in values.items()}
        if self.record_trace:
            self.trace.append(TraceEntry(self._engine.cycle, dict(out)))
        return out

    def run(self, cycles: int) -> Dict[str, int]:
        """Advance ``cycles`` clock cycles and return the final node values."""
        if cycles < 0:
            raise SimulationError("cycle count must be non-negative")
        values = {name: int(array[0])
                  for name, array in self._engine.values().items()}
        for _ in range(cycles):
            values = self.step()
        return values
