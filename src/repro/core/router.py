"""Maze routing of placed netlists over the segmented mesh.

The router connects every net of a placed netlist through the mesh
channels using a breadth-first (uniform-cost) search whose edge cost grows
with channel congestion — a single-iteration PathFinder-style negotiated
router.  Nets are routed widest-first so byte-wide datapath buses get the
straightest coarse-track paths and single-bit control signals fill in
around them.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.exceptions import RoutingError
from repro.core.fabric import Fabric
from repro.core.interconnect import Position
from repro.core.mapper import Placement
from repro.core.netlist import Net, Netlist


@dataclass
class Route:
    """The routed path of one net: the sequence of grid positions visited."""

    net_name: str
    width_bits: int
    path: Tuple[Position, ...]

    @property
    def hop_count(self) -> int:
        """Number of channels the net occupies."""
        return max(0, len(self.path) - 1)


@dataclass
class RoutingResult:
    """All routes of a design plus aggregate congestion statistics."""

    routes: List[Route] = field(default_factory=list)
    total_hops: int = 0
    total_wire_bits: int = 0
    peak_channel_utilisation: float = 0.0
    mean_channel_utilisation: float = 0.0

    def route_for(self, net_name: str) -> Route:
        """Route of a specific net."""
        for route in self.routes:
            if route.net_name == net_name:
                return route
        raise RoutingError(f"no route recorded for net {net_name!r}")


class MeshRouter:
    """Congestion-aware shortest-path router over the fabric mesh."""

    def __init__(self, fabric: Fabric, congestion_weight: float = 4.0) -> None:
        self.fabric = fabric
        self.congestion_weight = congestion_weight

    def route(self, netlist: Netlist, placement: Placement,
              reset_occupancy: bool = True) -> RoutingResult:
        """Route every net; raises :class:`RoutingError` on unroutable nets."""
        mesh = self.fabric.mesh
        if reset_occupancy:
            mesh.reset_occupancy()

        result = RoutingResult()
        nets = sorted(netlist.nets, key=lambda net: -net.width_bits)
        for net in nets:
            source = placement.position_of(net.source)
            sink = placement.position_of(net.sink)
            if source == sink:
                # Producer and consumer share a site (cascaded elements inside
                # a cluster); no mesh resources are consumed.
                result.routes.append(Route(net.name, net.width_bits, (source,)))
                continue
            path = self._search(source, sink, net.width_bits)
            if path is None:
                raise RoutingError(
                    f"net {net.name!r} ({net.width_bits} bits) is unroutable "
                    f"from {source} to {sink} on fabric {self.fabric.name!r}"
                )
            mesh.occupy_path(path, net.width_bits)
            route = Route(net.name, net.width_bits, tuple(path))
            result.routes.append(route)
            result.total_hops += route.hop_count
            result.total_wire_bits += route.hop_count * net.width_bits

        result.peak_channel_utilisation = mesh.peak_utilisation()
        result.mean_channel_utilisation = mesh.mean_utilisation()
        return result

    def _search(self, source: Position, sink: Position,
                width_bits: int) -> Optional[List[Position]]:
        """Uniform-cost search from source to sink avoiding full channels."""
        mesh = self.fabric.mesh
        frontier: List[Tuple[float, int, Position]] = [(0.0, 0, source)]
        best_cost: Dict[Position, float] = {source: 0.0}
        came_from: Dict[Position, Position] = {}
        counter = 0
        while frontier:
            cost, _, current = heapq.heappop(frontier)
            if current == sink:
                return self._reconstruct(came_from, source, sink)
            if cost > best_cost.get(current, float("inf")):
                continue
            for neighbour in mesh.neighbours(current):
                channel = mesh.channel_between(current, neighbour)
                if not channel.can_route(width_bits):
                    continue
                step_cost = 1.0 + self.congestion_weight * channel.utilisation
                new_cost = cost + step_cost
                if new_cost < best_cost.get(neighbour, float("inf")):
                    best_cost[neighbour] = new_cost
                    came_from[neighbour] = current
                    counter += 1
                    heapq.heappush(frontier, (new_cost, counter, neighbour))
        return None

    @staticmethod
    def _reconstruct(came_from: Dict[Position, Position], source: Position,
                     sink: Position) -> List[Position]:
        path = [sink]
        while path[-1] != source:
            path.append(came_from[path[-1]])
        path.reverse()
        return path
