"""Heterogeneous array fabric: a grid of cluster sites plus a routing mesh.

A :class:`Fabric` is the physical target of the mapping flow.  It is a
rectangular grid; every grid position is a *site* that either holds a
cluster of a fixed kind (set by the array architect, Sec. 2 of the paper)
or is empty.  The domain-specific arrays of the paper are instances of
this class with particular cluster mixes — see :mod:`repro.arrays`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.clusters import ClusterKind, ClusterSpec, build_cluster
from repro.core.exceptions import CapacityError, ConfigurationError
from repro.core.interconnect import Mesh, MeshSpec, Position


@dataclass
class Site:
    """One grid position of the fabric and the cluster it provides."""

    position: Position
    spec: Optional[ClusterSpec]

    @property
    def is_empty(self) -> bool:
        """True when the site provides no cluster (routing-only position)."""
        return self.spec is None


class Fabric:
    """A domain-specific reconfigurable array: cluster sites plus mesh."""

    def __init__(self, name: str, rows: int, cols: int,
                 mesh_spec: Optional[MeshSpec] = None) -> None:
        if rows <= 0 or cols <= 0:
            raise ConfigurationError("fabric dimensions must be positive")
        self.name = name
        self.rows = rows
        self.cols = cols
        self.mesh = Mesh(rows, cols, mesh_spec)
        self._sites: Dict[Position, Site] = {
            (row, col): Site((row, col), None)
            for row in range(rows)
            for col in range(cols)
        }

    # -- construction -------------------------------------------------------
    def place_cluster(self, position: Position, spec: ClusterSpec) -> None:
        """Install a cluster of the given spec at a grid position."""
        if position not in self._sites:
            raise ConfigurationError(f"position {position} outside {self.rows}x{self.cols} fabric")
        if not self._sites[position].is_empty:
            raise ConfigurationError(f"site {position} already holds a cluster")
        self._sites[position] = Site(position, spec)

    def fill_column_band(self, col_start: int, col_end: int, spec: ClusterSpec) -> None:
        """Fill every site in columns ``[col_start, col_end)`` with ``spec``.

        Domain-specific arrays are typically organised in vertical bands of
        one cluster kind (Figs. 2 and 3 of the paper); this helper builds
        such bands.
        """
        if not 0 <= col_start < col_end <= self.cols:
            raise ConfigurationError("invalid column band")
        for row in range(self.rows):
            for col in range(col_start, col_end):
                self.place_cluster((row, col), spec)

    # -- queries -------------------------------------------------------------
    def site(self, position: Position) -> Site:
        """Site at a position."""
        try:
            return self._sites[position]
        except KeyError:
            raise ConfigurationError(f"no site at {position}") from None

    @property
    def sites(self) -> List[Site]:
        """All sites in row-major order."""
        return [self._sites[(row, col)] for row in range(self.rows) for col in range(self.cols)]

    def sites_of_kind(self, kind: ClusterKind) -> List[Site]:
        """All sites providing a cluster of ``kind``."""
        return [site for site in self.sites if site.spec is not None and site.spec.kind is kind]

    def capacity(self) -> Dict[ClusterKind, int]:
        """Number of sites available per cluster kind."""
        counts: Dict[ClusterKind, int] = {}
        for site in self.sites:
            if site.spec is not None:
                counts[site.spec.kind] = counts.get(site.spec.kind, 0) + 1
        return counts

    def check_capacity(self, demand: Dict[ClusterKind, int]) -> None:
        """Raise :class:`CapacityError` when demand exceeds available sites."""
        available = self.capacity()
        shortfalls = []
        for kind, needed in demand.items():
            have = available.get(kind, 0)
            if needed > have:
                shortfalls.append(f"{kind.value}: need {needed}, have {have}")
        if shortfalls:
            raise CapacityError(
                f"fabric {self.name!r} lacks capacity: " + "; ".join(shortfalls)
            )

    def total_cluster_sites(self) -> int:
        """Number of non-empty sites."""
        return sum(1 for site in self.sites if not site.is_empty)

    def total_element_count(self) -> int:
        """Total 4-bit elements across all clusters (area proxy)."""
        return sum(site.spec.element_count for site in self.sites if site.spec is not None)

    def instantiate(self, position: Position):
        """Build the behavioural model for the cluster at ``position``."""
        site = self.site(position)
        if site.spec is None:
            raise ConfigurationError(f"site {position} is empty")
        return build_cluster(site.spec)

    def floorplan(self) -> str:
        """ASCII floorplan of the fabric (one cell per site)."""
        lines = []
        for row in range(self.rows):
            cells = []
            for col in range(self.cols):
                spec = self._sites[(row, col)].spec
                cells.append("...." if spec is None else f"{spec.kind.short_name:<4}")
            lines.append(" ".join(cells))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Fabric({self.name!r}, {self.rows}x{self.cols}, clusters={self.total_cluster_sites()})"
