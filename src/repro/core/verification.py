"""Design-rule checks of mapped designs.

The soft-array flow of the paper generates netlists that are handed to an
ASIC back end; before that hand-off the mapping must be verified.  This
module provides those checks for the Python flow: a placement is legal
when every node sits on a distinct, compatible site of the target fabric;
a routed design is legal when every net's path connects its placed
endpoints through adjacent positions without exceeding any channel's
capacity.  The checks return a structured report rather than raising, so
callers (tests, the SoC, examples) can decide how to react, and
``verify_mapped_design`` bundles them for the common case.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.fabric import Fabric
from repro.core.interconnect import ChannelId
from repro.core.mapper import Placement
from repro.core.netlist import Netlist
from repro.core.router import RoutingResult


@dataclass
class VerificationReport:
    """Outcome of a set of design-rule checks."""

    checks_run: int = 0
    violations: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """True when no violation was recorded."""
        return not self.violations

    def add_violation(self, message: str) -> None:
        """Record one violation."""
        self.violations.append(message)

    def merge(self, other: "VerificationReport") -> "VerificationReport":
        """Combine two reports."""
        merged = VerificationReport(self.checks_run + other.checks_run,
                                    self.violations + other.violations)
        return merged

    def summary(self) -> str:
        """One-line human-readable summary."""
        state = "PASS" if self.passed else f"FAIL ({len(self.violations)} violations)"
        return f"{state} after {self.checks_run} checks"


def verify_placement(fabric: Fabric, netlist: Netlist,
                     placement: Placement) -> VerificationReport:
    """Check completeness, site compatibility and exclusivity of a placement."""
    report = VerificationReport()

    for node in netlist.nodes:
        report.checks_run += 1
        if node.name not in placement:
            report.add_violation(f"node {node.name!r} is not placed")
            continue
        position = placement.position_of(node.name)
        try:
            site = fabric.site(position)
        except Exception:
            report.add_violation(f"node {node.name!r} placed outside the fabric "
                                 f"at {position}")
            continue
        if site.spec is None:
            report.add_violation(f"node {node.name!r} placed on empty site {position}")
        elif site.spec.kind is not node.kind:
            report.add_violation(
                f"node {node.name!r} of kind {node.kind.value} placed on a "
                f"{site.spec.kind.value} site at {position}")
        elif node.kind.value == "memory" and node.depth_words > site.spec.depth_words:
            report.add_violation(
                f"memory node {node.name!r} needs {node.depth_words} words but the "
                f"site at {position} provides {site.spec.depth_words}")

    seen: Dict[Tuple[int, int], str] = {}
    for name, position in placement.assignment.items():
        report.checks_run += 1
        if position in seen:
            report.add_violation(
                f"site {position} shared by nodes {seen[position]!r} and {name!r}")
        else:
            seen[position] = name
    return report


def verify_routing(fabric: Fabric, netlist: Netlist, placement: Placement,
                   routing: RoutingResult) -> VerificationReport:
    """Check connectivity, adjacency and channel capacities of a routed design."""
    report = VerificationReport()
    routed_names = {route.net_name for route in routing.routes}

    for net in netlist.nets:
        report.checks_run += 1
        if net.name not in routed_names:
            report.add_violation(f"net {net.name!r} has no route")

    # Re-derive channel occupancy from the routes and compare against the
    # per-channel capacities of the mesh specification.
    coarse_use: Dict[ChannelId, int] = {}
    fine_use: Dict[ChannelId, int] = {}
    spec = fabric.mesh.spec
    for route in routing.routes:
        report.checks_run += 1
        if route.hop_count == 0:
            continue
        try:
            source_net = next(net for net in netlist.nets if net.name == route.net_name)
        except StopIteration:
            report.add_violation(f"route {route.net_name!r} does not match any net")
            continue
        start = placement.position_of(source_net.source)
        end = placement.position_of(source_net.sink)
        if route.path[0] != start or route.path[-1] != end:
            report.add_violation(
                f"route {route.net_name!r} runs {route.path[0]}->{route.path[-1]} but "
                f"the net is placed {start}->{end}")
        for a, b in zip(route.path, route.path[1:]):
            if abs(a[0] - b[0]) + abs(a[1] - b[1]) != 1:
                report.add_violation(
                    f"route {route.net_name!r} jumps between non-adjacent "
                    f"positions {a} and {b}")
                continue
            channel_id = ChannelId.between(a, b)
            coarse, fine = fabric.mesh.channel_between(a, b).tracks_for_width(
                route.width_bits)
            coarse_use[channel_id] = coarse_use.get(channel_id, 0) + coarse
            fine_use[channel_id] = fine_use.get(channel_id, 0) + fine

    for channel_id, used in coarse_use.items():
        report.checks_run += 1
        if used > spec.coarse_tracks_per_channel:
            report.add_violation(
                f"channel {channel_id.a}-{channel_id.b} oversubscribes coarse tracks "
                f"({used} > {spec.coarse_tracks_per_channel})")
    for channel_id, used in fine_use.items():
        report.checks_run += 1
        if used > spec.fine_tracks_per_channel:
            report.add_violation(
                f"channel {channel_id.a}-{channel_id.b} oversubscribes fine tracks "
                f"({used} > {spec.fine_tracks_per_channel})")
    return report


def verify_mapped_design(fabric: Fabric, netlist: Netlist, placement: Placement,
                         routing: Optional[RoutingResult] = None) -> VerificationReport:
    """Run the placement (and, when available, routing) checks together."""
    report = verify_placement(fabric, netlist, placement)
    if routing is not None:
        report = report.merge(verify_routing(fabric, netlist, placement, routing))
    return report
