"""Dataflow-graph netlist representation of kernels mapped onto the arrays.

A :class:`Netlist` is the input to the placer and router: a directed graph
whose nodes are operations that must each occupy one cluster of a specific
kind, and whose edges are signals of a given bit-width routed over the
reconfigurable mesh.  This mirrors how the paper's software flow treats the
implementations in Figs. 4–11: every shift register, ROM, shift
accumulator, butterfly adder or PE sub-block becomes one node.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.clusters import ClusterKind, ClusterUsage
from repro.core.exceptions import ConfigurationError


@dataclass(frozen=True)
class Node:
    """One operation in the dataflow graph.

    Attributes
    ----------
    name:
        Unique identifier within the netlist.
    kind:
        Cluster kind the operation requires.
    width_bits:
        Datapath width of the operation.
    role:
        Functional role used for Table-1 style accounting (``"adder"``,
        ``"subtracter"``, ``"shift_register"``, ``"accumulator"``,
        ``"rom"``, ``"pe"``, ...).  Roles let two nodes of the same
        physical cluster kind be counted in different rows.
    depth_words:
        Memory depth for ROM/LUT nodes; 0 otherwise.
    """

    name: str
    kind: ClusterKind
    width_bits: int = 8
    role: str = ""
    depth_words: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("netlist nodes need a non-empty name")
        if self.width_bits <= 0:
            raise ConfigurationError("node width_bits must be positive")


@dataclass(frozen=True)
class Net:
    """A point-to-point signal between two nodes.

    Multi-fanout signals are represented as several :class:`Net` objects
    with the same ``source`` — this matches the mesh router, which routes
    each sink separately over the segmented tracks.
    """

    source: str
    sink: str
    width_bits: int = 8
    name: str = ""

    def __post_init__(self) -> None:
        if self.width_bits <= 0:
            raise ConfigurationError("net width_bits must be positive")


class Netlist:
    """A named collection of nodes and nets forming a dataflow graph."""

    def __init__(self, name: str) -> None:
        if not name:
            raise ConfigurationError("netlist name must be non-empty")
        self.name = name
        self._nodes: Dict[str, Node] = {}
        self._nets: List[Net] = []

    # -- construction ----------------------------------------------------
    def add_node(
        self,
        name: str,
        kind: ClusterKind,
        width_bits: int = 8,
        role: str = "",
        depth_words: int = 0,
    ) -> Node:
        """Create a node and add it to the graph; returns the node."""
        if name in self._nodes:
            raise ConfigurationError(f"duplicate node name: {name!r}")
        node = Node(name=name, kind=kind, width_bits=width_bits, role=role,
                    depth_words=depth_words)
        self._nodes[name] = node
        return node

    def connect(self, source: str, sink: str, width_bits: int = 8,
                name: str = "") -> Net:
        """Add a signal from ``source`` to ``sink``; both must exist."""
        for endpoint in (source, sink):
            if endpoint not in self._nodes:
                raise ConfigurationError(f"unknown node in net: {endpoint!r}")
        net = Net(source=source, sink=sink, width_bits=width_bits,
                  name=name or f"{source}->{sink}")
        self._nets.append(net)
        return net

    # -- queries ----------------------------------------------------------
    @property
    def nodes(self) -> List[Node]:
        """All nodes, in insertion order."""
        return list(self._nodes.values())

    @property
    def nets(self) -> List[Net]:
        """All nets, in insertion order."""
        return list(self._nets)

    def node(self, name: str) -> Node:
        """Look a node up by name."""
        try:
            return self._nodes[name]
        except KeyError:
            raise ConfigurationError(f"no node named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes.values())

    def nodes_of_kind(self, kind: ClusterKind) -> List[Node]:
        """All nodes requiring a given cluster kind."""
        return [node for node in self._nodes.values() if node.kind is kind]

    def fanout(self, name: str) -> List[Net]:
        """Nets driven by node ``name``."""
        return [net for net in self._nets if net.source == name]

    def fanin(self, name: str) -> List[Net]:
        """Nets terminating at node ``name``."""
        return [net for net in self._nets if net.sink == name]

    def kind_histogram(self) -> Dict[ClusterKind, int]:
        """Count of nodes per cluster kind (capacity pre-check for mapping)."""
        histogram: Dict[ClusterKind, int] = {}
        for node in self._nodes.values():
            histogram[node.kind] = histogram.get(node.kind, 0) + 1
        return histogram

    def cluster_usage(self) -> ClusterUsage:
        """Aggregate Table-1 style usage of the netlist.

        Add-Shift nodes are split into the adder / subtracter /
        shift-register / accumulator rows using their ``role``; nodes with
        an unknown role are counted as adders, which is the most common
        configuration.
        """
        usage = ClusterUsage()
        for node in self._nodes.values():
            if node.kind is ClusterKind.ADD_SHIFT:
                role = node.role or "adder"
                if role == "adder":
                    usage.adders += 1
                elif role == "subtracter":
                    usage.subtracters += 1
                elif role == "shift_register":
                    usage.shift_registers += 1
                elif role == "accumulator":
                    usage.accumulators += 1
                else:
                    usage.adders += 1
            elif node.kind is ClusterKind.MEMORY:
                usage.memory_clusters += 1
            elif node.kind is ClusterKind.REGISTER_MUX:
                usage.register_mux += 1
            elif node.kind is ClusterKind.ABS_DIFF:
                usage.abs_diff += 1
            elif node.kind is ClusterKind.ADD_ACC:
                usage.add_acc += 1
            elif node.kind is ClusterKind.COMPARATOR:
                usage.comparators += 1
        return usage

    def topological_order(self) -> List[Node]:
        """Nodes in a topological order of the dataflow graph.

        Feedback edges (accumulator loops) are tolerated: nodes that remain
        in a cycle after Kahn's algorithm are appended in insertion order.
        """
        indegree = {name: 0 for name in self._nodes}
        for net in self._nets:
            if net.sink != net.source:
                indegree[net.sink] += 1
        ready = [name for name, deg in indegree.items() if deg == 0]
        order: List[str] = []
        while ready:
            current = ready.pop(0)
            order.append(current)
            for net in self.fanout(current):
                if net.sink == net.source:
                    continue
                indegree[net.sink] -= 1
                if indegree[net.sink] == 0:
                    ready.append(net.sink)
        leftovers = [name for name in self._nodes if name not in order]
        return [self._nodes[name] for name in order + leftovers]

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on dangling references."""
        for net in self._nets:
            if net.source not in self._nodes or net.sink not in self._nodes:
                raise ConfigurationError(f"net {net.name} references unknown nodes")

    def merge(self, other: "Netlist", prefix: str = "") -> None:
        """Copy ``other``'s nodes and nets into this netlist.

        ``prefix`` is prepended to every imported node name, which lets a
        larger design instantiate a sub-netlist several times (e.g. eight
        DA channels of Fig. 4).
        """
        renames = {}
        for node in other.nodes:
            new_name = prefix + node.name
            renames[node.name] = new_name
            self.add_node(new_name, node.kind, node.width_bits, node.role,
                          node.depth_words)
        for net in other.nets:
            self.connect(renames[net.source], renames[net.sink], net.width_bits,
                         prefix + net.name)

    def __repr__(self) -> str:
        return f"Netlist({self.name!r}, nodes={len(self._nodes)}, nets={len(self._nets)})"
