"""Placement of netlists onto a fabric: greedy and annealing placers.

Placement assigns every netlist node to a fabric site providing the
required cluster kind.  The quality metric is total estimated wirelength
(Manhattan distance between connected nodes weighted by signal width),
which correlates with routed track usage, congestion and — through the
interconnect power model — switching energy.

Two placers are provided:

* :class:`GreedyPlacer` — fast constructive placement that walks the
  netlist in topological order and takes the nearest free compatible site.
* :class:`AnnealingPlacer` — simulated-annealing refinement with pairwise
  swaps, matching the standard FPGA CAD flow the paper's soft-array
  software flow is derived from.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.clusters import ClusterKind
from repro.core.exceptions import CapacityError, MappingError
from repro.core.fabric import Fabric
from repro.core.interconnect import Position
from repro.core.netlist import Netlist, Node


@dataclass
class Placement:
    """Assignment of netlist nodes to fabric sites."""

    fabric_name: str
    netlist_name: str
    assignment: Dict[str, Position] = field(default_factory=dict)

    def position_of(self, node_name: str) -> Position:
        """Placed position of a node."""
        try:
            return self.assignment[node_name]
        except KeyError:
            raise MappingError(f"node {node_name!r} is not placed") from None

    def __contains__(self, node_name: str) -> bool:
        return node_name in self.assignment

    def __len__(self) -> int:
        return len(self.assignment)


def manhattan(a: Position, b: Position) -> int:
    """Manhattan distance between two grid positions."""
    return abs(a[0] - b[0]) + abs(a[1] - b[1])


def wirelength(netlist: Netlist, placement: Placement,
               width_weighted: bool = True) -> float:
    """Total (optionally width-weighted) Manhattan wirelength of a placement."""
    total = 0.0
    for net in netlist.nets:
        distance = manhattan(placement.position_of(net.source),
                             placement.position_of(net.sink))
        weight = net.width_bits if width_weighted else 1
        total += distance * weight
    return total


def _check_capacity(fabric: Fabric, netlist: Netlist) -> None:
    fabric.check_capacity(netlist.kind_histogram())


class GreedyPlacer:
    """Constructive placer: nearest free compatible site, topological order.

    Nodes are visited in topological order so that a node is usually placed
    after its producers; the candidate site minimising the distance to the
    already-placed fan-in is chosen.
    """

    def __init__(self, fabric: Fabric) -> None:
        self.fabric = fabric

    def place(self, netlist: Netlist) -> Placement:
        """Produce a placement or raise :class:`CapacityError` / :class:`MappingError`."""
        netlist.validate()
        _check_capacity(self.fabric, netlist)

        free_sites: Dict[ClusterKind, List[Position]] = {}
        for site in self.fabric.sites:
            if site.spec is not None:
                free_sites.setdefault(site.spec.kind, []).append(site.position)

        placement = Placement(self.fabric.name, netlist.name)
        for node in netlist.topological_order():
            candidates = free_sites.get(node.kind, [])
            if not candidates:
                raise CapacityError(
                    f"no free {node.kind.value} site left for node {node.name!r}"
                )
            anchor_positions = [
                placement.position_of(net.source)
                for net in netlist.fanin(node.name)
                if net.source in placement
            ]
            if anchor_positions:
                def cost(site: Position) -> int:
                    return sum(manhattan(site, anchor) for anchor in anchor_positions)
                best = min(candidates, key=cost)
            else:
                best = candidates[0]
            candidates.remove(best)
            placement.assignment[node.name] = best
        return placement


class AnnealingPlacer:
    """Simulated-annealing placement refinement.

    Starts from a greedy placement and repeatedly proposes swapping the
    sites of two nodes of the same cluster kind (or moving a node to a free
    compatible site), accepting uphill moves with the usual Metropolis
    criterion.  Deterministic for a fixed ``seed``.
    """

    def __init__(self, fabric: Fabric, seed: int = 0,
                 moves_per_temperature: int = 64,
                 initial_temperature: float = 10.0,
                 cooling_rate: float = 0.9,
                 minimum_temperature: float = 0.05) -> None:
        self.fabric = fabric
        self.seed = seed
        self.moves_per_temperature = moves_per_temperature
        self.initial_temperature = initial_temperature
        self.cooling_rate = cooling_rate
        self.minimum_temperature = minimum_temperature

    def place(self, netlist: Netlist) -> Placement:
        """Greedy placement followed by annealing refinement."""
        placement = GreedyPlacer(self.fabric).place(netlist)
        return self.refine(netlist, placement)

    def refine(self, netlist: Netlist, placement: Placement) -> Placement:
        """Anneal an existing placement in place and return it."""
        rng = random.Random(self.seed)
        nodes_by_kind: Dict[ClusterKind, List[Node]] = {}
        for node in netlist.nodes:
            nodes_by_kind.setdefault(node.kind, []).append(node)

        free_by_kind: Dict[ClusterKind, List[Position]] = {}
        occupied = set(placement.assignment.values())
        for site in self.fabric.sites:
            if site.spec is not None and site.position not in occupied:
                free_by_kind.setdefault(site.spec.kind, []).append(site.position)

        swappable_kinds = [kind for kind, nodes in nodes_by_kind.items()
                           if len(nodes) >= 2 or free_by_kind.get(kind)]
        if not swappable_kinds:
            return placement

        current_cost = wirelength(netlist, placement)
        temperature = self.initial_temperature
        while temperature > self.minimum_temperature:
            for _ in range(self.moves_per_temperature):
                kind = rng.choice(swappable_kinds)
                nodes = nodes_by_kind[kind]
                node_a = rng.choice(nodes)
                use_free_site = free_by_kind.get(kind) and (len(nodes) < 2 or rng.random() < 0.3)
                if use_free_site:
                    old_position = placement.assignment[node_a.name]
                    new_position = rng.choice(free_by_kind[kind])
                    placement.assignment[node_a.name] = new_position
                    new_cost = wirelength(netlist, placement)
                    if self._accept(new_cost - current_cost, temperature, rng):
                        free_by_kind[kind].remove(new_position)
                        free_by_kind[kind].append(old_position)
                        current_cost = new_cost
                    else:
                        placement.assignment[node_a.name] = old_position
                else:
                    node_b = rng.choice(nodes)
                    if node_b.name == node_a.name:
                        continue
                    pos_a = placement.assignment[node_a.name]
                    pos_b = placement.assignment[node_b.name]
                    placement.assignment[node_a.name] = pos_b
                    placement.assignment[node_b.name] = pos_a
                    new_cost = wirelength(netlist, placement)
                    if self._accept(new_cost - current_cost, temperature, rng):
                        current_cost = new_cost
                    else:
                        placement.assignment[node_a.name] = pos_a
                        placement.assignment[node_b.name] = pos_b
            temperature *= self.cooling_rate
        return placement

    @staticmethod
    def _accept(delta: float, temperature: float, rng: random.Random) -> bool:
        if delta <= 0:
            return True
        return rng.random() < math.exp(-delta / max(temperature, 1e-9))
