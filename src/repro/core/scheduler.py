"""Resource-constrained scheduling: time-multiplexing operations on clusters.

Two of the paper's implementations rely on executing more operations than
there are clusters by reusing hardware across clock cycles: the scaled
CORDIC architecture time-shares its three rotators between vector pairs
(Sec. 3.4), and any kernel too large for a given array instance can still
run if its operations are serialised.  This module provides the generic
piece of that story: a resource-constrained list scheduler that assigns
every netlist node a start cycle such that

* data dependencies are respected (a node starts after its producers
  finish),
* at most ``capacity[kind]`` nodes of each cluster kind execute in any
  cycle (the nodes of one kind are folded onto that many physical
  clusters).

The resulting schedule length (initiation interval for one block of data)
feeds the energy-per-block and throughput comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.core.clusters import ClusterKind
from repro.core.exceptions import CapacityError, MappingError
from repro.core.fabric import Fabric
from repro.core.netlist import Netlist, Node

#: Default execution latency (cycles) of one operation on each cluster kind.
DEFAULT_LATENCY: Dict[ClusterKind, int] = {
    ClusterKind.REGISTER_MUX: 1,
    ClusterKind.ABS_DIFF: 1,
    ClusterKind.ADD_ACC: 1,
    ClusterKind.COMPARATOR: 1,
    ClusterKind.ADD_SHIFT: 1,
    ClusterKind.MEMORY: 1,
}


@dataclass
class ScheduledOperation:
    """Placement in time of one netlist node."""

    node: str
    kind: ClusterKind
    start_cycle: int
    latency: int
    physical_instance: int

    @property
    def end_cycle(self) -> int:
        """First cycle after the operation has finished."""
        return self.start_cycle + self.latency


@dataclass
class Schedule:
    """A complete time-multiplexed schedule of a netlist."""

    netlist_name: str
    operations: Dict[str, ScheduledOperation] = field(default_factory=dict)

    @property
    def length_cycles(self) -> int:
        """Total cycles from the first start to the last finish."""
        if not self.operations:
            return 0
        return max(op.end_cycle for op in self.operations.values())

    def operations_in_cycle(self, cycle: int) -> List[ScheduledOperation]:
        """Operations executing during a given cycle."""
        return [op for op in self.operations.values()
                if op.start_cycle <= cycle < op.end_cycle]

    def peak_concurrency(self, kind: Optional[ClusterKind] = None) -> int:
        """Largest number of simultaneously active operations (per kind)."""
        peak = 0
        for cycle in range(self.length_cycles):
            active = [op for op in self.operations_in_cycle(cycle)
                      if kind is None or op.kind is kind]
            peak = max(peak, len(active))
        return peak

    def utilisation(self, capacity: Mapping[ClusterKind, int]) -> float:
        """Average fraction of provided cluster-cycles doing useful work."""
        total_capacity = sum(capacity.values()) * max(1, self.length_cycles)
        busy = sum(op.latency for op in self.operations.values())
        if total_capacity == 0:
            return 0.0
        return busy / total_capacity


class ListScheduler:
    """Dependency- and resource-aware list scheduler.

    Parameters
    ----------
    capacity:
        Number of physical clusters available per kind.  Kinds absent from
        the mapping are treated as unavailable and raise
        :class:`~repro.core.exceptions.MappingError` if the netlist needs
        them.
    latency:
        Optional per-kind execution latency override.
    """

    def __init__(self, capacity: Mapping[ClusterKind, int],
                 latency: Optional[Mapping[ClusterKind, int]] = None) -> None:
        self.capacity = dict(capacity)
        self.latency = dict(DEFAULT_LATENCY)
        if latency:
            self.latency.update(latency)

    @classmethod
    def for_fabric(cls, fabric: Fabric,
                   latency: Optional[Mapping[ClusterKind, int]] = None) -> "ListScheduler":
        """Build a scheduler whose capacities are the fabric's cluster counts."""
        return cls(fabric.capacity(), latency)

    def schedule(self, netlist: Netlist) -> Schedule:
        """Schedule every node of the netlist; returns the full schedule."""
        netlist.validate()
        for kind, demand in netlist.kind_histogram().items():
            if demand and self.capacity.get(kind, 0) <= 0:
                # CapacityError (a MappingError subclass): the kernel cannot
                # run on this fabric at all, not even time-multiplexed.
                raise CapacityError(
                    f"no {kind.value} clusters available to schedule {netlist.name!r}")

        schedule = Schedule(netlist.name)
        # earliest start imposed by data dependencies
        ready_time: Dict[str, int] = {}
        # (kind, cycle) -> number of clusters already busy that cycle
        busy: Dict[tuple, int] = {}

        for node in netlist.topological_order():
            earliest = 0
            for net in netlist.fanin(node.name):
                if net.source == net.sink:
                    continue
                producer = schedule.operations.get(net.source)
                if producer is not None:
                    earliest = max(earliest, producer.end_cycle)
            latency = self.latency[node.kind]
            capacity = self.capacity.get(node.kind, 0)

            start = earliest
            while True:
                conflict = any(
                    busy.get((node.kind, cycle), 0) >= capacity
                    for cycle in range(start, start + latency))
                if not conflict:
                    break
                start += 1

            instance = busy.get((node.kind, start), 0)
            for cycle in range(start, start + latency):
                busy[(node.kind, cycle)] = busy.get((node.kind, cycle), 0) + 1
            schedule.operations[node.name] = ScheduledOperation(
                node=node.name, kind=node.kind, start_cycle=start,
                latency=latency, physical_instance=instance)
            ready_time[node.name] = start + latency
        return schedule


def fold_factor(netlist: Netlist, capacity: Mapping[ClusterKind, int]) -> float:
    """How many times over the netlist oversubscribes the scarcest resource.

    A factor of 1.0 means everything fits spatially; 2.0 means the busiest
    cluster kind must be time-shared two ways, which lower-bounds the
    schedule-length increase.
    """
    worst = 1.0
    for kind, demand in netlist.kind_histogram().items():
        available = capacity.get(kind, 0)
        if available <= 0:
            raise CapacityError(f"no {kind.value} clusters available")
        worst = max(worst, demand / available)
    return worst
