"""ASCII visualisation of fabrics, placements and routed designs.

The soft-array flow of the paper produces floorplans and routed views for
inspection; this module provides the text equivalents used by the examples
and by debugging sessions: an occupancy map of a placement on the fabric
grid, a per-channel congestion map of a routed design and a compact
textual summary that combines both with the headline metrics.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.fabric import Fabric
from repro.core.mapper import Placement
from repro.core.netlist import Netlist
from repro.core.router import RoutingResult


def placement_map(fabric: Fabric, placement: Placement,
                  netlist: Optional[Netlist] = None) -> str:
    """Grid view of which sites a placement occupies.

    Occupied sites show the cluster kind's short name in upper case,
    unoccupied-but-present clusters in lower case, empty sites as dots.
    """
    occupied = {position: name for name, position in placement.assignment.items()}
    lines: List[str] = []
    for row in range(fabric.rows):
        cells = []
        for col in range(fabric.cols):
            site = fabric.site((row, col))
            if site.spec is None:
                cells.append("....")
            elif (row, col) in occupied:
                cells.append(f"{site.spec.kind.short_name:<4}")
            else:
                cells.append(f"{site.spec.kind.short_name.lower():<4}")
        lines.append(" ".join(cells))
    return "\n".join(lines)


def congestion_map(fabric: Fabric, buckets: str = " .:-=+*#%@") -> str:
    """Per-channel utilisation of the mesh after routing, as a heat map.

    Each grid position is annotated with the highest utilisation of the
    channels that touch it, quantised onto the ``buckets`` ramp.
    """
    lines: List[str] = []
    for row in range(fabric.rows):
        cells = []
        for col in range(fabric.cols):
            peak = 0.0
            for neighbour in fabric.mesh.neighbours((row, col)):
                channel = fabric.mesh.channel_between((row, col), neighbour)
                peak = max(peak, channel.utilisation)
            index = min(len(buckets) - 1, int(peak * (len(buckets) - 1) + 0.5))
            cells.append(buckets[index])
        lines.append("".join(cells))
    return "\n".join(lines)


def design_report(fabric: Fabric, netlist: Netlist, placement: Placement,
                  routing: Optional[RoutingResult] = None) -> str:
    """Compact multi-section text report of one mapped design."""
    usage = netlist.cluster_usage()
    capacity = fabric.capacity()
    occupancy = {
        kind.value: f"{count}/{capacity.get(kind, 0)}"
        for kind, count in netlist.kind_histogram().items()
    }
    sections = [
        f"design {netlist.name!r} on fabric {fabric.name!r}",
        f"  clusters used : {usage.total_clusters} ({occupancy})",
    ]
    if routing is not None:
        sections.append(
            f"  routing       : {routing.total_hops} hops, peak channel "
            f"utilisation {routing.peak_channel_utilisation:.0%}")
    sections.append("placement map:")
    sections.append(placement_map(fabric, placement, netlist))
    if routing is not None:
        sections.append("congestion map:")
        sections.append(congestion_map(fabric))
    return "\n".join(sections)
