"""Area, timing and configuration metrics of mapped designs.

The paper quantifies the DCT implementations by *cluster count* (Table 1)
and, through its companion papers [1]/[2], by area / power / timing
relative to a generic FPGA.  This module derives those numbers from a
netlist, a placement and a routing result:

* area        — 4-bit-element count for logic plus memory bits plus the
                mesh switches actually used;
* timing      — longest combinational register-to-register path through
                placed clusters and routed channel hops;
* config size — bits needed to program the mapped design.

Absolute units are arbitrary ("element areas" / "delay units"); all
benchmarks report ratios, which is also all the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.clusters import ClusterKind, ClusterUsage
from repro.core.configuration import ConfigurationBitstream
from repro.core.fabric import Fabric
from repro.core.mapper import Placement, wirelength
from repro.core.netlist import Netlist
from repro.core.router import RoutingResult

#: Relative area of one cluster, in units of one 4-bit element, excluding
#: the datapath elements themselves (control, local interconnect).
CLUSTER_OVERHEAD_ELEMENTS: Dict[ClusterKind, float] = {
    ClusterKind.REGISTER_MUX: 0.5,
    ClusterKind.ABS_DIFF: 1.0,
    ClusterKind.ADD_ACC: 1.5,
    ClusterKind.COMPARATOR: 1.0,
    ClusterKind.ADD_SHIFT: 1.5,
    ClusterKind.MEMORY: 2.0,
}

#: Area of one memory bit relative to one 4-bit element.
MEMORY_BIT_ELEMENTS = 0.02

#: Combinational delay through one cluster, in delay units.
CLUSTER_DELAY: Dict[ClusterKind, float] = {
    ClusterKind.REGISTER_MUX: 0.4,
    ClusterKind.ABS_DIFF: 1.2,
    ClusterKind.ADD_ACC: 1.0,
    ClusterKind.COMPARATOR: 1.0,
    ClusterKind.ADD_SHIFT: 1.0,
    ClusterKind.MEMORY: 1.5,
}

#: Delay of one routed channel hop (switch + wire segment), in delay units.
HOP_DELAY = 0.35


@dataclass
class DesignMetrics:
    """Aggregate metrics of one mapped design.

    ``engine_levels`` / ``engine_registers`` come from the vectorized
    execution runtime's static schedule
    (:func:`repro.engine.program.compile_schedule`): the number of
    combinational levels a value crosses within one cycle and the number
    of register stages committed between cycles.  Every compiled
    :class:`~repro.flow.pipeline.FlowResult` therefore carries cycle
    structure derived from the same runtime that executes the design.

    ``noc_latency_cycles`` / ``noc_energy`` are the SoC-level
    communication cost of the mapped design — the worst per-flow latency
    and transfer energy of its tile-to-tile traffic on the on-chip
    network — filled in by :class:`~repro.noc.passes.NocMetricsPass`
    when the flow includes the NoC stages (zero otherwise).
    """

    netlist_name: str
    fabric_name: str
    cluster_usage: ClusterUsage
    logic_area_elements: float
    memory_bits: int
    routed_hops: int
    wirelength: float
    critical_path_delay: float
    configuration_bits: int
    engine_levels: int = 0
    engine_registers: int = 0
    noc_latency_cycles: int = 0
    noc_energy: float = 0.0

    @property
    def total_area_elements(self) -> float:
        """Logic area plus memory area in 4-bit-element units."""
        return self.logic_area_elements + self.memory_bits * MEMORY_BIT_ELEMENTS

    @property
    def max_frequency(self) -> float:
        """Reciprocal of the critical path (arbitrary frequency units)."""
        if self.critical_path_delay <= 0:
            return float("inf")
        return 1.0 / self.critical_path_delay

    def summary(self) -> Dict[str, float]:
        """Flat dictionary for reporting."""
        return {
            "total_clusters": self.cluster_usage.total_clusters,
            "logic_area_elements": round(self.logic_area_elements, 2),
            "memory_bits": self.memory_bits,
            "total_area_elements": round(self.total_area_elements, 2),
            "routed_hops": self.routed_hops,
            "wirelength": round(self.wirelength, 1),
            "critical_path_delay": round(self.critical_path_delay, 3),
            "configuration_bits": self.configuration_bits,
            "engine_levels": self.engine_levels,
            "engine_registers": self.engine_registers,
            "noc_latency_cycles": self.noc_latency_cycles,
            "noc_energy": round(self.noc_energy, 2),
        }


def logic_area(netlist: Netlist) -> float:
    """Logic area of a netlist in 4-bit-element units (placement independent)."""
    from repro.core.clusters import elements_for_width

    area = 0.0
    for node in netlist.nodes:
        area += elements_for_width(node.width_bits)
        area += CLUSTER_OVERHEAD_ELEMENTS[node.kind]
    return area


def memory_bits(netlist: Netlist) -> int:
    """Total ROM/LUT bits instantiated by the netlist."""
    return sum(node.depth_words * node.width_bits for node in netlist.nodes
               if node.kind is ClusterKind.MEMORY and node.depth_words > 0)


def critical_path_delay(netlist: Netlist, routing: Optional[RoutingResult] = None) -> float:
    """Longest combinational path delay through the dataflow graph.

    Registered cluster outputs (shift registers, accumulators, registered
    muxes) break combinational paths in real designs; as the netlist does
    not annotate register boundaries explicitly, the longest path through
    the acyclic portion of the graph is used, which upper-bounds the true
    critical path and is consistent across implementations.
    """
    hop_delay: Dict[str, float] = {}
    if routing is not None:
        for route in routing.routes:
            hop_delay[route.net_name] = route.hop_count * HOP_DELAY

    arrival: Dict[str, float] = {}
    for node in netlist.topological_order():
        incoming = 0.0
        for net in netlist.fanin(node.name):
            if net.source == net.sink:
                continue
            source_arrival = arrival.get(net.source, 0.0)
            incoming = max(incoming, source_arrival + hop_delay.get(net.name, HOP_DELAY))
        arrival[node.name] = incoming + CLUSTER_DELAY[node.kind]
    return max(arrival.values()) if arrival else 0.0


def configuration_bits(netlist: Netlist, routing: Optional[RoutingResult] = None) -> int:
    """Configuration bits needed to program the mapped design."""
    from repro.core.configuration import CLUSTER_MODE_BITS

    bits = 0
    for node in netlist.nodes:
        bits += CLUSTER_MODE_BITS[node.kind]
        if node.kind is ClusterKind.MEMORY:
            bits += node.depth_words * node.width_bits
    if routing is not None:
        for route in routing.routes:
            # one switch per hop per byte lane (or per bit for fine tracks)
            lanes = max(1, -(-route.width_bits // 8)) if route.width_bits > 2 else route.width_bits
            bits += route.hop_count * lanes
    return bits


def engine_schedule_stats(netlist: Netlist) -> Dict[str, int]:
    """Schedule structure of the netlist under the vectorized engine.

    Compiles the netlist with the engine's default per-role ops and
    reports the static schedule's combinational depth and register-stage
    count — the cycle structure the :class:`~repro.engine.program.VectorEngine`
    executes.
    """
    from repro.engine.program import compile_schedule, default_op_for

    registered = {node.name: default_op_for(node).registered
                  for node in netlist.nodes}
    schedule = compile_schedule(netlist, registered)
    return {"engine_levels": schedule.depth,
            "engine_registers": len(schedule.registered)}


def evaluate_design(netlist: Netlist, fabric: Fabric,
                    placement: Optional[Placement] = None,
                    routing: Optional[RoutingResult] = None,
                    engine_schedule=None) -> DesignMetrics:
    """Compute the full metric set for a mapped (or pre-placement) design.

    ``engine_schedule`` optionally reuses an already-compiled
    :class:`~repro.engine.program.CompiledSchedule` (the verify pass
    compiles one for its smoke run) instead of compiling it again.
    """
    wl = wirelength(netlist, placement) if placement is not None else 0.0
    hops = routing.total_hops if routing is not None else 0
    if engine_schedule is not None:
        schedule_stats = {"engine_levels": engine_schedule.depth,
                          "engine_registers": len(engine_schedule.registered)}
    else:
        schedule_stats = engine_schedule_stats(netlist)
    return DesignMetrics(
        netlist_name=netlist.name,
        fabric_name=fabric.name,
        cluster_usage=netlist.cluster_usage(),
        logic_area_elements=logic_area(netlist),
        memory_bits=memory_bits(netlist),
        routed_hops=hops,
        wirelength=wl,
        critical_path_delay=critical_path_delay(netlist, routing),
        configuration_bits=configuration_bits(netlist, routing),
        engine_levels=schedule_stats["engine_levels"],
        engine_registers=schedule_stats["engine_registers"],
    )
