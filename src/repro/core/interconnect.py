"""Reconfigurable interconnect model: intra-cluster links and the mesh.

The paper (Sec. 2) describes two levels of interconnect:

* short, high-speed links *inside* a cluster which cascade 4-bit elements
  into wider datapaths — these are implicit in the cluster models and only
  contribute a fixed per-cluster cost;
* an FPGA-style segmented *mesh* between clusters, built from a mix of
  **8-bit coarse tracks** and **1-bit fine tracks**.  Using byte-wide
  tracks for datapath signals slashes the number of programmable switches
  and configuration bits compared with a fine-grain 1-bit-only FPGA mesh,
  which is where a large share of the area/power saving of the
  domain-specific arrays comes from.

This module models the mesh as routing channels between grid positions.
Each channel holds a configurable number of coarse and fine tracks;
occupancy is tracked per track so the router can detect congestion, and
switch / configuration-bit counts are derived for the metrics model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.exceptions import ConfigurationError, RoutingError

#: Width of a coarse track in bits (byte-wide buses between clusters).
COARSE_TRACK_BITS = 8
#: Width of a fine track in bits (single-bit control signals).
FINE_TRACK_BITS = 1

Position = Tuple[int, int]


@dataclass(frozen=True)
class ChannelId:
    """Identity of one routing channel: the two grid positions it joins."""

    a: Position
    b: Position

    @staticmethod
    def between(a: Position, b: Position) -> "ChannelId":
        """Canonical (order-independent) channel id between two positions."""
        return ChannelId(min(a, b), max(a, b))


@dataclass
class Channel:
    """One routing channel with its coarse and fine track occupancy."""

    coarse_tracks: int
    fine_tracks: int
    coarse_used: int = 0
    fine_used: int = 0

    def tracks_for_width(self, width_bits: int) -> Tuple[int, int]:
        """Coarse/fine tracks needed to carry a signal of ``width_bits``.

        Wide signals ride coarse tracks; a remainder narrower than a byte
        spills onto fine tracks only when it is 1–2 bits (control-like),
        otherwise a whole coarse track is consumed for it, matching how the
        hardware bundles nets onto byte lanes.
        """
        if width_bits <= 0:
            raise ConfigurationError("signal width must be positive")
        if width_bits <= 2:
            return 0, width_bits
        coarse = width_bits // COARSE_TRACK_BITS
        remainder = width_bits - coarse * COARSE_TRACK_BITS
        if remainder:
            coarse += 1
        return coarse, 0

    def can_route(self, width_bits: int) -> bool:
        """True when the channel still has room for a signal of this width."""
        coarse, fine = self.tracks_for_width(width_bits)
        return (self.coarse_used + coarse <= self.coarse_tracks
                and self.fine_used + fine <= self.fine_tracks)

    def occupy(self, width_bits: int) -> None:
        """Reserve tracks for a signal; raises :class:`RoutingError` if full."""
        if not self.can_route(width_bits):
            raise RoutingError("channel congested")
        coarse, fine = self.tracks_for_width(width_bits)
        self.coarse_used += coarse
        self.fine_used += fine

    def release(self, width_bits: int) -> None:
        """Return previously reserved tracks (used by rip-up and re-route)."""
        coarse, fine = self.tracks_for_width(width_bits)
        self.coarse_used = max(0, self.coarse_used - coarse)
        self.fine_used = max(0, self.fine_used - fine)

    @property
    def utilisation(self) -> float:
        """Fraction of track capacity currently occupied (0..1)."""
        total = self.coarse_tracks + self.fine_tracks
        if total == 0:
            return 0.0
        return (self.coarse_used + self.fine_used) / total


@dataclass(frozen=True)
class MeshSpec:
    """Static parameters of the interconnect mesh.

    ``switches_per_track_per_channel`` and ``config_bits_per_switch`` feed
    the area/configuration model: a coarse track switches all eight bits
    with a single configuration point, which is the source of the
    configuration-memory saving quoted in the paper.
    """

    coarse_tracks_per_channel: int = 4
    fine_tracks_per_channel: int = 8
    switches_per_track_per_channel: int = 6
    config_bits_per_switch: int = 1

    def __post_init__(self) -> None:
        if self.coarse_tracks_per_channel < 0 or self.fine_tracks_per_channel < 0:
            raise ConfigurationError("track counts must be non-negative")
        if self.coarse_tracks_per_channel + self.fine_tracks_per_channel == 0:
            raise ConfigurationError("mesh needs at least one track per channel")

    def channel(self) -> Channel:
        """Instantiate an empty channel with this spec's capacities."""
        return Channel(self.coarse_tracks_per_channel, self.fine_tracks_per_channel)

    def switches_per_channel(self) -> int:
        """Programmable switches in one channel."""
        tracks = self.coarse_tracks_per_channel + self.fine_tracks_per_channel
        return tracks * self.switches_per_track_per_channel

    def config_bits_per_channel(self) -> int:
        """Configuration bits controlling one channel."""
        return self.switches_per_channel() * self.config_bits_per_switch

    def wire_bits_per_channel(self) -> int:
        """Physical wire bits in one channel (for area/power accounting)."""
        return (self.coarse_tracks_per_channel * COARSE_TRACK_BITS
                + self.fine_tracks_per_channel * FINE_TRACK_BITS)


def fine_grain_equivalent(spec: MeshSpec) -> MeshSpec:
    """The all-1-bit mesh a generic FPGA would need for the same wire bits.

    Used by the interconnect ablation: replacing every coarse track by
    eight fine tracks keeps the raw wiring capacity identical but
    multiplies the switch and configuration-bit counts, which is exactly
    the overhead the domain-specific arrays avoid.
    """
    fine = (spec.fine_tracks_per_channel
            + spec.coarse_tracks_per_channel * COARSE_TRACK_BITS)
    return MeshSpec(
        coarse_tracks_per_channel=0,
        fine_tracks_per_channel=fine,
        switches_per_track_per_channel=spec.switches_per_track_per_channel,
        config_bits_per_switch=spec.config_bits_per_switch,
    )


class Mesh:
    """The segmented routing mesh over a rectangular grid of cluster sites.

    Channels exist between horizontally and vertically adjacent grid
    positions.  The router moves signals along sequences of channels; the
    mesh tracks per-channel occupancy and exposes aggregate statistics.
    """

    def __init__(self, rows: int, cols: int, spec: Optional[MeshSpec] = None) -> None:
        if rows <= 0 or cols <= 0:
            raise ConfigurationError("mesh dimensions must be positive")
        self.rows = rows
        self.cols = cols
        self.spec = spec or MeshSpec()
        self._channels: Dict[ChannelId, Channel] = {}
        for row in range(rows):
            for col in range(cols):
                here = (row, col)
                for neighbour in ((row + 1, col), (row, col + 1)):
                    if neighbour[0] < rows and neighbour[1] < cols:
                        cid = ChannelId.between(here, neighbour)
                        self._channels[cid] = self.spec.channel()

    # -- topology ---------------------------------------------------------
    def neighbours(self, position: Position) -> List[Position]:
        """Grid positions reachable from ``position`` through one channel."""
        row, col = position
        candidates = [(row - 1, col), (row + 1, col), (row, col - 1), (row, col + 1)]
        return [(r, c) for r, c in candidates if 0 <= r < self.rows and 0 <= c < self.cols]

    def channel_between(self, a: Position, b: Position) -> Channel:
        """The channel joining two adjacent positions."""
        cid = ChannelId.between(a, b)
        try:
            return self._channels[cid]
        except KeyError:
            raise RoutingError(f"no channel between {a} and {b}") from None

    @property
    def channel_count(self) -> int:
        """Number of routing channels in the mesh."""
        return len(self._channels)

    # -- occupancy ----------------------------------------------------------
    def occupy_path(self, path: Sequence[Position], width_bits: int) -> None:
        """Reserve every channel along ``path`` for a signal of ``width_bits``.

        The reservation is atomic: if any hop is congested the hops already
        taken are released and :class:`RoutingError` is raised.
        """
        taken: List[Tuple[Position, Position]] = []
        try:
            for a, b in zip(path, path[1:]):
                self.channel_between(a, b).occupy(width_bits)
                taken.append((a, b))
        except RoutingError:
            for a, b in taken:
                self.channel_between(a, b).release(width_bits)
            raise

    def release_path(self, path: Sequence[Position], width_bits: int) -> None:
        """Release a previously occupied path."""
        for a, b in zip(path, path[1:]):
            self.channel_between(a, b).release(width_bits)

    def reset_occupancy(self) -> None:
        """Clear all track reservations (start of a fresh routing pass)."""
        for channel in self._channels.values():
            channel.coarse_used = 0
            channel.fine_used = 0

    # -- statistics -----------------------------------------------------------
    def total_switches(self) -> int:
        """Programmable switches across the whole mesh."""
        return self.channel_count * self.spec.switches_per_channel()

    def total_config_bits(self) -> int:
        """Configuration bits controlling the whole mesh."""
        return self.channel_count * self.spec.config_bits_per_channel()

    def total_wire_bits(self) -> int:
        """Physical wire bits across the whole mesh."""
        return self.channel_count * self.spec.wire_bits_per_channel()

    def peak_utilisation(self) -> float:
        """Highest per-channel utilisation (congestion indicator)."""
        if not self._channels:
            return 0.0
        return max(channel.utilisation for channel in self._channels.values())

    def mean_utilisation(self) -> float:
        """Average per-channel utilisation."""
        if not self._channels:
            return 0.0
        return sum(c.utilisation for c in self._channels.values()) / len(self._channels)
