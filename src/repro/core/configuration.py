"""Configuration-bitstream model for the reconfigurable arrays.

The arrays are configured by loading a bitstream that sets, for every
cluster, its operating mode (and ROM contents for memory clusters) and,
for every mesh channel, the state of its programmable switches.  The paper
argues that coarse-grain clusters and byte-wide tracks need far fewer
configuration bits than a generic fine-grain FPGA; this module makes that
count explicit so the comparison benchmarks can report it.

Dynamic reconfiguration (Sec. 5 — switching DCT implementations under a
low-battery constraint) is modelled as swapping one
:class:`ConfigurationBitstream` for another; the reconfiguration time is
proportional to the bitstream length.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.clusters import ClusterKind
from repro.core.exceptions import ConfigurationError
from repro.core.fabric import Fabric
from repro.core.interconnect import Position

#: Mode-select configuration bits per cluster kind.  Coarse-grain clusters
#: need only a handful of bits to select among their few supported
#: operations, in contrast to the hundreds of LUT bits a fine-grain FPGA
#: spends to build the same function.
CLUSTER_MODE_BITS: Dict[ClusterKind, int] = {
    ClusterKind.REGISTER_MUX: 2,    # select source, register enable
    ClusterKind.ABS_DIFF: 2,        # add / sub / absolute-difference
    ClusterKind.ADD_ACC: 3,         # add / sub / accumulate / clear polarity
    ClusterKind.COMPARATOR: 2,      # min / max, vector mode
    ClusterKind.ADD_SHIFT: 4,       # add / sub / shift / shift-accumulate, direction
    ClusterKind.MEMORY: 2,          # geometry select (the contents are counted separately)
}


@dataclass
class ClusterConfiguration:
    """Configuration of one cluster site: mode word plus optional ROM image."""

    position: Position
    kind: ClusterKind
    mode: str
    rom_contents: Tuple[int, ...] = ()
    rom_word_bits: int = 8

    def bit_count(self) -> int:
        """Configuration bits this cluster contributes to the bitstream."""
        bits = CLUSTER_MODE_BITS[self.kind]
        bits += len(self.rom_contents) * self.rom_word_bits
        return bits


@dataclass
class ChannelConfiguration:
    """Switch settings of one mesh channel used by the mapped design."""

    endpoints: Tuple[Position, Position]
    coarse_switches_on: int = 0
    fine_switches_on: int = 0

    def bit_count(self) -> int:
        """One configuration bit per switch that must be programmed on."""
        return self.coarse_switches_on + self.fine_switches_on


class ConfigurationBitstream:
    """The full configuration of a mapped design on a fabric."""

    def __init__(self, fabric_name: str) -> None:
        self.fabric_name = fabric_name
        self._clusters: List[ClusterConfiguration] = []
        self._channels: List[ChannelConfiguration] = []

    def add_cluster(self, configuration: ClusterConfiguration) -> None:
        """Record the configuration of one cluster site."""
        self._clusters.append(configuration)

    def add_channel(self, configuration: ChannelConfiguration) -> None:
        """Record the switch settings of one mesh channel."""
        self._channels.append(configuration)

    @property
    def cluster_configurations(self) -> List[ClusterConfiguration]:
        """Cluster configurations in insertion order."""
        return list(self._clusters)

    @property
    def channel_configurations(self) -> List[ChannelConfiguration]:
        """Channel configurations in insertion order."""
        return list(self._channels)

    def total_bits(self) -> int:
        """Total configuration bits of the mapped design."""
        return (sum(c.bit_count() for c in self._clusters)
                + sum(c.bit_count() for c in self._channels))

    def total_bytes(self) -> int:
        """Bitstream length in bytes (rounded up)."""
        return -(-self.total_bits() // 8)

    def reconfiguration_cycles(self, bus_width_bits: int = 32) -> int:
        """Cycles to load this bitstream over a configuration bus.

        The SoC controller of Fig. 1 streams configuration words into the
        array; one word of ``bus_width_bits`` is written per cycle.
        """
        if bus_width_bits <= 0:
            raise ConfigurationError("bus width must be positive")
        return -(-self.total_bits() // bus_width_bits)

    def serialize(self) -> bytes:
        """Pack the bitstream into bytes (cluster modes then ROMs then switches).

        The exact packing format is this library's own; it exists so the
        SoC model can measure reconfiguration traffic and so tests can
        round-trip the bitstream length.
        """
        bits: List[int] = []
        for cluster in self._clusters:
            mode_bits = CLUSTER_MODE_BITS[cluster.kind]
            mode_value = abs(hash(cluster.mode)) & ((1 << mode_bits) - 1)
            bits.extend((mode_value >> i) & 1 for i in range(mode_bits))
            for word in cluster.rom_contents:
                bits.extend((word >> i) & 1 for i in range(cluster.rom_word_bits))
        for channel in self._channels:
            bits.extend([1] * channel.bit_count())
        packed = bytearray()
        for start in range(0, len(bits), 8):
            byte = 0
            for offset, bit in enumerate(bits[start:start + 8]):
                byte |= (bit & 1) << offset
            packed.append(byte)
        return bytes(packed)

    def __repr__(self) -> str:
        return (f"ConfigurationBitstream({self.fabric_name!r}, "
                f"clusters={len(self._clusters)}, channels={len(self._channels)}, "
                f"bits={self.total_bits()})")


def fabric_configuration_capacity(fabric: Fabric) -> int:
    """Upper bound of configuration bits the fabric's memory must hold.

    Counts mode bits for every cluster site (memory contents excluded — the
    ROM planes are sized per design) plus one bit per mesh switch.
    """
    cluster_bits = sum(
        CLUSTER_MODE_BITS[site.spec.kind]
        for site in fabric.sites
        if site.spec is not None
    )
    return cluster_bits + fabric.mesh.total_config_bits()
