"""Video substrate: synthetic sequences, block utilities, encoder, metrics."""

from repro.video.blocks import (
    MACROBLOCK_SIZE,
    TRANSFORM_BLOCK_SIZE,
    assemble_blocks,
    iterate_blocks,
    macroblock_positions,
    merge_transform_blocks,
    pad_frame,
    split_macroblock_into_transform_blocks,
)
from repro.video.codec import (
    EncoderConfiguration,
    FrameStatistics,
    MacroblockRecord,
    VideoEncoder,
)
from repro.video.decoder import VideoDecoder
from repro.video.entropy import (
    estimate_block_bits,
    estimate_macroblock_bits,
    inverse_zigzag,
    run_length_decode,
    run_length_encode,
    zigzag_scan,
)
from repro.video.motion_compensation import (
    compensate_frame,
    predict_block,
    residual_frame,
)
from repro.video.frames import (
    PIXEL_MAX,
    QCIF_HEIGHT,
    QCIF_WIDTH,
    MovingObject,
    SyntheticSequence,
    moving_square_sequence,
    panning_sequence,
)
from repro.video.gop import (
    DEFAULT_GOP_SIZE,
    DEFAULT_SCENE_CUT_THRESHOLD,
    Gop,
    GopEncodeOutcome,
    detect_scene_cuts,
    encode_gop_batch,
    encode_sequence_parallel,
    split_into_gops,
    stream_digest,
)
from repro.video.metrics import mse, psnr, residual_energy
from repro.video.rate_control import RateController, RateControlSettings
from repro.video.scenes import (
    SCENE_KINDS,
    motion_energy,
    plan_reconfiguration,
    scene_frames,
    scene_suite,
)

__all__ = [
    "MACROBLOCK_SIZE",
    "TRANSFORM_BLOCK_SIZE",
    "assemble_blocks",
    "iterate_blocks",
    "macroblock_positions",
    "merge_transform_blocks",
    "pad_frame",
    "split_macroblock_into_transform_blocks",
    "EncoderConfiguration",
    "FrameStatistics",
    "MacroblockRecord",
    "VideoEncoder",
    "VideoDecoder",
    "estimate_block_bits",
    "estimate_macroblock_bits",
    "inverse_zigzag",
    "run_length_decode",
    "run_length_encode",
    "zigzag_scan",
    "compensate_frame",
    "predict_block",
    "residual_frame",
    "PIXEL_MAX",
    "QCIF_HEIGHT",
    "QCIF_WIDTH",
    "MovingObject",
    "SyntheticSequence",
    "moving_square_sequence",
    "panning_sequence",
    "mse",
    "psnr",
    "residual_energy",
    "DEFAULT_GOP_SIZE",
    "DEFAULT_SCENE_CUT_THRESHOLD",
    "Gop",
    "GopEncodeOutcome",
    "detect_scene_cuts",
    "encode_gop_batch",
    "encode_sequence_parallel",
    "split_into_gops",
    "stream_digest",
    "RateController",
    "RateControlSettings",
    "SCENE_KINDS",
    "motion_energy",
    "plan_reconfiguration",
    "scene_frames",
    "scene_suite",
]
