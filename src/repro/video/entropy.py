"""Zig-zag scanning, run-length coding and bit-budget estimation.

A full MPEG-4 entropy coder (VLC tables, macroblock headers) is outside
the paper's scope, but the encoder needs a rate estimate to make the
"noisy channel → spend fewer bits" operating point of Sec. 5 measurable.
This module provides the standard zig-zag scan of an 8x8 coefficient
block, (run, level) run-length coding of the scanned sequence and a simple
universal-code bit estimate (Exp-Golomb-style lengths), which tracks real
VLC budgets closely enough for relative comparisons.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Sequence, Tuple

import numpy as np

from repro.video.blocks import TRANSFORM_BLOCK_SIZE


@lru_cache(maxsize=None)
def zigzag_order(size: int = TRANSFORM_BLOCK_SIZE) -> Tuple[Tuple[int, int], ...]:
    """The (row, col) visiting order of the classic zig-zag scan."""
    order: List[Tuple[int, int]] = []
    for diagonal in range(2 * size - 1):
        cells = [(row, diagonal - row) for row in range(size)
                 if 0 <= diagonal - row < size]
        if diagonal % 2 == 0:
            cells.reverse()
        order.extend(cells)
    return tuple(order)


@lru_cache(maxsize=None)
def _zigzag_flat_indices(size: int = TRANSFORM_BLOCK_SIZE) -> np.ndarray:
    """Flat (row-major) indices realising the zig-zag scan as one gather."""
    return np.array([row * size + col for row, col in zigzag_order(size)],
                    dtype=np.intp)


def zigzag_scan(block: np.ndarray) -> np.ndarray:
    """Flatten an ``n`` x ``n`` block into zig-zag order."""
    block = np.asarray(block)
    if block.ndim != 2 or block.shape[0] != block.shape[1]:
        raise ValueError("zig-zag scan needs a square block")
    return block.ravel()[_zigzag_flat_indices(block.shape[0])]


def inverse_zigzag(scanned: Sequence[int], size: int = TRANSFORM_BLOCK_SIZE) -> np.ndarray:
    """Rebuild the square block from its zig-zag scan."""
    scanned = list(scanned)
    if len(scanned) != size * size:
        raise ValueError(f"expected {size * size} values, got {len(scanned)}")
    block = np.zeros((size, size), dtype=np.int64)
    for value, (row, col) in zip(scanned, zigzag_order(size)):
        block[row, col] = value
    return block


def run_length_encode(scanned: Sequence[int]) -> List[Tuple[int, int]]:
    """(run-of-zeros, level) pairs of a zig-zag scanned sequence.

    Trailing zeros are absorbed by an end-of-block marker ``(0, 0)``, as in
    H.263-style coding.
    """
    pairs: List[Tuple[int, int]] = []
    run = 0
    for value in scanned:
        value = int(value)
        if value == 0:
            run += 1
        else:
            pairs.append((run, value))
            run = 0
    pairs.append((0, 0))
    return pairs


def run_length_decode(pairs: Sequence[Tuple[int, int]], length: int = 64) -> List[int]:
    """Inverse of :func:`run_length_encode` (stops at the end-of-block pair)."""
    values: List[int] = []
    for run, level in pairs:
        if (run, level) == (0, 0):
            break
        values.extend([0] * run)
        values.append(level)
    if len(values) > length:
        raise ValueError("run-length data longer than the block")
    values.extend([0] * (length - len(values)))
    return values


def _unsigned_exp_golomb_bits(value: int) -> int:
    """Bit length of the order-0 Exp-Golomb code of a non-negative integer."""
    return 2 * (value + 1).bit_length() - 1


def estimate_block_bits(levels: np.ndarray) -> int:
    """Estimated coded size of one quantised coefficient block, in bits.

    Each (run, level) pair costs an Exp-Golomb code for the run plus a
    signed Exp-Golomb code for the level; the end-of-block marker costs one
    run code.  This is not a bit-exact MPEG-4 VLC but preserves the rate
    ordering between coarser and finer quantisation, which is all the
    operating-point experiments need.
    """
    pairs = run_length_encode(zigzag_scan(levels))
    bits = 0
    for run, level in pairs:
        bits += _unsigned_exp_golomb_bits(run)
        if (run, level) != (0, 0):
            signed_index = 2 * abs(level) - (1 if level > 0 else 0)
            bits += _unsigned_exp_golomb_bits(signed_index)
    return bits


def _unsigned_exp_golomb_bits_batched(values: np.ndarray) -> np.ndarray:
    """Vectorized :func:`_unsigned_exp_golomb_bits` (exact bit lengths).

    ``frexp`` returns the exact binary exponent, so this matches
    ``int.bit_length`` for every value a quantised level can take.
    """
    _, exponents = np.frexp((np.asarray(values, dtype=np.int64) + 1)
                            .astype(np.float64))
    return 2 * exponents.astype(np.int64) - 1


def estimate_block_bits_batched(levels: np.ndarray) -> np.ndarray:
    """Estimated coded size of a ``(B, n, n)`` batch of level blocks.

    One vectorized pass replacing ``B`` calls to
    :func:`estimate_block_bits` — the zig-zag scan becomes a gather, the
    (run, level) costs follow from the gaps between non-zero scan
    positions, and every block pays the 1-bit end-of-block marker.
    Results are identical to the scalar function.
    """
    levels = np.asarray(levels, dtype=np.int64)
    if levels.ndim != 3 or levels.shape[1] != levels.shape[2]:
        raise ValueError(f"expected a (B, n, n) batch, got {levels.shape}")
    count, size, _ = levels.shape
    scanned = levels.reshape(count, size * size)[:, _zigzag_flat_indices(size)]
    nonzero = scanned != 0
    positions = np.arange(size * size)
    marked = np.where(nonzero, positions, -1)
    previous = np.maximum.accumulate(marked, axis=1)
    previous = np.concatenate(
        [np.full((count, 1), -1, dtype=np.int64), previous[:, :-1]], axis=1)
    runs = positions - previous - 1
    signed_index = 2 * np.abs(scanned) - (scanned > 0)
    pair_bits = (_unsigned_exp_golomb_bits_batched(runs)
                 + _unsigned_exp_golomb_bits_batched(signed_index))
    # +1: the end-of-block (0, 0) pair costs one run code.
    return (pair_bits * nonzero).sum(axis=1) + 1


def macroblock_header_bits(motion_vector: Tuple[int, int] = (0, 0),
                           inter: bool = False) -> int:
    """Header cost of one macroblock: mode flag plus, for inter blocks,
    the motion vector."""
    bits = 2
    if inter:
        dy, dx = motion_vector
        bits += _unsigned_exp_golomb_bits(2 * abs(dy)) + _unsigned_exp_golomb_bits(2 * abs(dx))
    return bits


def macroblock_header_bits_batched(vector_dy: np.ndarray,
                                   vector_dx: np.ndarray,
                                   inter: np.ndarray) -> np.ndarray:
    """Vectorized :func:`macroblock_header_bits` over macroblock batches.

    ``vector_dy``/``vector_dx`` and the boolean ``inter`` mask broadcast
    together; results are identical to calling the scalar function per
    macroblock.
    """
    vector_bits = (_unsigned_exp_golomb_bits_batched(2 * np.abs(vector_dy))
                   + _unsigned_exp_golomb_bits_batched(2 * np.abs(vector_dx)))
    return 2 + np.where(np.asarray(inter, dtype=bool), vector_bits, 0)


def estimate_macroblock_bits(level_blocks: Sequence[np.ndarray],
                             motion_vector: Tuple[int, int] = (0, 0),
                             inter: bool = False) -> int:
    """Estimated coded size of one macroblock (4 luminance blocks + header)."""
    bits = sum(estimate_block_bits(block) for block in level_blocks)
    return bits + macroblock_header_bits(motion_vector, inter)
