"""Synthetic scene generator: diverse sequences for encoder workloads.

:mod:`repro.video.frames` synthesises sequences with known translational
motion; this module builds on it (and on direct texture resampling) to
produce the scene *types* a live encoder meets — the workload diversity
the paper's dynamic-reconfiguration experiment (Sec. 5) switches kernels
for.  Five kinds are generated, all deterministic under a seed:

``static``    an unchanging textured frame (webcam pointing at a wall),
``pan``       a global translation of the background,
``zoom``      a slow scale-up about the frame centre (bilinear resampled),
``noise``     a pan through heavy sensor noise (the "noisy channel"
              operating point),
``cut``       a pan that hard-cuts to unrelated content mid-sequence —
              the case GOP splitting must detect and isolate.

:func:`plan_reconfiguration` turns a sequence into the per-frame encoder
knob schedule the reconfigurable SoC would apply: cheap search and the
smallest DCT mapping while the scene is quiet, exhaustive search and the
fast DCT when motion or a cut demands it.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.video.frames import PIXEL_MAX, SyntheticSequence

#: The scene kinds :func:`scene_frames` can generate.
SCENE_KINDS: Tuple[str, ...] = ("static", "pan", "zoom", "noise", "cut")

#: Default dimensions of the generated scenes (kept small so test suites
#: can afford every kind; pass explicit sizes for QCIF-class material).
DEFAULT_HEIGHT = 64
DEFAULT_WIDTH = 80


def _texture(height: int, width: int, seed: int) -> np.ndarray:
    """A smooth random luminance texture (reuses the sequence generator)."""
    return SyntheticSequence(height=height, width=width,
                             global_motion=(0, 0), seed=seed).frame(0)


def _zoom_frame(texture: np.ndarray, scale: float) -> np.ndarray:
    """Bilinear resample of ``texture`` scaled by ``scale`` about its centre."""
    height, width = texture.shape
    centre_y, centre_x = (height - 1) / 2.0, (width - 1) / 2.0
    ys = centre_y + (np.arange(height) - centre_y) / scale
    xs = centre_x + (np.arange(width) - centre_x) / scale
    ys = np.clip(ys, 0, height - 1)
    xs = np.clip(xs, 0, width - 1)
    y0 = np.floor(ys).astype(np.intp)
    x0 = np.floor(xs).astype(np.intp)
    y1 = np.minimum(y0 + 1, height - 1)
    x1 = np.minimum(x0 + 1, width - 1)
    wy = (ys - y0)[:, None]
    wx = (xs - x0)[None, :]
    values = (texture[np.ix_(y0, x0)] * (1 - wy) * (1 - wx)
              + texture[np.ix_(y1, x0)] * wy * (1 - wx)
              + texture[np.ix_(y0, x1)] * (1 - wy) * wx
              + texture[np.ix_(y1, x1)] * wy * wx)
    return np.clip(np.rint(values), 0, PIXEL_MAX).astype(np.int64)


def scene_frames(kind: str, count: int = 16, height: int = DEFAULT_HEIGHT,
                 width: int = DEFAULT_WIDTH, seed: int = 0) -> List[np.ndarray]:
    """``count`` frames of one scene ``kind`` (see :data:`SCENE_KINDS`).

    Every kind is deterministic in ``seed`` and returns int64 luminance
    frames in ``[0, 255]`` of identical shape, so sequences can be
    concatenated or compared across encoder strategies.
    """
    if count <= 0:
        raise ValueError("a scene needs at least one frame")
    if kind == "static":
        frame = _texture(height, width, seed)
        return [frame.copy() for _ in range(count)]
    if kind == "pan":
        sequence = SyntheticSequence(height=height, width=width,
                                     global_motion=(1, 2), seed=seed)
        return [sequence.frame(index) for index in range(count)]
    if kind == "zoom":
        texture = _texture(height, width, seed).astype(np.float64)
        return [_zoom_frame(texture, 1.0 + 0.01 * index)
                for index in range(count)]
    if kind == "noise":
        sequence = SyntheticSequence(height=height, width=width,
                                     global_motion=(1, 2), noise_sigma=8.0,
                                     seed=seed)
        return [sequence.frame(index) for index in range(count)]
    if kind == "cut":
        first = SyntheticSequence(height=height, width=width,
                                  global_motion=(1, 2), seed=seed)
        second = SyntheticSequence(height=height, width=width,
                                   global_motion=(-2, 1), seed=seed + 1000)
        half = count // 2
        # The second shot is unrelated content in a darker grade — pixel
        # statistics change across the cut, which is what the energy
        # detector keys on (two same-grade textures decorrelate almost as
        # much under a pan as across a cut).
        return ([first.frame(index) for index in range(half)]
                + [second.frame(index) // 2 + 4
                   for index in range(count - half)])
    raise ValueError(f"unknown scene kind {kind!r}; expected one of "
                     f"{SCENE_KINDS}")


def scene_suite(count: int = 16, height: int = DEFAULT_HEIGHT,
                width: int = DEFAULT_WIDTH,
                seed: int = 0) -> Dict[str, List[np.ndarray]]:
    """One sequence of every scene kind, keyed by kind."""
    return {kind: scene_frames(kind, count, height, width, seed)
            for kind in SCENE_KINDS}


def motion_energy(frames: Sequence[np.ndarray]) -> np.ndarray:
    """Mean absolute luminance difference between consecutive frames.

    ``energy[i]`` measures the change from frame ``i`` to ``i + 1`` —
    the signal both scene-cut detection and the reconfiguration planner
    threshold.
    """
    frames = [np.asarray(frame, dtype=np.int64) for frame in frames]
    if len(frames) < 2:
        return np.zeros(0)
    return np.array([float(np.abs(frames[index + 1] - frames[index]).mean())
                     for index in range(len(frames) - 1)])


#: Planner thresholds: below ``low`` the scene is quiet enough for the
#: cheap search + smallest DCT mapping; above ``high`` (a cut or violent
#: motion) the full search + fastest DCT come back.
DEFAULT_LOW_ENERGY = 2.0
DEFAULT_HIGH_ENERGY = 20.0


def plan_reconfiguration(frames: Sequence[np.ndarray],
                         low_energy: float = DEFAULT_LOW_ENERGY,
                         high_energy: float = DEFAULT_HIGH_ENERGY
                         ) -> List[Dict[str, str]]:
    """Per-frame encoder knob schedule driven by scene activity.

    Returns one dict per frame with ``search_name`` and ``dct_name``
    keys, suitable for ``VideoEncoder.reconfigure(search_name=...)``
    plus a DCT lookup via ``dct_implementation_by_name``.  Frame 0 keeps
    the full search (it is intra-coded anyway); afterwards the energy of
    the incoming frame transition selects the operating point, which is
    exactly the per-frame array switching of the paper's Sec. 5.
    """
    energy = motion_energy(frames)
    plan: List[Dict[str, str]] = [{"search_name": "full",
                                   "dct_name": "mixed_rom"}]
    for value in energy:
        if value <= low_energy:
            plan.append({"search_name": "three_step",
                         "dct_name": "scc_direct"})
        elif value >= high_energy:
            plan.append({"search_name": "full", "dct_name": "mixed_rom"})
        else:
            plan.append({"search_name": "diamond", "dct_name": "cordic2"})
    return plan


def dct_implementation_by_name(name: str):
    """Instantiate a Table-1 DCT implementation from its short name."""
    from repro.dct import (CordicDCT1, CordicDCT2, MixedRomDCT, SCCDirectDCT,
                           SCCEvenOddDCT)

    implementations = {
        "mixed_rom": MixedRomDCT,
        "cordic1": CordicDCT1,
        "cordic2": CordicDCT2,
        "scc_evenodd": SCCEvenOddDCT,
        "scc_direct": SCCDirectDCT,
    }
    if name not in implementations:
        raise ValueError(f"unknown DCT implementation {name!r}; expected "
                         f"one of {sorted(implementations)}")
    return implementations[name]()
