"""GOP-parallel encoding: closed groups of pictures, sharded over workers.

A closed GOP (group of pictures) starts with an intra frame and never
references frames outside itself, so GOPs are independent units of work:
the natural sharding axis for an encoder that must keep up with a live
camera.  This module splits a sequence into closed GOPs — on a fixed
cadence and at detected scene cuts — and encodes them with one of three
interchangeable strategies, all producing **bit-identical**
:class:`~repro.video.codec.FrameStatistics` streams:

``serial``     one GOP after another (the reference),
``threads``    GOPs sharded across a :mod:`concurrent.futures` thread
               pool — GIL-bound, a measured 0.97x *loss* on compute-heavy
               encodes (kept for I/O-bound configurations and as a
               scheduling reference),
``lockstep``   up to ``workers`` GOPs advance one frame per pass with the
               heavy kernels batched *across* GOPs (stacked screened full
               search, one transform batch) — wall-clock scaling even on
               a single core, because per-call overhead is amortised over
               the whole group,
``processes``  GOPs sharded across spawned worker processes
               (:mod:`repro.par.gop`): frames travel once through a
               shared-memory segment, each worker starts from the
               parent's exported flow cache, and shards reassemble in
               GOP order — real multicore scaling.

``auto`` resolves from a fixed table: ``serial`` when there is nothing
to parallelise (one worker or one GOP), else ``lockstep`` when the
configuration supports cross-GOP batching (full search, batchable
transform), else ``processes`` when the host has more than one core,
else ``serial`` — never ``threads``, which loses wall-clock on the
encode path.

Rate control composes with every strategy: the caller's
:class:`~repro.video.rate_control.RateController` is cloned per GOP, so
QP trajectories depend only on GOP content, never on scheduling.

Workers needing a compiled kernel mapping share the PR-1 flow cache:
:func:`compile_gop_kernels` compiles the configured DCT design once and
every subsequent worker lookup is a cache hit.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from time import perf_counter
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.exceptions import ConfigurationError
from repro.dct.quantization import dequantise, quantise
from repro.dct.reference import dct_2d_batched, idct_2d_batched
from repro.engine.kernels import displacement_grid, full_search_winners
from repro.engine.sharding import batch_groups
from repro.me.sad import saturated_sad
from repro.obs import tracer as obs_tracer
from repro.video.blocks import (
    MACROBLOCK_SIZE,
    macroblock_positions,
    merge_macroblock_batch,
    pad_frame,
    split_macroblock_batch,
)
from repro.video.codec import (
    EncoderConfiguration,
    FrameStatistics,
    MacroblockRecord,
    VideoEncoder,
)
from repro.video.entropy import (
    estimate_block_bits_batched,
    macroblock_header_bits_batched,
)
from repro.video.metrics import psnr
from repro.video.rate_control import RateController
from repro.video.scenes import motion_energy

#: Default closed-GOP cadence (an intra frame every 8 frames).
DEFAULT_GOP_SIZE = 8

#: Default mean-absolute-difference energy above which a frame transition
#: is treated as a scene cut (tuned against :mod:`repro.video.scenes`:
#: pans score ~5-15, hard cuts ~50+).
DEFAULT_SCENE_CUT_THRESHOLD = 35.0

#: Strategies accepted by :func:`encode_sequence_parallel`.
STRATEGIES = ("auto", "serial", "threads", "lockstep", "processes")


@dataclass(frozen=True)
class Gop:
    """One closed group of pictures: frames ``[start, stop)`` of a sequence."""

    index: int
    start: int
    stop: int

    def __post_init__(self) -> None:
        if self.stop <= self.start:
            raise ConfigurationError(
                f"GOP {self.index} is empty ([{self.start}, {self.stop}))")

    @property
    def length(self) -> int:
        """Number of frames in the GOP."""
        return self.stop - self.start

    @property
    def frame_indices(self) -> range:
        """Global indices of the GOP's frames."""
        return range(self.start, self.stop)


def detect_scene_cuts(frames: Sequence[np.ndarray],
                      threshold: float = DEFAULT_SCENE_CUT_THRESHOLD
                      ) -> List[int]:
    """Frame indices that should start a new GOP because of a scene cut.

    A cut is declared at frame ``i`` when the frame-difference energy of
    the ``i - 1 -> i`` transition exceeds ``threshold`` (motion
    compensation cannot bridge unrelated content, so the encoder is
    better off restarting with an intra frame).
    """
    energy = motion_energy(frames)
    return [index + 1 for index, value in enumerate(energy)
            if value > threshold]


def split_into_gops(frames: Sequence[np.ndarray],
                    gop_size: int = DEFAULT_GOP_SIZE,
                    scene_cut_threshold: Optional[float] = None) -> List[Gop]:
    """Split a sequence into closed GOPs.

    A new GOP starts every ``gop_size`` frames (counted from the last
    boundary, so the cadence restarts after a cut) and additionally at
    every detected scene cut when ``scene_cut_threshold`` is given.
    """
    if gop_size <= 0:
        raise ConfigurationError("gop_size must be positive")
    count = len(frames)
    if count == 0:
        return []
    cuts = (set(detect_scene_cuts(frames, scene_cut_threshold))
            if scene_cut_threshold is not None else set())
    gops: List[Gop] = []
    start = 0
    for index in range(1, count):
        if index - start >= gop_size or index in cuts:
            gops.append(Gop(index=len(gops), start=start, stop=index))
            start = index
    gops.append(Gop(index=len(gops), start=start, stop=count))
    return gops


@dataclass
class GopEncodeOutcome:
    """Everything a GOP-parallel encode produced.

    ``statistics`` is the merged per-frame stream in presentation order —
    bit-identical across strategies; ``final_reference`` is the last
    GOP's final reconstructed frame (the state a serial encoder would
    hold afterwards).
    """

    statistics: List[FrameStatistics]
    gops: List[Gop]
    strategy: str
    workers: int
    final_reference: Optional[np.ndarray] = None
    compiled_kernels: int = 0
    qp_trajectories: List[List[int]] = field(default_factory=list)

    @property
    def total_estimated_bits(self) -> int:
        """Sum of the per-frame entropy estimates."""
        return sum(stats.estimated_bits for stats in self.statistics)

    @property
    def mean_psnr_db(self) -> float:
        """Mean luminance PSNR over the sequence."""
        if not self.statistics:
            return 0.0
        return float(np.mean([stats.psnr_db for stats in self.statistics]))


def stream_digest(statistics: Sequence[FrameStatistics]) -> str:
    """Canonical SHA-256 of a statistics stream, down to the coefficients.

    Covers everything a decoder (or a regression harness) cares about:
    per-frame type/QP/PSNR/bit counts and every macroblock's mode,
    motion vector and quantised ``level_blocks``.  Two encodes are
    bit-identical iff their digests match — this is the oracle the
    serial-vs-processes conformance suite and the scaling benchmark
    assert against.
    """
    import hashlib
    import struct

    digest = hashlib.sha256()
    for stats in statistics:
        digest.update(struct.pack(
            "<iidiii", stats.frame_index, stats.qp,
            stats.psnr_db, stats.estimated_bits,
            stats.search_candidates, stats.dct_blocks))
        digest.update(stats.frame_type.encode())
        for block in stats.macroblocks:
            digest.update(struct.pack(
                "<iiiiii", block.top, block.left,
                block.motion_vector[0], block.motion_vector[1],
                int(block.sad), block.estimated_bits))
            digest.update(block.mode.encode())
            for levels in block.level_blocks:
                digest.update(np.ascontiguousarray(
                    levels, dtype=np.int64).tobytes())
    return digest.hexdigest()


def compile_gop_kernels(configuration: EncoderConfiguration,
                        cache="shared") -> int:
    """Compile the configuration's mappable kernels through the shared flow.

    Returns how many designs went through the flow.  The configured DCT
    transform is compiled when it is a flow design (``build_netlist``);
    with the shared :data:`repro.flow.cache.DEFAULT_CACHE` the first
    caller misses and every other worker's call is a hit — each kernel
    is placed and routed exactly once per process, however many workers
    encode with it.
    """
    from repro.flow import compile as flow_compile

    transform = configuration.dct_transform
    if transform is None or not hasattr(transform, "build_netlist"):
        return 0
    if cache == "shared":
        flow_compile(transform)
    else:
        flow_compile(transform, cache=cache)
    return 1


def _lockstep_supported(configuration: EncoderConfiguration) -> bool:
    """Whether the configuration allows cross-GOP batched encoding."""
    transform = configuration.dct_transform
    return (configuration.vectorized
            and configuration.search_name == "full"
            and (transform is None
                 or hasattr(transform, "forward_2d_batched")))


def _resolve_strategy(strategy: str, configuration: EncoderConfiguration,
                      workers: int, gop_count: int) -> str:
    """Resolution table (pinned by ``tests/video/test_gop.py``):

    ==========================  ======================= =============
    workers<=1 or gop_count<=1  lockstep supported?     cores > 1?
    ==========================  ======================= =============
    yes → ``serial``            —                       —
    no                          yes → ``lockstep``      —
    no                          no                      yes → ``processes``
    no                          no                      no → ``serial``
    ==========================  ======================= =============

    ``threads`` is never auto-selected: the GIL makes it a measured
    0.97x loss on the encode path (``BENCH_gop.json``).
    """
    from repro.par.pool import available_cpus

    if strategy not in STRATEGIES:
        raise ConfigurationError(
            f"unknown strategy {strategy!r}; expected one of {STRATEGIES}")
    if strategy == "auto":
        if workers <= 1 or gop_count <= 1:
            return "serial"
        if _lockstep_supported(configuration):
            return "lockstep"
        return "processes" if available_cpus() > 1 else "serial"
    if strategy == "lockstep" and not _lockstep_supported(configuration):
        raise ConfigurationError(
            "lockstep needs the batched engine path: vectorized=True, "
            "full search, and a transform with forward_2d_batched "
            "(or the reference transform)")
    return strategy


def _encode_single_gop(frames: Sequence[np.ndarray], gop: Gop,
                       configuration: EncoderConfiguration,
                       rate_controller: Optional[RateController],
                       compile_kernels: bool
                       ) -> Tuple[List[FrameStatistics], np.ndarray, List[int]]:
    """Encode one closed GOP on a private encoder (thread-safe worker body)."""
    if compile_kernels:
        compile_gop_kernels(configuration)
    encoder = VideoEncoder(replace(configuration))
    controller = rate_controller.clone() if rate_controller else None
    statistics: List[FrameStatistics] = []
    for frame_index in gop.frame_indices:
        if controller is not None:
            encoder.configuration.qp = controller.qp
        stats = encoder.encode_frame(frames[frame_index], frame_index)
        if controller is not None:
            controller.update(stats.estimated_bits)
        statistics.append(stats)
    qp_trajectory = controller.qp_history if controller else []
    return statistics, encoder.reference_frame, qp_trajectory


def encode_sequence_parallel(frames: Sequence[np.ndarray],
                             configuration: Optional[EncoderConfiguration] = None,
                             *, gop_size: int = DEFAULT_GOP_SIZE,
                             scene_cut_threshold: Optional[float] = None,
                             workers: int = 4, strategy: str = "auto",
                             rate_controller: Optional[RateController] = None,
                             gops: Optional[List[Gop]] = None,
                             compile_kernels: bool = True,
                             timeout: Optional[float] = None,
                             backend=None) -> GopEncodeOutcome:
    """Encode a sequence as closed GOPs, sharded over ``workers``.

    The returned statistics stream is bit-identical for every strategy
    (including ``serial``), so parallelism is purely a scheduling
    decision — pick by where the work should run:

    =============  ==========================  =========================
    strategy       mechanism                   wins when
    =============  ==========================  =========================
    ``serial``     one GOP after another       one core, one GOP, or as
                                               the conformance reference
    ``lockstep``   kernels batched across      batchable configuration
                   GOPs, single process        (full search + batched
                                               transform) — any host
    ``processes``  GOPs sharded over spawned   compute-bound encodes on
                   worker processes            a multicore host
    ``threads``    thread pool (GIL-bound,     I/O-bound configurations
                   measured 0.97x loss)        only; never ``auto``
    ``auto``       the resolution table of     —
                   :func:`_resolve_strategy`
    =============  ==========================  =========================

    Pass ``gops`` to override the automatic split.  ``timeout``
    (seconds, whole batch) and ``backend`` (a reusable
    :class:`repro.par.ProcessBackend`) apply to the ``processes``
    strategy only; scripts selecting it need the standard ``__main__``
    guard, as worker processes are spawned, not forked.
    """
    configuration = configuration or EncoderConfiguration()
    frames = list(frames)
    if gops is None:
        gops = split_into_gops(frames, gop_size, scene_cut_threshold)
    if not gops:
        return GopEncodeOutcome(statistics=[], gops=[], strategy="serial",
                                workers=workers)
    resolved = _resolve_strategy(strategy, configuration, workers, len(gops))
    tracer = obs_tracer.TRACER
    wall_started = perf_counter()
    compiled = compile_gop_kernels(configuration) if compile_kernels else 0

    if resolved == "serial" or len(gops) == 1:
        shards = [_encode_single_gop(frames, gop, configuration,
                                     rate_controller, compile_kernels=False)
                  for gop in gops]
    elif resolved == "threads":
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(_encode_single_gop, frames, gop,
                                   configuration, rate_controller,
                                   compile_kernels)
                       for gop in gops]
            shards = [future.result() for future in futures]
    elif resolved == "processes":
        from repro.par.gop import encode_gops_processes

        shards = encode_gops_processes(frames, gops, configuration,
                                       rate_controller, workers,
                                       timeout=timeout, backend=backend)
    else:
        shards = _encode_gops_lockstep(frames, gops, configuration,
                                       rate_controller, workers)

    statistics = [stats for shard in shards for stats in shard[0]]
    if tracer.enabled:
        # Virtual spans are derived post-merge from the bit-identical
        # statistics stream (the virtual axis is the frame index), never
        # emitted inside strategy-specific worker bodies — that keeps
        # trace_digest() identical for serial, threads, lockstep, and
        # processes runs of the same sequence.  The strategy is recorded
        # on the wall span only.
        for gop, shard in zip(gops, shards):
            tracer.virtual_span(
                "gop.encode", "gop", gop.start, gop.length,
                {"gop": gop.index, "frames": gop.length,
                 "bits": sum(stats.estimated_bits for stats in shard[0])})
        tracer.virtual_span(
            "gop.sequence", "gop", 0, len(frames),
            {"gops": len(gops),
             "bits": sum(stats.estimated_bits for stats in statistics)})
        tracer.count("gop.gops", len(gops))
        tracer.count("gop.frames", len(statistics))
        tracer.wall_span_at("gop.encode_sequence", "gop", wall_started,
                            perf_counter() - wall_started,
                            {"strategy": resolved, "workers": workers,
                             "gops": len(gops)})
    return GopEncodeOutcome(statistics=statistics, gops=gops,
                            strategy=resolved, workers=workers,
                            final_reference=shards[-1][1],
                            compiled_kernels=compiled,
                            qp_trajectories=[shard[2] for shard in shards])


def encode_gop_batch(frame_groups: Sequence[Sequence[np.ndarray]],
                     configuration: Optional[EncoderConfiguration] = None,
                     rate_controller: Optional[RateController] = None
                     ) -> List[Tuple[List[FrameStatistics], np.ndarray]]:
    """Encode several independent closed GOPs in one lockstep batch.

    Unlike :func:`encode_sequence_parallel`, the GOPs here need not come
    from the same sequence — the serving runtime batches queued GOP
    shards from *different* requests through one stacked engine dispatch.
    Returns ``(statistics, final_reconstruction)`` per group, in input
    order, with each group's ``frame_index`` numbered from 0 (exactly
    what a standalone encode of that group would report), and the
    statistics are bit-identical to encoding each group alone.

    All groups must share one frame shape and one configuration; when the
    configuration cannot take the lockstep path (see
    :func:`encode_sequence_parallel`) the groups are encoded serially,
    which produces the same bits.
    """
    configuration = configuration or EncoderConfiguration()
    groups = [list(frames) for frames in frame_groups]
    if not groups:
        return []
    if any(not group for group in groups):
        raise ConfigurationError("every GOP in a batch needs at least one frame")
    shapes = {np.asarray(frame).shape for group in groups for frame in group}
    if len(shapes) != 1:
        raise ConfigurationError(
            f"a GOP batch needs uniformly sized frames, got {sorted(shapes)}")
    combined: List[np.ndarray] = []
    gops: List[Gop] = []
    for index, group in enumerate(groups):
        gops.append(Gop(index=index, start=len(combined),
                        stop=len(combined) + len(group)))
        combined.extend(group)
    if len(gops) > 1 and _lockstep_supported(configuration):
        shards = _encode_gop_group_lockstep(combined, gops, configuration,
                                            rate_controller)
    else:
        shards = [_encode_single_gop(combined, gop, configuration,
                                     rate_controller, compile_kernels=False)
                  for gop in gops]
    outputs: List[Tuple[List[FrameStatistics], np.ndarray]] = []
    for statistics, reference, _ in shards:
        for offset, frame_stats in enumerate(statistics):
            frame_stats.frame_index = offset
        outputs.append((statistics, reference))
    return outputs


# -- lockstep strategy --------------------------------------------------------

def _encode_gops_lockstep(frames: Sequence[np.ndarray], gops: List[Gop],
                          configuration: EncoderConfiguration,
                          rate_controller: Optional[RateController],
                          workers: int
                          ) -> List[Tuple[List[FrameStatistics], np.ndarray,
                                          List[int]]]:
    """Advance groups of ``workers`` GOPs one frame per pass, batched.

    The group size is the lockstep batch width: every pass encodes one
    frame of every GOP in the group through stacked kernels, so larger
    worker counts mean larger (more overhead-efficient) batches.
    """
    shards = []
    for group in batch_groups(gops, workers):
        shards.extend(_encode_gop_group_lockstep(frames, group, configuration,
                                                 rate_controller))
    return shards


def _encode_gop_group_lockstep(frames: Sequence[np.ndarray], gops: List[Gop],
                               configuration: EncoderConfiguration,
                               rate_controller: Optional[RateController]
                               ) -> List[Tuple[List[FrameStatistics],
                                               np.ndarray, List[int]]]:
    group_count = len(gops)
    controllers = [rate_controller.clone() if rate_controller else None
                   for _ in gops]
    references: List[Optional[np.ndarray]] = [None] * group_count
    statistics: List[List[FrameStatistics]] = [[] for _ in gops]
    longest = max(gop.length for gop in gops)
    for step in range(longest):
        active = [position for position, gop in enumerate(gops)
                  if step < gop.length]
        step_frames = [pad_frame(np.asarray(
            frames[gops[position].start + step], dtype=np.int64))
            for position in active]
        shapes = {frame.shape for frame in step_frames}
        if len(shapes) != 1:
            raise ConfigurationError(
                f"lockstep needs uniformly sized frames, got {sorted(shapes)}")
        qps = [controllers[position].qp if controllers[position] is not None
               else configuration.qp for position in active]
        step_references = ([references[position] for position in active]
                           if step > 0 else None)
        frame_indices = [gops[position].start + step for position in active]
        step_statistics, reconstructions = _encode_frames_stacked(
            step_frames, step_references, qps, frame_indices, configuration)
        for slot, position in enumerate(active):
            references[position] = reconstructions[slot]
            statistics[position].append(step_statistics[slot])
            if controllers[position] is not None:
                controllers[position].update(
                    step_statistics[slot].estimated_bits)
    return [(statistics[position], references[position],
             controllers[position].qp_history if controllers[position] else [])
            for position in range(group_count)]


def _encode_frames_stacked(step_frames: List[np.ndarray],
                           step_references: Optional[List[np.ndarray]],
                           qps: List[int], frame_indices: List[int],
                           configuration: EncoderConfiguration
                           ) -> Tuple[List[FrameStatistics], List[np.ndarray]]:
    """One lockstep pass: encode frame ``t`` of every active GOP, batched.

    Mirrors ``VideoEncoder._encode_frame_batched`` exactly — same
    kernels, same integer SADs, same float operations in the same order
    per GOP — so each GOP's statistics and reconstruction are
    bit-identical to a serial encode of that GOP.
    """
    group_count = len(step_frames)
    stack = np.stack(step_frames)
    height, width = stack.shape[1:]
    is_intra = step_references is None
    positions = macroblock_positions(stack[0], MACROBLOCK_SIZE)
    position_count = len(positions)
    tops = np.array([top for top, _ in positions], dtype=np.intp)
    lefts = np.array([left for _, left in positions], dtype=np.intp)
    statistics = [FrameStatistics(frame_index=frame_indices[slot],
                                  frame_type="I" if is_intra else "P",
                                  psnr_db=0.0, qp=qps[slot])
                  for slot in range(group_count)]

    offsets = np.arange(MACROBLOCK_SIZE)
    macroblocks = stack[:, (tops[:, None] + offsets)[:, :, None],
                        (lefts[:, None] + offsets)[:, None, :]]

    if is_intra:
        inter = np.zeros((group_count, position_count), dtype=bool)
        vector_dy = np.zeros((group_count, position_count), dtype=np.int64)
        vector_dx = np.zeros_like(vector_dy)
        best_sads = np.zeros_like(vector_dy)
        candidate_count = 0
        predictors = np.zeros((group_count, position_count, MACROBLOCK_SIZE,
                               MACROBLOCK_SIZE))
    else:
        reference_stack = np.stack(step_references)
        vector_dy, vector_dx, best_sads = full_search_winners(
            stack, reference_stack, positions, MACROBLOCK_SIZE,
            configuration.search_range,
            saturate=saturated_sad(MACROBLOCK_SIZE))
        dys, dxs = displacement_grid(configuration.search_range)
        candidate_count = int(dys.size * dxs.size)
        inter = best_sads < configuration.intra_sad_threshold
        # Clip the gather indices: intra macroblocks ignore the gathered
        # values, but a degenerate all-out-of-frame winner must not index
        # outside the reference.
        rows = np.clip((tops[None, :] + vector_dy)[:, :, None] + offsets,
                       0, height - 1)
        cols = np.clip((lefts[None, :] + vector_dx)[:, :, None] + offsets,
                       0, width - 1)
        predictors = np.where(
            inter[:, :, None, None],
            reference_stack[np.arange(group_count)[:, None, None, None],
                            rows[:, :, :, None], cols[:, :, None, :]],
            0).astype(np.float64)
        vector_dy = np.where(inter, vector_dy, 0)
        vector_dx = np.where(inter, vector_dx, 0)

    sources = macroblocks - predictors

    # Every transform block of every active GOP in one batched
    # DCT -> quantise -> dequantise -> IDCT pipeline.
    blocks = split_macroblock_batch(
        sources.reshape(group_count * position_count, MACROBLOCK_SIZE,
                        MACROBLOCK_SIZE))
    transform = configuration.dct_transform
    if transform is None:
        coefficients = dct_2d_batched(blocks)
    else:
        coefficients = np.asarray(transform.forward_2d_batched(blocks),
                                  dtype=np.float64)
    blocks_per_gop = 4 * position_count
    if len(set(qps)) == 1:
        levels = quantise(coefficients, qps[0])
        coded_blocks = idct_2d_batched(dequantise(levels, qps[0]))
    else:
        levels = np.empty_like(coefficients, dtype=np.int64)
        coded_blocks = np.empty_like(coefficients)
        for slot, qp in enumerate(qps):
            piece = slice(slot * blocks_per_gop, (slot + 1) * blocks_per_gop)
            levels[piece] = quantise(coefficients[piece], qp)
            coded_blocks[piece] = idct_2d_batched(dequantise(levels[piece], qp))
    block_bits = estimate_block_bits_batched(levels)
    macroblock_bits = (block_bits.reshape(group_count, position_count, 4)
                       .sum(axis=-1)
                       + macroblock_header_bits_batched(vector_dy, vector_dx,
                                                        inter))
    coded_macroblocks = merge_macroblock_batch(coded_blocks).reshape(
        group_count, position_count, MACROBLOCK_SIZE, MACROBLOCK_SIZE)
    coded_macroblocks = coded_macroblocks + predictors

    mb_sad_operations = (0 if is_intra
                         else candidate_count * MACROBLOCK_SIZE
                         * MACROBLOCK_SIZE)
    reconstructions: List[np.ndarray] = []
    for slot in range(group_count):
        reconstruction = np.zeros((height, width))
        stats = statistics[slot]
        for index, (top, left) in enumerate(positions):
            reconstruction[top:top + MACROBLOCK_SIZE,
                           left:left + MACROBLOCK_SIZE] = \
                coded_macroblocks[slot, index]
            mode = "inter" if inter[slot, index] else "intra"
            flat = slot * blocks_per_gop + 4 * index
            quad_levels = np.array(levels[flat:flat + 4])
            bits = int(macroblock_bits[slot, index])
            stats.macroblocks.append(MacroblockRecord(
                top=int(top), left=int(left), mode=mode,
                motion_vector=(int(vector_dy[slot, index]),
                               int(vector_dx[slot, index])),
                sad=0 if is_intra else int(best_sads[slot, index]),
                candidates_evaluated=0 if is_intra else candidate_count,
                level_blocks=[quad_levels[0], quad_levels[1], quad_levels[2],
                              quad_levels[3]],
                estimated_bits=bits))
        stats.dct_blocks = 4 * position_count
        stats.dct_cycles = (4 * position_count
                            * configuration.dct_cycles_per_block)
        stats.estimated_bits = int(macroblock_bits[slot].sum())
        stats.search_candidates = (0 if is_intra
                                   else candidate_count * position_count)
        stats.sad_operations = mb_sad_operations * position_count
        reconstruction = np.clip(np.rint(reconstruction), 0, 255)
        stats.psnr_db = psnr(stack[slot], reconstruction)
        reconstructions.append(reconstruction.astype(np.int64))
    return statistics, reconstructions
