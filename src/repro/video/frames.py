"""Synthetic video source with controllable, known motion.

The paper evaluates its kernels on MPEG-4 / H.263 class material, which we
do not ship; instead this module synthesises luminance sequences whose
motion is known by construction: a textured background translating with a
global motion vector plus a configurable set of moving rectangular
objects.  Because the true displacement of every pixel is known, the
motion-estimation tests can check the estimated vectors against ground
truth rather than only against the software reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

#: Default frame dimensions: QCIF luminance (176x144), the format mobile
#: video of the paper's era targeted.
QCIF_WIDTH = 176
QCIF_HEIGHT = 144
PIXEL_MAX = 255


@dataclass
class MovingObject:
    """A textured rectangle translating over the background."""

    top: int
    left: int
    height: int
    width: int
    velocity: Tuple[int, int]
    intensity: int = 200

    def position_at(self, frame_index: int) -> Tuple[int, int]:
        """Top-left corner of the object in frame ``frame_index``."""
        return (self.top + self.velocity[0] * frame_index,
                self.left + self.velocity[1] * frame_index)


@dataclass
class SyntheticSequence:
    """Generator of a synthetic luminance sequence with known motion.

    Parameters
    ----------
    height, width:
        Frame dimensions (defaults: QCIF).
    global_motion:
        (dy, dx) translation of the textured background per frame — the
        ground-truth motion vector of background macroblocks.
    objects:
        Moving foreground rectangles.
    noise_sigma:
        Standard deviation of additive Gaussian sensor noise; the "noisy
        channel" operating point of Sec. 5 uses a higher value.
    seed:
        Seed of the texture and noise generator (deterministic sequences).
    """

    height: int = QCIF_HEIGHT
    width: int = QCIF_WIDTH
    global_motion: Tuple[int, int] = (1, 2)
    objects: List[MovingObject] = field(default_factory=list)
    noise_sigma: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.height <= 0 or self.width <= 0:
            raise ValueError("frame dimensions must be positive")
        rng = np.random.default_rng(self.seed)
        # The background texture is generated on a torus larger than the
        # frame so translation wraps without introducing new content.
        margin = 64
        base = rng.integers(32, 224, size=(self.height + margin, self.width + margin))
        # Low-pass the texture a little so blocks are locally distinctive but
        # not pure noise (pure noise makes every candidate equally bad).
        kernel = np.ones((3, 3)) / 9.0
        padded = np.pad(base.astype(np.float64), 1, mode="wrap")
        smoothed = np.zeros_like(base, dtype=np.float64)
        for dy in range(3):
            for dx in range(3):
                smoothed += kernel[dy, dx] * padded[dy:dy + base.shape[0],
                                                    dx:dx + base.shape[1]]
        self._texture = smoothed
        self._noise_rng = np.random.default_rng(self.seed + 1)

    def frame(self, index: int) -> np.ndarray:
        """Luminance frame ``index`` as an int64 array in [0, 255]."""
        if index < 0:
            raise ValueError("frame index must be non-negative")
        shift_y = (self.global_motion[0] * index) % self._texture.shape[0]
        shift_x = (self.global_motion[1] * index) % self._texture.shape[1]
        rolled = np.roll(np.roll(self._texture, shift_y, axis=0), shift_x, axis=1)
        frame = rolled[:self.height, :self.width].copy()

        for moving_object in self.objects:
            top, left = moving_object.position_at(index)
            bottom = min(self.height, top + moving_object.height)
            right = min(self.width, left + moving_object.width)
            top, left = max(0, top), max(0, left)
            if top < bottom and left < right:
                texture = 20.0 * np.sin(
                    np.arange(bottom - top)[:, None] * 0.7
                    + np.arange(right - left)[None, :] * 0.5)
                frame[top:bottom, left:right] = moving_object.intensity + texture

        if self.noise_sigma > 0:
            frame = frame + self._noise_rng.normal(0.0, self.noise_sigma, frame.shape)
        return np.clip(np.rint(frame), 0, PIXEL_MAX).astype(np.int64)

    def frames(self, count: int, start: int = 0) -> Iterator[np.ndarray]:
        """Yield ``count`` consecutive frames starting at ``start``."""
        for index in range(start, start + count):
            yield self.frame(index)

    def ground_truth_background_vector(self) -> Tuple[int, int]:
        """True (dy, dx) displacement of background blocks between frames.

        Motion estimation finds, for a block of the *current* frame, where
        it came from in the *previous* frame, so the expected vector is the
        negative of the per-frame translation.
        """
        return (-self.global_motion[0], -self.global_motion[1])


def moving_square_sequence(height: int = QCIF_HEIGHT, width: int = QCIF_WIDTH,
                           velocity: Tuple[int, int] = (2, 3),
                           seed: int = 0) -> SyntheticSequence:
    """Convenience sequence: static background, one moving square."""
    square = MovingObject(top=height // 3, left=width // 4, height=24, width=24,
                          velocity=velocity)
    return SyntheticSequence(height=height, width=width, global_motion=(0, 0),
                             objects=[square], seed=seed)


def panning_sequence(height: int = QCIF_HEIGHT, width: int = QCIF_WIDTH,
                     pan: Tuple[int, int] = (1, 2), noise_sigma: float = 0.0,
                     seed: int = 0) -> SyntheticSequence:
    """Convenience sequence: global pan of a textured background."""
    return SyntheticSequence(height=height, width=width, global_motion=pan,
                             noise_sigma=noise_sigma, seed=seed)
