"""Macroblock and 8x8-block utilities shared by the encoder and benchmarks."""

from __future__ import annotations

from typing import Iterator, List, Tuple

import numpy as np

#: Macroblock size of MPEG-4 / H.263 luminance.
MACROBLOCK_SIZE = 16
#: Transform block size (the 8-point DCT operates on 8x8 blocks).
TRANSFORM_BLOCK_SIZE = 8


def pad_frame(frame: np.ndarray, block_size: int = MACROBLOCK_SIZE) -> np.ndarray:
    """Pad a frame on the bottom/right so both dimensions tile exactly.

    Padding replicates the edge pixels, which is what encoders do so the
    extra area neither rings after the DCT nor attracts the motion search.
    """
    frame = np.asarray(frame)
    height, width = frame.shape
    pad_bottom = (-height) % block_size
    pad_right = (-width) % block_size
    if pad_bottom == 0 and pad_right == 0:
        return frame
    return np.pad(frame, ((0, pad_bottom), (0, pad_right)), mode="edge")


def macroblock_positions(frame: np.ndarray,
                         block_size: int = MACROBLOCK_SIZE) -> List[Tuple[int, int]]:
    """Top-left corners of every complete block in raster order."""
    frame = np.asarray(frame)
    height, width = frame.shape
    return [(top, left)
            for top in range(0, height - block_size + 1, block_size)
            for left in range(0, width - block_size + 1, block_size)]


def iterate_blocks(frame: np.ndarray,
                   block_size: int = TRANSFORM_BLOCK_SIZE) -> Iterator[Tuple[int, int, np.ndarray]]:
    """Yield (top, left, block) for every complete block in raster order."""
    frame = np.asarray(frame)
    for top, left in macroblock_positions(frame, block_size):
        yield top, left, frame[top:top + block_size, left:left + block_size]


def assemble_blocks(blocks: List[Tuple[int, int, np.ndarray]],
                    height: int, width: int) -> np.ndarray:
    """Rebuild a frame from (top, left, block) tuples."""
    frame = np.zeros((height, width), dtype=np.float64)
    for top, left, block in blocks:
        block = np.asarray(block)
        frame[top:top + block.shape[0], left:left + block.shape[1]] = block
    return frame


def split_macroblock_into_transform_blocks(macroblock: np.ndarray) -> List[np.ndarray]:
    """The four 8x8 luminance blocks of one 16x16 macroblock, raster order."""
    macroblock = np.asarray(macroblock)
    if macroblock.shape != (MACROBLOCK_SIZE, MACROBLOCK_SIZE):
        raise ValueError(f"expected a {MACROBLOCK_SIZE}x{MACROBLOCK_SIZE} macroblock")
    half = TRANSFORM_BLOCK_SIZE
    return [macroblock[0:half, 0:half], macroblock[0:half, half:],
            macroblock[half:, 0:half], macroblock[half:, half:]]


def split_macroblock_batch(macroblocks: np.ndarray) -> np.ndarray:
    """The 8x8 transform blocks of a ``(M, 16, 16)`` macroblock batch.

    Returns a ``(M * 4, 8, 8)`` batch; each macroblock contributes its
    four luminance blocks in raster order (the same order as
    :func:`split_macroblock_into_transform_blocks`), so index
    ``4 * m + q`` is quadrant ``q`` of macroblock ``m``.
    """
    macroblocks = np.asarray(macroblocks)
    count = macroblocks.shape[0]
    if macroblocks.shape[1:] != (MACROBLOCK_SIZE, MACROBLOCK_SIZE):
        raise ValueError(
            f"expected a (M, {MACROBLOCK_SIZE}, {MACROBLOCK_SIZE}) batch, "
            f"got {macroblocks.shape}")
    half = TRANSFORM_BLOCK_SIZE
    quads = macroblocks.reshape(count, 2, half, 2, half).transpose(0, 1, 3, 2, 4)
    return quads.reshape(count * 4, half, half)


def merge_macroblock_batch(blocks: np.ndarray) -> np.ndarray:
    """Inverse of :func:`split_macroblock_batch`: ``(M * 4, 8, 8)`` back to
    ``(M, 16, 16)``."""
    blocks = np.asarray(blocks)
    half = TRANSFORM_BLOCK_SIZE
    if blocks.ndim != 3 or blocks.shape[0] % 4 or blocks.shape[1:] != (half, half):
        raise ValueError(
            f"expected a (M * 4, {half}, {half}) batch, got {blocks.shape}")
    count = blocks.shape[0] // 4
    quads = blocks.reshape(count, 2, 2, half, half).transpose(0, 1, 3, 2, 4)
    return quads.reshape(count, MACROBLOCK_SIZE, MACROBLOCK_SIZE)


def merge_transform_blocks(blocks: List[np.ndarray]) -> np.ndarray:
    """Inverse of :func:`split_macroblock_into_transform_blocks`."""
    if len(blocks) != 4:
        raise ValueError("a macroblock is built from exactly four 8x8 blocks")
    top = np.hstack([blocks[0], blocks[1]])
    bottom = np.hstack([blocks[2], blocks[3]])
    return np.vstack([top, bottom])
