"""A small hybrid video encoder built on the mapped kernels.

This is the system-level workload the paper's introduction motivates: an
MPEG-4 / H.263-style encoding loop whose two heavy kernels — motion
estimation and the DCT — run on the domain-specific arrays.  The encoder
is deliberately minimal (luminance only, intra/inter macroblocks, uniform
quantiser, no entropy coding) but end-to-end: it produces reconstructed
frames and PSNR, counts the work done by each kernel, and lets the caller
switch the DCT implementation and the search algorithm per frame — which
is what the dynamic-reconfiguration experiment of Sec. 5 exercises.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dct.quantization import DEFAULT_QP, dequantise, quantise
from repro.dct.reference import dct_2d, dct_2d_batched, idct_2d, idct_2d_batched
from repro.engine.kernels import candidate_windows
from repro.me.fast_search import search_by_name
from repro.me.full_search import (
    DEFAULT_SEARCH_RANGE,
    SearchResult,
    full_search_scalar,
)
from repro.video.blocks import (
    MACROBLOCK_SIZE,
    TRANSFORM_BLOCK_SIZE,
    macroblock_positions,
    merge_macroblock_batch,
    pad_frame,
    split_macroblock_batch,
    split_macroblock_into_transform_blocks,
)
from repro.video.entropy import (
    estimate_block_bits_batched,
    estimate_macroblock_bits,
    macroblock_header_bits,
)
from repro.video.metrics import psnr


@dataclass
class MacroblockRecord:
    """Bookkeeping of one encoded macroblock.

    ``level_blocks`` holds the four quantised 8x8 coefficient blocks in
    raster order — everything a decoder needs (together with the mode and
    motion vector) to reconstruct the macroblock.
    """

    top: int
    left: int
    mode: str                       # "intra" or "inter"
    motion_vector: Tuple[int, int]
    sad: int
    candidates_evaluated: int
    level_blocks: List[np.ndarray] = field(default_factory=list)
    estimated_bits: int = 0


@dataclass
class FrameStatistics:
    """Per-frame outcome of the encoder."""

    frame_index: int
    frame_type: str                 # "I" or "P"
    psnr_db: float
    qp: int = 0
    macroblocks: List[MacroblockRecord] = field(default_factory=list)
    dct_blocks: int = 0
    dct_cycles: int = 0
    sad_operations: int = 0
    search_candidates: int = 0
    estimated_bits: int = 0

    @property
    def inter_fraction(self) -> float:
        """Fraction of macroblocks coded with motion compensation."""
        if not self.macroblocks:
            return 0.0
        inter = sum(1 for mb in self.macroblocks if mb.mode == "inter")
        return inter / len(self.macroblocks)


@dataclass
class EncoderConfiguration:
    """Knobs of the encoder loop.

    ``dct_transform`` is any object exposing ``forward_2d(block)`` (all the
    implementations in :mod:`repro.dct` qualify); ``None`` selects the
    floating-point reference.  ``search_name`` picks the block-matching
    algorithm ("full", "three_step" or "diamond").

    ``vectorized`` selects the batched engine path: every transform block
    of a frame runs through one batched DCT/quantise/dequantise/IDCT pass
    and full search scores whole candidate windows per call.  Outputs are
    bit-identical to the scalar path; set it ``False`` to time or debug
    the legacy per-block loop.  Custom ``dct_transform`` objects fall
    back to the scalar path unless they provide ``forward_2d_batched``.
    """

    qp: int = DEFAULT_QP
    search_name: str = "full"
    search_range: int = DEFAULT_SEARCH_RANGE
    dct_transform: Optional[object] = None
    intra_sad_threshold: int = 12000
    dct_cycles_per_block: int = 12
    vectorized: bool = True


class VideoEncoder:
    """Hybrid ME + DCT + quantisation encoder over a frame sequence."""

    def __init__(self, configuration: Optional[EncoderConfiguration] = None) -> None:
        self.configuration = configuration or EncoderConfiguration()
        self._reference_frame: Optional[np.ndarray] = None
        self.frame_statistics: List[FrameStatistics] = []

    # -- transform helpers -----------------------------------------------------
    def _forward_dct(self, block: np.ndarray) -> np.ndarray:
        transform = self.configuration.dct_transform
        if transform is None:
            return dct_2d(block)
        return transform.forward_2d(block)

    @staticmethod
    def _inverse_dct(coefficients: np.ndarray) -> np.ndarray:
        return idct_2d(coefficients)

    def _code_block(self, block: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Transform, quantise, reconstruct one block; returns (pixels, levels)."""
        coefficients = self._forward_dct(block)
        levels = quantise(coefficients, self.configuration.qp)
        reconstructed = self._inverse_dct(dequantise(levels, self.configuration.qp))
        return reconstructed, levels

    def _batched_transform_available(self) -> bool:
        transform = self.configuration.dct_transform
        return transform is None or hasattr(transform, "forward_2d_batched")

    # -- encoding ---------------------------------------------------------------
    def encode_frame(self, frame: np.ndarray, frame_index: int = 0) -> FrameStatistics:
        """Encode one frame (I if no reference is available, else P).

        Dispatches to the batched engine path when
        ``configuration.vectorized`` is set and the configured transform
        supports batching; both paths produce identical statistics and
        reconstructions.
        """
        frame = pad_frame(np.asarray(frame, dtype=np.int64))
        if self.configuration.vectorized and self._batched_transform_available():
            return self._encode_frame_batched(frame, frame_index)
        return self._encode_frame_scalar(frame, frame_index)

    def _encode_frame_scalar(self, frame: np.ndarray,
                             frame_index: int) -> FrameStatistics:
        """Legacy per-macroblock, per-block encoding loop."""
        height, width = frame.shape
        reconstruction = np.zeros_like(frame, dtype=np.float64)
        is_intra_frame = self._reference_frame is None
        statistics = FrameStatistics(frame_index=frame_index,
                                     frame_type="I" if is_intra_frame else "P",
                                     psnr_db=0.0, qp=self.configuration.qp)
        # ME is independent of the DCT transform: a custom transform forces
        # the per-block coding loop, but the search stays vectorized unless
        # the caller explicitly opted out with vectorized=False.
        search = self._resolve_search(scalar=not self.configuration.vectorized)

        for top, left in macroblock_positions(frame, MACROBLOCK_SIZE):
            macroblock = frame[top:top + MACROBLOCK_SIZE, left:left + MACROBLOCK_SIZE]
            mode = "intra"
            motion_vector = (0, 0)
            best_sad = 0
            candidates = 0

            if not is_intra_frame:
                result: SearchResult = search(
                    frame, self._reference_frame, top, left,
                    MACROBLOCK_SIZE, self.configuration.search_range)
                candidates = result.candidates_evaluated
                statistics.sad_operations += result.sad_operations
                best_sad = result.best.sad
                if best_sad < self.configuration.intra_sad_threshold:
                    mode = "inter"
                    motion_vector = result.motion_vector

            if mode == "inter":
                dy, dx = motion_vector
                predictor = self._reference_frame[top + dy:top + dy + MACROBLOCK_SIZE,
                                                  left + dx:left + dx + MACROBLOCK_SIZE]
                residual = macroblock - predictor
                coded_residual, level_blocks = self._code_macroblock(residual, statistics)
                reconstruction[top:top + MACROBLOCK_SIZE,
                               left:left + MACROBLOCK_SIZE] = predictor + coded_residual
            else:
                coded, level_blocks = self._code_macroblock(macroblock, statistics)
                reconstruction[top:top + MACROBLOCK_SIZE,
                               left:left + MACROBLOCK_SIZE] = coded

            macroblock_bits = estimate_macroblock_bits(
                level_blocks, motion_vector, inter=(mode == "inter"))
            statistics.estimated_bits += macroblock_bits
            statistics.search_candidates += candidates
            statistics.macroblocks.append(MacroblockRecord(
                top=top, left=left, mode=mode, motion_vector=motion_vector,
                sad=best_sad, candidates_evaluated=candidates,
                level_blocks=level_blocks, estimated_bits=macroblock_bits))

        reconstruction = np.clip(np.rint(reconstruction), 0, 255)
        statistics.psnr_db = psnr(frame, reconstruction)
        self._reference_frame = reconstruction.astype(np.int64)
        self.frame_statistics.append(statistics)
        return statistics

    def _resolve_search(self, scalar: bool = False):
        """The configured search function.

        ``scalar=True`` (the ``vectorized=False`` timing/debug mode) pins
        full search to the legacy per-candidate reference so the whole
        pre-engine execution path is measured end to end; results are
        identical either way.
        """
        if self.configuration.search_name == "full" and scalar:
            return full_search_scalar
        return search_by_name(self.configuration.search_name)

    def _encode_frame_batched(self, frame: np.ndarray,
                              frame_index: int) -> FrameStatistics:
        """Batched engine path: one vectorized transform pass per frame.

        Motion search runs per macroblock over a shared candidate-window
        view (full search scores its whole window in one call), then every
        8x8 block of the frame goes through a single batched
        DCT/quantise/dequantise/IDCT pipeline.  Bit-identical to
        :meth:`_encode_frame_scalar`.
        """
        configuration = self.configuration
        height, width = frame.shape
        is_intra_frame = self._reference_frame is None
        statistics = FrameStatistics(frame_index=frame_index,
                                     frame_type="I" if is_intra_frame else "P",
                                     psnr_db=0.0, qp=configuration.qp)
        positions = macroblock_positions(frame, MACROBLOCK_SIZE)

        search = None
        windows = None
        if not is_intra_frame:
            # All registered searches accept a shared candidate-window
            # view, so the int16 reference copy happens once per frame.
            search = self._resolve_search()
            windows = candidate_windows(self._reference_frame,
                                        MACROBLOCK_SIZE)

        # Pass 1: per-macroblock mode decision and prediction.
        modes: List[str] = []
        vectors: List[Tuple[int, int]] = []
        sads: List[int] = []
        candidate_counts: List[int] = []
        predictors = np.zeros((len(positions), MACROBLOCK_SIZE, MACROBLOCK_SIZE),
                              dtype=np.float64)
        sources = np.empty_like(predictors)
        for index, (top, left) in enumerate(positions):
            macroblock = frame[top:top + MACROBLOCK_SIZE,
                               left:left + MACROBLOCK_SIZE]
            mode = "intra"
            motion_vector = (0, 0)
            best_sad = 0
            candidates = 0
            if not is_intra_frame:
                result: SearchResult = search(
                    frame, self._reference_frame, top, left,
                    MACROBLOCK_SIZE, configuration.search_range,
                    windows=windows)
                candidates = result.candidates_evaluated
                statistics.sad_operations += result.sad_operations
                best_sad = result.best.sad
                if best_sad < configuration.intra_sad_threshold:
                    mode = "inter"
                    motion_vector = result.motion_vector
            if mode == "inter":
                dy, dx = motion_vector
                predictors[index] = self._reference_frame[
                    top + dy:top + dy + MACROBLOCK_SIZE,
                    left + dx:left + dx + MACROBLOCK_SIZE]
                sources[index] = macroblock - predictors[index]
            else:
                sources[index] = macroblock
            modes.append(mode)
            vectors.append(motion_vector)
            sads.append(best_sad)
            candidate_counts.append(candidates)

        # Pass 2: every transform block of the frame in one batched
        # DCT -> quantise -> dequantise -> IDCT pipeline.
        blocks = split_macroblock_batch(sources)
        transform = configuration.dct_transform
        if transform is None:
            coefficients = dct_2d_batched(blocks)
        else:
            coefficients = np.asarray(transform.forward_2d_batched(blocks),
                                      dtype=np.float64)
        levels = quantise(coefficients, configuration.qp)
        coded_blocks = idct_2d_batched(dequantise(levels, configuration.qp))
        coded_macroblocks = merge_macroblock_batch(coded_blocks)

        # Pass 3: reconstruction and per-macroblock bookkeeping.
        block_bits = estimate_block_bits_batched(levels)
        reconstruction = np.zeros_like(frame, dtype=np.float64)
        for index, (top, left) in enumerate(positions):
            mode = modes[index]
            coded = coded_macroblocks[index]
            if mode == "inter":
                coded = predictors[index] + coded
            reconstruction[top:top + MACROBLOCK_SIZE,
                           left:left + MACROBLOCK_SIZE] = coded
            level_blocks = [np.array(levels[4 * index + quadrant])
                            for quadrant in range(4)]
            statistics.dct_blocks += 4
            statistics.dct_cycles += 4 * configuration.dct_cycles_per_block
            macroblock_bits = (
                int(block_bits[4 * index:4 * index + 4].sum())
                + macroblock_header_bits(vectors[index], inter=(mode == "inter")))
            statistics.estimated_bits += macroblock_bits
            statistics.search_candidates += candidate_counts[index]
            statistics.macroblocks.append(MacroblockRecord(
                top=top, left=left, mode=mode, motion_vector=vectors[index],
                sad=sads[index], candidates_evaluated=candidate_counts[index],
                level_blocks=level_blocks, estimated_bits=macroblock_bits))

        reconstruction = np.clip(np.rint(reconstruction), 0, 255)
        statistics.psnr_db = psnr(frame, reconstruction)
        self._reference_frame = reconstruction.astype(np.int64)
        self.frame_statistics.append(statistics)
        return statistics

    def _code_macroblock(self, macroblock: np.ndarray,
                         statistics: FrameStatistics) -> Tuple[np.ndarray, List[np.ndarray]]:
        """Code the four 8x8 blocks of a macroblock.

        Returns the reconstructed 16x16 pixels and the four quantised
        coefficient blocks (what a decoder would receive).
        """
        pieces = []
        level_blocks: List[np.ndarray] = []
        for block in split_macroblock_into_transform_blocks(
                np.asarray(macroblock, dtype=np.float64)):
            reconstructed, levels = self._code_block(block)
            pieces.append(reconstructed)
            level_blocks.append(levels)
            statistics.dct_blocks += 1
            statistics.dct_cycles += self.configuration.dct_cycles_per_block
        top = np.hstack([pieces[0], pieces[1]])
        bottom = np.hstack([pieces[2], pieces[3]])
        return np.vstack([top, bottom]), level_blocks

    def encode_sequence(self, frames: Sequence[np.ndarray],
                        rate_controller: Optional[object] = None
                        ) -> List[FrameStatistics]:
        """Encode a list of frames in order (first frame is intra-coded).

        ``rate_controller`` optionally closes the rate loop: a
        :class:`~repro.video.rate_control.RateController` whose QP is
        applied before each frame and updated with the frame's estimated
        bits afterwards.
        """
        original_qp = self.configuration.qp
        statistics = []
        try:
            for index, frame in enumerate(frames):
                if rate_controller is not None:
                    self.configuration.qp = rate_controller.qp
                stats = self.encode_frame(frame, index)
                if rate_controller is not None:
                    rate_controller.update(stats.estimated_bits)
                statistics.append(stats)
        finally:
            # The controller drives qp per frame; the caller's configured
            # QP must survive the sequence.
            self.configuration.qp = original_qp
        return statistics

    def encode_sequence_parallel(self, frames: Sequence[np.ndarray],
                                 **options) -> List[FrameStatistics]:
        """Encode a sequence as closed GOPs sharded over a worker pool.

        Delegates to :func:`repro.video.gop.encode_sequence_parallel`
        (see there for ``gop_size``, ``scene_cut_threshold``, ``workers``,
        ``strategy`` and ``rate_controller``), then merges the result
        into this encoder's statistics stream: the statistics list grows
        by the per-frame records in presentation order (``frame_index``
        is relative to the passed sequence, exactly as in
        :meth:`encode_sequence`) and the prediction reference becomes the
        last GOP's final reconstruction — the state a serial closed-GOP
        encode would leave behind.  The merged stream is bit-identical
        whichever strategy encoded it.
        """
        from repro.video.gop import encode_sequence_parallel

        outcome = encode_sequence_parallel(frames, self.configuration,
                                           **options)
        self.frame_statistics.extend(outcome.statistics)
        if outcome.final_reference is not None:
            self._reference_frame = outcome.final_reference
        return outcome.statistics

    def reconfigure(self, **changes) -> None:
        """Change encoder knobs between frames (dynamic reconfiguration).

        Typical uses: ``reconfigure(dct_transform=SCCDirectDCT())`` when the
        battery runs low (smallest DCT mapping), or
        ``reconfigure(search_name="three_step")`` to cut SAD operations.
        """
        for key, value in changes.items():
            if not hasattr(self.configuration, key):
                raise AttributeError(f"unknown encoder configuration field {key!r}")
            setattr(self.configuration, key, value)

    @property
    def reference_frame(self) -> Optional[np.ndarray]:
        """The most recent reconstructed frame (prediction reference)."""
        return self._reference_frame
