"""Per-frame rate control: a virtual-buffer QP controller.

The encoder produces an estimated bit count per frame (the vectorized
Exp-Golomb estimate of :mod:`repro.video.entropy`); this module closes
the loop around it.  A leaky virtual buffer drains ``target_bits_per_frame``
per frame and fills with the bits each frame actually produced; the
quantiser parameter for the next frame is the base QP plus a proportional
correction toward an empty buffer — coarser quantisation when the encoder
is overspending, finer when it is underspending.  This is the classic
H.263 TMN-style buffer model reduced to its proportional term, which is
all the operating-point experiments of the paper's Sec. 5 need.

Controllers are deliberately cheap to ``clone()``: GOP-parallel encoding
gives every closed GOP a fresh controller with identical settings, so the
QP trajectory of a GOP never depends on which worker (or strategy)
encoded it — serial, thread-pool and lockstep encodes stay bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.dct.quantization import DEFAULT_QP, MAX_QP, MIN_QP


@dataclass(frozen=True)
class RateControlSettings:
    """Static configuration of a :class:`RateController`.

    ``gain`` is the proportional constant in QP steps per
    ``target_bits_per_frame`` of buffer fullness; ``buffer_capacity``
    clamps the virtual buffer (default: eight target frames' worth).
    """

    target_bits_per_frame: int
    base_qp: int = DEFAULT_QP
    gain: float = 2.0
    buffer_capacity: Optional[int] = None
    min_qp: int = MIN_QP
    max_qp: int = MAX_QP

    def __post_init__(self) -> None:
        if self.target_bits_per_frame <= 0:
            raise ValueError("target_bits_per_frame must be positive")
        if not MIN_QP <= self.min_qp <= self.max_qp <= MAX_QP:
            raise ValueError(
                f"QP bounds must satisfy {MIN_QP} <= min_qp <= max_qp <= "
                f"{MAX_QP}, got [{self.min_qp}, {self.max_qp}]")
        if not self.min_qp <= self.base_qp <= self.max_qp:
            raise ValueError(
                f"base_qp {self.base_qp} outside [{self.min_qp}, "
                f"{self.max_qp}]")
        if self.gain < 0:
            raise ValueError("gain must be non-negative")
        if self.buffer_capacity is not None and self.buffer_capacity <= 0:
            raise ValueError("buffer_capacity must be positive")

    @property
    def capacity(self) -> int:
        """Effective buffer clamp (defaults to eight target frames)."""
        if self.buffer_capacity is not None:
            return self.buffer_capacity
        return 8 * self.target_bits_per_frame


class RateController:
    """Proportional virtual-buffer QP controller.

    >>> controller = RateController(RateControlSettings(2000))
    >>> controller.qp            # base QP before any frame
    8
    >>> controller.update(6000)  # a frame overspent: QP rises
    12
    """

    def __init__(self, settings: RateControlSettings) -> None:
        self.settings = settings
        self._fullness = 0.0
        self._qp = settings.base_qp
        self.qp_history: List[int] = []
        self.bits_history: List[int] = []

    @property
    def qp(self) -> int:
        """Quantiser parameter the next frame should use."""
        return self._qp

    @property
    def buffer_fullness(self) -> float:
        """Signed virtual-buffer level (positive: overspent)."""
        return self._fullness

    def update(self, produced_bits: int) -> int:
        """Account one encoded frame's bits; returns the next frame's QP.

        The buffer fills with ``produced_bits`` and drains one frame's
        target; the new QP is the base QP plus ``gain`` steps per target
        frame of fullness, clamped to the configured range.
        """
        settings = self.settings
        self._fullness += produced_bits - settings.target_bits_per_frame
        self._fullness = min(max(self._fullness, -settings.capacity),
                             settings.capacity)
        correction = settings.gain * (self._fullness
                                      / settings.target_bits_per_frame)
        self._qp = int(min(max(round(settings.base_qp + correction),
                               settings.min_qp), settings.max_qp))
        self.qp_history.append(self._qp)
        self.bits_history.append(int(produced_bits))
        return self._qp

    def clone(self) -> "RateController":
        """A fresh controller with the same settings and pristine state.

        GOP-parallel encoding clones the caller's controller per GOP so
        every strategy reproduces the same per-GOP QP trajectory.
        """
        return RateController(self.settings)

    def __repr__(self) -> str:
        return (f"RateController(target={self.settings.target_bits_per_frame}, "
                f"qp={self._qp}, fullness={self._fullness:.0f})")
