"""Decoder: reconstructs frames from the encoder's macroblock records.

The encoder of :mod:`repro.video.codec` keeps, per macroblock, exactly what
a bitstream would carry — the coding mode, the motion vector and the four
quantised coefficient blocks.  This decoder consumes those records and
rebuilds the frames, by default with the same inverse DCT the encoder's
reconstruction loop uses, or with one of the DA-array IDCT mappings from
:mod:`repro.dct.idct` so the decode path can also be exercised on the
reconfigurable fabric.

Because the encoder uses its own reconstruction as the prediction
reference, decoding its records must reproduce those reconstructed frames
bit for bit (up to the rounding/clipping both sides share) — which is what
the round-trip tests check.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.dct.quantization import dequantise
from repro.dct.reference import idct_2d
from repro.video.blocks import MACROBLOCK_SIZE, merge_transform_blocks
from repro.video.codec import FrameStatistics
from repro.video.motion_compensation import predict_block


class VideoDecoder:
    """Reconstruct frames from :class:`repro.video.codec.FrameStatistics`.

    Parameters
    ----------
    idct:
        Optional object with an ``inverse_2d(levels)`` method (e.g.
        :class:`repro.dct.idct.DistributedArithmeticIDCT`); defaults to the
        floating-point reference inverse transform.
    """

    def __init__(self, idct: Optional[object] = None) -> None:
        self._idct = idct
        self._reference_frame: Optional[np.ndarray] = None

    def _inverse_transform(self, coefficients: np.ndarray) -> np.ndarray:
        if self._idct is None:
            return idct_2d(coefficients)
        return self._idct.inverse_2d(coefficients)

    def _decode_macroblock_texture(self, record, qp: int) -> np.ndarray:
        """Dequantise and inverse-transform the four 8x8 blocks of one macroblock."""
        pieces = []
        for levels in record.level_blocks:
            coefficients = dequantise(np.asarray(levels), qp)
            pieces.append(self._inverse_transform(coefficients))
        return merge_transform_blocks(pieces)

    def decode_frame(self, statistics: FrameStatistics,
                     frame_shape: Optional[tuple] = None) -> np.ndarray:
        """Decode one frame from its encoder record.

        ``frame_shape`` is only needed for the first (intra) frame when it
        cannot be inferred from an existing reference frame.
        """
        if not statistics.macroblocks:
            raise ValueError("frame record contains no macroblocks")
        if statistics.frame_type == "I" and self._reference_frame is not None:
            # A closed-GOP boundary: the intra frame must not depend on
            # the previous GOP, so decoding it only keeps the reference
            # for its shape.  This lets any GOP substream (e.g. one
            # produced by a parallel worker) decode standalone and lets a
            # decoder seek to any intra frame.
            height, width = self._reference_frame.shape
            self._reference_frame = None
            frame_shape = frame_shape or (height, width)
        if self._reference_frame is not None:
            height, width = self._reference_frame.shape
        elif frame_shape is not None:
            height, width = frame_shape
        else:
            height = max(mb.top for mb in statistics.macroblocks) + MACROBLOCK_SIZE
            width = max(mb.left for mb in statistics.macroblocks) + MACROBLOCK_SIZE

        frame = np.zeros((height, width), dtype=np.float64)
        for record in statistics.macroblocks:
            texture = self._decode_macroblock_texture(record, statistics.qp)
            if record.mode == "inter":
                if self._reference_frame is None:
                    raise ValueError("inter macroblock before any reference frame")
                prediction = predict_block(self._reference_frame, record.top,
                                           record.left, record.motion_vector)
                block = prediction + texture
            else:
                block = texture
            frame[record.top:record.top + MACROBLOCK_SIZE,
                  record.left:record.left + MACROBLOCK_SIZE] = block

        frame = np.clip(np.rint(frame), 0, 255)
        self._reference_frame = frame.astype(np.int64)
        return self._reference_frame

    def decode_sequence(self, records: List[FrameStatistics],
                        frame_shape: Optional[tuple] = None) -> List[np.ndarray]:
        """Decode a list of frame records in order."""
        return [self.decode_frame(record, frame_shape) for record in records]

    @property
    def reference_frame(self) -> Optional[np.ndarray]:
        """The most recently decoded frame."""
        return self._reference_frame
