"""Video quality metrics used by the encoder example and the ablations."""

from __future__ import annotations

import math

import numpy as np

from repro.video.frames import PIXEL_MAX


def mse(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Mean squared error between two frames."""
    original = np.asarray(original, dtype=np.float64)
    reconstructed = np.asarray(reconstructed, dtype=np.float64)
    if original.shape != reconstructed.shape:
        raise ValueError(f"frame shapes differ: {original.shape} vs {reconstructed.shape}")
    return float(np.mean((original - reconstructed) ** 2))


def psnr(original: np.ndarray, reconstructed: np.ndarray,
         peak: int = PIXEL_MAX) -> float:
    """Peak signal-to-noise ratio in dB (infinite for identical frames)."""
    error = mse(original, reconstructed)
    if error == 0:
        return math.inf
    return 10.0 * math.log10(peak * peak / error)


def residual_energy(residual: np.ndarray) -> float:
    """Sum of squared residual samples (prediction quality indicator)."""
    residual = np.asarray(residual, dtype=np.float64)
    return float(np.sum(residual ** 2))
