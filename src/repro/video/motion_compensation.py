"""Motion compensation: building the predicted frame from a motion field.

The decoder (and the encoder's reconstruction loop) forms the prediction
of each inter-coded macroblock by copying the block the motion vector
points at in the reference frame; half-pixel vectors interpolate
bilinearly, as MPEG-4 / H.263 do.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.video.blocks import MACROBLOCK_SIZE


def predict_block(reference: np.ndarray, top: int, left: int,
                  motion_vector: Tuple[float, float],
                  block_size: int = MACROBLOCK_SIZE) -> np.ndarray:
    """Prediction of one block displaced by an integer or half-pel vector.

    Parameters
    ----------
    reference:
        The reference (previous reconstructed) frame.
    top, left:
        Position of the block being predicted in the *current* frame.
    motion_vector:
        (dy, dx) displacement into the reference frame; halves are allowed
        and trigger bilinear interpolation.
    """
    reference = np.asarray(reference, dtype=np.float64)
    height, width = reference.shape
    dy, dx = float(motion_vector[0]), float(motion_vector[1])
    base_top, base_left = top + int(np.floor(dy)), left + int(np.floor(dx))
    frac_y, frac_x = dy - np.floor(dy), dx - np.floor(dx)

    needed_rows = block_size + (1 if frac_y else 0)
    needed_cols = block_size + (1 if frac_x else 0)
    if not (0 <= base_top and base_top + needed_rows <= height
            and 0 <= base_left and base_left + needed_cols <= width):
        raise ValueError(
            f"prediction block at ({top}, {left}) with vector {motion_vector} "
            f"reads outside the {height}x{width} reference frame")

    window = reference[base_top:base_top + needed_rows,
                       base_left:base_left + needed_cols]
    if frac_y == 0 and frac_x == 0:
        return window[:block_size, :block_size].copy()

    top_left = window[:block_size, :block_size]
    top_right = window[:block_size, 1:block_size + 1] if frac_x else top_left
    bottom_left = window[1:block_size + 1, :block_size] if frac_y else top_left
    bottom_right = (window[1:block_size + 1, 1:block_size + 1]
                    if (frac_x and frac_y) else (bottom_left if frac_y else top_right))
    interpolated = ((1 - frac_y) * (1 - frac_x) * top_left
                    + (1 - frac_y) * frac_x * top_right
                    + frac_y * (1 - frac_x) * bottom_left
                    + frac_y * frac_x * bottom_right)
    return interpolated


def compensate_frame(reference: np.ndarray,
                     motion_field: np.ndarray,
                     block_size: int = MACROBLOCK_SIZE) -> np.ndarray:
    """Predict a whole frame from a per-macroblock motion field.

    ``motion_field`` has shape (rows, cols, 2) with one (dy, dx) per
    macroblock in raster order, as produced by
    :func:`repro.me.full_search.motion_field`.
    """
    reference = np.asarray(reference, dtype=np.float64)
    motion_field = np.asarray(motion_field)
    rows, cols = motion_field.shape[:2]
    predicted = np.zeros((rows * block_size, cols * block_size), dtype=np.float64)
    for row in range(rows):
        for col in range(cols):
            top, left = row * block_size, col * block_size
            vector = tuple(motion_field[row, col])
            predicted[top:top + block_size, left:left + block_size] = predict_block(
                reference, top, left, vector, block_size)
    return predicted


def residual_frame(current: np.ndarray, predicted: np.ndarray) -> np.ndarray:
    """Prediction residual (what the DCT path actually codes for P frames)."""
    current = np.asarray(current, dtype=np.float64)
    predicted = np.asarray(predicted, dtype=np.float64)
    if current.shape != predicted.shape:
        raise ValueError("current and predicted frame shapes differ")
    return current - predicted
