"""The ``Design`` protocol: what the compilation flow accepts as input.

Every kernel that can be compiled onto one of the domain-specific arrays —
the five Table-1 DCT implementations, the DA filter kernels, the systolic
motion-estimation engines — presents the same minimal surface:

* ``name``          identifier used in results, bitstreams and reports;
* ``target_array``  name of the array family the kernel targets
                    (``"da_array"`` or ``"me_array"``);
* ``build_netlist()``  the structural netlist handed to the flow.

A design may additionally provide ``build_fabric()`` returning a freshly
built, correctly sized :class:`~repro.core.fabric.Fabric`; designs without
it are compiled onto the registered default fabric of their target array.

Bare :class:`~repro.core.netlist.Netlist` objects are adapted through
:class:`NetlistDesign`, so existing netlist-building code (FIR, DWT, ad-hoc
kernels) needs no changes to go through the flow.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Protocol, runtime_checkable

from repro.core.exceptions import ConfigurationError
from repro.core.fabric import Fabric
from repro.core.netlist import Netlist


@runtime_checkable
class Design(Protocol):
    """Anything the flow can compile: a named netlist source with a target."""

    name: str
    target_array: str

    def build_netlist(self) -> Netlist:
        """Structural netlist of the design."""
        ...


class NetlistDesign:
    """Adapter presenting a bare :class:`Netlist` as a :class:`Design`."""

    def __init__(self, netlist: Netlist, target_array: str,
                 name: Optional[str] = None) -> None:
        self.netlist = netlist
        self.target_array = target_array
        self.name = name or netlist.name

    def build_netlist(self) -> Netlist:
        """The wrapped netlist, unchanged."""
        return self.netlist

    def __repr__(self) -> str:
        return f"NetlistDesign({self.name!r}, target_array={self.target_array!r})"


class AdaptedDesign:
    """Wrap an object that builds netlists but lacks flow metadata."""

    def __init__(self, implementation, target_array: str,
                 name: Optional[str] = None) -> None:
        if not hasattr(implementation, "build_netlist"):
            raise ConfigurationError(
                f"{implementation!r} has no build_netlist() and cannot be compiled")
        self.implementation = implementation
        self.target_array = target_array
        self.name = name or getattr(implementation, "name",
                                    type(implementation).__name__)

    def build_netlist(self) -> Netlist:
        """Delegate to the wrapped implementation."""
        return self.implementation.build_netlist()

    def __repr__(self) -> str:
        return f"AdaptedDesign({self.name!r}, target_array={self.target_array!r})"


def as_design(obj, target_array: Optional[str] = None) -> Design:
    """Coerce a design-like object into something satisfying :class:`Design`.

    Accepts a ready :class:`Design`, a bare :class:`Netlist` (wrapped in
    :class:`NetlistDesign`) or any object with ``build_netlist()`` (wrapped
    in :class:`AdaptedDesign`).  ``target_array`` overrides or supplies the
    target array name; objects that neither declare one nor get one passed
    are rejected rather than silently compiled onto a default array.
    """
    if isinstance(obj, Netlist):
        if target_array is None:
            raise ConfigurationError(
                f"bare netlist {obj.name!r} needs an explicit target_array "
                f"(e.g. 'da_array' or 'me_array')")
        return NetlistDesign(obj, target_array)
    declared = getattr(obj, "target_array", None)
    if isinstance(obj, Design) and target_array in (None, declared):
        # Keep the design's full surface (build_fabric, ...); wrapping is
        # only needed when the target is genuinely overridden.
        return obj
    if target_array is None and declared is None:
        raise ConfigurationError(
            f"{type(obj).__name__} declares no target_array; pass one "
            f"explicitly (e.g. 'da_array' or 'me_array')")
    return AdaptedDesign(obj, target_array or declared)


#: Registered default-fabric builders by array name.
_FABRIC_BUILDERS: Dict[str, Callable[[], Fabric]] = {}


def register_fabric(name: str, builder: Callable[[], Fabric]) -> None:
    """Register (or replace) the default fabric builder for an array name."""
    _FABRIC_BUILDERS[name] = builder


def _bootstrap_builtin_fabrics() -> None:
    # Imported lazily: repro.arrays pulls in the SoC, which itself builds on
    # this package, so a module-level import would be circular.
    from repro.arrays.da_array import build_da_array
    from repro.arrays.me_array import build_me_array

    _FABRIC_BUILDERS.setdefault("da_array", build_da_array)
    _FABRIC_BUILDERS.setdefault("me_array", build_me_array)


def default_fabric(target_array: str) -> Fabric:
    """Build a fresh default fabric for a registered array name."""
    if target_array not in _FABRIC_BUILDERS:
        _bootstrap_builtin_fabrics()
    try:
        builder = _FABRIC_BUILDERS[target_array]
    except KeyError:
        raise ConfigurationError(
            f"no fabric registered for target array {target_array!r}; "
            f"known: {sorted(_FABRIC_BUILDERS)}") from None
    return builder()


def resolve_fabric(design: Design, fabric=None) -> Fabric:
    """Pick the fabric a design compiles onto.

    Resolution order: an explicit ``fabric`` argument (a :class:`Fabric` or
    a zero-argument factory), the design's own ``build_fabric()`` when it
    provides one, then the registered default for ``design.target_array``.
    """
    if fabric is not None:
        if callable(fabric):
            fabric = fabric()
        if not isinstance(fabric, Fabric):
            raise ConfigurationError(
                f"fabric must be a Fabric or a factory returning one, "
                f"got {type(fabric).__name__}")
        return fabric
    build = getattr(design, "build_fabric", None)
    if callable(build):
        return build()
    return default_fabric(design.target_array)
