"""The pass pipeline: one composable compile API for every kernel.

A :class:`Flow` is an ordered list of :class:`Pass` objects run over a
shared :class:`FlowContext`.  The standard pipeline mirrors the paper's
software flow — ``Schedule → Place → Route → GenerateBitstream → Verify →
Metrics`` — and every stage is swappable: greedy versus annealing
placement is a pass choice (:class:`GreedyPlacePass` /
:class:`AnnealingPlacePass`), not a boolean flag, and analysis-only
compilation drops the physical passes rather than threading
``run_place_and_route`` through every call site.

``Flow.compile`` returns a structured :class:`FlowResult` carrying the
placement, routing, bitstream, verification report, design metrics and
per-stage wall-clock timings.  Pass ordering is validated statically: each
pass declares which context artifacts it requires and provides, and a flow
whose passes are out of order fails at construction, not mid-compile.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.clusters import ClusterKind, ClusterUsage
from repro.core.configuration import (
    ChannelConfiguration,
    ClusterConfiguration,
    ConfigurationBitstream,
)
from repro.core.exceptions import ConfigurationError, MappingError
from repro.core.fabric import Fabric
from repro.core.mapper import AnnealingPlacer, GreedyPlacer, Placement
from repro.core.metrics import DesignMetrics, evaluate_design
from repro.core.netlist import Netlist
from repro.core.router import MeshRouter, RoutingResult
from repro.core.scheduler import ListScheduler, Schedule
from repro.core.verification import VerificationReport, verify_mapped_design
from repro.flow.design import Design, as_design, resolve_fabric
from repro.obs import tracer as obs_tracer


@dataclass
class FlowContext:
    """Mutable state threaded through the passes of one compilation.

    ``engine_schedule`` is a best-effort carry: when the verify pass
    smoke-runs the design it stashes the engine's compiled
    :class:`~repro.engine.program.CompiledSchedule` here so the metrics
    pass does not compile the identical schedule a second time.
    """

    design: Design
    netlist: Netlist
    fabric: Fabric
    schedule: Optional[Schedule] = None
    placement: Optional[Placement] = None
    routing: Optional[RoutingResult] = None
    bitstream: Optional[ConfigurationBitstream] = None
    verification: Optional[VerificationReport] = None
    metrics: Optional[DesignMetrics] = None
    engine_schedule: Optional[object] = None
    #: SoC-level communication artifacts, set by the repro.noc passes:
    #: the design mapped onto a NoC topology and the simulated result.
    noc_map: Optional[object] = None
    noc: Optional[object] = None


class Pass:
    """One stage of the compilation flow.

    Subclasses set :attr:`name`, declare the context artifacts they
    :attr:`requires` and :attr:`provides` (field names of
    :class:`FlowContext`), and implement :meth:`run`.  ``signature()``
    feeds the result cache, so it must cover every parameter that changes
    the pass's output.
    """

    name: str = "pass"
    requires: Tuple[str, ...] = ()
    #: Artifacts the pass consumes when present but can run without (e.g.
    #: verification of an unrouted placement).  Ordering is still enforced:
    #: a flow where a later pass provides one of these fails construction.
    optional_requires: Tuple[str, ...] = ()
    provides: Tuple[str, ...] = ()

    def run(self, context: FlowContext) -> None:
        """Execute the stage, mutating ``context``."""
        raise NotImplementedError

    def signature(self) -> Tuple:
        """Hashable description of the pass and its parameters."""
        return (self.name,)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class SchedulePass(Pass):
    """Resource-constrained list scheduling on the target fabric's capacity."""

    name = "schedule"
    provides = ("schedule",)

    def run(self, context: FlowContext) -> None:
        scheduler = ListScheduler.for_fabric(context.fabric)
        context.schedule = scheduler.schedule(context.netlist)


class GreedyPlacePass(Pass):
    """Constructive nearest-free-site placement."""

    name = "place.greedy"
    provides = ("placement",)

    def run(self, context: FlowContext) -> None:
        context.placement = GreedyPlacer(context.fabric).place(context.netlist)


class AnnealingPlacePass(Pass):
    """Greedy placement refined by simulated annealing (deterministic seed)."""

    name = "place.annealing"
    provides = ("placement",)

    def __init__(self, seed: int = 0, moves_per_temperature: int = 64,
                 initial_temperature: float = 10.0, cooling_rate: float = 0.9,
                 minimum_temperature: float = 0.05) -> None:
        self.seed = seed
        self.moves_per_temperature = moves_per_temperature
        self.initial_temperature = initial_temperature
        self.cooling_rate = cooling_rate
        self.minimum_temperature = minimum_temperature

    def run(self, context: FlowContext) -> None:
        placer = AnnealingPlacer(
            context.fabric, seed=self.seed,
            moves_per_temperature=self.moves_per_temperature,
            initial_temperature=self.initial_temperature,
            cooling_rate=self.cooling_rate,
            minimum_temperature=self.minimum_temperature)
        context.placement = placer.place(context.netlist)

    def signature(self) -> Tuple:
        return (self.name, self.seed, self.moves_per_temperature,
                self.initial_temperature, self.cooling_rate,
                self.minimum_temperature)


class RoutePass(Pass):
    """Congestion-negotiated maze routing over the fabric mesh."""

    name = "route"
    requires = ("placement",)
    provides = ("routing",)

    def __init__(self, congestion_weight: float = 4.0) -> None:
        self.congestion_weight = congestion_weight

    def run(self, context: FlowContext) -> None:
        router = MeshRouter(context.fabric, self.congestion_weight)
        context.routing = router.route(context.netlist, context.placement)

    def signature(self) -> Tuple:
        return (self.name, self.congestion_weight)


class GenerateBitstreamPass(Pass):
    """Turn the placed-and-routed design into a configuration bitstream."""

    name = "bitstream"
    requires = ("placement", "routing")
    provides = ("bitstream",)

    def run(self, context: FlowContext) -> None:
        context.bitstream = build_bitstream(context.netlist, context.fabric,
                                            context.placement, context.routing)


class VerifyPass(Pass):
    """Design-rule checks plus an engine smoke simulation of the result.

    Beyond the placement/routing design rules, the pass compiles the
    netlist onto the vectorized execution runtime
    (:func:`repro.engine.program.program_for_netlist`) and steps it a few
    cycles, so a design whose dataflow graph cannot execute — not merely
    cannot be placed — is caught at compile time by the same runtime that
    will run it.

    With ``strict=True`` (the default) a failed check raises
    :class:`~repro.core.exceptions.MappingError` — a flow bug, not a user
    error; with ``strict=False`` the report is recorded on the result for
    the caller to inspect.
    """

    name = "verify"
    requires = ("placement",)
    optional_requires = ("routing",)
    provides = ("verification",)

    #: Cycles the engine smoke simulation advances the design.
    SMOKE_CYCLES = 4

    def __init__(self, strict: bool = True, smoke_cycles: Optional[int] = None) -> None:
        self.strict = strict
        self.smoke_cycles = self.SMOKE_CYCLES if smoke_cycles is None else smoke_cycles

    def run(self, context: FlowContext) -> None:
        from repro.engine.program import program_for_netlist

        report = verify_mapped_design(context.fabric, context.netlist,
                                      context.placement, context.routing)
        if self.smoke_cycles > 0:
            report.checks_run += 1
            try:
                engine = program_for_netlist(context.netlist)
                context.engine_schedule = engine.schedule
                engine.run(cycles=self.smoke_cycles)
            except Exception as error:
                report.add_violation(
                    f"engine smoke simulation failed after compile: {error}")
        context.verification = report
        if self.strict and not report.passed:
            raise MappingError(
                f"mapping of {context.netlist.name!r} onto "
                f"{context.fabric.name!r} failed design-rule checks: "
                + "; ".join(report.violations[:5]))

    def signature(self) -> Tuple:
        return (self.name, self.strict, self.smoke_cycles)


class MetricsPass(Pass):
    """Aggregate area / timing / configuration metrics of the mapped design."""

    name = "metrics"
    optional_requires = ("placement", "routing")
    provides = ("metrics",)

    def run(self, context: FlowContext) -> None:
        context.metrics = evaluate_design(context.netlist, context.fabric,
                                          context.placement, context.routing,
                                          engine_schedule=context.engine_schedule)


def build_bitstream(netlist: Netlist, fabric: Fabric, placement: Placement,
                    routing: RoutingResult) -> ConfigurationBitstream:
    """Configuration bitstream of a placed-and-routed design.

    One :class:`ClusterConfiguration` per netlist node (with a zeroed ROM
    image for memory clusters) and one :class:`ChannelConfiguration` per
    routed net that actually crosses the mesh.
    """
    bitstream = ConfigurationBitstream(fabric.name)
    for node in netlist.nodes:
        rom: tuple = ()
        if node.kind is ClusterKind.MEMORY and node.depth_words > 0:
            rom = tuple([0] * node.depth_words)
        bitstream.add_cluster(ClusterConfiguration(
            position=placement.position_of(node.name),
            kind=node.kind,
            mode=node.role or node.kind.value,
            rom_contents=rom,
            rom_word_bits=node.width_bits,
        ))
    for route in routing.routes:
        if route.hop_count == 0:
            continue
        lanes = max(1, -(-route.width_bits // 8)) if route.width_bits > 2 else route.width_bits
        bitstream.add_channel(ChannelConfiguration(
            endpoints=(route.path[0], route.path[-1]),
            coarse_switches_on=route.hop_count * lanes if route.width_bits > 2 else 0,
            fine_switches_on=route.hop_count * lanes if route.width_bits <= 2 else 0,
        ))
    return bitstream


@dataclass
class FlowResult:
    """Structured artifact of one compilation.

    Treat the contained artifacts as read-only: a cache hit returns a
    result whose netlist, placement, routing and bitstream are shared with
    the cached entry (and with every other hit of the same compilation).
    On a hit, :attr:`fabric` is the *original* compile's fabric object —
    the cache keys on geometry, so a geometry-identical fabric passed to a
    later ``compile()`` is not the instance the result refers to (and its
    own mesh occupancy is untouched); pass ``cache=None`` when you need
    the routing applied to your specific fabric instance.
    """

    design_name: str
    fabric_name: str
    netlist: Netlist
    fabric: Fabric
    schedule: Optional[Schedule] = None
    placement: Optional[Placement] = None
    routing: Optional[RoutingResult] = None
    bitstream: Optional[ConfigurationBitstream] = None
    verification: Optional[VerificationReport] = None
    metrics: Optional[DesignMetrics] = None
    #: NoC mapping and simulation of the compiled design, present when
    #: the flow ran the repro.noc passes (see ``Flow.with_noc``).
    noc_map: Optional[object] = None
    noc: Optional[object] = None
    stage_timings: Dict[str, float] = field(default_factory=dict)
    cache_hit: bool = False
    #: True when this result was served from a :class:`FlowCache` rather
    #: than compiled in this call.  ``stage_timings`` then describe the
    #: *original* compile; :attr:`compile_seconds` is what this call cost.
    from_cache: bool = False

    @property
    def usage(self) -> ClusterUsage:
        """Table-1 style cluster usage of the compiled netlist."""
        return self.netlist.cluster_usage()

    def table_row(self) -> Dict[str, int]:
        """This design's Table-1 row."""
        return self.usage.as_table_row()

    @property
    def total_seconds(self) -> float:
        """Wall-clock time the stages took when the design was compiled —
        on a cache hit, that's the *original* compile's time."""
        return sum(self.stage_timings.values())

    @property
    def compile_seconds(self) -> float:
        """Wall-clock compilation cost of *this* call: 0.0 for a cache
        hit, :attr:`total_seconds` for a cold compile."""
        return 0.0 if self.from_cache else self.total_seconds

    def summary(self) -> Dict[str, object]:
        """Flat dictionary of the headline numbers for reporting."""
        summary: Dict[str, object] = {
            "design": self.design_name,
            "fabric": self.fabric_name,
            "total_clusters": self.usage.total_clusters,
            "cache_hit": self.cache_hit,
            "from_cache": self.from_cache,
            "flow_seconds": round(self.compile_seconds, 4),
        }
        if self.metrics is not None:
            summary.update(self.metrics.summary())
        if self.bitstream is not None:
            summary["bitstream_bits"] = self.bitstream.total_bits()
        return summary

    def __repr__(self) -> str:
        return (f"FlowResult({self.design_name!r} on {self.fabric_name!r}, "
                f"clusters={self.usage.total_clusters}, "
                f"cache_hit={self.cache_hit})")


class Flow:
    """An ordered, statically validated pipeline of compilation passes."""

    #: Context artifacts available before any pass runs.
    _BASE_ARTIFACTS = ("design", "netlist", "fabric")

    def __init__(self, passes: Sequence[Pass], name: str = "flow") -> None:
        if not passes:
            raise ConfigurationError("a flow needs at least one pass")
        self.name = name
        self.passes: List[Pass] = list(passes)
        self._validate_ordering()

    def _validate_ordering(self) -> None:
        available = set(self._BASE_ARTIFACTS)
        for index, stage in enumerate(self.passes):
            missing = [need for need in stage.requires if need not in available]
            if missing:
                raise ConfigurationError(
                    f"pass {stage.name!r} requires {missing} but earlier passes "
                    f"only provide {sorted(available)}")
            late = [need for need in stage.optional_requires
                    if need not in available
                    and any(need in later.provides
                            for later in self.passes[index + 1:])]
            if late:
                raise ConfigurationError(
                    f"pass {stage.name!r} consumes {late} when available, but "
                    f"they are only produced by later passes — reorder the flow")
            available.update(stage.provides)

    @classmethod
    def default(cls, placer: Union[str, Pass] = "greedy", seed: int = 0,
                strict_verify: bool = True) -> "Flow":
        """The standard six-stage pipeline of the paper's software flow.

        ``placer`` selects the placement pass (``"greedy"`` or
        ``"annealing"``); pass a :class:`Pass` instance for anything more
        exotic.
        """
        if isinstance(placer, Pass):
            place: Pass = placer
        elif placer == "greedy":
            place = GreedyPlacePass()
        elif placer == "annealing":
            place = AnnealingPlacePass(seed=seed)
        else:
            raise ConfigurationError(
                f"unknown placer {placer!r}; use 'greedy', 'annealing' or a Pass")
        return cls([
            SchedulePass(),
            place,
            RoutePass(),
            GenerateBitstreamPass(),
            VerifyPass(strict=strict_verify),
            MetricsPass(),
        ], name="default")

    @classmethod
    def with_noc(cls, placer: Union[str, Pass] = "greedy", seed: int = 0,
                 strict_verify: bool = True, topology=None,
                 tiles: Tuple[int, int] = (2, 2),
                 model: str = "analytic") -> "Flow":
        """The default pipeline extended with the SoC NoC passes.

        Appends :class:`~repro.noc.passes.NocMapPass` (tile the fabric,
        extract traffic from the routed design, place it on
        ``topology`` — a mesh over ``tiles`` by default) and
        :class:`~repro.noc.passes.NocMetricsPass` (simulate and fold
        ``noc_latency_cycles`` / ``noc_energy`` into the metrics).
        """
        from repro.noc.passes import NocMapPass, NocMetricsPass

        base = cls.default(placer=placer, seed=seed,
                           strict_verify=strict_verify)
        return cls(base.passes + [NocMapPass(topology=topology, tiles=tiles),
                                  NocMetricsPass(model=model)],
                   name="default+noc")

    @classmethod
    def estimate(cls) -> "Flow":
        """Analysis-only pipeline: schedule and netlist metrics, no physical
        design.  The fast path for design-space sweeps that only need
        cluster counts and pre-placement area numbers."""
        return cls([SchedulePass(), MetricsPass()], name="estimate")

    def signature(self) -> Tuple:
        """Hashable description of the whole pipeline (cache-key component)."""
        return tuple(stage.signature() for stage in self.passes)

    def compile(self, design, fabric=None, cache=None) -> FlowResult:
        """Compile one design into a :class:`FlowResult`.

        ``design`` may be anything :func:`~repro.flow.design.as_design`
        accepts; ``fabric`` an explicit target (or factory) overriding the
        design's default; ``cache`` an optional
        :class:`~repro.flow.cache.FlowCache` consulted before running and
        updated after.
        """
        design = as_design(design)
        netlist = design.build_netlist()
        fabric = resolve_fabric(design, fabric)
        tracer = obs_tracer.TRACER

        key = None
        if cache is not None:
            key = cache.key(netlist, fabric, self)
            hit = cache.get(key)
            if hit is not None:
                # Heavyweight artifacts (netlist, placement, routing,
                # bitstream) are shared with the cached entry — treat them
                # as read-only; stage_timings are the original compile's.
                # design_name is restamped: the key covers only netlist
                # content, and two designs may wrap the same netlist under
                # different names.
                if tracer.enabled:
                    tracer.wall_event("flow.cache_hit", "flow",
                                      {"design": design.name})
                return replace(hit, cache_hit=True, from_cache=True,
                               design_name=design.name,
                               stage_timings=dict(hit.stage_timings))

        context = FlowContext(design=design, netlist=netlist, fabric=fabric)
        timings: Dict[str, float] = {}
        for stage in self.passes:
            started = time.perf_counter()
            stage.run(context)
            timings[stage.name] = time.perf_counter() - started
            # Wall spans only: process workers recompile what the parent
            # already cached, so any virtual event here would differ
            # between serial and multiprocess runs and break digest
            # identity.
            if tracer.enabled:
                tracer.wall_span_at(f"flow.{stage.name}", "flow",
                                    started, timings[stage.name],
                                    {"design": design.name})
        if tracer.enabled:
            tracer.count("flow.compiles")

        result = FlowResult(
            design_name=design.name,
            fabric_name=fabric.name,
            netlist=netlist,
            fabric=fabric,
            schedule=context.schedule,
            placement=context.placement,
            routing=context.routing,
            bitstream=context.bitstream,
            verification=context.verification,
            metrics=context.metrics,
            noc_map=context.noc_map,
            noc=context.noc,
            stage_timings=timings,
        )
        if key is not None:
            cache.put(key, result)
        return result

    def __repr__(self) -> str:
        return f"Flow({self.name!r}, passes={[p.name for p in self.passes]})"
