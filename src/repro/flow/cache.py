"""Content-addressed result cache and the batch compile entry points.

The cache key is a SHA-256 over three fingerprints — the netlist (nodes,
nets, widths, roles, ROM depths), the fabric geometry (site map and mesh
parameters) and the flow's pass configuration — so any mutation of any of
the three misses, while re-compiling an identical design is a hit that
skips placement, routing and verification entirely.

:func:`compile` is the module-level convenience wired to a shared default
cache; :func:`compile_many` fans independent kernels out over a thread
pool (each compile builds its own fabric, so there is no shared mutable
state) and returns results in input order.
"""

from __future__ import annotations

import hashlib
import pickle
import threading
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Set

from repro.core.exceptions import ConfigurationError
from repro.core.fabric import Fabric
from repro.core.netlist import Netlist
from repro.flow.pipeline import Flow, FlowResult
from repro.obs import tracer as obs_tracer

#: Version stamp of the :meth:`FlowCache.export_state` wire format.
#: Bump whenever the envelope layout or the pickled artifact contracts
#: change; :meth:`FlowCache.import_state` rejects any other version.
CACHE_STATE_VERSION = 1

#: Envelope marker distinguishing a cache-state blob from arbitrary pickles.
_STATE_FORMAT = "repro.flow.cache-state"


def netlist_fingerprint(netlist: Netlist) -> str:
    """Stable content hash of a netlist's structure."""
    digest = hashlib.sha256()
    digest.update(netlist.name.encode())
    for node in netlist.nodes:
        digest.update(
            f"|n:{node.name}:{node.kind.value}:{node.width_bits}"
            f":{node.role}:{node.depth_words}".encode())
    for net in netlist.nets:
        digest.update(
            f"|e:{net.source}>{net.sink}:{net.width_bits}:{net.name}".encode())
    return digest.hexdigest()


def fabric_fingerprint(fabric: Fabric) -> str:
    """Stable content hash of a fabric's geometry, cluster mix and mesh."""
    digest = hashlib.sha256()
    spec = fabric.mesh.spec
    digest.update(
        f"{fabric.name}:{fabric.rows}x{fabric.cols}"
        f"|mesh:{spec.coarse_tracks_per_channel}:{spec.fine_tracks_per_channel}"
        f":{spec.switches_per_track_per_channel}:{spec.config_bits_per_switch}"
        .encode())
    for site in fabric.sites:
        if site.spec is None:
            digest.update(b"|.")
        else:
            digest.update(
                f"|{site.spec.kind.value}:{site.spec.width_bits}"
                f":{site.spec.depth_words}".encode())
    return digest.hexdigest()


def cache_key(netlist: Netlist, fabric: Fabric, flow: Flow) -> str:
    """Combined content hash keying one (netlist, fabric, flow) compilation."""
    digest = hashlib.sha256()
    digest.update(netlist_fingerprint(netlist).encode())
    digest.update(fabric_fingerprint(fabric).encode())
    digest.update(repr(flow.signature()).encode())
    return digest.hexdigest()


class FlowCache:
    """Thread-safe LRU cache of :class:`FlowResult` keyed by content hash."""

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries <= 0:
            raise ConfigurationError("cache needs room for at least one entry")
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: "OrderedDict[str, FlowResult]" = OrderedDict()
        self._lock = threading.Lock()

    def key(self, netlist: Netlist, fabric: Fabric, flow: Flow) -> str:
        """Content hash keying this compilation (compute once, reuse)."""
        return cache_key(netlist, fabric, flow)

    def get(self, key: str) -> Optional[FlowResult]:
        """Cached result for a precomputed key, or ``None``."""
        tracer = obs_tracer.TRACER
        with self._lock:
            result = self._entries.get(key)
            if result is None:
                self.misses += 1
                if tracer.enabled:
                    tracer.count("flow.cache.misses")
                return None
            self._entries.move_to_end(key)
            self.hits += 1
        if tracer.enabled:
            tracer.count("flow.cache.hits")
        return result

    def put(self, key: str, result: FlowResult) -> None:
        """Record a freshly compiled result, evicting the least recent."""
        tracer = obs_tracer.TRACER
        evicted = 0
        with self._lock:
            self._entries[key] = result
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                evicted += 1
            self.evictions += evicted
        if evicted and tracer.enabled:
            tracer.count("flow.cache.evictions", evicted)

    def clear(self) -> None:
        """Drop every entry and reset the hit/miss/eviction counters."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> Dict[str, int]:
        """Hit/miss/eviction/size counters for reporting."""
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions,
                "entries": len(self._entries)}

    def keys(self) -> Set[str]:
        """Snapshot of the cached content-hash keys."""
        with self._lock:
            return set(self._entries)

    def export_state(self, keys: Optional[Set[str]] = None) -> bytes:
        """Serialize cached entries for another process to import.

        The blob is a version-stamped envelope of ``(content-hash key,
        FlowResult)`` pairs in recency order (least recent first, so an
        importing cache ends with the same recency ranking).  Pass
        ``keys`` to export a subset — the worker→parent merge path
        exports only the entries a worker added.  Counters are *not*
        exported; state is the entries, statistics stay per-process.
        """
        with self._lock:
            entries = [(key, result) for key, result in self._entries.items()
                       if keys is None or key in keys]
        return pickle.dumps({"format": _STATE_FORMAT,
                             "version": CACHE_STATE_VERSION,
                             "entries": entries},
                            protocol=pickle.HIGHEST_PROTOCOL)

    def import_state(self, blob: bytes, replace: bool = False) -> int:
        """Merge an exported blob into this cache; returns entries imported.

        Keys already present are kept (their entry is bit-identical by
        construction — the key is a content hash over netlist, fabric and
        flow signature) unless ``replace`` is true.  Imports go through
        :meth:`put`, so ``max_entries`` is enforced entry by entry and an
        oversized blob simply evicts in LRU order rather than
        overflowing.  A blob from a different
        :data:`CACHE_STATE_VERSION` (or something that is not a cache
        export at all) is rejected with a :class:`ConfigurationError`.
        """
        try:
            envelope = pickle.loads(blob)
        except Exception as error:
            raise ConfigurationError(
                f"not a FlowCache state blob: {error}") from error
        if (not isinstance(envelope, dict)
                or envelope.get("format") != _STATE_FORMAT):
            raise ConfigurationError(
                "not a FlowCache state blob (missing format marker)")
        version = envelope.get("version")
        if version != CACHE_STATE_VERSION:
            raise ConfigurationError(
                f"FlowCache state version mismatch: blob is v{version}, "
                f"this runtime speaks v{CACHE_STATE_VERSION}; re-export "
                f"from a matching build")
        imported = 0
        for key, result in envelope["entries"]:
            with self._lock:
                # Membership, not get(): an import is bookkeeping, it
                # must not skew the hit/miss statistics.
                present = key in self._entries
            if present and not replace:
                continue
            self.put(key, result)
            imported += 1
        return imported

    def prewarm(self, designs: Sequence, *, fabric=None,
                flow: Optional[Flow] = None,
                max_workers: Optional[int] = None) -> Dict[str, int]:
        """Compile ``designs`` through this cache ahead of demand.

        The flow-level warm-up primitive (the serving scheduler's
        ``KernelLibrary.prewarm`` goes through :func:`compile_many`
        directly because it also needs the results; this method serves
        callers that only want the cache heated).  Duplicate design
        *instances* are deduplicated by
        identity; content-equal but distinct instances may race to a
        redundant compile, which the cache resolves by last-put-wins
        (both results are bit-identical).  The returned hit/miss delta is
        read from the shared counters and is therefore approximate when
        other threads use the cache concurrently.
        """
        before = self.stats()
        seen = set()
        unique = []
        for design in designs:
            if id(design) not in seen:
                seen.add(id(design))
                unique.append(design)
        compile_many(unique, fabric, flow=flow, cache=self,
                     max_workers=max_workers)
        after = self.stats()
        return {"designs": len(unique),
                "hits": after["hits"] - before["hits"],
                "misses": after["misses"] - before["misses"]}

    def __repr__(self) -> str:
        return (f"FlowCache(entries={len(self._entries)}, hits={self.hits}, "
                f"misses={self.misses})")


#: Shared cache behind the module-level :func:`compile` entry point.
#: Rebind ``repro.flow.cache.DEFAULT_CACHE`` to swap it globally — the
#: entry points resolve it at call time, not at definition time.
DEFAULT_CACHE = FlowCache()

#: Sentinel: "use whatever DEFAULT_CACHE is bound to when called".
_SHARED = object()


def _resolve_cache(cache) -> Optional[FlowCache]:
    return DEFAULT_CACHE if cache is _SHARED else cache


def compile(design, fabric=None, *, flow: Optional[Flow] = None,
            placer: str = "greedy", seed: int = 0,
            cache=_SHARED) -> FlowResult:
    """Compile one design through the standard flow.

    The single public compile API: accepts any
    :class:`~repro.flow.design.Design` (or bare netlist), builds the
    design's default fabric when none is given, and consults the shared
    result cache (pass ``cache=None`` to force a fresh compilation).
    """
    flow = flow or Flow.default(placer=placer, seed=seed)
    return flow.compile(design, fabric=fabric, cache=_resolve_cache(cache))


#: Execution backends :func:`compile_many` accepts.
COMPILE_BACKENDS = ("serial", "threads", "processes")


def compile_many(designs: Sequence, fabric=None, *,
                 flow: Optional[Flow] = None, placer: str = "greedy",
                 seed: int = 0, cache=_SHARED,
                 max_workers: Optional[int] = None,
                 parallel: str = "threads",
                 timeout: Optional[float] = None,
                 backend=None) -> List[FlowResult]:
    """Compile independent kernels concurrently; results in input order.

    Every design is compiled on its own freshly built fabric, so the
    compilations share no mutable state and the output is deterministic
    regardless of scheduling.  ``fabric`` must therefore be a
    zero-argument factory (or ``None`` for each design's default) — a
    single :class:`Fabric` instance would be mutated concurrently by the
    router.

    ``parallel`` picks the execution backend: ``"threads"`` (the
    default — fine-grained, but GIL-bound), ``"serial"``, or
    ``"processes"`` — designs sharded over spawned worker processes via
    :mod:`repro.par`, each worker's cache warmed from this cache's
    exported state and new entries merged back, so the result cache
    behaves as if the compiles had run here.  The processes backend
    requires picklable designs and a picklable module-level ``fabric``
    factory; ``timeout`` (seconds, whole batch) and ``backend`` (a
    reusable :class:`repro.par.ProcessBackend`) apply to it only.
    """
    if isinstance(fabric, Fabric):
        raise ConfigurationError(
            "compile_many needs a fabric *factory* (or None), not a shared "
            "Fabric instance: routing mutates mesh occupancy")
    if parallel not in COMPILE_BACKENDS:
        raise ConfigurationError(
            f"unknown parallel backend {parallel!r}; "
            f"expected one of {COMPILE_BACKENDS}")
    cache = _resolve_cache(cache)
    flow = flow or Flow.default(placer=placer, seed=seed)
    designs = list(designs)
    if not designs:
        return []
    if parallel == "processes":
        from repro.par.flow import compile_many_processes

        return compile_many_processes(designs, fabric, flow=flow,
                                      cache=cache, max_workers=max_workers,
                                      timeout=timeout, backend=backend)
    workers = max_workers or min(8, len(designs))
    if parallel == "serial" or workers <= 1 or len(designs) == 1:
        return [flow.compile(design, fabric=fabric, cache=cache)
                for design in designs]
    with ThreadPoolExecutor(max_workers=workers) as pool:
        futures = [pool.submit(flow.compile, design, fabric, cache)
                   for design in designs]
        return [future.result() for future in futures]
