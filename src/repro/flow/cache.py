"""Content-addressed result cache and the batch compile entry points.

The cache key is a SHA-256 over three fingerprints — the netlist (nodes,
nets, widths, roles, ROM depths), the fabric geometry (site map and mesh
parameters) and the flow's pass configuration — so any mutation of any of
the three misses, while re-compiling an identical design is a hit that
skips placement, routing and verification entirely.

:func:`compile` is the module-level convenience wired to a shared default
cache; :func:`compile_many` fans independent kernels out over a thread
pool (each compile builds its own fabric, so there is no shared mutable
state) and returns results in input order.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence

from repro.core.exceptions import ConfigurationError
from repro.core.fabric import Fabric
from repro.core.netlist import Netlist
from repro.flow.pipeline import Flow, FlowResult


def netlist_fingerprint(netlist: Netlist) -> str:
    """Stable content hash of a netlist's structure."""
    digest = hashlib.sha256()
    digest.update(netlist.name.encode())
    for node in netlist.nodes:
        digest.update(
            f"|n:{node.name}:{node.kind.value}:{node.width_bits}"
            f":{node.role}:{node.depth_words}".encode())
    for net in netlist.nets:
        digest.update(
            f"|e:{net.source}>{net.sink}:{net.width_bits}:{net.name}".encode())
    return digest.hexdigest()


def fabric_fingerprint(fabric: Fabric) -> str:
    """Stable content hash of a fabric's geometry, cluster mix and mesh."""
    digest = hashlib.sha256()
    spec = fabric.mesh.spec
    digest.update(
        f"{fabric.name}:{fabric.rows}x{fabric.cols}"
        f"|mesh:{spec.coarse_tracks_per_channel}:{spec.fine_tracks_per_channel}"
        f":{spec.switches_per_track_per_channel}:{spec.config_bits_per_switch}"
        .encode())
    for site in fabric.sites:
        if site.spec is None:
            digest.update(b"|.")
        else:
            digest.update(
                f"|{site.spec.kind.value}:{site.spec.width_bits}"
                f":{site.spec.depth_words}".encode())
    return digest.hexdigest()


def cache_key(netlist: Netlist, fabric: Fabric, flow: Flow) -> str:
    """Combined content hash keying one (netlist, fabric, flow) compilation."""
    digest = hashlib.sha256()
    digest.update(netlist_fingerprint(netlist).encode())
    digest.update(fabric_fingerprint(fabric).encode())
    digest.update(repr(flow.signature()).encode())
    return digest.hexdigest()


class FlowCache:
    """Thread-safe LRU cache of :class:`FlowResult` keyed by content hash."""

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries <= 0:
            raise ConfigurationError("cache needs room for at least one entry")
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[str, FlowResult]" = OrderedDict()
        self._lock = threading.Lock()

    def key(self, netlist: Netlist, fabric: Fabric, flow: Flow) -> str:
        """Content hash keying this compilation (compute once, reuse)."""
        return cache_key(netlist, fabric, flow)

    def get(self, key: str) -> Optional[FlowResult]:
        """Cached result for a precomputed key, or ``None``."""
        with self._lock:
            result = self._entries.get(key)
            if result is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return result

    def put(self, key: str, result: FlowResult) -> None:
        """Record a freshly compiled result, evicting the least recent."""
        with self._lock:
            self._entries[key] = result
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry and reset the hit/miss counters."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> Dict[str, int]:
        """Hit/miss/size counters for reporting."""
        return {"hits": self.hits, "misses": self.misses,
                "entries": len(self._entries)}

    def prewarm(self, designs: Sequence, *, fabric=None,
                flow: Optional[Flow] = None,
                max_workers: Optional[int] = None) -> Dict[str, int]:
        """Compile ``designs`` through this cache ahead of demand.

        The flow-level warm-up primitive (the serving scheduler's
        ``KernelLibrary.prewarm`` goes through :func:`compile_many`
        directly because it also needs the results; this method serves
        callers that only want the cache heated).  Duplicate design
        *instances* are deduplicated by
        identity; content-equal but distinct instances may race to a
        redundant compile, which the cache resolves by last-put-wins
        (both results are bit-identical).  The returned hit/miss delta is
        read from the shared counters and is therefore approximate when
        other threads use the cache concurrently.
        """
        before = self.stats()
        seen = set()
        unique = []
        for design in designs:
            if id(design) not in seen:
                seen.add(id(design))
                unique.append(design)
        compile_many(unique, fabric, flow=flow, cache=self,
                     max_workers=max_workers)
        after = self.stats()
        return {"designs": len(unique),
                "hits": after["hits"] - before["hits"],
                "misses": after["misses"] - before["misses"]}

    def __repr__(self) -> str:
        return (f"FlowCache(entries={len(self._entries)}, hits={self.hits}, "
                f"misses={self.misses})")


#: Shared cache behind the module-level :func:`compile` entry point.
#: Rebind ``repro.flow.cache.DEFAULT_CACHE`` to swap it globally — the
#: entry points resolve it at call time, not at definition time.
DEFAULT_CACHE = FlowCache()

#: Sentinel: "use whatever DEFAULT_CACHE is bound to when called".
_SHARED = object()


def _resolve_cache(cache) -> Optional[FlowCache]:
    return DEFAULT_CACHE if cache is _SHARED else cache


def compile(design, fabric=None, *, flow: Optional[Flow] = None,
            placer: str = "greedy", seed: int = 0,
            cache=_SHARED) -> FlowResult:
    """Compile one design through the standard flow.

    The single public compile API: accepts any
    :class:`~repro.flow.design.Design` (or bare netlist), builds the
    design's default fabric when none is given, and consults the shared
    result cache (pass ``cache=None`` to force a fresh compilation).
    """
    flow = flow or Flow.default(placer=placer, seed=seed)
    return flow.compile(design, fabric=fabric, cache=_resolve_cache(cache))


def compile_many(designs: Sequence, fabric=None, *,
                 flow: Optional[Flow] = None, placer: str = "greedy",
                 seed: int = 0, cache=_SHARED,
                 max_workers: Optional[int] = None) -> List[FlowResult]:
    """Compile independent kernels concurrently; results in input order.

    Every design is compiled on its own freshly built fabric, so the
    compilations share no mutable state and the output is deterministic
    regardless of thread scheduling.  ``fabric`` must therefore be a
    zero-argument factory (or ``None`` for each design's default) — a
    single :class:`Fabric` instance would be mutated concurrently by the
    router.
    """
    if isinstance(fabric, Fabric):
        raise ConfigurationError(
            "compile_many needs a fabric *factory* (or None), not a shared "
            "Fabric instance: routing mutates mesh occupancy")
    cache = _resolve_cache(cache)
    flow = flow or Flow.default(placer=placer, seed=seed)
    designs = list(designs)
    if not designs:
        return []
    workers = max_workers or min(8, len(designs))
    if workers <= 1 or len(designs) == 1:
        return [flow.compile(design, fabric=fabric, cache=cache)
                for design in designs]
    with ThreadPoolExecutor(max_workers=workers) as pool:
        futures = [pool.submit(flow.compile, design, fabric, cache)
                   for design in designs]
        return [future.result() for future in futures]
