"""repro.flow — the unified compilation-flow API.

One composable compile pipeline for every kernel in the repository: DCT
implementations, DA filter kernels and the systolic motion-estimation
engines all go through the same ``compile()`` / ``compile_many()`` entry
points, replacing the former ad-hoc mapping paths in ``repro.dct.mapping``,
``repro.me.mapping`` and ``repro.arrays.soc`` (which remain as deprecated
shims).

>>> from repro.flow import compile
>>> from repro.dct import MixedRomDCT
>>> result = compile(MixedRomDCT())
>>> result.table_row()["total_clusters"]
32
"""

from repro.flow.cache import (
    CACHE_STATE_VERSION,
    COMPILE_BACKENDS,
    DEFAULT_CACHE,
    FlowCache,
    cache_key,
    compile,
    compile_many,
    fabric_fingerprint,
    netlist_fingerprint,
)
from repro.flow.design import (
    AdaptedDesign,
    Design,
    NetlistDesign,
    as_design,
    default_fabric,
    register_fabric,
    resolve_fabric,
)
from repro.flow.pipeline import (
    AnnealingPlacePass,
    Flow,
    FlowContext,
    FlowResult,
    GenerateBitstreamPass,
    GreedyPlacePass,
    MetricsPass,
    Pass,
    RoutePass,
    SchedulePass,
    VerifyPass,
    build_bitstream,
)

__all__ = [
    "CACHE_STATE_VERSION",
    "COMPILE_BACKENDS",
    "DEFAULT_CACHE",
    "FlowCache",
    "cache_key",
    "compile",
    "compile_many",
    "fabric_fingerprint",
    "netlist_fingerprint",
    "AdaptedDesign",
    "Design",
    "NetlistDesign",
    "as_design",
    "default_fabric",
    "register_fabric",
    "resolve_fabric",
    "AnnealingPlacePass",
    "Flow",
    "FlowContext",
    "FlowResult",
    "GenerateBitstreamPass",
    "GreedyPlacePass",
    "MetricsPass",
    "Pass",
    "RoutePass",
    "SchedulePass",
    "VerifyPass",
    "build_bitstream",
]
