"""Typed counters, gauges, and histograms with a merging registry.

Histogram summaries reuse the fleet ledger's nearest-rank percentile
(:func:`repro.fleet.ledger.percentile_array`) so observability numbers
stay comparable digit-for-digit with the serving/fleet reports.  The
import is lazy — ``repro.obs`` sits below every instrumented layer and
must not import them at module load.
"""

from __future__ import annotations

from typing import Dict, List, Union

Number = Union[int, float]


class Counter:
    """Monotonically increasing event count."""

    __slots__ = ("name", "value")

    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def increment(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """Last-written value (queue depths, utilisation levels)."""

    __slots__ = ("name", "value")

    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value


class Histogram:
    """Raw-sample histogram with nearest-rank percentile summaries."""

    __slots__ = ("name", "values")

    kind = "histogram"

    def __init__(self, name: str) -> None:
        self.name = name
        self.values: List[Number] = []

    def observe(self, value: Number) -> None:
        self.values.append(value)

    def summary(self) -> Dict[str, Number]:
        if not self.values:
            return {"count": 0}
        import numpy as np

        from repro.fleet.ledger import percentile_array

        values = np.asarray(self.values, dtype=np.float64)
        return {
            "count": int(values.size),
            "mean": float(values.mean()),
            "p50": float(percentile_array(values, 0.50)),
            "p95": float(percentile_array(values, 0.95)),
            "p99": float(percentile_array(values, 0.99)),
            "max": float(values.max()),
        }


class MetricsRegistry:
    """Name-keyed metric store with get-or-create accessors."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Union[Counter, Gauge, Histogram]] = {}

    def _get(self, name: str, factory):
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = factory(name)
        elif not isinstance(metric, factory):
            raise TypeError(
                f"metric {name!r} is a {metric.kind}, not a "
                f"{factory.kind}")
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> Dict[str, Dict]:
        """Structured snapshot: counters/gauges as scalars, histograms as
        percentile summaries."""
        out: Dict[str, Dict] = {"counters": {}, "gauges": {},
                                "histograms": {}}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                out["counters"][name] = metric.value
            elif isinstance(metric, Gauge):
                out["gauges"][name] = metric.value
            else:
                out["histograms"][name] = metric.summary()
        return out

    def export_state(self) -> Dict[str, Dict]:
        """Raw, mergeable state (histograms keep their samples)."""
        counters = {}
        gauges = {}
        histograms = {}
        for name, metric in self._metrics.items():
            if isinstance(metric, Counter):
                counters[name] = metric.value
            elif isinstance(metric, Gauge):
                gauges[name] = metric.value
            else:
                histograms[name] = list(metric.values)
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}

    def merge_state(self, state: Dict[str, Dict]) -> None:
        """Fold a worker's exported state in: counters add, histograms
        concatenate samples, gauges take the incoming value."""
        for name, value in state.get("counters", {}).items():
            self.counter(name).increment(value)
        for name, value in state.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, values in state.get("histograms", {}).items():
            self.histogram(name).values.extend(values)

    def clear(self) -> None:
        self._metrics.clear()
