"""Tracer overhead measurement for the CI obs job.

The contract asserted in CI (``benchmarks/run_bench_obs.py``): with the
tracer **disabled** an instrumented workload must run within 5% of
itself — measured as the ratio between two interleaved disabled passes,
which bounds the measurement noise *and* the cost of the ``enabled``
guards together — and **enabling** the tracer must cost < 15% on the
smoke workload.
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable, Dict

from repro.obs.tracer import disable, tracing


def best_of(workload: Callable[[], object], repeats: int = 3) -> float:
    """Minimum wall seconds over ``repeats`` runs."""
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = perf_counter()
        workload()
        elapsed = perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best


def measure_overhead(workload: Callable[[], object],
                     repeats: int = 3) -> Dict[str, float]:
    """Time ``workload`` disabled (twice, interleaved) and enabled.

    Returns wall seconds plus the two overhead ratios asserted in CI.
    A warmup run happens first so one-time costs (kernel compiles
    filling the FlowCache) don't masquerade as tracer overhead.
    """
    disable()
    workload()  # warmup

    disabled_a = best_of(workload, repeats)
    with tracing() as tracer:
        enabled_seconds = best_of(workload, repeats)
        events = len(tracer.events()) // max(1, repeats)
    disabled_b = best_of(workload, repeats)

    baseline = min(disabled_a, disabled_b)
    disabled_ratio = max(disabled_a, disabled_b) / baseline
    enabled_ratio = enabled_seconds / baseline
    return {
        "repeats": repeats,
        "events_per_run": events,
        "disabled_seconds": round(baseline, 6),
        "enabled_seconds": round(enabled_seconds, 6),
        "disabled_ratio": round(disabled_ratio, 4),
        "enabled_ratio": round(enabled_ratio, 4),
    }
