"""repro.obs — unified tracing, metrics, and Chrome-trace export.

One observability layer for the whole stack (flow → engine → gop → noc
→ serve → fleet → par):

* :mod:`repro.obs.tracer` — span/event tracer with explicit **wall** and
  **virtual** clock domains behind a no-op-when-disabled null tracer.
* :mod:`repro.obs.metrics` — typed counters/gauges/histograms with
  nearest-rank percentile summaries shared with ``fleet.ledger``.
* :mod:`repro.obs.export` — Chrome trace-event JSON (Perfetto loadable),
  flat metric rows for ``reporting.format_table``, and the stable
  virtual-domain :func:`trace_digest` used for conformance.
* :mod:`repro.obs.propagate` — merge traces recorded inside
  ``repro.par`` worker processes back into the parent's tracer.
* :mod:`repro.obs.overhead` — the traced-vs-untraced measurement
  asserted by the CI obs job.

Quickstart::

    from repro import obs

    with obs.tracing() as tracer:
        report = simulate_fleet(trace, settings)
    obs.write_chrome_trace("trace_fleet.json", tracer)
    print(obs.trace_digest(tracer))

``obs.TRACER`` always names the currently-bound tracer (the shared
:data:`NULL_TRACER` when disabled); instrumented hot paths hoist it once
per call and guard inner loops with ``tracer.enabled``.
"""

from repro.obs.export import (chrome_trace_events, metrics_rows,
                              metrics_snapshot, trace_digest,
                              write_chrome_trace)
from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry)
from repro.obs.overhead import best_of, measure_overhead
from repro.obs.propagate import OBS_STATE_VERSION, export_state, merge_state
from repro.obs.tracer import (NULL_SPAN, NULL_TRACER, VIRTUAL, WALL,
                              NullTracer, SpanEvent, Tracer, disable,
                              enable, tracing)
from repro.obs import tracer as _tracer_module

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "NULL_SPAN", "NULL_TRACER", "NullTracer", "OBS_STATE_VERSION",
    "SpanEvent", "TRACER", "Tracer", "VIRTUAL", "WALL",
    "best_of", "chrome_trace_events", "disable", "enable",
    "export_state", "measure_overhead", "merge_state", "metrics_rows",
    "metrics_snapshot", "trace_digest", "tracing", "write_chrome_trace",
]


def __getattr__(name):
    # ``TRACER`` is rebound by enable()/disable(); forward dynamically so
    # ``obs.TRACER`` never goes stale (PEP 562).
    if name == "TRACER":
        return _tracer_module.TRACER
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
