"""Span/event tracer with explicit clock domains.

The tracer records two kinds of time:

* **wall** spans — ``time.perf_counter`` seconds around compilation and
  pool work.  They describe this particular run of this particular
  machine and are excluded from conformance digests.
* **virtual** spans/events — deterministic simulated time (engine
  cycles, virtual-time ticks, frame indices) emitted from the
  deterministic event loops.  They are bit-reproducible across runs and
  across serial-vs-partitioned execution, and are the sole input to
  :func:`repro.obs.export.trace_digest`.

Hot paths are instrumented behind a no-op-when-disabled API: the module
global :data:`TRACER` is bound to the :data:`NULL_TRACER` singleton until
:func:`enable` swaps in an active :class:`Tracer`.  Instrumented code
hoists ``tracer = obs_tracer.TRACER`` once per call and guards inner
loops with ``if tracer.enabled:`` — when disabled this costs one
attribute load and a branch, with zero allocations per event.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from time import perf_counter
from typing import Dict, Iterator, Optional, Tuple, Union

from repro.obs.metrics import MetricsRegistry

WALL = "wall"
VIRTUAL = "virtual"

Number = Union[int, float]
ArgValue = Union[int, float, str]


class SpanEvent:
    """One trace event.  ``dur is None`` marks an instant event."""

    __slots__ = ("domain", "name", "category", "ts", "dur", "args", "track")

    def __init__(self, domain: str, name: str, category: str, ts: Number,
                 dur: Optional[Number] = None,
                 args: Optional[Dict[str, ArgValue]] = None,
                 track: str = "main") -> None:
        self.domain = domain
        self.name = name
        self.category = category
        self.ts = ts
        self.dur = dur
        self.args = args
        self.track = track

    def key(self) -> Tuple:
        """Canonical identity for digesting — ``track`` is excluded so the
        same virtual schedule hashes identically no matter which worker,
        partition, or thread emitted each event."""
        items = tuple(sorted(self.args.items())) if self.args else ()
        return (self.name, self.category, self.ts,
                -1 if self.dur is None else self.dur, items)

    def __repr__(self) -> str:
        return (f"SpanEvent({self.domain!r}, {self.name!r}, "
                f"{self.category!r}, ts={self.ts!r}, dur={self.dur!r}, "
                f"args={self.args!r}, track={self.track!r})")


class _NullSpan:
    """Singleton no-op context manager returned by every disabled span
    call — identity-checked by the tier-1 overhead tests."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc_value, exc_tb) -> bool:
        return False


NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracer: every method is a fixed-signature no-op that
    allocates nothing and returns a shared singleton where a context
    manager is expected."""

    __slots__ = ()

    enabled = False

    def count(self, name: str, value: int = 1) -> None:
        return None

    def gauge(self, name: str, value: Number) -> None:
        return None

    def observe(self, name: str, value: Number) -> None:
        return None

    def virtual_event(self, name, category, ts, args=None) -> None:
        return None

    def virtual_span(self, name, category, ts, dur, args=None) -> None:
        return None

    def wall_event(self, name, category, args=None) -> None:
        return None

    def wall_span_at(self, name, category, start, dur, args=None) -> None:
        return None

    def wall_span(self, name: str, category: str, args=None) -> _NullSpan:
        return NULL_SPAN

    def track_scope(self, label: str) -> _NullSpan:
        return NULL_SPAN

    def events(self) -> Tuple[SpanEvent, ...]:
        return ()

    def clear(self) -> None:
        return None


class Tracer:
    """Active tracer: lock-guarded event list + typed metrics registry.

    Thread-safe — GOP thread strategies and partition workers append
    concurrently; ``track_scope`` labels are thread-local so concurrent
    scopes never bleed into each other.
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._events: list = []
        self._local = threading.local()
        self.metrics = MetricsRegistry()

    # -- track labels -------------------------------------------------
    def _track(self) -> str:
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else "main"

    @contextmanager
    def track_scope(self, label: str) -> Iterator["Tracer"]:
        """Attribute events emitted inside the scope to ``label`` (shown
        as a Chrome-trace thread lane; excluded from digests)."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        stack.append(label)
        try:
            yield self
        finally:
            stack.pop()

    # -- metrics ------------------------------------------------------
    def count(self, name: str, value: int = 1) -> None:
        self.metrics.counter(name).increment(value)

    def gauge(self, name: str, value: Number) -> None:
        self.metrics.gauge(name).set(value)

    def observe(self, name: str, value: Number) -> None:
        self.metrics.histogram(name).observe(value)

    # -- virtual clock domain -----------------------------------------
    def virtual_event(self, name, category, ts, args=None) -> None:
        event = SpanEvent(VIRTUAL, name, category, ts, None, args,
                          self._track())
        with self._lock:
            self._events.append(event)

    def virtual_span(self, name, category, ts, dur, args=None) -> None:
        event = SpanEvent(VIRTUAL, name, category, ts, dur, args,
                          self._track())
        with self._lock:
            self._events.append(event)

    # -- wall clock domain --------------------------------------------
    def wall_event(self, name, category, args=None) -> None:
        event = SpanEvent(WALL, name, category, perf_counter(), None, args,
                          self._track())
        with self._lock:
            self._events.append(event)

    def wall_span_at(self, name, category, start, dur, args=None) -> None:
        """Record a wall span from an already-measured interval (the flow
        pipeline measures stage timings anyway — no double clocking)."""
        event = SpanEvent(WALL, name, category, start, dur, args,
                          self._track())
        with self._lock:
            self._events.append(event)

    @contextmanager
    def wall_span(self, name: str, category: str, args=None) -> Iterator["Tracer"]:
        start = perf_counter()
        try:
            yield self
        finally:
            self.wall_span_at(name, category, start, perf_counter() - start,
                              args)

    # -- access / merge ------------------------------------------------
    def events(self) -> Tuple[SpanEvent, ...]:
        with self._lock:
            return tuple(self._events)

    def extend(self, events) -> None:
        with self._lock:
            self._events.extend(events)

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
        self.metrics.clear()


NULL_TRACER = NullTracer()

#: The tracer consulted by every instrumented hot path.  Rebound (never
#: mutated in place) by :func:`enable` / :func:`disable`.
TRACER: Union[NullTracer, Tracer] = NULL_TRACER


def enable() -> Tracer:
    """Swap in an active tracer (idempotent — an already-active tracer
    is kept, preserving its events)."""
    global TRACER
    if TRACER.enabled:
        return TRACER  # type: ignore[return-value]
    TRACER = Tracer()
    return TRACER


def disable() -> None:
    """Swap the null tracer back in.  Any reference obtained from
    :func:`enable` stays valid for export."""
    global TRACER
    TRACER = NULL_TRACER


@contextmanager
def tracing() -> Iterator[Tracer]:
    """Enable tracing for the duration of the block, restoring the
    previous binding afterwards."""
    global TRACER
    previous = TRACER
    active = previous if previous.enabled else Tracer()
    TRACER = active
    try:
        yield active  # type: ignore[misc]
    finally:
        TRACER = previous
