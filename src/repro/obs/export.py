"""Exporters: Chrome trace-event JSON, flat metric rows, trace digest.

* :func:`write_chrome_trace` emits the Chrome trace-event format that
  both ``chrome://tracing`` and Perfetto load: ``X`` complete events for
  spans, ``i`` instants for point events, with one synthetic process per
  clock domain and one thread lane per track label.
* :func:`trace_digest` hashes only the **virtual** clock domain, sorted
  canonically with track labels excluded — the digest is therefore
  identical for serial, threaded, multiprocess, and partitioned
  executions of the same deterministic schedule, no matter the
  interleaving in which events were recorded.
* :func:`metrics_rows` flattens the registry for
  :func:`repro.reporting.format_table`.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Union

from repro.obs.tracer import VIRTUAL, WALL, NullTracer, Tracer

TracerLike = Union[Tracer, NullTracer]

_WALL_PID = 1
_VIRTUAL_PID = 2
_DOMAIN_PIDS = {WALL: _WALL_PID, VIRTUAL: _VIRTUAL_PID}


def trace_digest(tracer: TracerLike) -> str:
    """SHA-256 over the canonicalized virtual-domain events."""
    keys = sorted(event.key() for event in tracer.events()
                  if event.domain == VIRTUAL)
    payload = "\n".join(repr(key) for key in keys)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def chrome_trace_events(tracer: TracerLike) -> List[Dict]:
    """Render events as Chrome trace-event dicts.

    Wall timestamps are normalized to the earliest wall event and scaled
    seconds→µs; virtual timestamps map one simulated cycle/tick to 1 µs
    so both domains get readable zoom levels in the viewer.
    """
    events = tracer.events()
    out: List[Dict] = [
        {"name": "process_name", "ph": "M", "pid": _WALL_PID, "tid": 0,
         "args": {"name": "wall clock"}},
        {"name": "process_name", "ph": "M", "pid": _VIRTUAL_PID, "tid": 0,
         "args": {"name": "virtual time"}},
    ]
    wall_starts = [event.ts for event in events if event.domain == WALL]
    wall_zero = min(wall_starts) if wall_starts else 0.0

    tracks: Dict[str, int] = {}
    for event in events:
        tid = tracks.get(event.track)
        if tid is None:
            tid = tracks[event.track] = len(tracks) + 1
        pid = _DOMAIN_PIDS[event.domain]
        if event.domain == WALL:
            ts = (event.ts - wall_zero) * 1e6
            dur = None if event.dur is None else event.dur * 1e6
        else:
            ts = float(event.ts)
            dur = None if event.dur is None else float(event.dur)
        rendered: Dict = {"name": event.name, "cat": event.category,
                          "pid": pid, "tid": tid, "ts": ts}
        if dur is None:
            rendered["ph"] = "i"
            rendered["s"] = "t"
        else:
            rendered["ph"] = "X"
            rendered["dur"] = dur
        if event.args:
            rendered["args"] = dict(event.args)
        out.append(rendered)

    for label, tid in sorted(tracks.items(), key=lambda item: item[1]):
        for pid in (_WALL_PID, _VIRTUAL_PID):
            out.append({"name": "thread_name", "ph": "M", "pid": pid,
                        "tid": tid, "args": {"name": label}})
    return out


def write_chrome_trace(path: Union[str, Path], tracer: TracerLike) -> Path:
    """Write a ``chrome://tracing`` / Perfetto loadable JSON file."""
    path = Path(path)
    document = {"traceEvents": chrome_trace_events(tracer),
                "displayTimeUnit": "ms"}
    path.write_text(json.dumps(document, indent=1) + "\n")
    return path


def metrics_snapshot(tracer: TracerLike) -> Dict[str, Dict]:
    """Structured counters/gauges/histogram-summaries snapshot."""
    if not tracer.enabled:
        return {"counters": {}, "gauges": {}, "histograms": {}}
    return tracer.metrics.snapshot()


def metrics_rows(tracer: TracerLike) -> List[Dict[str, object]]:
    """Flatten the registry into rows for ``reporting.format_table``."""
    snapshot = metrics_snapshot(tracer)
    rows: List[Dict[str, object]] = []
    for name, value in snapshot["counters"].items():
        rows.append({"metric": name, "kind": "counter", "value": value})
    for name, value in snapshot["gauges"].items():
        rows.append({"metric": name, "kind": "gauge", "value": value})
    for name, summary in snapshot["histograms"].items():
        row: Dict[str, object] = {"metric": name, "kind": "histogram"}
        row.update(summary)
        rows.append(row)
    return rows
