"""Cross-process trace propagation.

``repro.par`` pool workers run in spawned processes with their own
module globals: a tracer enabled in the parent does not exist there.
The pool passes an ``obs_on`` flag to each shard; the worker enables its
local tracer, runs the task, then drains events + metrics into a plain
picklable state dict (:func:`export_state`) shipped back alongside the
payload.  The parent folds every shard's state into its own tracer with
:func:`merge_state`, yielding one merged trace whose virtual-domain
digest is identical to the serial run's.

State dicts are version-tagged like ``FlowCache.export_state`` so a
parent never silently merges an incompatible layout.
"""

from __future__ import annotations

from typing import Dict

from repro.obs.tracer import SpanEvent, Tracer

OBS_STATE_VERSION = 1


def export_state(tracer: Tracer) -> Dict:
    """Snapshot a tracer into a plain picklable dict."""
    return {
        "version": OBS_STATE_VERSION,
        "events": [
            (event.domain, event.name, event.category, event.ts,
             event.dur, event.args, event.track)
            for event in tracer.events()
        ],
        "metrics": tracer.metrics.export_state(),
    }


def merge_state(tracer: Tracer, state: Dict) -> None:
    """Fold an exported state into ``tracer`` (events append, counters
    add, histogram samples concatenate)."""
    version = state.get("version")
    if version != OBS_STATE_VERSION:
        raise ValueError(
            f"incompatible obs state version {version!r}; "
            f"expected {OBS_STATE_VERSION}")
    tracer.extend(SpanEvent(*fields) for fields in state["events"])
    tracer.metrics.merge_state(state["metrics"])
