"""Shared machinery for the deprecated pre-flow entry points."""

from __future__ import annotations

import warnings


def warn_deprecated(old: str, new: str, stacklevel: int = 3) -> None:
    """Emit the repository's standard deprecation warning.

    ``stacklevel`` must point at the *caller of the deprecated entry point*:
    3 for module-level functions that call this helper directly, one more
    for every additional layer of indirection.
    """
    warnings.warn(
        f"{old} is deprecated; use {new} instead",
        DeprecationWarning, stacklevel=stacklevel)


def legacy_flow(run_place_and_route: bool = True):
    """The pipeline the pre-flow entry points effectively ran.

    Place + route + metrics only — no bitstream or verification passes,
    whose results the legacy result shapes cannot carry.
    """
    from repro.flow import Flow, GreedyPlacePass, MetricsPass, RoutePass

    if not run_place_and_route:
        return Flow([MetricsPass()], name="legacy-estimate")
    return Flow([GreedyPlacePass(), RoutePass(), MetricsPass()], name="legacy")
