"""Generic fine-grain FPGA baseline cost model.

The paper's headline numbers are *relative* to a generic island-style
FPGA: the ME array of [1] gives a 75 % power reduction, 45 % area
reduction and 23 % timing improvement; the DA array of [2] gives 38 %
power, 14 % area and a 54 % lower maximum operating frequency.  To
regenerate those comparisons we need a model of what the same netlist
costs when built out of 4-input LUTs, flip-flops and a 1-bit segmented
routing fabric.

The model is analytic: every cluster kind expands into a number of 4-LUT /
flip-flop pairs per 4-bit datapath element (standard technology-mapping
results for ripple adders, absolute-difference units, comparators and
multiplexers), memories map onto LUT-RAM, and the routing fabric adds the
well-known fine-grain interconnect overhead in area, delay and switched
capacitance.  The per-kind expansion factors are documented constants, so
the comparison benchmarks exercise the whole mapping flow rather than
quoting the paper's ratios back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.clusters import ClusterKind, elements_for_width
from repro.core.metrics import HOP_DELAY
from repro.core.netlist import Netlist
from repro.core.router import RoutingResult

#: 4-input LUTs needed per 4-bit element of each operation when technology
#: mapped onto a generic FPGA (ripple-carry structures; one LUT per output
#: bit for arithmetic, two for absolute-difference because of the
#: conditional negation, half for a 2:1 mux pair packed two-per-LUT).
LUTS_PER_ELEMENT: Dict[ClusterKind, float] = {
    ClusterKind.REGISTER_MUX: 2.0,
    ClusterKind.ABS_DIFF: 8.0,
    ClusterKind.ADD_ACC: 6.0,
    ClusterKind.COMPARATOR: 5.0,
    ClusterKind.ADD_SHIFT: 5.0,
    ClusterKind.MEMORY: 4.0,
}

#: LUTs per ROM/LUT memory bit when the contents live in LUT-RAM
#: (16 bits of storage per 4-input LUT).
LUTS_PER_MEMORY_BIT = 1.0 / 16.0

#: Area of one LUT + flip-flop tile, in the same 4-bit-element units used
#: by :mod:`repro.core.metrics` (one coarse element is roughly the size of
#: 1.4 LUT tiles before interconnect).
LUT_TILE_AREA_ELEMENTS = 0.7

#: Fine-grain routing multiplies the logic area: in island-style FPGAs the
#: programmable interconnect occupies 70–80 % of the tile.
FPGA_ROUTING_AREA_FACTOR = 3.4

#: Combinational delay through one LUT plus its local routing, in the same
#: delay units as :data:`repro.core.metrics.CLUSTER_DELAY`.
LUT_DELAY = 0.55

#: Average number of LUT levels needed to realise one cluster-level
#: operation of each kind (depth of the mapped logic cone).
LUT_LEVELS: Dict[ClusterKind, float] = {
    ClusterKind.REGISTER_MUX: 1.0,
    ClusterKind.ABS_DIFF: 4.0,
    ClusterKind.ADD_ACC: 3.0,
    ClusterKind.COMPARATOR: 3.0,
    ClusterKind.ADD_SHIFT: 1.6,
    ClusterKind.MEMORY: 1.2,
}

#: A routed hop on a 1-bit fine-grain fabric passes more switch stages than
#: the byte-wide tracks of the domain-specific mesh.
FPGA_HOP_DELAY = HOP_DELAY * 1.6

#: Switched capacitance per LUT per unit activity (arbitrary charge units).
LUT_SWITCHED_CAP = 1.0

#: Extra switched capacitance of the fine-grain interconnect, relative to
#: the logic itself: every signal toggling drags long segmented wires and
#: pass-transistor switches with it.
FPGA_INTERCONNECT_CAP_FACTOR = 2.6


@dataclass
class FPGAImplementation:
    """Cost of a netlist technology-mapped onto the generic FPGA baseline."""

    netlist_name: str
    lut_count: float
    flip_flop_count: float
    area_elements: float
    critical_path_delay: float
    switched_capacitance_per_cycle: float

    @property
    def max_frequency(self) -> float:
        """Reciprocal of the critical path (arbitrary frequency units)."""
        if self.critical_path_delay <= 0:
            return float("inf")
        return 1.0 / self.critical_path_delay


def map_to_fpga(netlist: Netlist, activity: float = 0.25,
                routing: RoutingResult = None) -> FPGAImplementation:
    """Technology-map a netlist onto the generic FPGA baseline.

    Parameters
    ----------
    netlist:
        The dataflow graph to map; the same object handed to the
        domain-specific placer, so both implementations realise the same
        function.
    activity:
        Average switching activity (probability a signal bit toggles in a
        cycle); the same value must be used for the domain-specific cost so
        the ratio isolates the architecture.
    routing:
        Optional routed result on the domain-specific fabric; when given,
        the FPGA routing delay uses the same hop counts scaled by the
        fine-grain hop penalty, otherwise an average fan-out distance is
        assumed.
    """
    lut_count = 0.0
    flip_flop_count = 0.0
    for node in netlist.nodes:
        elements = elements_for_width(node.width_bits)
        lut_count += LUTS_PER_ELEMENT[node.kind] * elements
        flip_flop_count += node.width_bits
        if node.kind is ClusterKind.MEMORY and node.depth_words > 0:
            lut_count += node.depth_words * node.width_bits * LUTS_PER_MEMORY_BIT

    area = lut_count * LUT_TILE_AREA_ELEMENTS * FPGA_ROUTING_AREA_FACTOR

    # Critical path: follow the same topological longest path as the
    # domain-specific timing model, but with LUT-level depths and the
    # fine-grain hop penalty.
    hop_delays: Dict[str, float] = {}
    if routing is not None:
        for route in routing.routes:
            hop_delays[route.net_name] = route.hop_count * FPGA_HOP_DELAY

    arrival: Dict[str, float] = {}
    for node in netlist.topological_order():
        incoming = 0.0
        for net in netlist.fanin(node.name):
            if net.source == net.sink:
                continue
            source_arrival = arrival.get(net.source, 0.0)
            incoming = max(incoming,
                           source_arrival + hop_delays.get(net.name, FPGA_HOP_DELAY))
        arrival[node.name] = incoming + LUT_LEVELS[node.kind] * LUT_DELAY
    delay = max(arrival.values()) if arrival else 0.0

    switched_cap = (lut_count * LUT_SWITCHED_CAP * activity
                    * (1.0 + FPGA_INTERCONNECT_CAP_FACTOR))
    return FPGAImplementation(
        netlist_name=netlist.name,
        lut_count=lut_count,
        flip_flop_count=flip_flop_count,
        area_elements=area,
        critical_path_delay=delay,
        switched_capacitance_per_cycle=switched_cap,
    )
