"""Reconfigurable System-on-Chip wrapper (Fig. 1 of the paper).

The SoC connects a host processor / DSP with the domain-specific
reconfigurable arrays over an on-chip bus; a controller in the processor
generates addresses and streams configuration bitstreams into the arrays.
This module models that glue: it owns the array fabrics, runs the mapping
flow (place, route, bitstream generation) for a kernel, keeps track of
which configuration each array currently holds, and accounts for the
reconfiguration traffic and time — which is what makes the dynamic
reconfiguration argument of Sec. 5 (switching implementations on
low-battery or noisy-channel conditions) measurable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.clusters import ClusterKind
from repro.core.configuration import (
    ChannelConfiguration,
    ClusterConfiguration,
    ConfigurationBitstream,
)
from repro.core.exceptions import ConfigurationError, MappingError
from repro.core.fabric import Fabric
from repro.core.mapper import AnnealingPlacer, GreedyPlacer, Placement
from repro.core.netlist import Netlist
from repro.core.router import MeshRouter, RoutingResult


@dataclass
class MappedKernel:
    """A kernel mapped onto one of the SoC's arrays, ready to be loaded."""

    netlist: Netlist
    array_name: str
    placement: Placement
    routing: RoutingResult
    bitstream: ConfigurationBitstream

    @property
    def name(self) -> str:
        """Kernel name (the netlist name)."""
        return self.netlist.name


@dataclass
class ReconfigurationEvent:
    """One reconfiguration of an array recorded by the SoC controller."""

    array_name: str
    kernel_name: str
    bitstream_bits: int
    cycles: int


class ReconfigurableSoC:
    """Host-side model of the reconfigurable platform.

    Parameters
    ----------
    configuration_bus_bits:
        Width of the bus the controller uses to stream bitstreams into the
        arrays; reconfiguration latency is ``bits / bus width`` cycles.
    use_annealing:
        Refine placements with simulated annealing (slower, better
        wirelength) instead of stopping at the greedy placement.
    """

    def __init__(self, configuration_bus_bits: int = 32,
                 use_annealing: bool = False, seed: int = 0) -> None:
        if configuration_bus_bits <= 0:
            raise ConfigurationError("configuration bus width must be positive")
        self.configuration_bus_bits = configuration_bus_bits
        self.use_annealing = use_annealing
        self.seed = seed
        self._arrays: Dict[str, Fabric] = {}
        self._loaded: Dict[str, Optional[MappedKernel]] = {}
        self.reconfiguration_log: List[ReconfigurationEvent] = []

    # -- array management ----------------------------------------------------
    def attach_array(self, fabric: Fabric) -> None:
        """Add a domain-specific array to the SoC."""
        if fabric.name in self._arrays:
            raise ConfigurationError(f"array {fabric.name!r} already attached")
        self._arrays[fabric.name] = fabric
        self._loaded[fabric.name] = None

    def array(self, name: str) -> Fabric:
        """Look an attached array up by name."""
        try:
            return self._arrays[name]
        except KeyError:
            raise ConfigurationError(f"no array named {name!r} attached") from None

    @property
    def array_names(self) -> List[str]:
        """Names of all attached arrays."""
        return list(self._arrays)

    def loaded_kernel(self, array_name: str) -> Optional[MappedKernel]:
        """Kernel currently configured on an array, or ``None``."""
        self.array(array_name)
        return self._loaded[array_name]

    # -- mapping flow -----------------------------------------------------------
    def map_kernel(self, netlist: Netlist, array_name: str) -> MappedKernel:
        """Place, route, verify and generate the bitstream for a kernel.

        Raises :class:`repro.core.exceptions.CapacityError` when the kernel
        does not fit, :class:`repro.core.exceptions.RoutingError` when the
        mesh is too congested, and :class:`repro.core.exceptions.MappingError`
        if the design-rule checks reject the mapped result (which would
        indicate a flow bug rather than a user error).
        """
        from repro.core.verification import verify_mapped_design

        fabric = self.array(array_name)
        if self.use_annealing:
            placement = AnnealingPlacer(fabric, seed=self.seed).place(netlist)
        else:
            placement = GreedyPlacer(fabric).place(netlist)
        routing = MeshRouter(fabric).route(netlist, placement)
        report = verify_mapped_design(fabric, netlist, placement, routing)
        if not report.passed:
            raise MappingError(
                f"mapping of {netlist.name!r} onto {array_name!r} failed "
                f"design-rule checks: " + "; ".join(report.violations[:5]))
        bitstream = self._build_bitstream(netlist, fabric, placement, routing)
        return MappedKernel(netlist, array_name, placement, routing, bitstream)

    def _build_bitstream(self, netlist: Netlist, fabric: Fabric,
                         placement: Placement,
                         routing: RoutingResult) -> ConfigurationBitstream:
        bitstream = ConfigurationBitstream(fabric.name)
        for node in netlist.nodes:
            rom: tuple = ()
            if node.kind is ClusterKind.MEMORY and node.depth_words > 0:
                rom = tuple([0] * node.depth_words)
            bitstream.add_cluster(ClusterConfiguration(
                position=placement.position_of(node.name),
                kind=node.kind,
                mode=node.role or node.kind.value,
                rom_contents=rom,
                rom_word_bits=node.width_bits,
            ))
        for route in routing.routes:
            if route.hop_count == 0:
                continue
            lanes = max(1, -(-route.width_bits // 8)) if route.width_bits > 2 else route.width_bits
            bitstream.add_channel(ChannelConfiguration(
                endpoints=(route.path[0], route.path[-1]),
                coarse_switches_on=route.hop_count * lanes if route.width_bits > 2 else 0,
                fine_switches_on=route.hop_count * lanes if route.width_bits <= 2 else 0,
            ))
        return bitstream

    def load(self, kernel: MappedKernel) -> ReconfigurationEvent:
        """Stream a mapped kernel's bitstream into its array.

        Returns the reconfiguration event (bits transferred, cycles taken)
        and records it in :attr:`reconfiguration_log`.
        """
        self.array(kernel.array_name)
        event = ReconfigurationEvent(
            array_name=kernel.array_name,
            kernel_name=kernel.name,
            bitstream_bits=kernel.bitstream.total_bits(),
            cycles=kernel.bitstream.reconfiguration_cycles(self.configuration_bus_bits),
        )
        self._loaded[kernel.array_name] = kernel
        self.reconfiguration_log.append(event)
        return event

    def map_and_load(self, netlist: Netlist, array_name: str) -> MappedKernel:
        """Convenience: map a kernel and immediately load it."""
        kernel = self.map_kernel(netlist, array_name)
        self.load(kernel)
        return kernel

    # -- accounting ---------------------------------------------------------------
    def total_reconfiguration_cycles(self) -> int:
        """Cycles spent reconfiguring arrays since the SoC was created."""
        return sum(event.cycles for event in self.reconfiguration_log)

    def total_reconfiguration_bits(self) -> int:
        """Configuration bits streamed since the SoC was created."""
        return sum(event.bitstream_bits for event in self.reconfiguration_log)

    def reconfiguration_count(self, array_name: Optional[str] = None) -> int:
        """Number of reconfigurations, optionally filtered by array."""
        if array_name is None:
            return len(self.reconfiguration_log)
        return sum(1 for event in self.reconfiguration_log
                   if event.array_name == array_name)
