"""Reconfigurable System-on-Chip wrapper (Fig. 1 of the paper).

The SoC connects a host processor / DSP with the domain-specific
reconfigurable arrays over an on-chip bus; a controller in the processor
generates addresses and streams configuration bitstreams into the arrays.
This module models that glue: it owns the array fabrics, compiles kernels
through the unified :mod:`repro.flow` pipeline, keeps track of which
configuration each array currently holds, and accounts for the
reconfiguration traffic and time — which is what makes the dynamic
reconfiguration argument of Sec. 5 (switching implementations on
low-battery or noisy-channel conditions) measurable.

The flow-native surface is :meth:`ReconfigurableSoC.compile` /
:meth:`ReconfigurableSoC.compile_and_load`, which return
:class:`~repro.flow.pipeline.FlowResult`.  The pre-flow entry points
(:meth:`map_kernel`, :meth:`map_and_load`) remain as deprecation shims.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from repro._compat import warn_deprecated
from repro.core.configuration import ConfigurationBitstream
from repro.core.exceptions import ConfigurationError
from repro.core.fabric import Fabric
from repro.core.mapper import Placement
from repro.core.netlist import Netlist
from repro.core.router import RoutingResult
from repro.flow import Flow, FlowResult, as_design


@dataclass
class MappedKernel:
    """A kernel mapped onto one of the SoC's arrays, ready to be loaded."""

    netlist: Netlist
    array_name: str
    placement: Placement
    routing: RoutingResult
    bitstream: ConfigurationBitstream

    @property
    def name(self) -> str:
        """Kernel name (the netlist name)."""
        return self.netlist.name


@dataclass
class ReconfigurationEvent:
    """One reconfiguration of an array recorded by the SoC controller."""

    array_name: str
    kernel_name: str
    bitstream_bits: int
    cycles: int


class ReconfigurableSoC:
    """Host-side model of the reconfigurable platform.

    Parameters
    ----------
    configuration_bus_bits:
        Width of the bus the controller uses to stream bitstreams into the
        arrays; reconfiguration latency is ``bits / bus width`` cycles.
    use_annealing:
        Refine placements with simulated annealing (slower, better
        wirelength) instead of stopping at the greedy placement.  This
        selects the annealing placement pass in the compile flow.
    """

    def __init__(self, configuration_bus_bits: int = 32,
                 use_annealing: bool = False, seed: int = 0) -> None:
        if configuration_bus_bits <= 0:
            raise ConfigurationError("configuration bus width must be positive")
        self.configuration_bus_bits = configuration_bus_bits
        self.use_annealing = use_annealing
        self.seed = seed
        self._arrays: Dict[str, Fabric] = {}
        self._loaded: Dict[str, Optional[Union[MappedKernel, FlowResult]]] = {}
        self.reconfiguration_log: List[ReconfigurationEvent] = []

    # -- array management ----------------------------------------------------
    def attach_array(self, fabric: Fabric) -> None:
        """Add a domain-specific array to the SoC."""
        if fabric.name in self._arrays:
            raise ConfigurationError(f"array {fabric.name!r} already attached")
        self._arrays[fabric.name] = fabric
        self._loaded[fabric.name] = None

    def array(self, name: str) -> Fabric:
        """Look an attached array up by name."""
        try:
            return self._arrays[name]
        except KeyError:
            raise ConfigurationError(f"no array named {name!r} attached") from None

    @property
    def array_names(self) -> List[str]:
        """Names of all attached arrays."""
        return list(self._arrays)

    def loaded_kernel(self, array_name: str) -> Optional[Union[MappedKernel, FlowResult]]:
        """Kernel currently configured on an array, or ``None``."""
        self.array(array_name)
        return self._loaded[array_name]

    # -- compile flow --------------------------------------------------------
    def flow(self) -> Flow:
        """The compile pipeline this SoC instance runs kernels through."""
        placer = "annealing" if self.use_annealing else "greedy"
        return Flow.default(placer=placer, seed=self.seed)

    def compile(self, design, array_name: Optional[str] = None) -> FlowResult:
        """Compile a design (or bare netlist) onto one of the attached arrays.

        ``array_name`` defaults to the design's own ``target_array``.
        Raises :class:`repro.core.exceptions.CapacityError` when the kernel
        does not fit, :class:`repro.core.exceptions.RoutingError` when the
        mesh is too congested, and :class:`repro.core.exceptions.MappingError`
        if the design-rule checks reject the mapped result (which would
        indicate a flow bug rather than a user error).
        """
        design = as_design(design, target_array=array_name)
        fabric = self.array(array_name or design.target_array)
        return self.flow().compile(design, fabric=fabric)

    def load(self, kernel: Union[MappedKernel, FlowResult]) -> ReconfigurationEvent:
        """Stream a compiled kernel's bitstream into its array.

        Accepts either a legacy :class:`MappedKernel` or a
        :class:`~repro.flow.pipeline.FlowResult`; returns the
        reconfiguration event (bits transferred, cycles taken) and records
        it in :attr:`reconfiguration_log`.
        """
        if isinstance(kernel, FlowResult):
            array_name, kernel_name = kernel.fabric_name, kernel.design_name
        else:
            array_name, kernel_name = kernel.array_name, kernel.name
        self.array(array_name)
        if kernel.bitstream is None:
            raise ConfigurationError(
                f"kernel {kernel_name!r} has no bitstream to load; compile it "
                f"with a flow that includes the bitstream pass")
        event = ReconfigurationEvent(
            array_name=array_name,
            kernel_name=kernel_name,
            bitstream_bits=kernel.bitstream.total_bits(),
            cycles=kernel.bitstream.reconfiguration_cycles(self.configuration_bus_bits),
        )
        self._loaded[array_name] = kernel
        self.reconfiguration_log.append(event)
        return event

    def compile_and_load(self, design,
                         array_name: Optional[str] = None) -> FlowResult:
        """Convenience: compile a design and immediately load it."""
        result = self.compile(design, array_name)
        self.load(result)
        return result

    # -- deprecated pre-flow entry points ------------------------------------
    def _legacy_kernel(self, netlist: Netlist, array_name: str) -> MappedKernel:
        result = self.compile(netlist, array_name)
        return MappedKernel(result.netlist, array_name, result.placement,
                            result.routing, result.bitstream)

    def map_kernel(self, netlist: Netlist, array_name: str) -> MappedKernel:
        """Deprecated: place, route, verify and generate a kernel bitstream.

        Use :meth:`compile`, which returns a
        :class:`~repro.flow.pipeline.FlowResult`.
        """
        warn_deprecated("ReconfigurableSoC.map_kernel",
                        "ReconfigurableSoC.compile", stacklevel=3)
        return self._legacy_kernel(netlist, array_name)

    def map_and_load(self, netlist: Netlist, array_name: str) -> MappedKernel:
        """Deprecated: map a kernel and immediately load it.

        Use :meth:`compile_and_load`.
        """
        warn_deprecated("ReconfigurableSoC.map_and_load",
                        "ReconfigurableSoC.compile_and_load", stacklevel=3)
        kernel = self._legacy_kernel(netlist, array_name)
        self.load(kernel)
        return kernel

    # -- accounting ---------------------------------------------------------------
    def total_reconfiguration_cycles(self) -> int:
        """Cycles spent reconfiguring arrays since the SoC was created."""
        return sum(event.cycles for event in self.reconfiguration_log)

    def total_reconfiguration_bits(self) -> int:
        """Configuration bits streamed since the SoC was created."""
        return sum(event.bitstream_bits for event in self.reconfiguration_log)

    def reconfiguration_count(self, array_name: Optional[str] = None) -> int:
        """Number of reconfigurations, optionally filtered by array."""
        if array_name is None:
            return len(self.reconfiguration_log)
        return sum(1 for event in self.reconfiguration_log
                   if event.array_name == array_name)
