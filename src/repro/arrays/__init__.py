"""Domain-specific array definitions, the FPGA baseline and the SoC wrapper."""

from repro.arrays.da_array import (
    ADD_SHIFT_BITS,
    DAArrayGeometry,
    MEMORY_DEPTH_WORDS,
    MEMORY_WORD_BITS,
    build_da_array,
)
from repro.arrays.dsp_baseline import DSPModel
from repro.arrays.fpga_baseline import FPGAImplementation, map_to_fpga
from repro.arrays.me_array import (
    MEArrayGeometry,
    PIXEL_BITS,
    SAD_BITS,
    build_me_array,
)
from repro.arrays.soc import MappedKernel, ReconfigurableSoC, ReconfigurationEvent

__all__ = [
    "ADD_SHIFT_BITS",
    "DAArrayGeometry",
    "MEMORY_DEPTH_WORDS",
    "MEMORY_WORD_BITS",
    "build_da_array",
    "DSPModel",
    "FPGAImplementation",
    "map_to_fpga",
    "MEArrayGeometry",
    "PIXEL_BITS",
    "SAD_BITS",
    "build_me_array",
    "MappedKernel",
    "ReconfigurableSoC",
    "ReconfigurationEvent",
]
