"""The domain-specific reconfigurable array for Distributed Arithmetic (Fig. 3).

The DA array (Sec. 2.2) provides two cluster kinds: Add-Shift clusters
(addition, subtraction, shifting and shift-accumulation — also usable as
parallel-to-serial shift registers) and Memory clusters (LUT/ROM with
configurable geometry).  It is the target of all five DCT implementations
of Sec. 3; the default geometry is sized so the largest of them (CORDIC #1
at 48 clusters, Table 1) fits with room to spare.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.clusters import ClusterKind, ClusterSpec
from repro.core.fabric import Fabric
from repro.core.interconnect import MeshSpec

#: Width of the Add-Shift datapath: 16-bit shift-accumulators (Fig. 4).
ADD_SHIFT_BITS = 16
#: Word width of the memory clusters (8-bit ROM words, Fig. 4).
MEMORY_WORD_BITS = 8
#: Depth of one physical memory cluster.  Deeper ROMs (the 256-word LUTs of
#: Figs. 4 and 9) still occupy a single memory cluster because the cluster
#: geometry is configurable; the extra bits show up in the area model, not
#: in the cluster count — consistent with Table 1 counting one "Mem-Cluster"
#: per LUT regardless of depth.
MEMORY_DEPTH_WORDS = 256


@dataclass(frozen=True)
class DAArrayGeometry:
    """Cluster mix of one DA array instance (vertical bands like Fig. 3)."""

    rows: int = 10
    add_shift_columns: int = 6
    memory_columns: int = 2

    @property
    def cols(self) -> int:
        """Total columns of the fabric."""
        return self.add_shift_columns + self.memory_columns

    def capacity(self) -> Dict[ClusterKind, int]:
        """Cluster sites per kind for this geometry."""
        return {
            ClusterKind.ADD_SHIFT: self.rows * self.add_shift_columns,
            ClusterKind.MEMORY: self.rows * self.memory_columns,
        }


def build_da_array(geometry: Optional[DAArrayGeometry] = None,
                   mesh_spec: Optional[MeshSpec] = None) -> Fabric:
    """Construct the DA/DCT fabric with the given (or default) geometry."""
    geometry = geometry or DAArrayGeometry()
    mesh_spec = mesh_spec or MeshSpec(coarse_tracks_per_channel=12,
                                      fine_tracks_per_channel=16)
    fabric = Fabric("da_array", geometry.rows, geometry.cols, mesh_spec)

    fabric.fill_column_band(0, geometry.add_shift_columns,
                            ClusterSpec(ClusterKind.ADD_SHIFT, ADD_SHIFT_BITS))
    fabric.fill_column_band(geometry.add_shift_columns, geometry.cols,
                            ClusterSpec(ClusterKind.MEMORY, MEMORY_WORD_BITS,
                                        MEMORY_DEPTH_WORDS))
    return fabric
