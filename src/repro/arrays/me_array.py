"""The domain-specific reconfigurable array for Motion Estimation (Fig. 2).

The ME array is a heterogeneous fabric providing four cluster kinds
(Sec. 2.1): Register-Multiplexer (MUX), Absolute-Difference (AD),
Adder/Accumulator (ADD/ACC) and Min/Max Comparator (COMP).  The default
geometry is sized so that the 4x16-PE systolic engine of Fig. 11 — plus
its comparator tree and the register-mux network that broadcasts the
search-area pixels — fits with head-room, mirroring how the physical
array of [1] was dimensioned for full-search block matching.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.clusters import ClusterKind, ClusterSpec
from repro.core.fabric import Fabric
from repro.core.interconnect import MeshSpec

#: Pixel datapath width (8-bit luminance values).
PIXEL_BITS = 8
#: SAD accumulator width: 16x16 blocks of 8-bit absolute differences need
#: 8 + log2(256) = 16 bits.
SAD_BITS = 16


@dataclass(frozen=True)
class MEArrayGeometry:
    """Cluster mix of one ME array instance.

    The counts are per column band; the fabric lays the bands out side by
    side like Fig. 2 (MUX | AD | ADD/ACC | COMP).
    """

    rows: int = 16
    mux_columns: int = 4
    abs_diff_columns: int = 5
    add_acc_columns: int = 6
    comparator_columns: int = 1

    @property
    def cols(self) -> int:
        """Total columns of the fabric."""
        return (self.mux_columns + self.abs_diff_columns
                + self.add_acc_columns + self.comparator_columns)

    def capacity(self) -> Dict[ClusterKind, int]:
        """Cluster sites per kind for this geometry."""
        return {
            ClusterKind.REGISTER_MUX: self.rows * self.mux_columns,
            ClusterKind.ABS_DIFF: self.rows * self.abs_diff_columns,
            ClusterKind.ADD_ACC: self.rows * self.add_acc_columns,
            ClusterKind.COMPARATOR: self.rows * self.comparator_columns,
        }


def build_me_array(geometry: Optional[MEArrayGeometry] = None,
                   mesh_spec: Optional[MeshSpec] = None) -> Fabric:
    """Construct the ME fabric with the given (or default) geometry.

    The default mesh uses byte-wide coarse tracks for the pixel and SAD
    buses plus single-bit tracks for the enables and select lines, exactly
    the two-level interconnect of Sec. 2.
    """
    geometry = geometry or MEArrayGeometry()
    mesh_spec = mesh_spec or MeshSpec(coarse_tracks_per_channel=6,
                                      fine_tracks_per_channel=8)
    fabric = Fabric("me_array", geometry.rows, geometry.cols, mesh_spec)

    col = 0
    fabric.fill_column_band(col, col + geometry.mux_columns,
                            ClusterSpec(ClusterKind.REGISTER_MUX, PIXEL_BITS))
    col += geometry.mux_columns
    fabric.fill_column_band(col, col + geometry.abs_diff_columns,
                            ClusterSpec(ClusterKind.ABS_DIFF, PIXEL_BITS))
    col += geometry.abs_diff_columns
    fabric.fill_column_band(col, col + geometry.add_acc_columns,
                            ClusterSpec(ClusterKind.ADD_ACC, SAD_BITS))
    col += geometry.add_acc_columns
    fabric.fill_column_band(col, col + geometry.comparator_columns,
                            ClusterSpec(ClusterKind.COMPARATOR, SAD_BITS))
    return fabric
