"""Programmable-DSP baseline cost model.

The introduction of the paper motivates the reconfigurable arrays by the
two conventional alternatives: programmable DSPs ("this leads to a high
operating frequency and increased power consumption of the system") and
hardwired ASICs (efficient but inflexible).  The FPGA baseline covers the
flexible-hardware corner; this module provides the DSP corner — a simple
cycle-count model of a single-MAC, load/store DSP executing the same
kernels in software — so the examples and benchmarks can report the clock
frequency and relative energy a DSP would need for the same real-time
workload.

The cycle counts follow the standard software formulations (row/column DCT
with multiply-accumulate inner loops, SAD loops with absolute-difference
and accumulate), with a configurable instruction-level-parallelism factor
to represent wider VLIW-style DSPs.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Instructions per multiply-accumulate including operand loads on a
#: single-MAC DSP (load x, load coefficient, MAC).
INSTRUCTIONS_PER_MAC = 3
#: Instructions per SAD point (load current, load reference, subtract-abs,
#: accumulate).
INSTRUCTIONS_PER_SAD_POINT = 4
#: Per-block loop and addressing overhead instructions.
BLOCK_OVERHEAD_INSTRUCTIONS = 32
#: Energy per DSP instruction relative to the switched capacitance of one
#: array cluster-cycle at equal activity (fetch + decode + register file +
#: datapath of a programmable core dominate).
ENERGY_PER_INSTRUCTION = 6.0


@dataclass(frozen=True)
class DSPModel:
    """A simple programmable-DSP execution model.

    Parameters
    ----------
    name:
        Label used in reports.
    macs_per_cycle:
        Sustained multiply-accumulate throughput (1 for a single-MAC DSP,
        higher for VLIW parts).
    """

    name: str = "single_mac_dsp"
    macs_per_cycle: float = 1.0

    def dct_8x8_cycles(self) -> int:
        """Cycles for one 8x8 DCT via row/column 8-point transforms.

        Each 8-point transform is 8 outputs x 8 MACs; an 8x8 block needs 16
        one-dimensional transforms plus per-block overhead.
        """
        macs = 16 * 8 * 8
        instructions = macs * INSTRUCTIONS_PER_MAC + BLOCK_OVERHEAD_INSTRUCTIONS
        return int(round(instructions / self.macs_per_cycle))

    def sad_16x16_cycles(self) -> int:
        """Cycles for one 16x16 SAD evaluation."""
        points = 16 * 16
        instructions = (points * INSTRUCTIONS_PER_SAD_POINT
                        + BLOCK_OVERHEAD_INSTRUCTIONS)
        return int(round(instructions / self.macs_per_cycle))

    def full_search_cycles(self, search_range: int = 8) -> int:
        """Cycles for an exhaustive +-``search_range`` macroblock search."""
        candidates = (2 * search_range) ** 2
        return candidates * self.sad_16x16_cycles()

    def macroblock_cycles(self, search_range: int = 8) -> int:
        """Cycles to motion-estimate and transform one macroblock (4 blocks)."""
        return self.full_search_cycles(search_range) + 4 * self.dct_8x8_cycles()

    def required_frequency_hz(self, frame_width: int = 176, frame_height: int = 144,
                              frames_per_second: float = 30.0,
                              search_range: int = 8) -> float:
        """Clock frequency needed for real-time encoding of the given format."""
        macroblocks = (frame_width // 16) * (frame_height // 16)
        return self.macroblock_cycles(search_range) * macroblocks * frames_per_second

    def energy_per_macroblock(self, search_range: int = 8) -> float:
        """Relative energy to process one macroblock (model units)."""
        return self.macroblock_cycles(search_range) * ENERGY_PER_INSTRUCTION
