"""repro — domain-specific reconfigurable arrays for mobile video.

Reproduction of "Efficient Implementations of Mobile Video Computations on
Domain-Specific Reconfigurable Arrays" (Khawam et al., DATE 2004): a
Python model of the cluster-based reconfigurable arrays, the mapping flow,
the five DCT implementations of Table 1 and the 2-D systolic
motion-estimation engine, plus the power/area/timing comparison against a
generic FPGA baseline.

Top-level subpackages
---------------------

``repro.serve``   the multi-tenant serving runtime: virtual-time job
                  scheduler over reconfigurable SoCs with kernel
                  residency, batched dispatch and admission control
``repro.flow``    the unified compile API: pass pipeline, result cache and
                  the ``compile()`` / ``compile_many()`` entry points every
                  kernel goes through
``repro.engine``  the batched vectorized execution runtime: compiled static
                  schedules over ``(B,)`` value arrays plus the numeric
                  kernels (batched SAD / DCT) the workloads build on
``repro.core``    cluster models, fabric, interconnect, placer, router,
                  scheduler, verification, metrics
``repro.arrays``  the ME and DA arrays, the FPGA baseline, the SoC wrapper
``repro.dct``     reference DCT and the mapped DCT implementations
``repro.me``      SAD, search algorithms and the 2-D systolic array
``repro.filters`` FIR and DWT kernels for the DA array
``repro.video``   synthetic sequences, macroblocks, encoder loop, PSNR
``repro.power``   switching activity and the array-vs-FPGA cost models
``repro.obs``     cross-cutting observability: wall/virtual clock-domain
                  tracer, typed metrics, Chrome-trace export, stable
                  trace digests, cross-process trace propagation
"""

__version__ = "0.1.0"

__all__ = ["__version__"]
