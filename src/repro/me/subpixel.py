"""Half-pixel motion-vector refinement.

MPEG-4 and H.263 refine the integer-pel motion vector to half-pel accuracy
around the best integer candidate; the interpolation is a bilinear average
of neighbouring reference pixels, which maps onto the ME array's
Adder/Accumulator clusters (two adds and a shift per interpolated pixel).
This module provides the refinement step on top of any integer-pel search
result, plus the cost accounting the search ablation uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.me.full_search import DEFAULT_BLOCK_SIZE, MotionVector, SearchResult
from repro.me.sad import sad
from repro.video.motion_compensation import predict_block

#: The eight half-pel offsets around the integer-pel winner plus the centre.
HALF_PEL_OFFSETS: Tuple[Tuple[float, float], ...] = (
    (0.0, 0.0),
    (-0.5, -0.5), (-0.5, 0.0), (-0.5, 0.5),
    (0.0, -0.5), (0.0, 0.5),
    (0.5, -0.5), (0.5, 0.0), (0.5, 0.5),
)


@dataclass
class SubPixelResult:
    """Outcome of a half-pel refinement."""

    integer_vector: Tuple[int, int]
    refined_vector: Tuple[float, float]
    integer_sad: int
    refined_sad: int
    candidates_evaluated: int
    interpolation_operations: int

    @property
    def improved(self) -> bool:
        """True when a half-pel candidate beat the integer-pel winner."""
        return self.refined_sad < self.integer_sad


def half_pel_refine(current: np.ndarray, reference: np.ndarray, top: int,
                    left: int, integer_result: SearchResult,
                    block_size: int = DEFAULT_BLOCK_SIZE) -> SubPixelResult:
    """Refine an integer-pel search result to half-pel accuracy.

    Candidates whose interpolation window would leave the reference frame
    are skipped, mirroring how the hardware excludes border candidates.
    """
    current = np.asarray(current, dtype=np.int64)
    reference = np.asarray(reference, dtype=np.float64)
    current_block = current[top:top + block_size, left:left + block_size]
    base_dy, base_dx = integer_result.best.dy, integer_result.best.dx

    best_vector: Tuple[float, float] = (float(base_dy), float(base_dx))
    best_sad = integer_result.best.sad
    evaluated = 0
    interpolation_ops = 0

    for offset_y, offset_x in HALF_PEL_OFFSETS:
        vector = (base_dy + offset_y, base_dx + offset_x)
        try:
            prediction = predict_block(reference, top, left, vector, block_size)
        except ValueError:
            continue
        evaluated += 1
        if offset_y or offset_x:
            # Bilinear interpolation costs up to three adds per pixel.
            interpolation_ops += 3 * block_size * block_size
        candidate_sad = sad(current_block, np.rint(prediction).astype(np.int64))
        if candidate_sad < best_sad:
            best_sad = candidate_sad
            best_vector = vector

    return SubPixelResult(
        integer_vector=(base_dy, base_dx),
        refined_vector=best_vector,
        integer_sad=integer_result.best.sad,
        refined_sad=best_sad,
        candidates_evaluated=evaluated,
        interpolation_operations=interpolation_ops,
    )
