"""Full-Search Block-Matching (FSBMA) reference implementation (Sec. 4).

Full search evaluates the SAD of every candidate displacement inside the
search window and returns the motion vector of the minimum.  It is the
optimal-but-expensive baseline the systolic array of Fig. 11 accelerates;
the systolic model is validated against this module vector for vector.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.engine.kernels import (
    best_displacement,
    candidate_windows,
    displacement_grid,
    sad_surface,
)
from repro.me.sad import sad_at, saturated_sad

#: Macroblock size used throughout the paper's ME discussion.
DEFAULT_BLOCK_SIZE = 16
#: Default search range (candidates from -8 to +7 in each direction, the
#: classic +-8 window that the 4x16 PE array of Fig. 11 is dimensioned for).
DEFAULT_SEARCH_RANGE = 8


@dataclass(frozen=True)
class MotionVector:
    """A displacement (dy, dx) and the SAD of the matching candidate block."""

    dy: int
    dx: int
    sad: int

    def as_tuple(self) -> Tuple[int, int]:
        """The (dy, dx) pair."""
        return (self.dy, self.dx)


@dataclass
class SearchResult:
    """Outcome of a block-matching search for one macroblock."""

    best: MotionVector
    candidates_evaluated: int
    sad_operations: int

    @property
    def motion_vector(self) -> Tuple[int, int]:
        """The winning (dy, dx) displacement."""
        return self.best.as_tuple()


def candidate_displacements(search_range: int,
                            include_upper: bool = False) -> List[Tuple[int, int]]:
    """All (dy, dx) candidates of a +-``search_range`` window.

    The hardware window covers ``[-range, range)``; set ``include_upper`` to
    also evaluate the ``+range`` edge (a 2R+1 x 2R+1 window).
    """
    upper = search_range + 1 if include_upper else search_range
    return [(dy, dx) for dy in range(-search_range, upper)
            for dx in range(-search_range, upper)]


def full_search(current: np.ndarray, reference: np.ndarray, top: int, left: int,
                block_size: int = DEFAULT_BLOCK_SIZE,
                search_range: int = DEFAULT_SEARCH_RANGE,
                include_upper: bool = False,
                windows: Optional[np.ndarray] = None) -> SearchResult:
    """Exhaustive search for the best match of one macroblock.

    Vectorized: every candidate of the window is scored in one batched
    engine call (:func:`~repro.engine.kernels.sad_surface`), then the
    winner is selected with the hardware tie-break rule — ties resolve
    toward the candidate closest to zero displacement, and then in raster
    order, matching both the systolic array's comparator update rule and
    common encoder practice.  Results are bit-identical to
    :func:`full_search_scalar`, the legacy per-candidate reference.

    ``windows`` optionally passes a precomputed
    :func:`~repro.engine.kernels.candidate_windows` view of the reference
    frame so frame-level searches amortise its construction.
    """
    surface = sad_surface(current, reference, top, left, block_size,
                          search_range, include_upper, windows=windows,
                          saturate=saturated_sad(block_size))
    dys, dxs = displacement_grid(search_range, include_upper)
    dy, dx, value = best_displacement(surface, dys, dxs)
    count = int(dys.size * dxs.size)
    return SearchResult(best=MotionVector(dy, dx, value),
                        candidates_evaluated=count,
                        sad_operations=count * block_size * block_size)


def full_search_scalar(current: np.ndarray, reference: np.ndarray, top: int,
                       left: int, block_size: int = DEFAULT_BLOCK_SIZE,
                       search_range: int = DEFAULT_SEARCH_RANGE,
                       include_upper: bool = False) -> SearchResult:
    """Legacy per-candidate full search (one ``sad_at`` call per candidate).

    Kept as the slow-but-obvious reference the vectorized
    :func:`full_search` is validated against, and as the "before" side of
    the engine benchmarks.
    """
    best: Optional[MotionVector] = None
    operations = 0
    candidates = candidate_displacements(search_range, include_upper)
    # Sort so ties resolve toward the smallest displacement.
    candidates.sort(key=lambda d: (abs(d[0]) + abs(d[1]), d))
    for dy, dx in candidates:
        value = sad_at(current, reference, top, left, dy, dx, block_size)
        operations += block_size * block_size
        if best is None or value < best.sad:
            best = MotionVector(dy, dx, value)
    assert best is not None
    return SearchResult(best=best, candidates_evaluated=len(candidates),
                        sad_operations=operations)


def full_search_frame(current: np.ndarray, reference: np.ndarray,
                      block_size: int = DEFAULT_BLOCK_SIZE,
                      search_range: int = DEFAULT_SEARCH_RANGE) -> List[List[SearchResult]]:
    """Full search for every macroblock of a frame (row-major grid).

    The sliding candidate-window view of the reference frame is built once
    and shared by every macroblock's batched search.
    """
    current = np.asarray(current)
    height, width = current.shape
    windows = candidate_windows(reference, block_size)
    results: List[List[SearchResult]] = []
    for top in range(0, height - block_size + 1, block_size):
        row: List[SearchResult] = []
        for left in range(0, width - block_size + 1, block_size):
            row.append(full_search(current, reference, top, left,
                                   block_size, search_range, windows=windows))
        results.append(row)
    return results


def motion_field(results: List[List[SearchResult]]) -> np.ndarray:
    """Stack the motion vectors of a frame search into an (H, W, 2) array."""
    return np.array([[list(result.motion_vector) for result in row]
                     for row in results], dtype=np.int64)
