"""Deprecated ME mapping shims — superseded by :mod:`repro.flow`.

The mapping of the Fig. 10 PE and the Fig. 11 systolic engine onto the ME
array now runs through the unified pass pipeline; compile the engines
directly::

    from repro.flow import compile
    from repro.me import SystolicArray

    result = compile(SystolicArray())       # a FlowResult

The entry points below are kept for backwards compatibility.  They emit
:class:`DeprecationWarning` and return the same :class:`MappedMEDesign`
shape as before, now assembled from a :class:`~repro.flow.pipeline.FlowResult`.
:func:`build_systolic_netlist` moved to :mod:`repro.me.systolic` and is
re-exported here unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro._compat import legacy_flow, warn_deprecated
from repro.arrays.me_array import build_me_array
from repro.core.clusters import ClusterUsage
from repro.core.fabric import Fabric
from repro.core.mapper import Placement
from repro.core.metrics import DesignMetrics
from repro.core.netlist import Netlist
from repro.core.router import RoutingResult
from repro.flow import FlowResult, NetlistDesign
from repro.me.pe import build_pe_netlist
from repro.me.systolic import (
    DEFAULT_MODULE_COUNT,
    DEFAULT_PES_PER_MODULE,
    build_systolic_netlist,
    systolic_fabric,
)

__all__ = [
    "MappedMEDesign",
    "build_systolic_netlist",
    "map_me_design",
    "map_pe",
    "map_systolic_array",
]


@dataclass
class MappedMEDesign:
    """The systolic engine (or a single PE) mapped onto the ME array."""

    name: str
    netlist: Netlist
    usage: ClusterUsage
    placement: Optional[Placement]
    routing: Optional[RoutingResult]
    metrics: DesignMetrics

    @classmethod
    def from_flow_result(cls, result: FlowResult) -> "MappedMEDesign":
        """Repackage a :class:`FlowResult` in the legacy shape."""
        return cls(
            name=result.netlist.name,
            netlist=result.netlist,
            usage=result.usage,
            placement=result.placement,
            routing=result.routing,
            metrics=result.metrics,
        )


def _compile_me(netlist: Netlist, fabric: Optional[Fabric],
                run_place_and_route: bool) -> MappedMEDesign:
    flow = legacy_flow(run_place_and_route)
    design = NetlistDesign(netlist, target_array="me_array")
    result = flow.compile(design, fabric=fabric or build_me_array())
    return MappedMEDesign.from_flow_result(result)


def map_me_design(netlist: Netlist, fabric: Optional[Fabric] = None,
                  run_place_and_route: bool = True) -> MappedMEDesign:
    """Deprecated: run an ME netlist through the mapping flow.

    Use ``repro.flow.compile(NetlistDesign(netlist, "me_array"))``.
    """
    warn_deprecated("repro.me.mapping.map_me_design", "repro.flow.compile")
    return _compile_me(netlist, fabric, run_place_and_route)


def map_pe(fabric: Optional[Fabric] = None) -> MappedMEDesign:
    """Deprecated: map a single Fig. 10 PE onto the ME array.

    Use ``repro.flow.compile(ProcessingElement())``.
    """
    warn_deprecated("repro.me.mapping.map_pe", "repro.flow.compile")
    return _compile_me(build_pe_netlist(), fabric, True)


def map_systolic_array(fabric: Optional[Fabric] = None,
                       module_count: int = DEFAULT_MODULE_COUNT,
                       pes_per_module: int = DEFAULT_PES_PER_MODULE,
                       run_place_and_route: bool = True) -> MappedMEDesign:
    """Deprecated: map the full Fig. 11 systolic engine onto the ME array.

    Use ``repro.flow.compile(SystolicArray(module_count, pes_per_module))``.
    """
    warn_deprecated("repro.me.mapping.map_systolic_array", "repro.flow.compile")
    netlist = build_systolic_netlist(module_count, pes_per_module)
    if fabric is None:
        fabric = systolic_fabric(module_count, pes_per_module)
    return _compile_me(netlist, fabric, run_place_and_route)
