"""Mapping of the systolic ME architecture onto the ME array (Figs. 10/11).

Provides the structural netlists of the single PE (Fig. 10) and the full
4x16-PE systolic engine (Fig. 11) and runs them through the mapping flow on
the ME fabric of :mod:`repro.arrays.me_array`.  These mapped netlists are
also the workload for the ME-array-vs-FPGA comparison benchmark (the 75 % /
45 % / 23 % figures of [1]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.arrays.me_array import MEArrayGeometry, PIXEL_BITS, SAD_BITS, build_me_array
from repro.core.clusters import ClusterKind, ClusterUsage
from repro.core.fabric import Fabric
from repro.core.mapper import GreedyPlacer, Placement
from repro.core.metrics import DesignMetrics, evaluate_design
from repro.core.netlist import Netlist
from repro.core.router import MeshRouter, RoutingResult
from repro.me.pe import build_pe_netlist
from repro.me.systolic import DEFAULT_MODULE_COUNT, DEFAULT_PES_PER_MODULE


def build_systolic_netlist(module_count: int = DEFAULT_MODULE_COUNT,
                           pes_per_module: int = DEFAULT_PES_PER_MODULE,
                           name: str = "me_systolic") -> Netlist:
    """Structural netlist of the Fig. 11 systolic array.

    Each PE contributes its register-mux, absolute-difference and
    accumulator clusters; the current-pixel shift register runs along each
    module (modelled by the register-mux chain), the per-module adder tree
    is folded into the accumulator chain, and one comparator cluster holds
    the running minimum SAD / motion vector.
    """
    netlist = Netlist(name)
    for module in range(module_count):
        for pe in range(pes_per_module):
            prefix = f"m{module}_pe{pe}_"
            netlist.add_node(prefix + "mux", ClusterKind.REGISTER_MUX,
                             width_bits=PIXEL_BITS, role="pe_mux")
            netlist.add_node(prefix + "ad", ClusterKind.ABS_DIFF,
                             width_bits=PIXEL_BITS, role="pe_ad")
            netlist.add_node(prefix + "acc", ClusterKind.ADD_ACC,
                             width_bits=SAD_BITS, role="pe_acc")
            netlist.connect(prefix + "mux", prefix + "ad", PIXEL_BITS)
            netlist.connect(prefix + "ad", prefix + "acc", PIXEL_BITS)
        # Current-pixel shift chain and partial-SAD chain along the module.
        for pe in range(1, pes_per_module):
            netlist.connect(f"m{module}_pe{pe - 1}_mux", f"m{module}_pe{pe}_mux",
                            PIXEL_BITS)
            netlist.connect(f"m{module}_pe{pe - 1}_acc", f"m{module}_pe{pe}_acc",
                            SAD_BITS)
    netlist.add_node("min_comparator", ClusterKind.COMPARATOR,
                     width_bits=SAD_BITS, role="comparator")
    for module in range(module_count):
        netlist.connect(f"m{module}_pe{pes_per_module - 1}_acc", "min_comparator",
                        SAD_BITS)
    return netlist


@dataclass
class MappedMEDesign:
    """The systolic engine (or a single PE) mapped onto the ME array."""

    name: str
    netlist: Netlist
    usage: ClusterUsage
    placement: Optional[Placement]
    routing: Optional[RoutingResult]
    metrics: DesignMetrics


def map_me_design(netlist: Netlist, fabric: Optional[Fabric] = None,
                  run_place_and_route: bool = True) -> MappedMEDesign:
    """Run an ME netlist through the mapping flow on the ME array."""
    fabric = fabric or build_me_array()
    placement: Optional[Placement] = None
    routing: Optional[RoutingResult] = None
    if run_place_and_route:
        placement = GreedyPlacer(fabric).place(netlist)
        routing = MeshRouter(fabric).route(netlist, placement)
    metrics = evaluate_design(netlist, fabric, placement, routing)
    return MappedMEDesign(
        name=netlist.name,
        netlist=netlist,
        usage=netlist.cluster_usage(),
        placement=placement,
        routing=routing,
        metrics=metrics,
    )


def map_pe(fabric: Optional[Fabric] = None) -> MappedMEDesign:
    """Map a single Fig. 10 PE onto the ME array."""
    return map_me_design(build_pe_netlist(), fabric)


def map_systolic_array(fabric: Optional[Fabric] = None,
                       module_count: int = DEFAULT_MODULE_COUNT,
                       pes_per_module: int = DEFAULT_PES_PER_MODULE,
                       run_place_and_route: bool = True) -> MappedMEDesign:
    """Map the full Fig. 11 systolic engine onto the ME array.

    The default ME-array geometry is sized for the 64-PE engine; smaller
    geometries raise :class:`repro.core.exceptions.CapacityError`.
    """
    netlist = build_systolic_netlist(module_count, pes_per_module)
    if fabric is None:
        fabric = build_me_array(MEArrayGeometry(
            rows=max(16, pes_per_module),
            mux_columns=max(4, module_count),
            abs_diff_columns=max(5, module_count + 1),
            add_acc_columns=max(6, module_count + 2),
            comparator_columns=1,
        ))
    return map_me_design(netlist, fabric, run_place_and_route)
