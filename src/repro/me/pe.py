"""Processing Element of the motion-estimation systolic array (Fig. 10).

One PE is assembled from three ME-array clusters:

* a Register-Multiplexer that selects between the broadcast search-area
  pixel and the delayed copy from its neighbour (this is the
  "reconfigurable Register-Multiplexer module which helps in reducing the
  memory bandwidth");
* an Absolute-Difference cluster computing ``|current - reference|``;
* an Adder/Accumulator cluster summing the absolute differences into the
  running SAD of the candidate block.

The PE is modelled directly on the cluster behavioural models so the
activity counters used by the power model accumulate as the array runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.arrays.me_array import PIXEL_BITS, SAD_BITS
from repro.core.clusters import (
    AbsDiffCluster,
    AddAccCluster,
    ClusterKind,
    ClusterUsage,
    RegisterMuxCluster,
)
from repro.core.netlist import Netlist


class ProcessingElement:
    """One PE cell: register-mux, absolute difference and SAD accumulator."""

    name = "me_pe"
    target_array = "me_array"

    def __init__(self, pixel_bits: int = PIXEL_BITS, sad_bits: int = SAD_BITS) -> None:
        self.pixel_bits = pixel_bits
        self.sad_bits = sad_bits
        self.reference_mux = RegisterMuxCluster(pixel_bits, registered=True)
        self.abs_diff = AbsDiffCluster(pixel_bits)
        self.accumulator = AddAccCluster(sad_bits)
        self.cycles = 0

    def reset(self) -> None:
        """Clear the SAD accumulator and the pixel register for a new candidate."""
        self.reference_mux.reset()
        self.accumulator.clear()
        self.cycles = 0

    @property
    def sad(self) -> int:
        """Running SAD accumulated so far."""
        return self.accumulator.accumulator

    def cycle(self, current_pixel: int, reference_pixel: int,
              use_delayed_reference: bool = False) -> int:
        """Process one pixel pair; returns the updated partial SAD.

        ``use_delayed_reference`` selects the register-mux's delayed copy of
        the previous cycle's broadcast pixel instead of the live broadcast,
        which is how neighbouring candidate rows reuse the same memory
        fetch.
        """
        selected = self.reference_mux.step(reference_pixel,
                                           self.reference_mux.peek(),
                                           1 if use_delayed_reference else 0)
        reference = selected if use_delayed_reference else reference_pixel
        difference = self.abs_diff.absolute_difference(current_pixel, reference)
        self.cycles += 1
        return self.accumulator.accumulate(difference)

    def total_toggles(self) -> int:
        """Aggregate toggle count of the PE's clusters (power-model input)."""
        return (self.reference_mux.toggles + self.abs_diff.toggles
                + self.accumulator.toggles)

    @staticmethod
    def cluster_usage() -> ClusterUsage:
        """Clusters one PE occupies on the ME array (Fig. 10)."""
        return ClusterUsage(register_mux=1, abs_diff=1, add_acc=1)

    def build_netlist(self) -> Netlist:
        """Structural netlist of this PE for the compilation flow."""
        return build_pe_netlist(pixel_bits=self.pixel_bits,
                                sad_bits=self.sad_bits)


def build_pe_netlist(name: str = "me_pe", pixel_bits: int = PIXEL_BITS,
                     sad_bits: int = SAD_BITS) -> Netlist:
    """Structural netlist of a single PE (Fig. 10) for the mapping flow."""
    netlist = Netlist(name)
    netlist.add_node("reference_mux", ClusterKind.REGISTER_MUX,
                     width_bits=pixel_bits, role="pe_mux")
    netlist.add_node("abs_diff", ClusterKind.ABS_DIFF,
                     width_bits=pixel_bits, role="pe_ad")
    netlist.add_node("sad_acc", ClusterKind.ADD_ACC,
                     width_bits=sad_bits, role="pe_acc")
    netlist.connect("reference_mux", "abs_diff", pixel_bits)
    netlist.connect("abs_diff", "sad_acc", pixel_bits)
    return netlist
