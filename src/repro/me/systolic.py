"""Low-power 2-D systolic array for full-search motion estimation (Fig. 11).

The array is organised as 4 PE modules of 16 PEs each (64 PEs).  Search
area pixels are broadcast to all PEs of a module while the current
macroblock pixels are shifted through a register array; each PE module is
responsible for one candidate block at a time, so four candidates are
matched concurrently and "the first round of SAD calculations would take
16 clock cycles" — one cycle per macroblock row, with the 16 PEs of a
module covering the 16 columns.

The model is cycle-based: every clock cycle each active module feeds one
row of the current block and the corresponding row of its candidate to its
16 PEs.  A comparator cluster tracks the minimum SAD and its displacement,
producing exactly the same motion vectors as the full-search reference in
:mod:`repro.me.full_search`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.arrays.me_array import (
    MEArrayGeometry,
    PIXEL_BITS,
    SAD_BITS,
    build_me_array,
)
from repro.core.clusters import ClusterKind, ComparatorCluster
from repro.core.exceptions import ConfigurationError
from repro.core.netlist import Netlist
from repro.me.full_search import (
    DEFAULT_BLOCK_SIZE,
    DEFAULT_SEARCH_RANGE,
    MotionVector,
    SearchResult,
    candidate_displacements,
)
from repro.me.pe import ProcessingElement
from repro.me.sad import sad_at_many, saturated_sad

#: Geometry of Fig. 11: 4 PE modules of 16 PEs (64 PEs total).
DEFAULT_MODULE_COUNT = 4
DEFAULT_PES_PER_MODULE = 16


def build_systolic_netlist(module_count: int = DEFAULT_MODULE_COUNT,
                           pes_per_module: int = DEFAULT_PES_PER_MODULE,
                           name: str = "me_systolic") -> Netlist:
    """Structural netlist of the Fig. 11 systolic array.

    Each PE contributes its register-mux, absolute-difference and
    accumulator clusters; the current-pixel shift register runs along each
    module (modelled by the register-mux chain), the per-module adder tree
    is folded into the accumulator chain, and one comparator cluster holds
    the running minimum SAD / motion vector.
    """
    netlist = Netlist(name)
    for module in range(module_count):
        for pe in range(pes_per_module):
            prefix = f"m{module}_pe{pe}_"
            netlist.add_node(prefix + "mux", ClusterKind.REGISTER_MUX,
                             width_bits=PIXEL_BITS, role="pe_mux")
            netlist.add_node(prefix + "ad", ClusterKind.ABS_DIFF,
                             width_bits=PIXEL_BITS, role="pe_ad")
            netlist.add_node(prefix + "acc", ClusterKind.ADD_ACC,
                             width_bits=SAD_BITS, role="pe_acc")
            netlist.connect(prefix + "mux", prefix + "ad", PIXEL_BITS)
            netlist.connect(prefix + "ad", prefix + "acc", PIXEL_BITS)
        # Current-pixel shift chain and partial-SAD chain along the module.
        for pe in range(1, pes_per_module):
            netlist.connect(f"m{module}_pe{pe - 1}_mux", f"m{module}_pe{pe}_mux",
                            PIXEL_BITS)
            netlist.connect(f"m{module}_pe{pe - 1}_acc", f"m{module}_pe{pe}_acc",
                            SAD_BITS)
    netlist.add_node("min_comparator", ClusterKind.COMPARATOR,
                     width_bits=SAD_BITS, role="comparator")
    for module in range(module_count):
        netlist.connect(f"m{module}_pe{pes_per_module - 1}_acc", "min_comparator",
                        SAD_BITS)
    return netlist


def systolic_fabric(module_count: int = DEFAULT_MODULE_COUNT,
                    pes_per_module: int = DEFAULT_PES_PER_MODULE):
    """An ME-array instance sized for a ``module_count x pes_per_module``
    engine, matching how the physical array of [1] was dimensioned."""
    return build_me_array(MEArrayGeometry(
        rows=max(16, pes_per_module),
        mux_columns=max(4, module_count),
        abs_diff_columns=max(5, module_count + 1),
        add_acc_columns=max(6, module_count + 2),
        comparator_columns=1,
    ))


def broadcast_window_fetches(height: int, width: int, top: int, left: int,
                             block_size: int, search_range: int,
                             include_upper: bool = False) -> int:
    """Pixels of the (clipped) search window streamed once per macroblock.

    The broadcast / register-mux network fetches each pixel of the window
    exactly once; without it every candidate would fetch its full block
    from memory.  Shared by :meth:`SystolicArray.search` and
    :meth:`SystolicArray.search_batched` so their traffic accounting can
    never drift apart.
    """
    upper = search_range + (1 if include_upper else 0)
    window_top = max(0, top - search_range)
    window_bottom = min(height, top + upper - 1 + block_size)
    window_left = max(0, left - search_range)
    window_right = min(width, left + upper - 1 + block_size)
    return max(0, window_bottom - window_top) * max(
        0, window_right - window_left)


@dataclass
class SystolicSearchResult(SearchResult):
    """Full-search result plus the systolic array's cycle accounting."""

    cycles: int = 0
    rounds: int = 0
    first_sad_cycle: int = 0
    reference_pixel_fetches: int = 0
    broadcast_pixel_fetches: int = 0

    @property
    def memory_bandwidth_reduction(self) -> float:
        """Fraction of reference-pixel fetches saved by broadcasting.

        Without the broadcast / register-mux network every PE module would
        fetch its candidate rows independently; the broadcast feeds all
        modules whose candidates overlap from one fetch.
        """
        if self.reference_pixel_fetches == 0:
            return 0.0
        return 1.0 - self.broadcast_pixel_fetches / self.reference_pixel_fetches


class PEModule:
    """One row of PEs computing the SAD of a single candidate block."""

    def __init__(self, pe_count: int = DEFAULT_PES_PER_MODULE) -> None:
        if pe_count <= 0:
            raise ConfigurationError("a PE module needs at least one PE")
        self.pe_count = pe_count
        self.pes = [ProcessingElement() for _ in range(pe_count)]
        self.cycles = 0

    def reset(self) -> None:
        """Prepare the module for a new candidate block."""
        for pe in self.pes:
            pe.reset()
        self.cycles = 0

    def feed_row(self, current_row: Sequence[int], reference_row: Sequence[int]) -> None:
        """One clock cycle: one row of current and candidate pixels.

        Rows narrower than the module (an 8x8 block on a 16-PE module) use
        the first PEs and leave the rest idle for that cycle.
        """
        if len(current_row) != len(reference_row):
            raise ConfigurationError("current and reference rows differ in length")
        if len(current_row) > self.pe_count:
            raise ConfigurationError("row wider than the PE module")
        for pe, cur, ref in zip(self.pes, current_row, reference_row):
            pe.cycle(int(cur), int(ref))
        self.cycles += 1

    @property
    def sad(self) -> int:
        """Sum of the per-PE accumulators (the module's adder tree output)."""
        return sum(pe.sad for pe in self.pes)

    def total_toggles(self) -> int:
        """Aggregate cluster toggles of the module (power-model input)."""
        return sum(pe.total_toggles() for pe in self.pes)


class SystolicArray:
    """The 4x16 PE array of Fig. 11 plus its comparator and control."""

    name = "me_systolic"
    target_array = "me_array"

    def __init__(self, module_count: int = DEFAULT_MODULE_COUNT,
                 pes_per_module: int = DEFAULT_PES_PER_MODULE) -> None:
        if module_count <= 0:
            raise ConfigurationError("the array needs at least one PE module")
        self.module_count = module_count
        self.pes_per_module = pes_per_module
        self.modules = [PEModule(pes_per_module) for _ in range(module_count)]
        self.comparator = ComparatorCluster(width_bits=24, track_minimum=True)
        self.total_cycles = 0

    def build_netlist(self) -> Netlist:
        """Structural netlist of this engine for the compilation flow."""
        return build_systolic_netlist(self.module_count, self.pes_per_module)

    def build_fabric(self):
        """An ME array sized for this engine (non-default geometries fit)."""
        return systolic_fabric(self.module_count, self.pes_per_module)

    @property
    def pe_count(self) -> int:
        """Total number of PEs in the array."""
        return self.module_count * self.pes_per_module

    def _prepare_search(self, current: np.ndarray, reference: np.ndarray,
                        top: int, left: int, block_size: int):
        """Shared guard checks of both search paths; returns the int64
        frames and the current macroblock."""
        if block_size % self.pes_per_module and self.pes_per_module % block_size:
            raise ConfigurationError(
                f"block size {block_size} does not tile onto "
                f"{self.pes_per_module} PEs")
        current = np.asarray(current, dtype=np.int64)
        reference = np.asarray(reference, dtype=np.int64)
        current_block = current[top:top + block_size, left:left + block_size]
        if current_block.shape != (block_size, block_size):
            raise ConfigurationError("macroblock outside the current frame")
        return current, reference, current_block

    def search(self, current: np.ndarray, reference: np.ndarray, top: int,
               left: int, block_size: int = DEFAULT_BLOCK_SIZE,
               search_range: int = DEFAULT_SEARCH_RANGE,
               include_upper: bool = False) -> SystolicSearchResult:
        """Full-search one macroblock on the systolic array.

        The candidate schedule and tie-breaking match
        :func:`repro.me.full_search.full_search`, so the returned motion
        vector and SAD are identical to the software reference; what the
        systolic model adds is the cycle count, the first-SAD latency and
        the memory-traffic accounting.
        """
        current, reference, current_block = self._prepare_search(
            current, reference, top, left, block_size)
        height, width = reference.shape

        candidates = candidate_displacements(search_range, include_upper)
        candidates.sort(key=lambda d: (abs(d[0]) + abs(d[1]), d))

        self.comparator.reset()
        cycles = 0
        rounds = 0
        first_sad_cycle = 0
        reference_fetches = 0
        broadcast_fetches = 0
        max_sad = saturated_sad(block_size)

        columns_per_pass = min(block_size, self.pes_per_module)
        column_passes = -(-block_size // columns_per_pass)

        for round_start in range(0, len(candidates), self.module_count):
            round_candidates = candidates[round_start:round_start + self.module_count]
            rounds += 1
            for module in self.modules[:len(round_candidates)]:
                module.reset()

            valid: List[bool] = []
            for (dy, dx) in round_candidates:
                ref_top, ref_left = top + dy, left + dx
                valid.append(0 <= ref_top and ref_top + block_size <= height
                             and 0 <= ref_left and ref_left + block_size <= width)

            for column_pass in range(column_passes):
                col0 = column_pass * columns_per_pass
                col1 = min(block_size, col0 + columns_per_pass)
                for row in range(block_size):
                    current_row = current_block[row, col0:col1]
                    for index, (dy, dx) in enumerate(round_candidates):
                        if not valid[index]:
                            continue
                        ref_top = top + dy + row
                        ref_left = left + dx + col0
                        reference_row = reference[ref_top, ref_left:ref_left + (col1 - col0)]
                        self.modules[index].feed_row(current_row, reference_row)
                        reference_fetches += col1 - col0
                    cycles += 1
                    if first_sad_cycle == 0 and row == block_size - 1 \
                            and column_pass == column_passes - 1:
                        first_sad_cycle = cycles

            for index, (dy, dx) in enumerate(round_candidates):
                value = self.modules[index].sad if valid[index] else max_sad
                self.comparator.update(value, tag=round_start + index)

        broadcast_fetches = broadcast_window_fetches(
            height, width, top, left, block_size, search_range, include_upper)

        best_index = self.comparator.best_tag
        best_dy, best_dx = candidates[best_index]
        best = MotionVector(best_dy, best_dx, int(self.comparator.best_value))
        self.total_cycles += cycles
        return SystolicSearchResult(
            best=best,
            candidates_evaluated=len(candidates),
            sad_operations=len(candidates) * block_size * block_size,
            cycles=cycles,
            rounds=rounds,
            first_sad_cycle=first_sad_cycle,
            reference_pixel_fetches=reference_fetches,
            broadcast_pixel_fetches=broadcast_fetches,
        )

    def search_batched(self, current: np.ndarray, reference: np.ndarray,
                       top: int, left: int,
                       block_size: int = DEFAULT_BLOCK_SIZE,
                       search_range: int = DEFAULT_SEARCH_RANGE,
                       include_upper: bool = False,
                       windows=None) -> SystolicSearchResult:
        """Full-search one macroblock with every candidate scored in one
        batched engine call.

        ``windows`` optionally shares a precomputed
        :func:`~repro.engine.kernels.candidate_windows` view across the
        macroblocks of a frame.

        Returns the same motion vector, SAD and cycle/round/memory-traffic
        accounting as :meth:`search` (the parity suite asserts equality):
        candidate SADs come from one vectorized
        :func:`~repro.me.sad.sad_at_many` evaluation, the comparator
        cluster still sees every candidate in schedule order (so its
        tie-breaking and activity counters behave identically), and the
        cycle counts follow from the array's static schedule.  What this
        path does *not* do is advance the per-PE activity counters — use
        :meth:`search` when driving the power model.
        """
        current, reference, _ = self._prepare_search(
            current, reference, top, left, block_size)
        height, width = reference.shape

        candidates = candidate_displacements(search_range, include_upper)
        candidates.sort(key=lambda d: (abs(d[0]) + abs(d[1]), d))
        sads = sad_at_many(current, reference, top, left, candidates,
                           block_size, windows=windows)
        valid_count = sum(
            1 for (dy, dx) in candidates
            if 0 <= top + dy and top + dy + block_size <= height
            and 0 <= left + dx and left + dx + block_size <= width)

        self.comparator.reset()
        for index, value in enumerate(sads):
            self.comparator.update(int(value), tag=index)

        columns_per_pass = min(block_size, self.pes_per_module)
        column_passes = -(-block_size // columns_per_pass)
        rounds = -(-len(candidates) // self.module_count)
        cycles_per_round = column_passes * block_size
        cycles = rounds * cycles_per_round
        broadcast_fetches = broadcast_window_fetches(
            height, width, top, left, block_size, search_range, include_upper)

        best_index = self.comparator.best_tag
        best_dy, best_dx = candidates[best_index]
        best = MotionVector(best_dy, best_dx, int(self.comparator.best_value))
        self.total_cycles += cycles
        return SystolicSearchResult(
            best=best,
            candidates_evaluated=len(candidates),
            sad_operations=len(candidates) * block_size * block_size,
            cycles=cycles,
            rounds=rounds,
            first_sad_cycle=cycles_per_round,
            reference_pixel_fetches=valid_count * block_size * block_size,
            broadcast_pixel_fetches=broadcast_fetches,
        )

    def total_toggles(self) -> int:
        """Aggregate toggles across every PE module (power-model input)."""
        return sum(module.total_toggles() for module in self.modules)
