"""Fast block-matching searches: three-step and diamond search.

The paper's flexibility argument (Sec. 1 and Sec. 5) is that video
standards keep evolving and that different implementations of the same
computation trade quality against power and time; the reconfigurable array
can host any of them and switch at run time.  These two classic
reduced-search algorithms are the software counterparts used by the
ablation benchmarks to quantify that trade-off against full search: far
fewer SAD evaluations, slightly worse matches.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

import numpy as np

from repro.me.full_search import (
    DEFAULT_BLOCK_SIZE,
    DEFAULT_SEARCH_RANGE,
    MotionVector,
    SearchResult,
)
from repro.me.sad import sad_at


def _evaluate(current: np.ndarray, reference: np.ndarray, top: int, left: int,
              dy: int, dx: int, block_size: int,
              cache: dict) -> int:
    key = (dy, dx)
    if key not in cache:
        cache[key] = sad_at(current, reference, top, left, dy, dx, block_size)
    return cache[key]


def three_step_search(current: np.ndarray, reference: np.ndarray, top: int,
                      left: int, block_size: int = DEFAULT_BLOCK_SIZE,
                      search_range: int = DEFAULT_SEARCH_RANGE) -> SearchResult:
    """Classic three-step search (TSS).

    Starts with a step of roughly half the search range, evaluates the
    centre and its eight neighbours at that step, recentres on the best and
    halves the step until it reaches one.
    """
    cache: dict = {}
    centre = (0, 0)
    step = max(1, search_range // 2)
    best_value = _evaluate(current, reference, top, left, 0, 0, block_size, cache)
    while True:
        improved = False
        for dy in (-step, 0, step):
            for dx in (-step, 0, step):
                candidate = (centre[0] + dy, centre[1] + dx)
                if max(abs(candidate[0]), abs(candidate[1])) > search_range:
                    continue
                value = _evaluate(current, reference, top, left,
                                  candidate[0], candidate[1], block_size, cache)
                if value < best_value:
                    best_value = value
                    centre = candidate
                    improved = True
        if step == 1:
            break
        step //= 2
        if not improved and step == 0:
            break
    best = MotionVector(centre[0], centre[1], best_value)
    operations = len(cache) * block_size * block_size
    return SearchResult(best=best, candidates_evaluated=len(cache),
                        sad_operations=operations)


_LARGE_DIAMOND = [(0, 0), (-2, 0), (2, 0), (0, -2), (0, 2),
                  (-1, -1), (-1, 1), (1, -1), (1, 1)]
_SMALL_DIAMOND = [(0, 0), (-1, 0), (1, 0), (0, -1), (0, 1)]


def diamond_search(current: np.ndarray, reference: np.ndarray, top: int,
                   left: int, block_size: int = DEFAULT_BLOCK_SIZE,
                   search_range: int = DEFAULT_SEARCH_RANGE,
                   max_iterations: int = 32) -> SearchResult:
    """Diamond search (DS): large diamond until the centre wins, then small."""
    cache: dict = {}
    centre = (0, 0)
    best_value = _evaluate(current, reference, top, left, 0, 0, block_size, cache)

    for _ in range(max_iterations):
        best_candidate = centre
        for dy, dx in _LARGE_DIAMOND:
            candidate = (centre[0] + dy, centre[1] + dx)
            if max(abs(candidate[0]), abs(candidate[1])) > search_range:
                continue
            value = _evaluate(current, reference, top, left,
                              candidate[0], candidate[1], block_size, cache)
            if value < best_value:
                best_value = value
                best_candidate = candidate
        if best_candidate == centre:
            break
        centre = best_candidate

    for dy, dx in _SMALL_DIAMOND:
        candidate = (centre[0] + dy, centre[1] + dx)
        if max(abs(candidate[0]), abs(candidate[1])) > search_range:
            continue
        value = _evaluate(current, reference, top, left,
                          candidate[0], candidate[1], block_size, cache)
        if value < best_value:
            best_value = value
            centre = candidate

    best = MotionVector(centre[0], centre[1], best_value)
    operations = len(cache) * block_size * block_size
    return SearchResult(best=best, candidates_evaluated=len(cache),
                        sad_operations=operations)


SEARCH_ALGORITHMS = {
    "full": None,     # resolved lazily to avoid a circular import at module load
    "three_step": three_step_search,
    "diamond": diamond_search,
}


def search_by_name(name: str):
    """Look a search algorithm up by name ("full", "three_step", "diamond")."""
    if name == "full":
        from repro.me.full_search import full_search
        return full_search
    try:
        algorithm = SEARCH_ALGORITHMS[name]
    except KeyError:
        raise ValueError(f"unknown search algorithm {name!r}; "
                         f"choose from {sorted(SEARCH_ALGORITHMS)}") from None
    return algorithm
