"""Fast block-matching searches: three-step and diamond search.

The paper's flexibility argument (Sec. 1 and Sec. 5) is that video
standards keep evolving and that different implementations of the same
computation trade quality against power and time; the reconfigurable array
can host any of them and switch at run time.  These two classic
reduced-search algorithms are the software counterparts used by the
ablation benchmarks to quantify that trade-off against full search: far
fewer SAD evaluations, slightly worse matches.

Execution is vectorized through :mod:`repro.engine`: each search ring is
scored in one batched SAD call instead of one Python ``sad_at`` call per
candidate.  The search trajectories, returned vectors and the
``candidates_evaluated`` accounting are identical to the original
per-candidate implementation — batching only changes how the same SADs
are computed.
"""

from __future__ import annotations

from typing import Optional, Sequence, Set, Tuple

import numpy as np

from repro.engine.kernels import candidate_windows
from repro.me.full_search import (
    DEFAULT_BLOCK_SIZE,
    DEFAULT_SEARCH_RANGE,
    MotionVector,
    SearchResult,
)
from repro.me.sad import sad_at_many


class _BatchedSadCache:
    """Memoised SADs of one block, computed in vectorized ring batches.

    ``prefetch`` scores a whole candidate ring in one call; ``value``
    returns (and counts) a single candidate, computing it on demand when
    the search trajectory left the prefetched ring.  Only candidates the
    algorithm actually *requests* count toward ``evaluated_count``, so
    speculative prefetching never inflates the cost accounting relative
    to the legacy per-candidate implementation.
    """

    def __init__(self, current: np.ndarray, reference: np.ndarray, top: int,
                 left: int, block_size: int,
                 windows: Optional[np.ndarray] = None) -> None:
        self.current = current
        self.reference = reference
        self.top = top
        self.left = left
        self.block_size = block_size
        self.windows = (windows if windows is not None
                        else candidate_windows(reference, block_size))
        self._values: dict = {}
        self._requested: Set[Tuple[int, int]] = set()

    def prefetch(self, candidates: Sequence[Tuple[int, int]]) -> None:
        missing = [c for c in candidates if c not in self._values]
        if not missing:
            return
        sads = sad_at_many(self.current, self.reference, self.top, self.left,
                           missing, self.block_size, windows=self.windows)
        for candidate, sad in zip(missing, sads):
            self._values[candidate] = int(sad)

    def value(self, dy: int, dx: int) -> int:
        candidate = (dy, dx)
        self._requested.add(candidate)
        if candidate not in self._values:
            self.prefetch([candidate])
        return self._values[candidate]

    @property
    def evaluated_count(self) -> int:
        return len(self._requested)


def three_step_search(current: np.ndarray, reference: np.ndarray, top: int,
                      left: int, block_size: int = DEFAULT_BLOCK_SIZE,
                      search_range: int = DEFAULT_SEARCH_RANGE,
                      windows: Optional[np.ndarray] = None) -> SearchResult:
    """Classic three-step search (TSS).

    Starts with a step of roughly half the search range, evaluates the
    centre and its eight neighbours at that step, recentres on the best and
    halves the step until it reaches one.  ``windows`` optionally shares a
    precomputed :func:`~repro.engine.kernels.candidate_windows` view of
    the reference frame across the macroblocks of a frame.
    """
    cache = _BatchedSadCache(current, reference, top, left, block_size,
                             windows=windows)
    centre = (0, 0)
    step = max(1, search_range // 2)
    best_value = cache.value(0, 0)
    while True:
        improved = False
        cache.prefetch([
            (centre[0] + dy, centre[1] + dx)
            for dy in (-step, 0, step) for dx in (-step, 0, step)
            if max(abs(centre[0] + dy), abs(centre[1] + dx)) <= search_range])
        for dy in (-step, 0, step):
            for dx in (-step, 0, step):
                candidate = (centre[0] + dy, centre[1] + dx)
                if max(abs(candidate[0]), abs(candidate[1])) > search_range:
                    continue
                value = cache.value(candidate[0], candidate[1])
                if value < best_value:
                    best_value = value
                    centre = candidate
                    improved = True
        if step == 1:
            break
        step //= 2
        if not improved and step == 0:
            break
    best = MotionVector(centre[0], centre[1], best_value)
    operations = cache.evaluated_count * block_size * block_size
    return SearchResult(best=best, candidates_evaluated=cache.evaluated_count,
                        sad_operations=operations)


_LARGE_DIAMOND = [(0, 0), (-2, 0), (2, 0), (0, -2), (0, 2),
                  (-1, -1), (-1, 1), (1, -1), (1, 1)]
_SMALL_DIAMOND = [(0, 0), (-1, 0), (1, 0), (0, -1), (0, 1)]


def diamond_search(current: np.ndarray, reference: np.ndarray, top: int,
                   left: int, block_size: int = DEFAULT_BLOCK_SIZE,
                   search_range: int = DEFAULT_SEARCH_RANGE,
                   max_iterations: int = 32,
                   windows: Optional[np.ndarray] = None) -> SearchResult:
    """Diamond search (DS): large diamond until the centre wins, then small."""
    cache = _BatchedSadCache(current, reference, top, left, block_size,
                             windows=windows)
    centre = (0, 0)
    best_value = cache.value(0, 0)

    for _ in range(max_iterations):
        best_candidate = centre
        cache.prefetch([
            (centre[0] + dy, centre[1] + dx) for dy, dx in _LARGE_DIAMOND
            if max(abs(centre[0] + dy), abs(centre[1] + dx)) <= search_range])
        for dy, dx in _LARGE_DIAMOND:
            candidate = (centre[0] + dy, centre[1] + dx)
            if max(abs(candidate[0]), abs(candidate[1])) > search_range:
                continue
            value = cache.value(candidate[0], candidate[1])
            if value < best_value:
                best_value = value
                best_candidate = candidate
        if best_candidate == centre:
            break
        centre = best_candidate

    cache.prefetch([
        (centre[0] + dy, centre[1] + dx) for dy, dx in _SMALL_DIAMOND
        if max(abs(centre[0] + dy), abs(centre[1] + dx)) <= search_range])
    for dy, dx in _SMALL_DIAMOND:
        candidate = (centre[0] + dy, centre[1] + dx)
        if max(abs(candidate[0]), abs(candidate[1])) > search_range:
            continue
        value = cache.value(candidate[0], candidate[1])
        if value < best_value:
            best_value = value
            centre = candidate

    best = MotionVector(centre[0], centre[1], best_value)
    operations = cache.evaluated_count * block_size * block_size
    return SearchResult(best=best, candidates_evaluated=cache.evaluated_count,
                        sad_operations=operations)


SEARCH_ALGORITHMS = {
    "full": None,     # resolved lazily to avoid a circular import at module load
    "three_step": three_step_search,
    "diamond": diamond_search,
}


def search_by_name(name: str):
    """Look a search algorithm up by name ("full", "three_step", "diamond")."""
    if name == "full":
        from repro.me.full_search import full_search
        return full_search
    try:
        algorithm = SEARCH_ALGORITHMS[name]
    except KeyError:
        raise ValueError(f"unknown search algorithm {name!r}; "
                         f"choose from {sorted(SEARCH_ALGORITHMS)}") from None
    return algorithm
