"""1-D systolic array baseline for full-search block matching.

Sec. 4 of the paper: "The 1-D array architectures proposed among which are
[12]-[14] require high operating frequencies in order to fulfill the
data-flow requirements of these demanding complex algorithms for ME."
To make that motivation measurable, this module models a classic 1-D
array of ``N`` PEs (one per block row): candidates are processed one at a
time, each taking ``N`` cycles, so the whole search window costs
``candidates x N`` cycles — versus ``candidates / 4 x N`` on the 4-module
2-D array of Fig. 11.  Meeting the same frame rate therefore requires a
proportionally higher clock frequency, which is exactly the comparison the
benchmark reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.core.clusters import ComparatorCluster
from repro.core.exceptions import ConfigurationError
from repro.me.full_search import (
    DEFAULT_BLOCK_SIZE,
    DEFAULT_SEARCH_RANGE,
    MotionVector,
    SearchResult,
    candidate_displacements,
)
from repro.me.sad import sad_at_many, saturated_sad
from repro.me.systolic import (
    PEModule,
    SystolicSearchResult,
    broadcast_window_fetches,
    build_systolic_netlist,
    systolic_fabric,
)


def _window_fetches_1d(height: int, width: int, top: int, left: int,
                       block_size: int, search_range: int) -> int:
    """Search-window pixels fetched by the 1-D array, shared by both
    search paths so their traffic accounting cannot drift apart.

    The 1-D model's historical window clip equals the 2-D formula with
    the upper edge included, so delegate rather than duplicate the
    arithmetic.
    """
    return broadcast_window_fetches(height, width, top, left, block_size,
                                    search_range, include_upper=True)


class Systolic1DArray:
    """A single row of PEs matching one candidate block at a time."""

    name = "me_systolic_1d"
    target_array = "me_array"

    def __init__(self, pe_count: int = 16) -> None:
        if pe_count <= 0:
            raise ConfigurationError("the 1-D array needs at least one PE")
        self.pe_count = pe_count
        self.module = PEModule(pe_count)
        self.comparator = ComparatorCluster(width_bits=24, track_minimum=True)
        self.total_cycles = 0

    @property
    def pe_total(self) -> int:
        """Total PEs (for area comparison with the 2-D array)."""
        return self.pe_count

    def build_netlist(self):
        """Structural netlist (one module of PEs) for the compilation flow."""
        return build_systolic_netlist(1, self.pe_count, name=self.name)

    def build_fabric(self):
        """An ME array sized for this 1-D engine."""
        return systolic_fabric(1, self.pe_count)

    def _prepare_search(self, current: np.ndarray, reference: np.ndarray,
                        top: int, left: int, block_size: int):
        """Shared guard checks of both search paths; returns the int64
        frames and the current macroblock."""
        if block_size > self.pe_count and block_size % self.pe_count:
            raise ConfigurationError(
                f"block size {block_size} does not tile onto {self.pe_count} PEs")
        current = np.asarray(current, dtype=np.int64)
        reference = np.asarray(reference, dtype=np.int64)
        current_block = current[top:top + block_size, left:left + block_size]
        if current_block.shape != (block_size, block_size):
            raise ConfigurationError("macroblock outside the current frame")
        return current, reference, current_block

    def search(self, current: np.ndarray, reference: np.ndarray, top: int,
               left: int, block_size: int = DEFAULT_BLOCK_SIZE,
               search_range: int = DEFAULT_SEARCH_RANGE,
               include_upper: bool = False) -> SystolicSearchResult:
        """Full search of one macroblock, one candidate per pass."""
        current, reference, current_block = self._prepare_search(
            current, reference, top, left, block_size)
        height, width = reference.shape

        candidates = candidate_displacements(search_range, include_upper)
        candidates.sort(key=lambda d: (abs(d[0]) + abs(d[1]), d))

        self.comparator.reset()
        cycles = 0
        first_sad_cycle = 0
        max_sad = saturated_sad(block_size)
        columns_per_pass = min(block_size, self.pe_count)
        column_passes = -(-block_size // columns_per_pass)

        for index, (dy, dx) in enumerate(candidates):
            self.module.reset()
            ref_top, ref_left = top + dy, left + dx
            valid = (0 <= ref_top and ref_top + block_size <= height
                     and 0 <= ref_left and ref_left + block_size <= width)
            if valid:
                for column_pass in range(column_passes):
                    col0 = column_pass * columns_per_pass
                    col1 = min(block_size, col0 + columns_per_pass)
                    for row in range(block_size):
                        self.module.feed_row(
                            current_block[row, col0:col1],
                            reference[ref_top + row, ref_left + col0:ref_left + col1])
                        cycles += 1
            else:
                cycles += block_size * column_passes
            if first_sad_cycle == 0:
                first_sad_cycle = cycles
            self.comparator.update(self.module.sad if valid else max_sad, tag=index)

        best_index = self.comparator.best_tag
        best_dy, best_dx = candidates[best_index]
        best = MotionVector(best_dy, best_dx, int(self.comparator.best_value))
        self.total_cycles += cycles
        return SystolicSearchResult(
            best=best,
            candidates_evaluated=len(candidates),
            sad_operations=len(candidates) * block_size * block_size,
            cycles=cycles,
            rounds=len(candidates),
            first_sad_cycle=first_sad_cycle,
            reference_pixel_fetches=len(candidates) * block_size * block_size,
            broadcast_pixel_fetches=_window_fetches_1d(
                height, width, top, left, block_size, search_range),
        )


    def search_batched(self, current: np.ndarray, reference: np.ndarray,
                       top: int, left: int,
                       block_size: int = DEFAULT_BLOCK_SIZE,
                       search_range: int = DEFAULT_SEARCH_RANGE,
                       include_upper: bool = False,
                       windows=None) -> SystolicSearchResult:
        """Full search with every candidate scored in one batched call.

        Same results and cycle accounting as :meth:`search` — one
        candidate per ``block_size x column_passes``-cycle pass — without
        advancing the per-PE activity counters (use :meth:`search` when
        driving the power model).  ``windows`` optionally shares a
        precomputed candidate-window view across macroblocks.
        """
        current, reference, _ = self._prepare_search(
            current, reference, top, left, block_size)
        height, width = reference.shape

        candidates = candidate_displacements(search_range, include_upper)
        candidates.sort(key=lambda d: (abs(d[0]) + abs(d[1]), d))
        sads = sad_at_many(current, reference, top, left, candidates,
                           block_size, windows=windows)

        self.comparator.reset()
        for index, value in enumerate(sads):
            self.comparator.update(int(value), tag=index)

        columns_per_pass = min(block_size, self.pe_count)
        column_passes = -(-block_size // columns_per_pass)
        cycles_per_candidate = block_size * column_passes
        cycles = len(candidates) * cycles_per_candidate

        best_index = self.comparator.best_tag
        best_dy, best_dx = candidates[best_index]
        best = MotionVector(best_dy, best_dx, int(self.comparator.best_value))
        self.total_cycles += cycles
        return SystolicSearchResult(
            best=best,
            candidates_evaluated=len(candidates),
            sad_operations=len(candidates) * block_size * block_size,
            cycles=cycles,
            rounds=len(candidates),
            first_sad_cycle=cycles_per_candidate,
            reference_pixel_fetches=len(candidates) * block_size * block_size,
            broadcast_pixel_fetches=_window_fetches_1d(
                height, width, top, left, block_size, search_range),
        )


@dataclass
class ThroughputRequirement:
    """Clock frequency needed to sustain a real-time encoding workload."""

    architecture: str
    cycles_per_macroblock: int
    macroblocks_per_second: float

    @property
    def required_frequency_hz(self) -> float:
        """Clock frequency needed to keep up with the workload."""
        return self.cycles_per_macroblock * self.macroblocks_per_second


def required_frequency(cycles_per_macroblock: int, frame_width: int = 176,
                       frame_height: int = 144, frames_per_second: float = 30.0,
                       architecture: str = "") -> ThroughputRequirement:
    """Clock requirement for real-time QCIF encoding with the given cycle cost."""
    macroblocks = (frame_width // 16) * (frame_height // 16)
    return ThroughputRequirement(
        architecture=architecture,
        cycles_per_macroblock=cycles_per_macroblock,
        macroblocks_per_second=macroblocks * frames_per_second,
    )
