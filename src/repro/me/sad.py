"""Sum-of-Absolute-Differences matching criterion (Sec. 4).

The matching criterion supported by the ME array is the SAD:

    SAD_N(dx, dy) = sum_{m,n} | I_k(m, n) - I_{k-1}(m+dx, n+dy) |

where ``I_k`` is the current frame, ``I_{k-1}`` the reference (previous)
frame and ``N`` the block size (8, 16 or 32).  The functions here operate
on numpy arrays and are shared by the software reference searches, the
systolic-array model and the tests.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.engine.kernels import candidate_windows, sad_reduce

#: Block sizes the array supports (Sec. 4: "could be 8, 16 or 32").
SUPPORTED_BLOCK_SIZES = (8, 16, 32)


def sad(block_a: np.ndarray, block_b: np.ndarray) -> int:
    """SAD between two equally-sized pixel blocks."""
    block_a = np.asarray(block_a, dtype=np.int64)
    block_b = np.asarray(block_b, dtype=np.int64)
    if block_a.shape != block_b.shape:
        raise ValueError(f"block shapes differ: {block_a.shape} vs {block_b.shape}")
    return int(np.sum(np.abs(block_a - block_b)))


def block_at(frame: np.ndarray, top: int, left: int, size: int) -> np.ndarray:
    """Extract a ``size`` x ``size`` block; raises when it leaves the frame."""
    frame = np.asarray(frame)
    height, width = frame.shape
    if not (0 <= top and top + size <= height and 0 <= left and left + size <= width):
        raise ValueError(
            f"block at ({top}, {left}) size {size} outside {height}x{width} frame")
    return frame[top:top + size, left:left + size]


def sad_at(current: np.ndarray, reference: np.ndarray, top: int, left: int,
           dy: int, dx: int, size: int) -> int:
    """SAD of the block at (top, left) against the candidate displaced by (dy, dx).

    Candidates that would read outside the reference frame return a
    saturated SAD (the maximum representable value), matching how the
    hardware handles frame borders by excluding those candidates.
    """
    current_block = block_at(current, top, left, size)
    height, width = np.asarray(reference).shape
    ref_top, ref_left = top + dy, left + dx
    if not (0 <= ref_top and ref_top + size <= height
            and 0 <= ref_left and ref_left + size <= width):
        return saturated_sad(size)
    reference_block = block_at(reference, ref_top, ref_left, size)
    return sad(current_block, reference_block)


def sad_at_many(current: np.ndarray, reference: np.ndarray, top: int,
                left: int, displacements: Sequence[Tuple[int, int]],
                size: int,
                windows: Optional[np.ndarray] = None) -> np.ndarray:
    """SAD of one block against a *batch* of candidate displacements.

    The vectorized counterpart of calling :func:`sad_at` per candidate:
    every listed ``(dy, dx)`` is scored in one batched engine call, with
    out-of-frame candidates saturated exactly like the scalar path.
    Returns an int64 array aligned with ``displacements``.  Pass a
    precomputed :func:`~repro.engine.kernels.candidate_windows` view to
    amortise its construction over many blocks of the same frame.
    """
    current = np.asarray(current, dtype=np.int64)
    reference = np.asarray(reference, dtype=np.int64)
    height, width = reference.shape
    block = block_at(current, top, left, size)
    if len(displacements) == 0:
        return np.zeros(0, dtype=np.int64)
    if windows is None:
        windows = candidate_windows(reference, size)

    offsets = np.asarray(displacements, dtype=np.int64).reshape(-1, 2)
    rows = top + offsets[:, 0]
    cols = left + offsets[:, 1]
    valid = ((rows >= 0) & (rows <= height - size)
             & (cols >= 0) & (cols <= width - size))
    sads = np.full(offsets.shape[0], saturated_sad(size), dtype=np.int64)
    if valid.any():
        selected = windows[rows[valid], cols[valid]]
        sads[valid] = sad_reduce(selected, block)
    return sads


def saturated_sad(size: int, pixel_bits: int = 8) -> int:
    """Largest SAD value a ``size`` x ``size`` comparison can produce."""
    return size * size * ((1 << pixel_bits) - 1)


def sad_bit_width(size: int, pixel_bits: int = 8) -> int:
    """Accumulator width needed to hold the worst-case SAD without overflow."""
    return (saturated_sad(size, pixel_bits)).bit_length()


def mean_absolute_difference(block_a: np.ndarray, block_b: np.ndarray) -> float:
    """SAD normalised by the pixel count (useful for quality reporting)."""
    block_a = np.asarray(block_a)
    count = block_a.size
    if count == 0:
        raise ValueError("empty block")
    return sad(block_a, block_b) / count
