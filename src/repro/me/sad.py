"""Sum-of-Absolute-Differences matching criterion (Sec. 4).

The matching criterion supported by the ME array is the SAD:

    SAD_N(dx, dy) = sum_{m,n} | I_k(m, n) - I_{k-1}(m+dx, n+dy) |

where ``I_k`` is the current frame, ``I_{k-1}`` the reference (previous)
frame and ``N`` the block size (8, 16 or 32).  The functions here operate
on numpy arrays and are shared by the software reference searches, the
systolic-array model and the tests.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

#: Block sizes the array supports (Sec. 4: "could be 8, 16 or 32").
SUPPORTED_BLOCK_SIZES = (8, 16, 32)


def sad(block_a: np.ndarray, block_b: np.ndarray) -> int:
    """SAD between two equally-sized pixel blocks."""
    block_a = np.asarray(block_a, dtype=np.int64)
    block_b = np.asarray(block_b, dtype=np.int64)
    if block_a.shape != block_b.shape:
        raise ValueError(f"block shapes differ: {block_a.shape} vs {block_b.shape}")
    return int(np.sum(np.abs(block_a - block_b)))


def block_at(frame: np.ndarray, top: int, left: int, size: int) -> np.ndarray:
    """Extract a ``size`` x ``size`` block; raises when it leaves the frame."""
    frame = np.asarray(frame)
    height, width = frame.shape
    if not (0 <= top and top + size <= height and 0 <= left and left + size <= width):
        raise ValueError(
            f"block at ({top}, {left}) size {size} outside {height}x{width} frame")
    return frame[top:top + size, left:left + size]


def sad_at(current: np.ndarray, reference: np.ndarray, top: int, left: int,
           dy: int, dx: int, size: int) -> int:
    """SAD of the block at (top, left) against the candidate displaced by (dy, dx).

    Candidates that would read outside the reference frame return a
    saturated SAD (the maximum representable value), matching how the
    hardware handles frame borders by excluding those candidates.
    """
    current_block = block_at(current, top, left, size)
    height, width = np.asarray(reference).shape
    ref_top, ref_left = top + dy, left + dx
    if not (0 <= ref_top and ref_top + size <= height
            and 0 <= ref_left and ref_left + size <= width):
        return saturated_sad(size)
    reference_block = block_at(reference, ref_top, ref_left, size)
    return sad(current_block, reference_block)


def saturated_sad(size: int, pixel_bits: int = 8) -> int:
    """Largest SAD value a ``size`` x ``size`` comparison can produce."""
    return size * size * ((1 << pixel_bits) - 1)


def sad_bit_width(size: int, pixel_bits: int = 8) -> int:
    """Accumulator width needed to hold the worst-case SAD without overflow."""
    return (saturated_sad(size, pixel_bits)).bit_length()


def mean_absolute_difference(block_a: np.ndarray, block_b: np.ndarray) -> float:
    """SAD normalised by the pixel count (useful for quality reporting)."""
    block_a = np.asarray(block_a)
    count = block_a.size
    if count == 0:
        raise ValueError("empty block")
    return sad(block_a, block_b) / count
