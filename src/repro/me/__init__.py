"""Motion estimation: SAD, search algorithms and the systolic array model."""

from repro.me.fast_search import diamond_search, search_by_name, three_step_search
from repro.me.full_search import (
    DEFAULT_BLOCK_SIZE,
    DEFAULT_SEARCH_RANGE,
    MotionVector,
    SearchResult,
    candidate_displacements,
    full_search,
    full_search_frame,
    full_search_scalar,
    motion_field,
)
from repro.me.mapping import (
    MappedMEDesign,
    map_me_design,
    map_pe,
    map_systolic_array,
)
from repro.me.pe import ProcessingElement, build_pe_netlist
from repro.me.sad import (
    SUPPORTED_BLOCK_SIZES,
    block_at,
    mean_absolute_difference,
    sad,
    sad_at,
    sad_at_many,
    sad_bit_width,
    saturated_sad,
)
from repro.me.subpixel import HALF_PEL_OFFSETS, SubPixelResult, half_pel_refine
from repro.me.systolic import (
    DEFAULT_MODULE_COUNT,
    DEFAULT_PES_PER_MODULE,
    PEModule,
    SystolicArray,
    SystolicSearchResult,
    build_systolic_netlist,
    systolic_fabric,
)
from repro.me.systolic_1d import (
    Systolic1DArray,
    ThroughputRequirement,
    required_frequency,
)

__all__ = [
    "diamond_search",
    "search_by_name",
    "three_step_search",
    "DEFAULT_BLOCK_SIZE",
    "DEFAULT_SEARCH_RANGE",
    "MotionVector",
    "SearchResult",
    "candidate_displacements",
    "full_search",
    "full_search_frame",
    "full_search_scalar",
    "motion_field",
    "MappedMEDesign",
    "build_systolic_netlist",
    "map_me_design",
    "map_pe",
    "map_systolic_array",
    "ProcessingElement",
    "build_pe_netlist",
    "SUPPORTED_BLOCK_SIZES",
    "block_at",
    "mean_absolute_difference",
    "sad",
    "sad_at",
    "sad_at_many",
    "sad_bit_width",
    "saturated_sad",
    "DEFAULT_MODULE_COUNT",
    "DEFAULT_PES_PER_MODULE",
    "PEModule",
    "SystolicArray",
    "SystolicSearchResult",
    "systolic_fabric",
    "HALF_PEL_OFFSETS",
    "SubPixelResult",
    "half_pel_refine",
    "Systolic1DArray",
    "ThroughputRequirement",
    "required_frequency",
]
