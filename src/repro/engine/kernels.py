"""Batched numeric kernels shared by the ME and video execution paths.

These are the vectorized primitives the workload layers build on: block
batching of frames, batched separable 2-D transforms, batched SAD and the
full-search SAD *surface* (every candidate displacement of a macroblock
scored in one call via sliding windows).  They are pure numpy — no
Python-level per-pixel or per-candidate loops — which is where the
engine's order-of-magnitude speedups over the legacy per-node simulation
come from.

All integer kernels use int64 throughout, so results are bit-exact
against the scalar reference implementations they replace.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

try:  # numpy >= 1.20
    from numpy.lib.stride_tricks import sliding_window_view
except ImportError:  # pragma: no cover - the toolchain bakes in numpy >= 1.20
    sliding_window_view = None


# -- frame <-> block batching ------------------------------------------------

def block_batch(frame: np.ndarray, block_size: int) -> np.ndarray:
    """All non-overlapping ``block_size`` blocks of a frame, raster order.

    Returns a ``(rows * cols, block_size, block_size)`` array; the frame
    must tile exactly (pad it first).
    """
    frame = np.asarray(frame)
    height, width = frame.shape
    if height % block_size or width % block_size:
        raise ValueError(
            f"{height}x{width} frame does not tile into {block_size}x"
            f"{block_size} blocks; pad it first")
    rows, cols = height // block_size, width // block_size
    blocks = frame.reshape(rows, block_size, cols, block_size).swapaxes(1, 2)
    return blocks.reshape(rows * cols, block_size, block_size)


def frame_from_block_batch(blocks: np.ndarray, height: int,
                           width: int) -> np.ndarray:
    """Inverse of :func:`block_batch`: reassemble the frame."""
    blocks = np.asarray(blocks)
    count, block_size, _ = blocks.shape
    rows, cols = height // block_size, width // block_size
    if count != rows * cols:
        raise ValueError(
            f"{count} blocks cannot tile a {height}x{width} frame "
            f"with {block_size}x{block_size} blocks")
    grid = blocks.reshape(rows, cols, block_size, block_size).swapaxes(1, 2)
    return grid.reshape(height, width)


# -- batched transforms ------------------------------------------------------

def batched_transform_2d(blocks: np.ndarray, matrix: np.ndarray,
                         inverse: bool = False) -> np.ndarray:
    """Separable 2-D transform of a ``(B, n, n)`` block batch.

    Computes ``M @ block @ M.T`` per block (or ``M.T @ block @ M`` with
    ``inverse=True``) through one broadcast matmul pair; each batch entry
    is the same 2-D GEMM the scalar path runs, so results match the
    per-block reference bit for bit.
    """
    blocks = np.asarray(blocks, dtype=np.float64)
    matrix = np.asarray(matrix, dtype=np.float64)
    if inverse:
        return matrix.T @ blocks @ matrix
    return matrix @ blocks @ matrix.T


# -- batched SAD -------------------------------------------------------------

def batched_sad(blocks_a: np.ndarray, blocks_b: np.ndarray) -> np.ndarray:
    """SAD of paired block batches: ``(B, n, n) x (B, n, n) -> (B,)``."""
    blocks_a = np.asarray(blocks_a, dtype=np.int64)
    blocks_b = np.asarray(blocks_b, dtype=np.int64)
    if blocks_a.shape != blocks_b.shape:
        raise ValueError(
            f"block batch shapes differ: {blocks_a.shape} vs {blocks_b.shape}")
    return np.abs(blocks_a - blocks_b).sum(axis=(-2, -1))


#: Value bound within which pixel differences still fit an int16, letting
#: the SAD kernels move 4x less memory than the int64 fallback.
_COMPACT_BOUND = 1 << 14


def _compact_dtype(*arrays) -> np.dtype:
    """int16 when every array's values keep differences inside int16.

    The bound is exclusive: two values of exactly ``+/-_COMPACT_BOUND``
    would produce a difference of ``2 * _COMPACT_BOUND = 32768``, one past
    ``int16`` range.
    """
    for array in arrays:
        if array.size and (array.min() <= -_COMPACT_BOUND
                           or array.max() >= _COMPACT_BOUND):
            return np.dtype(np.int64)
    return np.dtype(np.int16)


def candidate_windows(reference: np.ndarray, block_size: int) -> np.ndarray:
    """Sliding view of every ``block_size`` window of the reference frame.

    Shape ``(H - N + 1, W - N + 1, N, N)``; a zero-copy view suitable for
    scoring many macroblocks of the same frame (compute once, reuse).
    Ordinary 8-bit pixel frames are stored as int16 — SAD accumulation
    still happens in int64, so results are unchanged while the candidate
    gathers move a quarter of the memory.
    """
    reference = np.asarray(reference)
    dtype = _compact_dtype(reference)
    reference = np.ascontiguousarray(reference.astype(dtype, copy=False))
    if sliding_window_view is not None:
        return sliding_window_view(reference, (block_size, block_size))
    height, width = reference.shape  # pragma: no cover - numpy < 1.20 path
    out = np.empty((height - block_size + 1, width - block_size + 1,
                    block_size, block_size), dtype=np.int64)
    for dy in range(block_size):
        for dx in range(block_size):
            out[:, :, dy, dx] = reference[dy:dy + out.shape[0],
                                          dx:dx + out.shape[1]]
    return out


def displacement_grid(search_range: int,
                      include_upper: bool = False) -> Tuple[np.ndarray, np.ndarray]:
    """The ``(dy, dx)`` axes of a full-search window, raster order.

    Matches :func:`repro.me.full_search.candidate_displacements`: the
    window covers ``[-range, range)``, or ``[-range, range]`` with
    ``include_upper``.
    """
    upper = search_range + 1 if include_upper else search_range
    axis = np.arange(-search_range, upper)
    return axis, axis.copy()


def sad_surface(current: np.ndarray, reference: np.ndarray, top: int,
                left: int, block_size: int, search_range: int,
                include_upper: bool = False,
                windows: Optional[np.ndarray] = None,
                saturate: Optional[int] = None) -> np.ndarray:
    """SAD of *every* candidate displacement of one macroblock, in one call.

    Returns a ``(len(dys), len(dxs))`` int64 grid aligned with
    :func:`displacement_grid`; candidates that would read outside the
    reference frame hold the saturated SAD, matching the hardware's
    border handling.  Pass a precomputed ``windows`` view (from
    :func:`candidate_windows`) to amortise the setup across the
    macroblocks of a frame.
    """
    current = np.asarray(current, dtype=np.int64)
    reference = np.asarray(reference, dtype=np.int64)
    height, width = reference.shape
    block = current[top:top + block_size, left:left + block_size]
    if block.shape != (block_size, block_size):
        raise ValueError(
            f"block at ({top}, {left}) size {block_size} outside "
            f"{current.shape[0]}x{current.shape[1]} frame")
    if saturate is None:
        saturate = block_size * block_size * 255
    if windows is None:
        windows = candidate_windows(reference, block_size)

    dys, dxs = displacement_grid(search_range, include_upper)
    rows = top + dys
    cols = left + dxs
    valid_rows = (rows >= 0) & (rows <= height - block_size)
    valid_cols = (cols >= 0) & (cols <= width - block_size)

    surface = np.full((dys.size, dxs.size), saturate, dtype=np.int64)
    if valid_rows.any() and valid_cols.any():
        selected = windows[np.ix_(rows[valid_rows], cols[valid_cols])]
        sads = sad_reduce(selected, block)
        surface[np.ix_(valid_rows, valid_cols)] = sads
    return surface


def sad_reduce(selected: np.ndarray, block: np.ndarray) -> np.ndarray:
    """Sum-of-absolute-differences over the trailing block axes.

    Keeps the arithmetic in the windows' compact dtype when the block fits
    it too (differences cannot overflow within the compact bound) and
    accumulates in int64 either way, so results match the int64 path
    exactly.
    """
    if selected.dtype == np.int16 and _compact_dtype(block) == np.int16:
        block = block.astype(np.int16, copy=False)
    else:
        selected = selected.astype(np.int64, copy=False)
        block = block.astype(np.int64, copy=False)
    return np.abs(selected - block).sum(axis=(-2, -1), dtype=np.int64)


def best_displacement(surface: np.ndarray, dys: np.ndarray,
                      dxs: np.ndarray) -> Tuple[int, int, int]:
    """Winning ``(dy, dx, sad)`` of a SAD surface, hardware tie-breaking.

    Ties resolve toward the smallest ``|dy| + |dx|`` and then raster
    order of ``(dy, dx)`` — the comparator update rule of the systolic
    array and the candidate ordering of the software reference.
    """
    sads = surface.ravel()
    dy_grid, dx_grid = np.meshgrid(dys, dxs, indexing="ij")
    dy_flat, dx_flat = dy_grid.ravel(), dx_grid.ravel()
    distance = np.abs(dy_flat) + np.abs(dx_flat)
    winner = np.lexsort((dx_flat, dy_flat, distance, sads))[0]
    return int(dy_flat[winner]), int(dx_flat[winner]), int(sads[winner])


def best_displacements(surfaces: np.ndarray, dys: np.ndarray,
                       dxs: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Batched :func:`best_displacement` over any leading batch axes.

    ``surfaces`` is ``(..., len(dys), len(dxs))``; returns int64 arrays
    ``(dy, dx, sad)`` of shape ``surfaces.shape[:-2]``.  The winner per
    surface is selected with exactly the lexicographic tie-break of the
    scalar function — the candidate keys ``(sad, |dy| + |dx|, dy, dx)``
    are packed into one int64 per candidate, whose ``argmin`` is the
    first candidate in that order.
    """
    surfaces = np.asarray(surfaces, dtype=np.int64)
    if surfaces.shape[-2:] != (dys.size, dxs.size):
        raise ValueError(
            f"surface shape {surfaces.shape} does not end in "
            f"({dys.size}, {dxs.size})")
    # Rank the candidates of one window once; packing (sad, rank) keeps
    # the full lexicographic order because rank is unique per candidate.
    dy_flat, dx_flat, rank, _ = _candidate_ranks(dys, dxs)
    flat = surfaces.reshape(*surfaces.shape[:-2], -1)
    keys = flat * dy_flat.size + rank
    winners = np.argmin(keys, axis=-1)
    return (np.take(dy_flat, winners), np.take(dx_flat, winners),
            np.take_along_axis(flat, winners[..., None], axis=-1)[..., 0])


def candidate_windows_stacked(references: np.ndarray,
                              block_size: int) -> np.ndarray:
    """Per-frame sliding candidate windows of a ``(G, H, W)`` frame stack.

    The stacked counterpart of :func:`candidate_windows`: shape
    ``(G, H - N + 1, W - N + 1, N, N)``, one zero-copy sliding view per
    stacked reference frame, in the shared compact dtype.
    """
    references = np.asarray(references)
    if references.ndim != 3:
        raise ValueError(f"expected a (G, H, W) stack, got {references.shape}")
    dtype = _compact_dtype(references)
    references = np.ascontiguousarray(references.astype(dtype, copy=False))
    if sliding_window_view is not None:
        return sliding_window_view(references, (block_size, block_size),
                                   axis=(1, 2))
    return np.stack([candidate_windows(frame, block_size)  # pragma: no cover
                     for frame in references])


def sad_surfaces_many(currents: np.ndarray, references: np.ndarray,
                      positions, block_size: int, search_range: int,
                      include_upper: bool = False,
                      windows: Optional[np.ndarray] = None,
                      saturate: Optional[int] = None) -> np.ndarray:
    """Full-search SAD surfaces of many macroblocks of many frames at once.

    ``currents`` and ``references`` are ``(G, H, W)`` stacks of
    independent frame pairs (e.g. the lockstep frames of parallel GOPs);
    ``positions`` lists the ``(top, left)`` macroblock corners shared by
    every pair.  Returns an int64 ``(G, len(positions), len(dys),
    len(dxs))`` array where entry ``[g, m]`` equals
    ``sad_surface(currents[g], references[g], *positions[m], ...)`` bit
    for bit.

    When the positions are the standard block-aligned tiling (the
    encoder's macroblock grid) the surfaces are computed one displacement
    at a time over whole shifted frame differences — a cache-resident
    pass per candidate instead of ``G * len(positions)`` gathered window
    batches.  Arbitrary positions fall back to gathers grouped by their
    frame-border validity masks.
    """
    currents = np.asarray(currents, dtype=np.int64)
    references = np.asarray(references)
    if currents.ndim != 3 or references.ndim != 3:
        raise ValueError("currents and references must be (G, H, W) stacks")
    if saturate is None:
        saturate = block_size * block_size * 255
    positions = list(positions)
    tops = np.array([top for top, _ in positions], dtype=np.intp)
    lefts = np.array([left for _, left in positions], dtype=np.intp)
    dys, dxs = displacement_grid(search_range, include_upper)
    if _is_block_grid(tops, lefts, block_size):
        return _surfaces_shifted_frames(currents, references, tops, lefts,
                                        block_size, dys, dxs, saturate)
    return _surfaces_grouped_gather(currents, references, tops, lefts,
                                    block_size, dys, dxs, saturate, windows)


def _is_block_grid(tops: np.ndarray, lefts: np.ndarray,
                   block_size: int) -> bool:
    """True when positions are the full block tiling from (0, 0), raster order."""
    if tops.size == 0:
        return False
    unique_tops = np.unique(tops)
    unique_lefts = np.unique(lefts)
    if (tops.size != unique_tops.size * unique_lefts.size
            or not np.array_equal(unique_tops,
                                  np.arange(unique_tops.size) * block_size)
            or not np.array_equal(unique_lefts,
                                  np.arange(unique_lefts.size) * block_size)):
        return False
    expected = [(int(top), int(left)) for top in unique_tops
                for left in unique_lefts]
    return list(zip(tops.tolist(), lefts.tolist())) == expected


def _surfaces_shifted_frames(currents: np.ndarray, references: np.ndarray,
                             tops: np.ndarray, lefts: np.ndarray,
                             block_size: int, dys: np.ndarray,
                             dxs: np.ndarray, saturate: int) -> np.ndarray:
    """Grid fast path: one shifted whole-frame difference per displacement.

    For each candidate ``(dy, dx)`` the absolute difference of the
    current frames against the shifted references is reduced to per-block
    sums by two reshape reductions — the same integer SADs as the gather
    path, with a working set that stays cache-resident.
    """
    group_count, height, width = references.shape
    dtype = _compact_dtype(currents, references)
    cur = np.ascontiguousarray(currents.astype(dtype, copy=False))
    ref = np.ascontiguousarray(references.astype(dtype, copy=False))
    row_of_top = {int(top): index for index, top in enumerate(np.unique(tops))}
    col_of_left = {int(left): index for index, left in enumerate(np.unique(lefts))}
    grid_rows, grid_cols = len(row_of_top), len(col_of_left)
    unique_tops = np.unique(tops)
    unique_lefts = np.unique(lefts)
    surfaces = np.full((group_count, grid_rows, grid_cols, dys.size, dxs.size),
                       saturate, dtype=np.int64)
    for dy_index, dy in enumerate(dys):
        valid_tops = unique_tops[(unique_tops + dy >= 0)
                                 & (unique_tops + dy <= height - block_size)]
        if valid_tops.size == 0:
            continue
        top0, top1 = int(valid_tops[0]), int(valid_tops[-1]) + block_size
        span_rows = top1 - top0
        current_rows = cur[:, top0:top1]
        reference_rows = ref[:, top0 + dy:top1 + dy]
        for dx_index, dx in enumerate(dxs):
            valid_lefts = unique_lefts[(unique_lefts + dx >= 0)
                                       & (unique_lefts + dx <= width - block_size)]
            if valid_lefts.size == 0:
                continue
            left0, left1 = int(valid_lefts[0]), int(valid_lefts[-1]) + block_size
            span_cols = left1 - left0
            # Differences cannot leave the compact dtype (see _compact_dtype).
            difference = np.abs(current_rows[:, :, left0:left1]
                                - reference_rows[:, :, left0 + dx:left1 + dx])
            partial = difference.reshape(
                group_count, span_rows, span_cols // block_size,
                block_size).sum(axis=-1, dtype=np.int64)
            sads = partial.reshape(
                group_count, span_rows // block_size, block_size,
                span_cols // block_size).sum(axis=2)
            surfaces[:, row_of_top[top0] :row_of_top[top0] + sads.shape[1],
                     col_of_left[left0]:col_of_left[left0] + sads.shape[2],
                     dy_index, dx_index] = sads
    surfaces = surfaces.reshape(group_count, grid_rows * grid_cols,
                                dys.size, dxs.size)
    # Positions are the raster grid, so (row, col) order is position order.
    return surfaces


def _surfaces_grouped_gather(currents: np.ndarray, references: np.ndarray,
                             tops: np.ndarray, lefts: np.ndarray,
                             block_size: int, dys: np.ndarray, dxs: np.ndarray,
                             saturate: int,
                             windows: Optional[np.ndarray]) -> np.ndarray:
    """General path: gather candidate windows grouped by validity masks."""
    group_count, height, width = references.shape
    if windows is None:
        windows = candidate_windows_stacked(references, block_size)
    surfaces = np.full((group_count, tops.size, dys.size, dxs.size),
                       saturate, dtype=np.int64)
    # Validity depends only on the macroblock's top (rows) and left
    # (cols), so positions sharing both masks gather in one fancy index.
    valid_rows = ((tops[:, None] + dys[None, :] >= 0)
                  & (tops[:, None] + dys[None, :] <= height - block_size))
    valid_cols = ((lefts[:, None] + dxs[None, :] >= 0)
                  & (lefts[:, None] + dxs[None, :] <= width - block_size))
    groups = {}
    for index in range(tops.size):
        key = (valid_rows[index].tobytes(), valid_cols[index].tobytes())
        groups.setdefault(key, []).append(index)

    for members in groups.values():
        members = np.array(members, dtype=np.intp)
        row_mask = valid_rows[members[0]]
        col_mask = valid_cols[members[0]]
        if not row_mask.any() or not col_mask.any():
            continue
        rows = tops[members][:, None] + dys[row_mask][None, :]
        cols = lefts[members][:, None] + dxs[col_mask][None, :]
        # (G, M, n_dy, n_dx, N, N) gather across every frame pair and
        # every member macroblock of the group in one call.
        selected = windows[:, rows[:, :, None], cols[:, None, :]]
        blocks = _gather_blocks(currents, tops[members], lefts[members],
                                block_size)
        sads = sad_reduce(selected, blocks[:, :, None, None])
        surfaces[np.ix_(np.arange(group_count), members,
                        np.flatnonzero(row_mask),
                        np.flatnonzero(col_mask))] = sads
    return surfaces


def _gather_blocks(frames: np.ndarray, tops: np.ndarray, lefts: np.ndarray,
                   block_size: int) -> np.ndarray:
    """Gather ``(G, M, N, N)`` macroblocks at (tops, lefts) of a frame stack."""
    offsets = np.arange(block_size)
    rows = tops[:, None] + offsets[None, :]        # (M, N)
    cols = lefts[:, None] + offsets[None, :]       # (M, N)
    return frames[:, rows[:, :, None], cols[:, None, :]]


def _window_sums(references: np.ndarray, block_size: int) -> np.ndarray:
    """Sum of every sliding ``block_size`` window of a ``(G, H, W)`` stack.

    One integral-image pass per frame; exact int64 arithmetic.
    """
    integral = np.cumsum(np.cumsum(np.asarray(references, dtype=np.int64),
                                   axis=1), axis=2)
    integral = np.pad(integral, ((0, 0), (1, 0), (1, 0)))
    return (integral[:, block_size:, block_size:]
            - integral[:, :-block_size, block_size:]
            - integral[:, block_size:, :-block_size]
            + integral[:, :-block_size, :-block_size])


#: Partial-sum cell size of the multilevel elimination bound.  4x4 cells
#: keep the bound tight enough to prune through the quantisation-noise
#: floor of reconstructed references (16x16 whole-block sums do not).
_SEA_CELL = 4


def _pooled_bounds_grid(currents: np.ndarray, references: np.ndarray,
                        unique_tops: np.ndarray, unique_lefts: np.ndarray,
                        block_size: int, dys: np.ndarray, dxs: np.ndarray,
                        cell: int = _SEA_CELL) -> np.ndarray:
    """Multilevel SEA lower bounds of every candidate of a macroblock grid.

    For each candidate displacement, ``sum_cells |sum(current cell) -
    sum(reference cell)|`` over the ``cell`` x ``cell`` partition of each
    block — a lower bound on the SAD by the triangle inequality, and a
    much tighter one than the whole-block sum.  Computed per displacement
    on ``cell``-pooled planes (a stride-``cell`` view of the reference's
    sliding window sums), so the working set is 1/cell^2 of the frame.

    Returns an int64 ``(G, rows * cols, len(dys) * len(dxs))`` array
    aligned with the raster position grid; out-of-frame candidates hold
    ``_KEY_SENTINEL``.
    """
    group_count, height, width = references.shape
    pooled_current = currents.reshape(group_count, height // cell, cell,
                                      width // cell, cell).sum(axis=(2, 4))
    pooled_windows = _window_sums(references, cell)
    cells_per_block = block_size // cell
    grid_rows, grid_cols = unique_tops.size, unique_lefts.size
    row_index = {int(top): index for index, top in enumerate(unique_tops)}
    # The grid tiles from (0, 0) (see _is_block_grid), so the pooled
    # current region spanning it is the leading grid_cols * block_size
    # columns — the frame may extend further right.
    pooled_cols = grid_cols * cells_per_block
    bounds = np.full((group_count, grid_rows, grid_cols, dys.size, dxs.size),
                     _KEY_SENTINEL, dtype=np.int64)
    # Column cell indices of every dx at once: the whole dx axis is one
    # gather + one reduction per dy, instead of a slice per candidate.
    column_cells = np.clip(dxs[:, None] + cell * np.arange(pooled_cols)[None, :],
                           0, width - cell)                    # (n_dx, cols)
    for dy_index, dy in enumerate(dys):
        valid_tops = unique_tops[(unique_tops + dy >= 0)
                                 & (unique_tops + dy <= height - block_size)]
        if valid_tops.size == 0:
            continue
        top0, top1 = int(valid_tops[0]), int(valid_tops[-1]) + block_size
        pooled_rows = (top1 - top0) // cell
        current_rows = pooled_current[:, top0 // cell:top0 // cell + pooled_rows,
                                      :pooled_cols]
        window_rows = pooled_windows[:, top0 + dy:top0 + dy
                                     + (top1 - top0):cell]
        gathered = window_rows[:, :, column_cells]   # (G, rows, n_dx, cols)
        difference = np.abs(current_rows[:, :, None, :] - gathered)
        cell_bounds = difference.reshape(
            group_count, pooled_rows // cells_per_block, cells_per_block,
            dxs.size, grid_cols, cells_per_block).sum(axis=(2, 5))
        bounds[:, row_index[top0]:row_index[top0] + cell_bounds.shape[1],
               :, dy_index, :] = cell_bounds.transpose(0, 1, 3, 2)
    # Candidates whose block leaves the frame horizontally were gathered
    # with clipped cells; mark them out of the running.
    lefts_grid = unique_lefts[:, None] + dxs[None, :]
    invalid_cols, invalid_dxs = np.nonzero(
        (lefts_grid < 0) | (lefts_grid > width - block_size))
    bounds[:, :, invalid_cols, :, invalid_dxs] = _KEY_SENTINEL
    return bounds.reshape(group_count, grid_rows * grid_cols,
                          dys.size * dxs.size)


def _candidate_ranks(dys: np.ndarray,
                     dxs: np.ndarray) -> Tuple[np.ndarray, np.ndarray,
                                               np.ndarray, np.ndarray]:
    """Flattened (dy, dx) axes plus the tie-break rank permutation.

    ``rank[c]`` is candidate ``c``'s position in the (|dy| + |dx|, dy,
    dx) order of :func:`best_displacement`; ``candidate_of_rank`` is its
    inverse.
    """
    dy_grid, dx_grid = np.meshgrid(dys, dxs, indexing="ij")
    dy_flat, dx_flat = dy_grid.ravel(), dx_grid.ravel()
    distance = np.abs(dy_flat) + np.abs(dx_flat)
    rank = np.empty(dy_flat.size, dtype=np.int64)
    rank[np.lexsort((dx_flat, dy_flat, distance))] = np.arange(dy_flat.size)
    candidate_of_rank = np.empty_like(rank)
    candidate_of_rank[rank] = np.arange(dy_flat.size)
    return dy_flat, dx_flat, rank, candidate_of_rank


#: Sentinel packed key larger than any real (sad, rank) combination.
_KEY_SENTINEL = np.int64(1) << 60


def full_search_winners(currents: np.ndarray, references: np.ndarray,
                        positions, block_size: int, search_range: int,
                        include_upper: bool = False,
                        windows: Optional[np.ndarray] = None,
                        saturate: Optional[int] = None, probes: int = 8,
                        survivor_budget: int = 48
                        ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Winning ``(dy, dx, sad)`` of every macroblock of a frame-pair stack.

    Bit-identical to running :func:`sad_surface` +
    :func:`best_displacement` per ``(frame pair, position)``, but usually
    far cheaper: candidates are screened with the successive-elimination
    lower bound ``|sum(block) - sum(window)| <= SAD`` (Li & Salari style),
    computed for every candidate at once from one integral image.  The
    ``probes`` candidates with the smallest bounds are scored exactly to
    seed the elimination threshold; only candidates whose bound does not
    exceed that exact SAD can still win (or tie), so only they are scored.
    Ties survive screening by construction (``bound <= sad``), and the
    winner among survivors is selected with the exact packed-key
    tie-break of :func:`best_displacements`.

    On low-residual content (pans, static scenes, tracked objects) a few
    percent of candidates survive; content with a high noise floor prunes
    poorly, so when survivors exceed ``survivor_budget`` per macroblock
    on average the search falls back to full :func:`sad_surfaces_many`
    surfaces — never much slower than the unscreened search.

    Returns int64 arrays ``(dy, dx, sad)`` of shape ``(G, len(positions))``.
    """
    currents = np.asarray(currents, dtype=np.int64)
    references = np.asarray(references)
    if currents.ndim != 3 or references.ndim != 3:
        raise ValueError("currents and references must be (G, H, W) stacks")
    group_count, height, width = references.shape
    if saturate is None:
        saturate = block_size * block_size * 255
    positions = list(positions)
    tops = np.array([top for top, _ in positions], dtype=np.intp)
    lefts = np.array([left for _, left in positions], dtype=np.intp)
    dys, dxs = displacement_grid(search_range, include_upper)
    dy_flat, dx_flat, rank, candidate_of_rank = _candidate_ranks(dys, dxs)
    candidate_count = dy_flat.size
    position_count = tops.size

    blocks = _gather_blocks(currents, tops, lefts, block_size)
    rows = tops[:, None] + dys[None, :]
    cols = lefts[:, None] + dxs[None, :]
    valid = (((rows >= 0) & (rows <= height - block_size))[:, :, None]
             & ((cols >= 0) & (cols <= width - block_size))[:, None, :]
             ).reshape(position_count, candidate_count)
    if (_is_block_grid(tops, lefts, block_size)
            and block_size % _SEA_CELL == 0
            and height % _SEA_CELL == 0 and width % _SEA_CELL == 0):
        # Multilevel partial-sum bounds: tight enough to prune through
        # reconstruction (quantisation) noise.
        bounds = _pooled_bounds_grid(currents, references, np.unique(tops),
                                     np.unique(lefts), block_size, dys, dxs)
    else:
        # Whole-block sums from one integral image (any position set).
        window_sums = _window_sums(references, block_size)
        block_sums = blocks.sum(axis=(-2, -1))
        rows_clipped = np.clip(rows, 0, height - block_size)
        cols_clipped = np.clip(cols, 0, width - block_size)
        candidate_sums = window_sums[:, rows_clipped[:, :, None],
                                     cols_clipped[:, None, :]].reshape(
            group_count, position_count, candidate_count)
        bounds = np.where(valid[None], np.abs(block_sums[:, :, None]
                                              - candidate_sums),
                          _KEY_SENTINEL)

    if windows is None:
        windows = candidate_windows_stacked(references, block_size)

    # Exact SADs of the `probes` most promising candidates seed the
    # elimination threshold.
    probes = max(1, min(probes, candidate_count))
    probe_candidates = np.argpartition(bounds, probes - 1,
                                       axis=-1)[..., :probes]
    probe_rows = np.clip(tops[None, :, None] + dy_flat[probe_candidates],
                         0, height - block_size)
    probe_cols = np.clip(lefts[None, :, None] + dx_flat[probe_candidates],
                         0, width - block_size)
    probe_windows = windows[np.arange(group_count)[:, None, None],
                            probe_rows, probe_cols]
    probe_sads = sad_reduce(probe_windows, blocks[:, :, None])
    probe_valid = np.take_along_axis(np.broadcast_to(valid[None], bounds.shape),
                                     probe_candidates, axis=-1)
    probe_keys = np.where(probe_valid,
                          probe_sads * candidate_count
                          + rank[probe_candidates], _KEY_SENTINEL)
    best_keys = probe_keys.min(axis=-1)
    has_valid = valid.any(axis=1)

    # Survivors: valid candidates whose bound could still beat (or tie)
    # the best exact SAD seen so far.
    threshold = np.where(has_valid[None], best_keys // candidate_count,
                         saturate)
    survivors = valid[None] & (bounds <= threshold[:, :, None])
    np.put_along_axis(survivors, probe_candidates, False, axis=-1)
    survivor_count = int(np.count_nonzero(survivors))
    if survivor_count > survivor_budget * group_count * position_count:
        # Screening is not discriminating (high-noise content): the full
        # surface pass is cheaper than gathering this many windows.
        surfaces = sad_surfaces_many(currents, references, positions,
                                     block_size, search_range, include_upper,
                                     windows=windows, saturate=saturate)
        return best_displacements(surfaces, dys, dxs)
    if survivor_count:
        group_index, position_index, candidate_index = np.nonzero(survivors)
        survivor_windows = windows[group_index,
                                   tops[position_index]
                                   + dy_flat[candidate_index],
                                   lefts[position_index]
                                   + dx_flat[candidate_index]]
        survivor_sads = sad_reduce(survivor_windows,
                                   blocks[group_index, position_index])
        survivor_keys = (survivor_sads * candidate_count
                         + rank[candidate_index])
        segments = group_index * position_count + position_index
        starts = np.flatnonzero(np.diff(segments, prepend=-1))
        minima = np.minimum.reduceat(survivor_keys, starts)
        flat_keys = best_keys.reshape(-1)
        flat_keys[segments[starts]] = np.minimum(flat_keys[segments[starts]],
                                                 minima)
        best_keys = flat_keys.reshape(group_count, position_count)

    # Out-of-frame candidates hold the saturated SAD in the full surface,
    # so they still compete for the winner with their own tie-break rank.
    invalid_rank = np.where(valid, _KEY_SENTINEL,
                            rank[None, :]).min(axis=1)
    invalid_keys = np.where(invalid_rank < _KEY_SENTINEL,
                            saturate * candidate_count + invalid_rank,
                            _KEY_SENTINEL)
    best_keys = np.minimum(best_keys, invalid_keys[None])
    winners = candidate_of_rank[best_keys % candidate_count]
    return (dy_flat[winners], dx_flat[winners],
            best_keys // candidate_count)
