"""Batched numeric kernels shared by the ME and video execution paths.

These are the vectorized primitives the workload layers build on: block
batching of frames, batched separable 2-D transforms, batched SAD and the
full-search SAD *surface* (every candidate displacement of a macroblock
scored in one call via sliding windows).  They are pure numpy — no
Python-level per-pixel or per-candidate loops — which is where the
engine's order-of-magnitude speedups over the legacy per-node simulation
come from.

All integer kernels use int64 throughout, so results are bit-exact
against the scalar reference implementations they replace.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

try:  # numpy >= 1.20
    from numpy.lib.stride_tricks import sliding_window_view
except ImportError:  # pragma: no cover - the toolchain bakes in numpy >= 1.20
    sliding_window_view = None


# -- frame <-> block batching ------------------------------------------------

def block_batch(frame: np.ndarray, block_size: int) -> np.ndarray:
    """All non-overlapping ``block_size`` blocks of a frame, raster order.

    Returns a ``(rows * cols, block_size, block_size)`` array; the frame
    must tile exactly (pad it first).
    """
    frame = np.asarray(frame)
    height, width = frame.shape
    if height % block_size or width % block_size:
        raise ValueError(
            f"{height}x{width} frame does not tile into {block_size}x"
            f"{block_size} blocks; pad it first")
    rows, cols = height // block_size, width // block_size
    blocks = frame.reshape(rows, block_size, cols, block_size).swapaxes(1, 2)
    return blocks.reshape(rows * cols, block_size, block_size)


def frame_from_block_batch(blocks: np.ndarray, height: int,
                           width: int) -> np.ndarray:
    """Inverse of :func:`block_batch`: reassemble the frame."""
    blocks = np.asarray(blocks)
    count, block_size, _ = blocks.shape
    rows, cols = height // block_size, width // block_size
    if count != rows * cols:
        raise ValueError(
            f"{count} blocks cannot tile a {height}x{width} frame "
            f"with {block_size}x{block_size} blocks")
    grid = blocks.reshape(rows, cols, block_size, block_size).swapaxes(1, 2)
    return grid.reshape(height, width)


# -- batched transforms ------------------------------------------------------

def batched_transform_2d(blocks: np.ndarray, matrix: np.ndarray,
                         inverse: bool = False) -> np.ndarray:
    """Separable 2-D transform of a ``(B, n, n)`` block batch.

    Computes ``M @ block @ M.T`` per block (or ``M.T @ block @ M`` with
    ``inverse=True``) through one broadcast matmul pair; each batch entry
    is the same 2-D GEMM the scalar path runs, so results match the
    per-block reference bit for bit.
    """
    blocks = np.asarray(blocks, dtype=np.float64)
    matrix = np.asarray(matrix, dtype=np.float64)
    if inverse:
        return matrix.T @ blocks @ matrix
    return matrix @ blocks @ matrix.T


# -- batched SAD -------------------------------------------------------------

def batched_sad(blocks_a: np.ndarray, blocks_b: np.ndarray) -> np.ndarray:
    """SAD of paired block batches: ``(B, n, n) x (B, n, n) -> (B,)``."""
    blocks_a = np.asarray(blocks_a, dtype=np.int64)
    blocks_b = np.asarray(blocks_b, dtype=np.int64)
    if blocks_a.shape != blocks_b.shape:
        raise ValueError(
            f"block batch shapes differ: {blocks_a.shape} vs {blocks_b.shape}")
    return np.abs(blocks_a - blocks_b).sum(axis=(-2, -1))


#: Value bound within which pixel differences still fit an int16, letting
#: the SAD kernels move 4x less memory than the int64 fallback.
_COMPACT_BOUND = 1 << 14


def _compact_dtype(*arrays) -> np.dtype:
    """int16 when every array's values keep differences inside int16.

    The bound is exclusive: two values of exactly ``+/-_COMPACT_BOUND``
    would produce a difference of ``2 * _COMPACT_BOUND = 32768``, one past
    ``int16`` range.
    """
    for array in arrays:
        if array.size and (array.min() <= -_COMPACT_BOUND
                           or array.max() >= _COMPACT_BOUND):
            return np.dtype(np.int64)
    return np.dtype(np.int16)


def candidate_windows(reference: np.ndarray, block_size: int) -> np.ndarray:
    """Sliding view of every ``block_size`` window of the reference frame.

    Shape ``(H - N + 1, W - N + 1, N, N)``; a zero-copy view suitable for
    scoring many macroblocks of the same frame (compute once, reuse).
    Ordinary 8-bit pixel frames are stored as int16 — SAD accumulation
    still happens in int64, so results are unchanged while the candidate
    gathers move a quarter of the memory.
    """
    reference = np.asarray(reference)
    dtype = _compact_dtype(reference)
    reference = np.ascontiguousarray(reference.astype(dtype, copy=False))
    if sliding_window_view is not None:
        return sliding_window_view(reference, (block_size, block_size))
    height, width = reference.shape  # pragma: no cover - numpy < 1.20 path
    out = np.empty((height - block_size + 1, width - block_size + 1,
                    block_size, block_size), dtype=np.int64)
    for dy in range(block_size):
        for dx in range(block_size):
            out[:, :, dy, dx] = reference[dy:dy + out.shape[0],
                                          dx:dx + out.shape[1]]
    return out


def displacement_grid(search_range: int,
                      include_upper: bool = False) -> Tuple[np.ndarray, np.ndarray]:
    """The ``(dy, dx)`` axes of a full-search window, raster order.

    Matches :func:`repro.me.full_search.candidate_displacements`: the
    window covers ``[-range, range)``, or ``[-range, range]`` with
    ``include_upper``.
    """
    upper = search_range + 1 if include_upper else search_range
    axis = np.arange(-search_range, upper)
    return axis, axis.copy()


def sad_surface(current: np.ndarray, reference: np.ndarray, top: int,
                left: int, block_size: int, search_range: int,
                include_upper: bool = False,
                windows: Optional[np.ndarray] = None,
                saturate: Optional[int] = None) -> np.ndarray:
    """SAD of *every* candidate displacement of one macroblock, in one call.

    Returns a ``(len(dys), len(dxs))`` int64 grid aligned with
    :func:`displacement_grid`; candidates that would read outside the
    reference frame hold the saturated SAD, matching the hardware's
    border handling.  Pass a precomputed ``windows`` view (from
    :func:`candidate_windows`) to amortise the setup across the
    macroblocks of a frame.
    """
    current = np.asarray(current, dtype=np.int64)
    reference = np.asarray(reference, dtype=np.int64)
    height, width = reference.shape
    block = current[top:top + block_size, left:left + block_size]
    if block.shape != (block_size, block_size):
        raise ValueError(
            f"block at ({top}, {left}) size {block_size} outside "
            f"{current.shape[0]}x{current.shape[1]} frame")
    if saturate is None:
        saturate = block_size * block_size * 255
    if windows is None:
        windows = candidate_windows(reference, block_size)

    dys, dxs = displacement_grid(search_range, include_upper)
    rows = top + dys
    cols = left + dxs
    valid_rows = (rows >= 0) & (rows <= height - block_size)
    valid_cols = (cols >= 0) & (cols <= width - block_size)

    surface = np.full((dys.size, dxs.size), saturate, dtype=np.int64)
    if valid_rows.any() and valid_cols.any():
        selected = windows[np.ix_(rows[valid_rows], cols[valid_cols])]
        sads = sad_reduce(selected, block)
        surface[np.ix_(valid_rows, valid_cols)] = sads
    return surface


def sad_reduce(selected: np.ndarray, block: np.ndarray) -> np.ndarray:
    """Sum-of-absolute-differences over the trailing block axes.

    Keeps the arithmetic in the windows' compact dtype when the block fits
    it too (differences cannot overflow within the compact bound) and
    accumulates in int64 either way, so results match the int64 path
    exactly.
    """
    if selected.dtype == np.int16 and _compact_dtype(block) == np.int16:
        block = block.astype(np.int16, copy=False)
    else:
        selected = selected.astype(np.int64, copy=False)
        block = block.astype(np.int64, copy=False)
    return np.abs(selected - block).sum(axis=(-2, -1), dtype=np.int64)


def best_displacement(surface: np.ndarray, dys: np.ndarray,
                      dxs: np.ndarray) -> Tuple[int, int, int]:
    """Winning ``(dy, dx, sad)`` of a SAD surface, hardware tie-breaking.

    Ties resolve toward the smallest ``|dy| + |dx|`` and then raster
    order of ``(dy, dx)`` — the comparator update rule of the systolic
    array and the candidate ordering of the software reference.
    """
    sads = surface.ravel()
    dy_grid, dx_grid = np.meshgrid(dys, dxs, indexing="ij")
    dy_flat, dx_flat = dy_grid.ravel(), dx_grid.ravel()
    distance = np.abs(dy_flat) + np.abs(dx_flat)
    winner = np.lexsort((dx_flat, dy_flat, distance, sads))[0]
    return int(dy_flat[winner]), int(dx_flat[winner]), int(sads[winner])
