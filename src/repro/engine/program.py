"""Batched, vectorized execution of mapped netlists.

This is the tentpole runtime: a netlist plus a set of
:class:`~repro.engine.ops.Op` bindings compiles once into a static
:class:`CompiledSchedule` — the topological node order, pre-resolved
fan-in source lists, combinational level structure and register set —
and :class:`VectorEngine` then advances the whole graph one clock cycle
at a time over **B** independent input streams simultaneously.  Every
node value is a ``(B,)`` int64 array, so one engine step does the work of
``B`` legacy :class:`~repro.core.simulator.DataflowSimulator` steps while
paying the Python dispatch cost only once.

Semantics match the legacy simulator exactly (the parity suite asserts
bit-exact traces): combinational nodes propagate within the cycle in
topological order, registered nodes present last cycle's committed value
during the cycle and expose the freshly computed one afterwards, and
externally driven values override behaviours for one step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.engine.trace import BatchTraceEntry, TraceEntry
from repro.core.clusters import ClusterKind
from repro.core.exceptions import SimulationError
from repro.core.netlist import Netlist
from repro.engine.ops import (
    VALUE_DTYPE,
    AbsDiffOp,
    AccumulateOp,
    ConstantOp,
    DiffOp,
    MinOp,
    Op,
    ScalarOp,
    SumOp,
    as_batch,
)


@dataclass(frozen=True)
class CompiledSchedule:
    """Static evaluation plan of one netlist.

    Attributes
    ----------
    order:
        Node names in the topological evaluation order used every cycle.
    fanin:
        Pre-resolved fan-in source names per node (duplicates collapsed,
        net insertion order preserved — the same dict-key order the
        legacy simulator hands to behaviours).
    levels:
        Combinational level structure: ``levels[i]`` holds the nodes whose
        longest combinational path from a register or primary input is
        ``i`` hops.  Registered sources break level chains.
    registered:
        Names of nodes whose ops commit through the register stage.
    """

    order: Tuple[str, ...]
    fanin: Mapping[str, Tuple[str, ...]]
    levels: Tuple[Tuple[str, ...], ...]
    registered: Tuple[str, ...]

    @property
    def depth(self) -> int:
        """Number of combinational levels (pipeline depth within a cycle)."""
        return len(self.levels)


def compile_schedule(netlist: Netlist,
                     registered: Mapping[str, bool]) -> CompiledSchedule:
    """Build the static evaluation plan for a netlist.

    ``registered`` marks the nodes whose outputs are committed between
    cycles; their outgoing edges do not extend combinational levels.
    """
    order = tuple(node.name for node in netlist.topological_order())
    # One pass over the nets (not one fanin() scan per node): the same
    # dict-key order the legacy simulator hands to behaviours.
    sources_of: Dict[str, List[str]] = {name: [] for name in order}
    for net in netlist.nets:
        sources = sources_of[net.sink]
        if net.source not in sources:
            sources.append(net.source)
    fanin: Dict[str, Tuple[str, ...]] = {
        name: tuple(sources) for name, sources in sources_of.items()}

    level_of: Dict[str, int] = {}
    for name in order:
        level = 0
        for source in fanin[name]:
            if source == name or registered.get(source, False):
                continue
            level = max(level, level_of.get(source, 0) + 1)
        level_of[name] = level
    depth = max(level_of.values(), default=-1) + 1
    levels = tuple(tuple(name for name in order if level_of[name] == index)
                   for index in range(depth))
    return CompiledSchedule(
        order=order,
        fanin=fanin,
        levels=levels,
        registered=tuple(name for name in order if registered.get(name, False)),
    )


class VectorEngine:
    """Cycle-based execution of a netlist over ``B`` parallel streams.

    Parameters
    ----------
    netlist:
        The dataflow graph to execute; validated on construction.
    batch:
        Number of independent input streams evaluated simultaneously.
        Every node value, drive and trace entry is a ``(batch,)`` array.

    Usage mirrors the legacy simulator: :meth:`bind` ops (or legacy scalar
    callables) to nodes, :meth:`drive` external stimulus, then
    :meth:`step` or :meth:`run`.  Set :attr:`record_trace` for per-node,
    per-cycle value capture (:attr:`trace`), and use
    :meth:`trace_for_stream` for the legacy single-stream view.
    """

    def __init__(self, netlist: Netlist, batch: int = 1) -> None:
        netlist.validate()
        if batch < 1:
            raise SimulationError("batch size must be at least 1")
        self.netlist = netlist
        self.batch = batch
        self._ops: Dict[str, Op] = {}
        self._registered: Dict[str, bool] = {}
        self._schedule: Optional[CompiledSchedule] = None
        self._values: Dict[str, np.ndarray] = {
            node.name: np.zeros(batch, dtype=VALUE_DTYPE)
            for node in netlist.nodes}
        self._pending: Dict[str, np.ndarray] = dict(self._values)
        self._drives: Dict[str, np.ndarray] = {}
        self.cycle = 0
        self.record_trace = False
        self.trace: List[BatchTraceEntry] = []

    # -- wiring -----------------------------------------------------------
    def bind(self, node_name: str, op, registered: Optional[bool] = None) -> None:
        """Attach a behaviour to a node.

        ``op`` is an :class:`~repro.engine.ops.Op` or a legacy scalar
        callable (wrapped in :class:`~repro.engine.ops.ScalarOp`).
        ``registered`` overrides the op's own flag when given.
        """
        if node_name not in self.netlist:
            raise SimulationError(f"cannot bind unknown node {node_name!r}")
        if not isinstance(op, Op):
            if not callable(op):
                raise SimulationError(
                    f"behaviour for {node_name!r} must be an Op or callable")
            op = ScalarOp(op, registered=bool(registered))
        self._ops[node_name] = op
        self._registered[node_name] = (op.registered if registered is None
                                       else bool(registered))
        op.reset(self.batch)
        self._schedule = None

    def bind_constant(self, node_name: str, value: int) -> None:
        """Drive a node with a constant value every cycle."""
        self.bind(node_name, ConstantOp(value), registered=False)

    def drive(self, node_name: str, value) -> None:
        """Override a node's output for the *next* step (external stimulus).

        ``value`` may be a scalar (broadcast over the batch) or a
        ``(batch,)`` array carrying one value per stream.
        """
        if node_name not in self.netlist:
            raise SimulationError(f"cannot drive unknown node {node_name!r}")
        self._drives[node_name] = as_batch(value, self.batch)

    # -- inspection -------------------------------------------------------
    def value_of(self, node_name: str) -> np.ndarray:
        """``(batch,)`` output of a node after the most recent step.

        The returned array is the engine's live state — treat it as
        read-only (copy before mutating), or later cycles will see the
        corruption.
        """
        try:
            return self._values[node_name]
        except KeyError:
            raise SimulationError(f"unknown node {node_name!r}") from None

    def values(self) -> Dict[str, np.ndarray]:
        """All node outputs after the most recent step.

        The dict is a fresh copy but the arrays are the engine's live
        state — treat them as read-only (copy before mutating).
        """
        return dict(self._values)

    @property
    def schedule(self) -> CompiledSchedule:
        """The static evaluation plan (compiled on first use)."""
        if self._schedule is None:
            self._schedule = compile_schedule(self.netlist, self._registered)
        return self._schedule

    def trace_for_stream(self, stream: int = 0) -> List[TraceEntry]:
        """Project one batch stream of the trace into legacy trace entries."""
        if not 0 <= stream < self.batch:
            raise SimulationError(
                f"stream {stream} outside batch of {self.batch}")
        return [TraceEntry(entry.cycle,
                           {name: int(values[stream])
                            for name, values in entry.values.items()})
                for entry in self.trace]

    # -- execution --------------------------------------------------------
    def reset(self) -> None:
        """Zero node values and the cycle counter; clear op state."""
        self._values = {node.name: np.zeros(self.batch, dtype=VALUE_DTYPE)
                        for node in self.netlist.nodes}
        self._pending = dict(self._values)
        self._drives.clear()
        self.cycle = 0
        self.trace.clear()
        for op in self._ops.values():
            op.reset(self.batch)

    def step(self) -> Dict[str, np.ndarray]:
        """Advance one clock cycle; returns the node values after the cycle."""
        schedule = self.schedule
        if self.cycle == 0 and not self._ops and not self._drives:
            raise SimulationError("no node behaviours bound; nothing to simulate")

        old = self._values
        new = dict(old)
        for name in schedule.order:
            if name in self._drives:
                new[name] = self._drives[name]
                continue
            op = self._ops.get(name)
            if op is None:
                continue
            inputs = {source: (old[source]
                               if self._registered.get(source, False)
                               else new[source])
                      for source in schedule.fanin[name]}
            result = as_batch(op.evaluate(inputs, self.batch), self.batch)
            if self._registered.get(name, False):
                self._pending[name] = result
                new[name] = old[name]
            else:
                new[name] = result
        for name in schedule.registered:
            new[name] = self._pending[name]

        self._values = new
        self._drives.clear()
        self.cycle += 1
        if self.record_trace:
            self.trace.append(BatchTraceEntry(self.cycle, dict(new)))
        return dict(new)

    def run(self, inputs: Optional[Mapping[str, np.ndarray]] = None,
            cycles: Optional[int] = None) -> Dict[str, np.ndarray]:
        """Stream inputs for ``cycles`` clock cycles; return the final values.

        ``inputs`` maps node names to per-cycle stimulus: an array whose
        first axis is time, shaped ``(cycles,)`` (broadcast over the
        batch) or ``(cycles, batch)``.  ``cycles`` defaults to the common
        stream length and must match every stream when both are given.
        """
        streams: Dict[str, np.ndarray] = {}
        if inputs:
            for name, values in inputs.items():
                if name not in self.netlist:
                    raise SimulationError(f"cannot drive unknown node {name!r}")
                array = np.asarray(values, dtype=VALUE_DTYPE)
                if array.ndim == 1:
                    array = np.repeat(array[:, None], self.batch, axis=1)
                if array.ndim != 2 or array.shape[1] != self.batch:
                    raise SimulationError(
                        f"input stream for {name!r} must be (cycles,) or "
                        f"(cycles, {self.batch}), got {array.shape}")
                streams[name] = array
            lengths = {array.shape[0] for array in streams.values()}
            if len(lengths) > 1:
                raise SimulationError(
                    f"input streams differ in length: {sorted(lengths)}")
            stream_cycles = lengths.pop()
            if cycles is None:
                cycles = stream_cycles
            elif cycles != stream_cycles:
                raise SimulationError(
                    f"cycles={cycles} does not match input stream length "
                    f"{stream_cycles}")
        if cycles is None:
            raise SimulationError("run() needs cycles or input streams")
        if cycles < 0:
            raise SimulationError("cycle count must be non-negative")

        values = dict(self._values)
        for index in range(cycles):
            for name, array in streams.items():
                self._drives[name] = array[index]
            values = self.step()
        return values


#: Default op constructors per netlist node role.
_ROLE_OPS: Dict[str, Callable[[], Op]] = {
    "adder": SumOp,
    "subtracter": DiffOp,
    "shift_register": lambda: SumOp(registered=True),
    "accumulator": AccumulateOp,
}

#: Default op constructors per cluster kind (role takes precedence).
_KIND_OPS: Dict[ClusterKind, Callable[[], Op]] = {
    ClusterKind.ADD_SHIFT: SumOp,
    ClusterKind.MEMORY: SumOp,
    ClusterKind.REGISTER_MUX: lambda: SumOp(registered=True),
    ClusterKind.ABS_DIFF: AbsDiffOp,
    ClusterKind.ADD_ACC: AccumulateOp,
    ClusterKind.COMPARATOR: MinOp,
}


def default_op_for(node) -> Op:
    """The engine's default behaviour for a netlist node.

    Roles map to the Table-1 row semantics (adder, subtracter, shift
    register, accumulator); unknown roles fall back to the cluster kind.
    These defaults give every compiled netlist an executable program, so
    flow passes can exercise a design without a hand-written datapath
    model.
    """
    builder = _ROLE_OPS.get(node.role)
    if builder is None:
        builder = _KIND_OPS.get(node.kind, SumOp)
    return builder()


def program_for_netlist(netlist: Netlist, batch: int = 1) -> VectorEngine:
    """An engine over ``netlist`` with default ops bound to every node."""
    engine = VectorEngine(netlist, batch=batch)
    for node in netlist.nodes:
        engine.bind(node.name, default_op_for(node))
    return engine
