"""Vectorized node behaviours for the batched execution engine.

The legacy :class:`~repro.core.simulator.DataflowSimulator` dispatches one
Python callable per node per cycle.  The engine replaces those callables
with :class:`Op` objects that evaluate a whole *batch* of independent
input streams at once: every node value is a numpy array of shape
``(B,)`` and an op maps the dict of fan-in arrays to one output array.

Two bridges keep the old world reachable:

* :class:`ScalarOp` wraps a legacy per-element Python callable so the
  compatibility wrapper can run unchanged user behaviours on the engine;
* every op exposes :meth:`Op.as_behaviour`, a scalar closure with the
  same arithmetic, which the parity tests bind onto the legacy simulator
  to prove the two runtimes agree bit for bit.

Statefulness follows the legacy contract: *registers* are handled by the
engine's commit step (an op only declares ``registered``), while ops that
genuinely accumulate across cycles (:class:`AccumulateOp`,
:class:`MinOp`) own per-batch state arrays reset via :meth:`Op.reset`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

#: dtype of every engine value array; wide enough for the worst-case SAD
#: and DA accumulator words the netlists produce.
VALUE_DTYPE = np.int64


def as_batch(value, batch: int) -> np.ndarray:
    """Coerce a scalar or array into a ``(batch,)`` int64 value array."""
    array = np.asarray(value, dtype=VALUE_DTYPE)
    if array.ndim == 0:
        return np.full(batch, int(array), dtype=VALUE_DTYPE)
    if array.shape != (batch,):
        raise ValueError(
            f"expected a scalar or shape ({batch},) array, got {array.shape}")
    return array


class Op:
    """One vectorized node behaviour.

    Attributes
    ----------
    registered:
        ``True`` delays the node's output by one cycle (the engine commits
        it between cycles), modelling a clocked output register.
    """

    registered: bool = False

    def reset(self, batch: int) -> None:
        """Clear any cross-cycle state for a batch of ``batch`` streams."""

    def evaluate(self, inputs: Dict[str, np.ndarray], batch: int) -> np.ndarray:
        """Map the fan-in value arrays to the node's ``(batch,)`` output."""
        raise NotImplementedError

    def as_behaviour(self) -> Callable[[Dict[str, int]], int]:
        """Equivalent scalar callable for the legacy simulator (parity)."""
        def behaviour(inputs: Dict[str, int]) -> int:
            batched = {name: np.asarray([value], dtype=VALUE_DTYPE)
                       for name, value in inputs.items()}
            return int(self.evaluate(batched, 1)[0])
        return behaviour

    def __repr__(self) -> str:
        return f"{type(self).__name__}(registered={self.registered})"


class ConstantOp(Op):
    """Drive a constant value every cycle (``bind_constant`` equivalent)."""

    def __init__(self, value: int) -> None:
        self.value = int(value)

    def evaluate(self, inputs: Dict[str, np.ndarray], batch: int) -> np.ndarray:
        return np.full(batch, self.value, dtype=VALUE_DTYPE)


class VectorOp(Op):
    """Wrap a user-supplied *vectorized* function over the fan-in dict."""

    def __init__(self, function: Callable[[Dict[str, np.ndarray]], np.ndarray],
                 registered: bool = False) -> None:
        self.function = function
        self.registered = registered

    def evaluate(self, inputs: Dict[str, np.ndarray], batch: int) -> np.ndarray:
        return as_batch(self.function(inputs), batch)


class ScalarOp(Op):
    """Wrap a legacy scalar behaviour, applied element-wise over the batch.

    This is the compatibility bridge: arbitrary Python callables (possibly
    closing over mutable state) cannot be vectorized automatically, so the
    engine evaluates them per stream.  With ``batch == 1`` — the
    :class:`~repro.core.simulator.DataflowSimulator` wrapper — the cost
    matches the legacy dispatch.
    """

    def __init__(self, behaviour: Callable[[Dict[str, int]], int],
                 registered: bool = False) -> None:
        self.behaviour = behaviour
        self.registered = registered

    def evaluate(self, inputs: Dict[str, np.ndarray], batch: int) -> np.ndarray:
        out = np.empty(batch, dtype=VALUE_DTYPE)
        for index in range(batch):
            element = {name: int(values[index])
                       for name, values in inputs.items()}
            out[index] = int(self.behaviour(element))
        return out

    def as_behaviour(self) -> Callable[[Dict[str, int]], int]:
        return self.behaviour


def _ordered(inputs: Dict[str, np.ndarray]) -> List[np.ndarray]:
    return list(inputs.values())


class SumOp(Op):
    """Sum of all fan-in values (an adder; identity for a single input)."""

    def __init__(self, registered: bool = False) -> None:
        self.registered = registered

    def evaluate(self, inputs: Dict[str, np.ndarray], batch: int) -> np.ndarray:
        values = _ordered(inputs)
        if not values:
            return np.zeros(batch, dtype=VALUE_DTYPE)
        total = values[0].astype(VALUE_DTYPE, copy=True)
        for value in values[1:]:
            total += value
        return total


class DiffOp(Op):
    """First fan-in minus the sum of the rest (a subtracter)."""

    def __init__(self, registered: bool = False) -> None:
        self.registered = registered

    def evaluate(self, inputs: Dict[str, np.ndarray], batch: int) -> np.ndarray:
        values = _ordered(inputs)
        if not values:
            return np.zeros(batch, dtype=VALUE_DTYPE)
        total = values[0].astype(VALUE_DTYPE, copy=True)
        for value in values[1:]:
            total -= value
        return total


class AbsDiffOp(Op):
    """``|a - b|`` of the first two fan-ins (``|a|`` for a single input)."""

    def __init__(self, registered: bool = False) -> None:
        self.registered = registered

    def evaluate(self, inputs: Dict[str, np.ndarray], batch: int) -> np.ndarray:
        values = _ordered(inputs)
        if not values:
            return np.zeros(batch, dtype=VALUE_DTYPE)
        if len(values) == 1:
            return np.abs(values[0]).astype(VALUE_DTYPE)
        return np.abs(values[0].astype(VALUE_DTYPE) - values[1]).astype(VALUE_DTYPE)


class AccumulateOp(Op):
    """Running sum of the fan-in total across cycles (an accumulator)."""

    def __init__(self, registered: bool = True) -> None:
        self.registered = registered
        self._state: Optional[np.ndarray] = None

    def reset(self, batch: int) -> None:
        self._state = np.zeros(batch, dtype=VALUE_DTYPE)

    def evaluate(self, inputs: Dict[str, np.ndarray], batch: int) -> np.ndarray:
        if self._state is None or self._state.shape != (batch,):
            self.reset(batch)
        increment = SumOp().evaluate(inputs, batch)
        self._state = self._state + increment
        return self._state

    def as_behaviour(self) -> Callable[[Dict[str, int]], int]:
        state = {"total": 0}

        def behaviour(inputs: Dict[str, int]) -> int:
            state["total"] += sum(inputs.values())
            return state["total"]
        return behaviour


class MinOp(Op):
    """Running minimum of the fan-in minimum across cycles (a comparator)."""

    def __init__(self, registered: bool = True,
                 initial: int = np.iinfo(VALUE_DTYPE).max) -> None:
        self.registered = registered
        self.initial = int(initial)
        self._state: Optional[np.ndarray] = None

    def reset(self, batch: int) -> None:
        self._state = np.full(batch, self.initial, dtype=VALUE_DTYPE)

    def evaluate(self, inputs: Dict[str, np.ndarray], batch: int) -> np.ndarray:
        if self._state is None or self._state.shape != (batch,):
            self.reset(batch)
        values = _ordered(inputs)
        if values:
            incoming = values[0]
            for value in values[1:]:
                incoming = np.minimum(incoming, value)
            self._state = np.minimum(self._state, incoming.astype(VALUE_DTYPE))
        return self._state

    def as_behaviour(self) -> Callable[[Dict[str, int]], int]:
        state = {"best": self.initial}

        def behaviour(inputs: Dict[str, int]) -> int:
            if inputs:
                state["best"] = min(state["best"], min(inputs.values()))
            return state["best"]
        return behaviour


class RomOp(Op):
    """Look the (clamped) fan-in sum up in a constant table."""

    def __init__(self, contents, registered: bool = False) -> None:
        self.contents = np.asarray(list(contents), dtype=VALUE_DTYPE)
        if self.contents.size == 0:
            raise ValueError("a ROM needs at least one word")
        self.registered = registered

    def evaluate(self, inputs: Dict[str, np.ndarray], batch: int) -> np.ndarray:
        address = SumOp().evaluate(inputs, batch)
        address = np.clip(address, 0, self.contents.size - 1)
        return self.contents[address]
