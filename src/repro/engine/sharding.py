"""Work sharding: sizing batches for a fixed pool of workers.

The GOP-parallel encoder and the batch compile entry points both face the
same planning question — ``T`` independent work items, ``W`` workers, how
big is each worker's contiguous batch?  These helpers centralise the
answer: balanced shard sizes (no shard differs by more than one item) in
input order, so results can be concatenated without reordering.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.exceptions import ConfigurationError


def shard_sizes(total: int, workers: int) -> List[int]:
    """Balanced per-shard item counts for ``total`` items over ``workers``.

    Produces ``min(total, workers)`` shards whose sizes differ by at most
    one, largest first (the classic ``divmod`` split).
    """
    if total < 0:
        raise ConfigurationError("cannot shard a negative item count")
    if workers <= 0:
        raise ConfigurationError("sharding needs at least one worker")
    shards = min(total, workers)
    if shards == 0:
        return []
    base, remainder = divmod(total, shards)
    return [base + (1 if index < remainder else 0) for index in range(shards)]


def shard_slices(total: int, workers: int) -> List[Tuple[int, int]]:
    """Contiguous ``(start, stop)`` index ranges realising :func:`shard_sizes`."""
    ranges: List[Tuple[int, int]] = []
    start = 0
    for size in shard_sizes(total, workers):
        ranges.append((start, start + size))
        start += size
    return ranges


def batch_groups(items: Sequence, group_size: int) -> List[List]:
    """Split ``items`` into consecutive groups of at most ``group_size``.

    The GOP lockstep encoder advances one group of GOPs per pass, so the
    group size is the effective batch width: ``workers`` GOPs encode
    simultaneously, and additional GOPs queue into following groups.
    """
    if group_size <= 0:
        raise ConfigurationError("batch groups need a positive size")
    items = list(items)
    return [items[start:start + group_size]
            for start in range(0, len(items), group_size)]


def group_by_key(items: Sequence, key: Callable[[object], object],
                 group_size: Optional[int] = None) -> List[List]:
    """Group ``items`` by ``key`` into batches of at most ``group_size``.

    The generalisation of :func:`batch_groups` to heterogeneous work:
    the serving benchmark uses it to measure a trace's batching
    opportunity — how a job mix partitions into *compatible* groups
    (same frame shape, same kernel, same quantiser), the upper bound on
    what any scheduler can fuse into one engine dispatch.  Groups come
    out in first-seen key order and each group preserves input order,
    so grouped results can be scattered back deterministically; an
    unbounded ``group_size`` (``None``) yields one group per distinct
    key.
    """
    if group_size is not None and group_size <= 0:
        raise ConfigurationError("batch groups need a positive size")
    grouped: "OrderedDict[object, List]" = OrderedDict()
    for item in items:
        grouped.setdefault(key(item), []).append(item)
    if group_size is None:
        return list(grouped.values())
    return [batch for members in grouped.values()
            for batch in batch_groups(members, group_size)]
