"""repro.engine — the batched, numpy-vectorized execution runtime.

One runtime executes every workload: mapped netlists run as compiled
static schedules over ``B`` parallel streams (:class:`VectorEngine`), and
the motion-estimation / video layers build on the batched numeric kernels
(:mod:`repro.engine.kernels`) so whole candidate windows and whole frames
of transform blocks are evaluated in single vectorized calls.

Layering (see README "Architecture"):

    fabric / clusters  →  flow (compile)  →  engine (execute)  →  workloads
"""

from repro.engine.kernels import (
    batched_sad,
    batched_transform_2d,
    best_displacement,
    best_displacements,
    block_batch,
    candidate_windows,
    candidate_windows_stacked,
    displacement_grid,
    frame_from_block_batch,
    sad_surface,
    sad_surfaces_many,
)
from repro.engine.sharding import (batch_groups, group_by_key, shard_sizes,
                                   shard_slices)
from repro.engine.ops import (
    AbsDiffOp,
    AccumulateOp,
    ConstantOp,
    DiffOp,
    MinOp,
    Op,
    RomOp,
    ScalarOp,
    SumOp,
    VectorOp,
)
from repro.engine.program import (
    BatchTraceEntry,
    CompiledSchedule,
    TraceEntry,
    VectorEngine,
    compile_schedule,
    default_op_for,
    program_for_netlist,
)

__all__ = [
    "AbsDiffOp",
    "AccumulateOp",
    "BatchTraceEntry",
    "CompiledSchedule",
    "ConstantOp",
    "DiffOp",
    "MinOp",
    "Op",
    "RomOp",
    "ScalarOp",
    "SumOp",
    "TraceEntry",
    "VectorEngine",
    "VectorOp",
    "batch_groups",
    "group_by_key",
    "batched_sad",
    "batched_transform_2d",
    "best_displacement",
    "best_displacements",
    "block_batch",
    "candidate_windows",
    "candidate_windows_stacked",
    "compile_schedule",
    "default_op_for",
    "displacement_grid",
    "frame_from_block_batch",
    "program_for_netlist",
    "sad_surface",
    "sad_surfaces_many",
    "shard_sizes",
    "shard_slices",
]
