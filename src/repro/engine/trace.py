"""Trace record types shared by the engine and the legacy simulator.

Kept in a leaf module (no ``repro`` imports) so both
:mod:`repro.core.simulator` and :mod:`repro.engine.program` can import
them without creating an import cycle between the two packages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np


@dataclass
class TraceEntry:
    """Values of every node output at the end of one cycle (one stream)."""

    cycle: int
    values: Dict[str, int]


@dataclass
class BatchTraceEntry:
    """Values of every node output at the end of one cycle, batch-wide.

    ``values`` maps node name to a ``(B,)`` array; use
    :meth:`repro.engine.program.VectorEngine.trace_for_stream` to project
    one stream into the legacy :class:`TraceEntry` shape.
    """

    cycle: int
    values: Dict[str, np.ndarray]
