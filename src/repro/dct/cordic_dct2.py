"""Scaled CORDIC DCT implementation #2 (Fig. 7 of the paper).

The scaled architecture (Sec. 3.4, after [9]) differs from the first
CORDIC implementation in two ways the paper lists explicitly: it uses 20
butterfly adders instead of 16 and only 3 CORDIC rotators instead of 6.
The reduction in rotators is obtained by (a) replacing the pi/4 rotation
of the even half with a plain add/subtract pair whose cos(pi/4) factor is
absorbed into the output scale, (b) leaving the CORDIC gain uncompensated,
and (c) time-sharing each remaining physical rotator between the two
vector pairs that need its angle, at the price of extra operand-staging
adders and a longer schedule.  "The constant scale factor is not
considered in this implementation as that can be combined with the
quantization constants without requiring any extra hardware."

:meth:`forward` therefore returns *scaled* coefficients; the per-output
factors are exposed as :attr:`scale_factors` and
:meth:`forward_normalised` applies them (which is what the quantiser of
:mod:`repro.dct.quantization` does in the encoder pipeline).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from repro.core.clusters import ClusterKind
from repro.core.netlist import Netlist
from repro.dct.cordic import DEFAULT_FRAC_BITS, DEFAULT_ITERATIONS, CordicRotator, cordic_gain
from repro.dct.reference import DEFAULT_N, normalisation_factors

FIG7_INPUT_BITS = 12
FIG7_ACC_BITS = 16
FIG7_ROM_WORDS = 4
FIG7_ROM_WORD_BITS = 16

_SQRT2 = math.sqrt(2.0)


class CordicDCT2(object):
    """Scaled CORDIC DCT with 3 rotators and 20 butterfly adders."""

    name = "cordic_2"
    figure = "Fig. 7"
    target_array = "da_array"

    def __init__(self, size: int = DEFAULT_N,
                 iterations: int = DEFAULT_ITERATIONS,
                 frac_bits: int = DEFAULT_FRAC_BITS) -> None:
        if size != DEFAULT_N:
            raise ValueError("the CORDIC factorisation is specific to the 8-point DCT")
        self.size = size
        self.iterations = iterations
        self._factors = normalisation_factors(size)
        gain = cordic_gain(iterations)
        # Three physical rotators, gain left uncompensated (scaled outputs).
        self._rot_eighth = CordicRotator(math.pi / 8, iterations, frac_bits,
                                         compensate_gain=False)
        self._rot_sixteenth = CordicRotator(math.pi / 16, iterations, frac_bits,
                                            compensate_gain=False)
        self._rot_three_sixteenth = CordicRotator(3 * math.pi / 16, iterations,
                                                  frac_bits, compensate_gain=False)
        # Per-output factors that turn the scaled outputs back into the
        # normalised DCT: X(u) = scale_factors[u] * Y(u).
        self.scale_factors = np.array([
            self._factors[0],             # X0 = c0 + c1
            self._factors[1] / gain,      # odd outputs carry the CORDIC gain
            self._factors[2] / gain,
            self._factors[3] / gain,
            self._factors[4] / _SQRT2,    # X4 = (c0 - c1), cos(pi/4) folded
            self._factors[5] / gain,
            self._factors[6] / gain,
            self._factors[7] / gain,
        ])

    @property
    def rotator_count(self) -> int:
        """Number of physical CORDIC rotators (paper: 3)."""
        return 3

    @property
    def butterfly_adder_count(self) -> int:
        """Number of butterfly adders (paper: 20)."""
        return 20

    @property
    def cycles_per_transform(self) -> int:
        """Latency: the time-shared odd rotators need two passes."""
        return FIG7_INPUT_BITS + 2 + 2 * self.iterations + 1

    def forward(self, samples: Sequence[int]) -> np.ndarray:
        """Scaled 1-D DCT: returns Y(u) with X(u) = scale_factors[u] * Y(u)."""
        x = [float(s) for s in samples]
        if len(x) != self.size:
            raise ValueError(f"expected {self.size} samples, got {len(x)}")

        a = [x[i] + x[7 - i] for i in range(4)]
        b = [x[i] - x[7 - i] for i in range(4)]

        # Even half: the pi/4 rotation is replaced by a plain butterfly.
        c0, c1 = a[0] + a[3], a[1] + a[2]
        d0, d1 = a[0] - a[3], a[1] - a[2]
        y0 = c0 + c1
        y4 = c0 - c1
        rf_x, rf_y = self._rot_eighth.rotate(d0, d1)
        y2 = rf_x
        y6 = -rf_y

        # Odd half: each angle's physical rotator processes two pairs
        # (time-shared in hardware; sequential calls here).
        ra_x, ra_y = self._rot_sixteenth.rotate(b[0], b[3])        # pass 1
        rd_x, rd_y = self._rot_sixteenth.rotate(b[2], b[1])        # pass 2
        rb_x, rb_y = self._rot_three_sixteenth.rotate(b[1], b[2])  # pass 1
        rc_x, rc_y = self._rot_three_sixteenth.rotate(b[3], b[0])  # pass 2
        y1 = ra_x + rb_x
        y3 = rc_y - rd_x
        y5 = rc_x - rd_y
        y7 = rb_y - ra_y

        return np.array([y0, y1, y2, y3, y4, y5, y6, y7])

    def forward_normalised(self, samples: Sequence[int]) -> np.ndarray:
        """Normalised DCT outputs (scale factors applied, for validation)."""
        return self.forward(samples) * self.scale_factors

    def forward_2d(self, block: np.ndarray) -> np.ndarray:
        """Separable 2-D scaled DCT; the row/column scale factors compose.

        Returns normalised coefficients so the result is directly
        comparable with :func:`repro.dct.reference.dct_2d`; an encoder
        would instead keep the scaled values and fold the factors into its
        quantisation matrix.
        """
        block = np.asarray(block)
        if block.shape != (self.size, self.size):
            raise ValueError(f"expected {self.size}x{self.size} block")
        rows = np.array([self.forward_normalised(row) for row in block.astype(np.int64)])
        rows = np.rint(rows).astype(np.int64)
        columns = np.array([self.forward_normalised(col) for col in rows.T])
        return columns.T

    def build_netlist(self) -> Netlist:
        """Structural netlist of Fig. 7 (Table 1 "CORDIC 2" column).

        Ten adder-configured and ten subtracter-configured Add-Shift
        clusters (the 20 butterfly adders), six shift registers serialising
        the three rotator input pairs, and three rotators of two
        shift-accumulators plus two angle ROMs each.
        """
        netlist = Netlist(self.name)
        for lane in range(6):
            netlist.add_node(f"shift_reg_{lane}", ClusterKind.ADD_SHIFT,
                             width_bits=FIG7_INPUT_BITS, role="shift_register")
        for i in range(10):
            netlist.add_node(f"butterfly_add_{i}", ClusterKind.ADD_SHIFT,
                             width_bits=FIG7_ACC_BITS, role="adder")
            netlist.add_node(f"butterfly_sub_{i}", ClusterKind.ADD_SHIFT,
                             width_bits=FIG7_ACC_BITS, role="subtracter")
        for r in range(3):
            for axis in ("x", "y"):
                netlist.add_node(f"rot{r}_acc_{axis}", ClusterKind.ADD_SHIFT,
                                 width_bits=FIG7_ACC_BITS, role="accumulator")
                netlist.add_node(f"rot{r}_rom_{axis}", ClusterKind.MEMORY,
                                 width_bits=FIG7_ROM_WORD_BITS, role="rom",
                                 depth_words=FIG7_ROM_WORDS)

        # Stage-1 butterflies (indices 0-3) and even second stage (4-5).
        for i in range(4):
            netlist.connect(f"butterfly_add_{i}", f"butterfly_add_{4 + i % 2}", FIG7_ACC_BITS)
            netlist.connect(f"butterfly_add_{i}", f"butterfly_sub_{4 + i % 2}", FIG7_ACC_BITS)
        # Even outputs X0/X4 come from butterfly pair 6.
        netlist.connect("butterfly_add_4", "butterfly_add_6", FIG7_ACC_BITS)
        netlist.connect("butterfly_add_5", "butterfly_add_6", FIG7_ACC_BITS)
        netlist.connect("butterfly_add_4", "butterfly_sub_6", FIG7_ACC_BITS)
        netlist.connect("butterfly_add_5", "butterfly_sub_6", FIG7_ACC_BITS)
        # Operand staging for the time-shared odd rotators (pairs 7-8) and
        # the pi/8 rotator inputs (pair 9 carries d0/d1).
        for stage, rotator in ((7, 1), (8, 2)):
            netlist.connect(f"butterfly_sub_{stage - 7}", f"butterfly_add_{stage}", FIG7_ACC_BITS)
            netlist.connect(f"butterfly_sub_{stage - 5}", f"butterfly_add_{stage}", FIG7_ACC_BITS)
            netlist.connect(f"butterfly_sub_{stage - 7}", f"butterfly_sub_{stage}", FIG7_ACC_BITS)
            netlist.connect(f"butterfly_sub_{stage - 5}", f"butterfly_sub_{stage}", FIG7_ACC_BITS)
        netlist.connect("butterfly_sub_4", "butterfly_add_9", FIG7_ACC_BITS)
        netlist.connect("butterfly_sub_5", "butterfly_add_9", FIG7_ACC_BITS)
        netlist.connect("butterfly_sub_4", "butterfly_sub_9", FIG7_ACC_BITS)
        netlist.connect("butterfly_sub_5", "butterfly_sub_9", FIG7_ACC_BITS)

        # Shift registers serialise the rotator operands.
        rotator_sources = (("butterfly_add_9", "butterfly_sub_9"),
                           ("butterfly_add_7", "butterfly_sub_7"),
                           ("butterfly_add_8", "butterfly_sub_8"))
        for r, (src_x, src_y) in enumerate(rotator_sources):
            netlist.connect(src_x, f"shift_reg_{2 * r}", FIG7_ACC_BITS)
            netlist.connect(src_y, f"shift_reg_{2 * r + 1}", FIG7_ACC_BITS)
            for axis, lane in (("x", 2 * r), ("y", 2 * r + 1)):
                netlist.connect(f"shift_reg_{lane}", f"rot{r}_acc_{axis}", 1)
                netlist.connect(f"rot{r}_rom_{axis}", f"rot{r}_acc_{axis}",
                                FIG7_ROM_WORD_BITS)
        return netlist
