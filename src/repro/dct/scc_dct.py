"""Skew-circular-convolution DCT implementations after Li (Figs. 8 and 9).

Li's algorithm [11] reorders the DCT's inputs and outputs so that the
computation becomes a (skew-)circular convolution, which maps naturally
onto Distributed Arithmetic.  The key number-theoretic fact is that 3
generates the odd residues modulo 32 up to sign: every odd index
``u in {1, 3, 5, 7}`` can be written as ``+-3**e(u) (mod 32)``, and because
the cosine is even the DCT kernel entry for odd input index ``2i+1`` and
odd output index ``2k+1`` becomes

    cos((2i+1)(2k+1) * pi / 16) = C[(e(2i+1) + e(2k+1)) mod 8],
    C[m] = cos(3**m * pi / 16)

— a convolution in the exponent domain.  Two array mappings are provided:

* :class:`SCCEvenOddDCT` (Fig. 8): the input butterfly splits the samples
  into sums/differences; odd-indexed outputs are produced by the
  skew-circular convolution above and even-indexed outputs by a 4-point
  DCT, both as 4-input DA channels with 16-word ROMs.
* :class:`SCCDirectDCT` (Fig. 9): no input adders/subtracters at all; all
  eight outputs are produced by 8-input DA channels whose 256-word ROMs
  hold the convolution kernel partial sums — "16 times more [ROM] than the
  previous implementation but does not require adder/subtracters".
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.clusters import ClusterKind
from repro.core.netlist import Netlist
from repro.dct.distributed_arithmetic import DALookupTable, DAQuantisation
from repro.dct.mixed_rom import even_matrix
from repro.dct.reference import DEFAULT_N, dct_matrix, normalisation_factors

FIG8_ROM_WORDS = 16
FIG9_ROM_WORDS = 256
SCC_ROM_WORD_BITS = 8
SCC_INPUT_BITS = 12
SCC_ACC_BITS = 16


def generator_exponents(size: int = DEFAULT_N) -> Dict[int, int]:
    """Exponent ``e(u)`` with ``u = +-3**e(u) (mod 4*size)`` for odd ``u``.

    For the 8-point DCT (modulus 32) the mapping is
    ``{1: 0, 3: 1, 5: 3, 7: 6}``.
    """
    modulus = 4 * size
    exponents: Dict[int, int] = {}
    value = 1
    for exponent in range(2 * size):
        for candidate in (value % modulus, (-value) % modulus):
            if candidate % 2 == 1 and candidate < 2 * size and candidate not in exponents:
                exponents[candidate] = exponent % size
        value = (value * 3) % modulus
    return exponents


def convolution_kernel(size: int = DEFAULT_N) -> np.ndarray:
    """The kernel values ``C[m] = cos(3**m * pi / (2*size))``."""
    modulus = 4 * size
    kernel = np.zeros(size)
    value = 1
    for m in range(size):
        kernel[m] = np.cos(value * np.pi / (2 * size))
        value = (value * 3) % modulus
    return kernel


def odd_scc_matrix(size: int = DEFAULT_N) -> np.ndarray:
    """Normalised odd-output matrix expressed through the SCC kernel.

    Row ``k`` (output ``2k+1``), column ``i`` (difference ``b_i``) holds
    ``c(2k+1) * C[(e(2i+1) + e(2k+1)) mod size]`` — identical in value to
    the direct odd matrix, but built from the reordered kernel, which is
    what the ROM generator of the array flow stores.
    """
    factors = normalisation_factors(size)
    exponents = generator_exponents(size)
    kernel = convolution_kernel(size)
    half = size // 2
    matrix = np.zeros((half, half))
    for k in range(half):
        for i in range(half):
            index = (exponents[2 * i + 1] + exponents[2 * k + 1]) % size
            matrix[k, i] = factors[2 * k + 1] * kernel[index]
    return matrix


class SCCEvenOddDCT:
    """Li's algorithm with even/odd split and 16-word ROMs (Fig. 8)."""

    name = "scc_even_odd"
    figure = "Fig. 8"
    target_array = "da_array"

    def __init__(self, size: int = DEFAULT_N,
                 quantisation: Optional[DAQuantisation] = None) -> None:
        if size % 2:
            raise ValueError("the even/odd split needs an even transform size")
        self.size = size
        base = quantisation or DAQuantisation(input_bits=SCC_INPUT_BITS)
        self.quantisation = DAQuantisation(
            input_bits=base.input_bits + 1,
            coeff_frac_bits=base.coeff_frac_bits,
            accumulator_bits=max(base.accumulator_bits,
                                 base.input_bits + 1 + base.coeff_frac_bits + 4),
        )
        self.odd_luts: List[DALookupTable] = [
            DALookupTable(row, self.quantisation) for row in odd_scc_matrix(size)
        ]
        self.even_luts: List[DALookupTable] = [
            DALookupTable(row, self.quantisation) for row in even_matrix(size)
        ]

    @property
    def cycles_per_transform(self) -> int:
        """Input butterfly plus bit-serial DA over the widened operands."""
        return self.quantisation.input_bits + 1

    def forward(self, samples: Sequence[int]) -> np.ndarray:
        """1-D DCT of ``size`` integer samples (real-valued outputs)."""
        samples = [int(s) for s in samples]
        if len(samples) != self.size:
            raise ValueError(f"expected {self.size} samples, got {len(samples)}")
        half = self.size // 2
        sums = [samples[i] + samples[self.size - 1 - i] for i in range(half)]
        diffs = [samples[i] - samples[self.size - 1 - i] for i in range(half)]
        outputs = np.zeros(self.size)
        for k in range(half):
            outputs[2 * k] = self.even_luts[k].dot_float(sums)
            outputs[2 * k + 1] = self.odd_luts[k].dot_float(diffs)
        return outputs

    def forward_2d(self, block: np.ndarray) -> np.ndarray:
        """Separable 2-D DCT (row pass, rounding, column pass)."""
        block = np.asarray(block)
        if block.shape != (self.size, self.size):
            raise ValueError(f"expected {self.size}x{self.size} block")
        rows = np.array([self.forward(row) for row in block.astype(np.int64)])
        rows = np.rint(rows).astype(np.int64)
        columns = np.array([self.forward(col) for col in rows.T])
        return columns.T

    def build_netlist(self) -> Netlist:
        """Structural netlist of Fig. 8 (Table 1 "SCC EVEN/ODD" column)."""
        netlist = Netlist(self.name)
        half = self.size // 2
        for i in range(half):
            netlist.add_node(f"reorder_add_{i}", ClusterKind.ADD_SHIFT,
                             width_bits=SCC_INPUT_BITS + 1, role="adder")
            netlist.add_node(f"reorder_sub_{i}", ClusterKind.ADD_SHIFT,
                             width_bits=SCC_INPUT_BITS + 1, role="subtracter")
        for lane in range(self.size):
            netlist.add_node(f"shift_reg_{lane}", ClusterKind.ADD_SHIFT,
                             width_bits=SCC_INPUT_BITS + 1, role="shift_register")
            netlist.add_node(f"rom_{lane}", ClusterKind.MEMORY,
                             width_bits=SCC_ROM_WORD_BITS, role="rom",
                             depth_words=FIG8_ROM_WORDS)
            netlist.add_node(f"shift_acc_{lane}", ClusterKind.ADD_SHIFT,
                             width_bits=SCC_ACC_BITS, role="accumulator")
        for i in range(half):
            netlist.connect(f"reorder_add_{i}", f"shift_reg_{2 * i}",
                            width_bits=SCC_INPUT_BITS + 1)
            netlist.connect(f"reorder_sub_{i}", f"shift_reg_{2 * i + 1}",
                            width_bits=SCC_INPUT_BITS + 1)
        for lane in range(self.size):
            partner_lanes = range(0, self.size, 2) if lane % 2 == 0 else range(1, self.size, 2)
            for rom_lane in partner_lanes:
                netlist.connect(f"shift_reg_{lane}", f"rom_{rom_lane}", width_bits=1)
            netlist.connect(f"rom_{lane}", f"shift_acc_{lane}",
                            width_bits=SCC_ROM_WORD_BITS)
        return netlist


class SCCDirectDCT:
    """Li's algorithm in direct form: large ROMs, no input adders (Fig. 9)."""

    name = "scc_direct"
    figure = "Fig. 9"
    target_array = "da_array"

    def __init__(self, size: int = DEFAULT_N,
                 quantisation: Optional[DAQuantisation] = None) -> None:
        self.size = size
        self.quantisation = quantisation or DAQuantisation(input_bits=SCC_INPUT_BITS)
        # The ROM generator stores the full 8-input partial-sum tables of
        # the (reordered) kernel rows; numerically these coincide with the
        # direct DCT matrix rows, so the LUTs are built from the latter.
        matrix = dct_matrix(size)
        self.lookup_tables: List[DALookupTable] = [
            DALookupTable(matrix[u], self.quantisation) for u in range(size)
        ]

    @property
    def cycles_per_transform(self) -> int:
        """Pure bit-serial DA: no butterfly stage ahead of the shift registers."""
        return self.quantisation.input_bits

    def forward(self, samples: Sequence[int]) -> np.ndarray:
        """1-D DCT of ``size`` integer samples (real-valued outputs)."""
        samples = list(samples)
        if len(samples) != self.size:
            raise ValueError(f"expected {self.size} samples, got {len(samples)}")
        return np.array([lut.dot_float(samples) for lut in self.lookup_tables])

    def forward_2d(self, block: np.ndarray) -> np.ndarray:
        """Separable 2-D DCT (row pass, rounding, column pass)."""
        block = np.asarray(block)
        if block.shape != (self.size, self.size):
            raise ValueError(f"expected {self.size}x{self.size} block")
        rows = np.array([self.forward(row) for row in block.astype(np.int64)])
        rows = np.rint(rows).astype(np.int64)
        columns = np.array([self.forward(col) for col in rows.T])
        return columns.T

    def build_netlist(self) -> Netlist:
        """Structural netlist of Fig. 9 (Table 1 "SCC" column)."""
        netlist = Netlist(self.name)
        for lane in range(self.size):
            netlist.add_node(f"shift_reg_{lane}", ClusterKind.ADD_SHIFT,
                             width_bits=SCC_INPUT_BITS, role="shift_register")
            netlist.add_node(f"rom_{lane}", ClusterKind.MEMORY,
                             width_bits=SCC_ROM_WORD_BITS, role="rom",
                             depth_words=FIG9_ROM_WORDS)
            netlist.add_node(f"shift_acc_{lane}", ClusterKind.ADD_SHIFT,
                             width_bits=SCC_ACC_BITS, role="accumulator")
        for lane in range(self.size):
            for rom_lane in range(self.size):
                netlist.connect(f"shift_reg_{lane}", f"rom_{rom_lane}", width_bits=1)
            netlist.connect(f"rom_{lane}", f"shift_acc_{lane}",
                            width_bits=SCC_ROM_WORD_BITS)
        return netlist
