"""Floating-point reference DCT used to validate every mapped implementation.

The paper's Sec. 3.1 gives the 1-D N-point DCT as

    X(u) = c(u) * sum_{i=0}^{N-1} x(i) * cos((2i+1) * u * pi / (2N))

This module uses the orthonormal convention ``c(0) = sqrt(1/N)`` and
``c(u) = sqrt(2/N)`` for ``u > 0``, which makes the transform matrix
orthogonal so the inverse is simply the transpose.  All mapped
implementations (Figs. 4–9) are validated against these functions within
their fixed-point precision.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Tuple

import numpy as np

#: Default transform size throughout the paper (8-point DCT, 8x8 blocks).
DEFAULT_N = 8


@lru_cache(maxsize=None)
def dct_matrix(n: int = DEFAULT_N) -> np.ndarray:
    """Orthonormal DCT-II matrix of size ``n`` (rows are basis vectors)."""
    if n <= 0:
        raise ValueError("transform size must be positive")
    matrix = np.zeros((n, n), dtype=np.float64)
    for u in range(n):
        scale = np.sqrt(1.0 / n) if u == 0 else np.sqrt(2.0 / n)
        for i in range(n):
            matrix[u, i] = scale * np.cos((2 * i + 1) * u * np.pi / (2 * n))
    return matrix


def dct_1d(samples: np.ndarray, n: int = DEFAULT_N) -> np.ndarray:
    """Orthonormal 1-D DCT-II of a length-``n`` vector."""
    samples = np.asarray(samples, dtype=np.float64)
    if samples.shape[-1] != n:
        raise ValueError(f"expected a length-{n} vector, got shape {samples.shape}")
    return dct_matrix(n) @ samples


def idct_1d(coefficients: np.ndarray, n: int = DEFAULT_N) -> np.ndarray:
    """Inverse of :func:`dct_1d` (the matrix is orthogonal)."""
    coefficients = np.asarray(coefficients, dtype=np.float64)
    if coefficients.shape[-1] != n:
        raise ValueError(f"expected a length-{n} vector, got shape {coefficients.shape}")
    return dct_matrix(n).T @ coefficients


def dct_2d(block: np.ndarray, n: int = DEFAULT_N) -> np.ndarray:
    """Separable 2-D DCT of an ``n`` x ``n`` block (rows then columns)."""
    block = np.asarray(block, dtype=np.float64)
    if block.shape != (n, n):
        raise ValueError(f"expected an {n}x{n} block, got shape {block.shape}")
    matrix = dct_matrix(n)
    return matrix @ block @ matrix.T


def idct_2d(coefficients: np.ndarray, n: int = DEFAULT_N) -> np.ndarray:
    """Inverse 2-D DCT of an ``n`` x ``n`` coefficient block."""
    coefficients = np.asarray(coefficients, dtype=np.float64)
    if coefficients.shape != (n, n):
        raise ValueError(f"expected an {n}x{n} block, got shape {coefficients.shape}")
    matrix = dct_matrix(n)
    return matrix.T @ coefficients @ matrix


def dct_2d_batched(blocks: np.ndarray, n: int = DEFAULT_N) -> np.ndarray:
    """Separable 2-D DCT of a ``(B, n, n)`` batch of blocks in one call.

    Each batch entry runs the same ``M @ block @ M.T`` GEMM pair as
    :func:`dct_2d`, so the result is bit-identical to transforming the
    blocks one at a time — this is the engine-backed path the batched
    video encoder uses to transform a whole frame per call.
    """
    from repro.engine.kernels import batched_transform_2d

    blocks = np.asarray(blocks, dtype=np.float64)
    if blocks.ndim != 3 or blocks.shape[-2:] != (n, n):
        raise ValueError(f"expected a (B, {n}, {n}) batch, got {blocks.shape}")
    return batched_transform_2d(blocks, dct_matrix(n))


def idct_2d_batched(coefficients: np.ndarray, n: int = DEFAULT_N) -> np.ndarray:
    """Inverse of :func:`dct_2d_batched` (batched ``M.T @ block @ M``)."""
    from repro.engine.kernels import batched_transform_2d

    coefficients = np.asarray(coefficients, dtype=np.float64)
    if coefficients.ndim != 3 or coefficients.shape[-2:] != (n, n):
        raise ValueError(
            f"expected a (B, {n}, {n}) batch, got {coefficients.shape}")
    return batched_transform_2d(coefficients, dct_matrix(n), inverse=True)


def unnormalised_dct_1d(samples: np.ndarray, n: int = DEFAULT_N) -> np.ndarray:
    """Raw cosine sums ``sum_i x(i) cos((2i+1) u pi / (2N))`` without c(u).

    The hardware datapaths naturally produce these raw sums; the ``c(u)``
    normalisation is a per-output constant that implementations fold into
    their output scaling (or, for the scaled CORDIC architecture, into the
    quantiser).
    """
    samples = np.asarray(samples, dtype=np.float64)
    if samples.shape[-1] != n:
        raise ValueError(f"expected a length-{n} vector, got shape {samples.shape}")
    basis = np.zeros((n, n), dtype=np.float64)
    for u in range(n):
        for i in range(n):
            basis[u, i] = np.cos((2 * i + 1) * u * np.pi / (2 * n))
    return basis @ samples


def normalisation_factors(n: int = DEFAULT_N) -> np.ndarray:
    """The per-output c(u) factors of the paper's DCT definition."""
    factors = np.full(n, np.sqrt(2.0 / n))
    factors[0] = np.sqrt(1.0 / n)
    return factors


def reconstruction_error(block: np.ndarray, coefficients: np.ndarray,
                         n: int = DEFAULT_N) -> float:
    """Max absolute error between ``block`` and the inverse of ``coefficients``."""
    return float(np.max(np.abs(np.asarray(block, dtype=np.float64)
                               - idct_2d(coefficients, n))))
