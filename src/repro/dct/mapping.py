"""Table-1 reference data and deprecated DCT mapping shims.

The authoritative compile path for the DCT implementations is the unified
pass pipeline of :mod:`repro.flow`::

    from repro.flow import compile, compile_many
    from repro.dct import dct_implementations

    results = compile_many(dct_implementations())   # five FlowResults

This module keeps the published Table-1 reference values (``PAPER_TABLE1``,
``TABLE1_ORDER``, ``PAPER_COLUMN_LABELS``), the implementation factory and
the row formatter, plus the legacy entry points
:func:`map_implementation` / :func:`generate_table1` as deprecation shims
that now run through the flow and repackage its :class:`FlowResult`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro._compat import legacy_flow, warn_deprecated
from repro.arrays.da_array import DAArrayGeometry, build_da_array
from repro.core.clusters import ClusterUsage
from repro.core.fabric import Fabric
from repro.core.mapper import Placement
from repro.core.metrics import DesignMetrics
from repro.core.netlist import Netlist
from repro.core.router import RoutingResult
from repro.flow import FlowResult
from repro.dct.cordic_dct1 import CordicDCT1
from repro.dct.cordic_dct2 import CordicDCT2
from repro.dct.da_dct import DistributedArithmeticDCT
from repro.dct.mixed_rom import MixedRomDCT
from repro.dct.scc_dct import SCCDirectDCT, SCCEvenOddDCT

#: Table 1 of the paper, row for row.  Keys are implementation names, the
#: inner dictionaries use the same keys as
#: :meth:`repro.core.clusters.ClusterUsage.as_table_row`.
PAPER_TABLE1: Dict[str, Dict[str, int]] = {
    "mixed_rom": {
        "adders": 4, "subtracters": 4, "shift_registers": 8, "accumulators": 8,
        "add_shift_total": 24, "memory_clusters": 8, "total_clusters": 32,
    },
    "cordic_1": {
        "adders": 8, "subtracters": 8, "shift_registers": 8, "accumulators": 12,
        "add_shift_total": 36, "memory_clusters": 12, "total_clusters": 48,
    },
    "cordic_2": {
        "adders": 10, "subtracters": 10, "shift_registers": 6, "accumulators": 6,
        "add_shift_total": 32, "memory_clusters": 6, "total_clusters": 38,
    },
    "scc_even_odd": {
        "adders": 4, "subtracters": 4, "shift_registers": 8, "accumulators": 8,
        "add_shift_total": 24, "memory_clusters": 8, "total_clusters": 32,
    },
    "scc_direct": {
        "adders": 0, "subtracters": 0, "shift_registers": 8, "accumulators": 8,
        "add_shift_total": 16, "memory_clusters": 8, "total_clusters": 24,
    },
}

#: The order Table 1 lists its columns in.
TABLE1_ORDER: Sequence[str] = (
    "mixed_rom", "cordic_1", "cordic_2", "scc_even_odd", "scc_direct",
)

#: Column labels as printed in the paper.
PAPER_COLUMN_LABELS: Dict[str, str] = {
    "mixed_rom": "MIX ROM",
    "cordic_1": "CORDIC 1",
    "cordic_2": "CORDIC 2",
    "scc_even_odd": "SCC EVEN/ODD",
    "scc_direct": "SCC",
    "da_simple": "DA (Fig. 4)",
}


def dct_implementations(include_plain_da: bool = False) -> List[object]:
    """Instantiate every DCT implementation compared in Table 1.

    ``include_plain_da`` additionally returns the plain DA implementation of
    Fig. 4, which the paper describes but does not list in the table.
    """
    implementations: List[object] = [
        MixedRomDCT(),
        CordicDCT1(),
        CordicDCT2(),
        SCCEvenOddDCT(),
        SCCDirectDCT(),
    ]
    if include_plain_da:
        implementations.append(DistributedArithmeticDCT())
    return implementations


@dataclass
class MappedDCTImplementation:
    """One DCT implementation mapped onto the DA array (legacy shape)."""

    name: str
    figure: str
    netlist: Netlist
    usage: ClusterUsage
    placement: Optional[Placement]
    routing: Optional[RoutingResult]
    metrics: DesignMetrics
    cycles_per_transform: int

    def table_row(self) -> Dict[str, int]:
        """This implementation's Table-1 row."""
        return self.usage.as_table_row()


def _compile_implementation(implementation, fabric: Optional[Fabric],
                            run_place_and_route: bool) -> MappedDCTImplementation:
    flow = legacy_flow(run_place_and_route)
    result: FlowResult = flow.compile(implementation,
                                      fabric=fabric or build_da_array())
    return MappedDCTImplementation(
        name=implementation.name,
        figure=implementation.figure,
        netlist=result.netlist,
        usage=result.usage,
        placement=result.placement,
        routing=result.routing,
        metrics=result.metrics,
        cycles_per_transform=implementation.cycles_per_transform,
    )


def map_implementation(implementation, fabric: Optional[Fabric] = None,
                       run_place_and_route: bool = True) -> MappedDCTImplementation:
    """Deprecated: run one implementation through the flow on the DA array.

    Use ``repro.flow.compile(implementation)``.
    """
    warn_deprecated("repro.dct.mapping.map_implementation", "repro.flow.compile")
    return _compile_implementation(implementation, fabric, run_place_and_route)


def generate_table1(fabric: Optional[Fabric] = None,
                    run_place_and_route: bool = True,
                    include_plain_da: bool = False) -> Dict[str, MappedDCTImplementation]:
    """Deprecated: map every Table-1 implementation and return results by name.

    Use ``repro.flow.compile_many(dct_implementations())``.
    """
    warn_deprecated("repro.dct.mapping.generate_table1", "repro.flow.compile_many")
    fabric = fabric or build_da_array()
    results: Dict[str, MappedDCTImplementation] = {}
    for implementation in dct_implementations(include_plain_da):
        # A fresh fabric per implementation: each mapping assumes an
        # otherwise-empty array, exactly like the paper's per-implementation
        # area figures.
        target = build_da_array(DAArrayGeometry(rows=fabric.rows,
                                                add_shift_columns=fabric.cols - 2,
                                                memory_columns=2))
        results[implementation.name] = _compile_implementation(
            implementation, target, run_place_and_route)
    return results


def table1_as_rows(results) -> List[Dict[str, object]]:
    """Flatten mapping results into printable rows in the paper's column order.

    Accepts either the legacy ``{name: MappedDCTImplementation}`` mapping or
    a ``{name: FlowResult}`` / iterable of :class:`FlowResult` from the flow
    API — both carry ``table_row()``.
    """
    if not isinstance(results, dict):
        results = {getattr(r, "design_name", getattr(r, "name", "")): r
                   for r in results}
    rows: List[Dict[str, object]] = []
    for name in TABLE1_ORDER:
        if name not in results:
            continue
        mapped = results[name]
        row: Dict[str, object] = {"implementation": PAPER_COLUMN_LABELS.get(name, name)}
        row.update(mapped.table_row())
        rows.append(row)
    return rows
