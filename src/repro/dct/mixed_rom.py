"""Mixed-ROM DCT with 4x4 matrices (Fig. 5 of the paper).

The 8x8 DCT matrix is reduced to two 4x4 matrices through the classic
even/odd (Lee-style [6]) decomposition: the even-indexed outputs only
depend on the sums ``a_i = x_i + x_{7-i}`` and the odd-indexed outputs on
the differences ``b_i = x_i - x_{7-i}``.  Each half is then computed with
Distributed Arithmetic over four inputs, so the ROMs shrink from 256 words
to 16 words — "16 times less than the previous implementation" — at the
cost of an input stage of adders and subtracters.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.clusters import ClusterKind
from repro.core.netlist import Netlist
from repro.dct.distributed_arithmetic import DALookupTable, DAQuantisation
from repro.dct.reference import DEFAULT_N, normalisation_factors

#: ROM geometry of Fig. 5: 16 words per output lane.
FIG5_ROM_WORDS = 16
FIG5_ROM_WORD_BITS = 8
FIG5_INPUT_BITS = 12
FIG5_ACC_BITS = 16


def even_matrix(size: int = DEFAULT_N) -> np.ndarray:
    """Normalised 4x4 matrix producing the even-indexed outputs from a_i."""
    half = size // 2
    factors = normalisation_factors(size)
    matrix = np.zeros((half, half))
    for k in range(half):
        for i in range(half):
            matrix[k, i] = factors[2 * k] * np.cos((2 * i + 1) * k * np.pi / size)
    return matrix


def odd_matrix(size: int = DEFAULT_N) -> np.ndarray:
    """Normalised 4x4 matrix producing the odd-indexed outputs from b_i."""
    half = size // 2
    factors = normalisation_factors(size)
    matrix = np.zeros((half, half))
    for k in range(half):
        for i in range(half):
            matrix[k, i] = factors[2 * k + 1] * np.cos(
                (2 * i + 1) * (2 * k + 1) * np.pi / (2 * size))
    return matrix


class MixedRomDCT:
    """Even/odd decomposed DA DCT with 16-word ROMs (Fig. 5)."""

    name = "mixed_rom"
    figure = "Fig. 5"
    target_array = "da_array"

    def __init__(self, size: int = DEFAULT_N,
                 quantisation: Optional[DAQuantisation] = None) -> None:
        if size % 2:
            raise ValueError("the even/odd decomposition needs an even size")
        self.size = size
        # The butterfly outputs are one bit wider than the raw samples.
        base = quantisation or DAQuantisation(input_bits=FIG5_INPUT_BITS)
        self.quantisation = DAQuantisation(
            input_bits=base.input_bits + 1,
            coeff_frac_bits=base.coeff_frac_bits,
            accumulator_bits=max(base.accumulator_bits,
                                 base.input_bits + 1 + base.coeff_frac_bits + 4),
        )
        self.even_luts: List[DALookupTable] = [
            DALookupTable(row, self.quantisation) for row in even_matrix(size)
        ]
        self.odd_luts: List[DALookupTable] = [
            DALookupTable(row, self.quantisation) for row in odd_matrix(size)
        ]

    @property
    def cycles_per_transform(self) -> int:
        """One extra cycle for the input butterfly stage, then bit-serial DA."""
        return self.quantisation.input_bits + 1

    def forward(self, samples: Sequence[int]) -> np.ndarray:
        """1-D DCT of ``size`` integer samples (real-valued outputs)."""
        samples = [int(s) for s in samples]
        if len(samples) != self.size:
            raise ValueError(f"expected {self.size} samples, got {len(samples)}")
        half = self.size // 2
        sums = [samples[i] + samples[self.size - 1 - i] for i in range(half)]
        diffs = [samples[i] - samples[self.size - 1 - i] for i in range(half)]
        outputs = np.zeros(self.size)
        for k in range(half):
            outputs[2 * k] = self.even_luts[k].dot_float(sums)
            outputs[2 * k + 1] = self.odd_luts[k].dot_float(diffs)
        return outputs

    def forward_2d(self, block: np.ndarray) -> np.ndarray:
        """Separable 2-D DCT (row pass, rounding, column pass)."""
        block = np.asarray(block)
        if block.shape != (self.size, self.size):
            raise ValueError(f"expected {self.size}x{self.size} block")
        rows = np.array([self.forward(row) for row in block.astype(np.int64)])
        rows = np.rint(rows).astype(np.int64)
        columns = np.array([self.forward(col) for col in rows.T])
        return columns.T

    def build_netlist(self) -> Netlist:
        """Structural netlist of Fig. 5 for the mapping flow.

        Four adders and four subtracters form the input butterfly, eight
        shift registers serialise the butterfly outputs, eight 16-word ROMs
        hold the two 4x4 matrices and eight shift-accumulators build the
        outputs — the Table 1 "MIX ROM" column.
        """
        netlist = Netlist(self.name)
        half = self.size // 2
        for i in range(half):
            netlist.add_node(f"butterfly_add_{i}", ClusterKind.ADD_SHIFT,
                             width_bits=FIG5_INPUT_BITS + 1, role="adder")
            netlist.add_node(f"butterfly_sub_{i}", ClusterKind.ADD_SHIFT,
                             width_bits=FIG5_INPUT_BITS + 1, role="subtracter")
        for lane in range(self.size):
            netlist.add_node(f"shift_reg_{lane}", ClusterKind.ADD_SHIFT,
                             width_bits=FIG5_INPUT_BITS + 1, role="shift_register")
            netlist.add_node(f"rom_{lane}", ClusterKind.MEMORY,
                             width_bits=FIG5_ROM_WORD_BITS, role="rom",
                             depth_words=FIG5_ROM_WORDS)
            netlist.add_node(f"shift_acc_{lane}", ClusterKind.ADD_SHIFT,
                             width_bits=FIG5_ACC_BITS, role="accumulator")
        # Butterfly outputs feed the shift registers: even lanes take the
        # sums, odd lanes the differences.
        for i in range(half):
            netlist.connect(f"butterfly_add_{i}", f"shift_reg_{2 * i}",
                            width_bits=FIG5_INPUT_BITS + 1)
            netlist.connect(f"butterfly_sub_{i}", f"shift_reg_{2 * i + 1}",
                            width_bits=FIG5_INPUT_BITS + 1)
        # Serial bits address the ROMs of the matching half.
        for lane in range(self.size):
            half_lanes = range(0, self.size, 2) if lane % 2 == 0 else range(1, self.size, 2)
            for rom_lane in half_lanes:
                netlist.connect(f"shift_reg_{lane}", f"rom_{rom_lane}", width_bits=1)
            netlist.connect(f"rom_{lane}", f"shift_acc_{lane}",
                            width_bits=FIG5_ROM_WORD_BITS)
        return netlist
