"""Inverse DCT implementations for the decoder / reconstruction path.

The encoder of an MPEG-4 / H.263 codec needs the inverse transform twice:
once in its own reconstruction loop (so its reference frames match the
decoder's) and once in the decoder proper.  On the reconfigurable platform
the IDCT maps onto the same DA array as the forward transform — the
transpose of the DCT matrix is just a different set of ROM contents — so
this module provides:

* :class:`DistributedArithmeticIDCT` — the bit-serial DA realisation of
  the 8-point IDCT, structurally identical to Fig. 4 (8 shift registers,
  8 LUT ROMs, 8 shift-accumulators) with transposed coefficients;
* :class:`MixedRomIDCT` — the even/odd decomposed variant with 16-word
  ROMs and an output butterfly, the inverse counterpart of Fig. 5.

Both are validated against :func:`repro.dct.reference.idct_1d` and used by
the decoder in :mod:`repro.video.decoder`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.clusters import ClusterKind
from repro.core.netlist import Netlist
from repro.dct.distributed_arithmetic import DALookupTable, DAQuantisation
from repro.dct.mixed_rom import even_matrix, odd_matrix
from repro.dct.reference import DEFAULT_N, dct_matrix

#: The IDCT datapath carries DCT coefficients, which for 8-bit video fit in
#: 12 bits (DC of an 8x8 block of 255s is ~2040).
IDCT_INPUT_BITS = 12
IDCT_ROM_WORD_BITS = 8
IDCT_ACC_BITS = 16


class DistributedArithmeticIDCT:
    """Bit-serial DA inverse DCT (the Fig. 4 structure with transposed ROMs)."""

    name = "da_idct"
    figure = "Fig. 4 (inverse)"
    target_array = "da_array"

    def __init__(self, size: int = DEFAULT_N,
                 quantisation: Optional[DAQuantisation] = None) -> None:
        self.size = size
        self.quantisation = quantisation or DAQuantisation(input_bits=IDCT_INPUT_BITS)
        transpose = dct_matrix(size).T
        self.lookup_tables: List[DALookupTable] = [
            DALookupTable(transpose[i], self.quantisation) for i in range(size)
        ]

    @property
    def cycles_per_transform(self) -> int:
        """Bit-serial latency of one 8-sample reconstruction."""
        return self.quantisation.input_bits

    def inverse(self, coefficients: Sequence[float]) -> np.ndarray:
        """Reconstruct 8 samples from 8 (integer-rounded) DCT coefficients."""
        values = [int(round(float(c))) for c in coefficients]
        if len(values) != self.size:
            raise ValueError(f"expected {self.size} coefficients, got {len(values)}")
        return np.array([lut.dot_float(values) for lut in self.lookup_tables])

    def inverse_2d(self, coefficients: np.ndarray) -> np.ndarray:
        """Separable 2-D inverse (columns then rows, with intermediate rounding)."""
        coefficients = np.asarray(coefficients)
        if coefficients.shape != (self.size, self.size):
            raise ValueError(f"expected {self.size}x{self.size} coefficients")
        columns = np.array([self.inverse(col) for col in coefficients.T]).T
        columns = np.rint(columns)
        rows = np.array([self.inverse(row) for row in columns])
        return rows

    def build_netlist(self) -> Netlist:
        """Structural netlist: identical shape to the forward Fig. 4 mapping."""
        netlist = Netlist(self.name)
        for lane in range(self.size):
            netlist.add_node(f"shift_reg_{lane}", ClusterKind.ADD_SHIFT,
                             width_bits=IDCT_INPUT_BITS, role="shift_register")
            netlist.add_node(f"rom_{lane}", ClusterKind.MEMORY,
                             width_bits=IDCT_ROM_WORD_BITS, role="rom",
                             depth_words=1 << self.size)
            netlist.add_node(f"shift_acc_{lane}", ClusterKind.ADD_SHIFT,
                             width_bits=IDCT_ACC_BITS, role="accumulator")
        for lane in range(self.size):
            for rom_lane in range(self.size):
                netlist.connect(f"shift_reg_{lane}", f"rom_{rom_lane}", width_bits=1)
            netlist.connect(f"rom_{lane}", f"shift_acc_{lane}",
                            width_bits=IDCT_ROM_WORD_BITS)
        return netlist


class MixedRomIDCT:
    """Even/odd decomposed inverse DCT with 16-word ROMs (inverse of Fig. 5).

    The forward decomposition computes even outputs from sums and odd
    outputs from differences; the inverse therefore reconstructs
    ``x_i = (e_i + o_i)`` and ``x_{7-i} = (e_i - o_i)`` where ``e`` is the
    4-point inverse of the even coefficients and ``o`` of the odd ones —
    an *output* butterfly instead of the forward version's input butterfly.
    """

    name = "mixed_rom_idct"
    figure = "Fig. 5 (inverse)"
    target_array = "da_array"

    def __init__(self, size: int = DEFAULT_N,
                 quantisation: Optional[DAQuantisation] = None) -> None:
        if size % 2:
            raise ValueError("the even/odd decomposition needs an even size")
        self.size = size
        self.quantisation = quantisation or DAQuantisation(input_bits=IDCT_INPUT_BITS)
        half = size // 2
        # Columns of the even/odd matrices give the inverse mappings
        # (the matrices are orthogonal up to the even/odd split).
        even = even_matrix(size)
        odd = odd_matrix(size)
        self.even_luts: List[DALookupTable] = [
            DALookupTable(even[:, i], self.quantisation) for i in range(half)
        ]
        self.odd_luts: List[DALookupTable] = [
            DALookupTable(odd[:, i], self.quantisation) for i in range(half)
        ]

    @property
    def cycles_per_transform(self) -> int:
        """Bit-serial latency plus the output butterfly cycle."""
        return self.quantisation.input_bits + 1

    def inverse(self, coefficients: Sequence[float]) -> np.ndarray:
        """Reconstruct 8 samples from 8 DCT coefficients."""
        values = [int(round(float(c))) for c in coefficients]
        if len(values) != self.size:
            raise ValueError(f"expected {self.size} coefficients, got {len(values)}")
        half = self.size // 2
        even_in = values[0::2]
        odd_in = values[1::2]
        outputs = np.zeros(self.size)
        for i in range(half):
            even_part = self.even_luts[i].dot_float(even_in)
            odd_part = self.odd_luts[i].dot_float(odd_in)
            outputs[i] = even_part + odd_part
            outputs[self.size - 1 - i] = even_part - odd_part
        return outputs

    def inverse_2d(self, coefficients: np.ndarray) -> np.ndarray:
        """Separable 2-D inverse (columns then rows)."""
        coefficients = np.asarray(coefficients)
        if coefficients.shape != (self.size, self.size):
            raise ValueError(f"expected {self.size}x{self.size} coefficients")
        columns = np.array([self.inverse(col) for col in coefficients.T]).T
        columns = np.rint(columns)
        rows = np.array([self.inverse(row) for row in columns])
        return rows

    def build_netlist(self) -> Netlist:
        """Structural netlist: 16-word ROMs plus an output butterfly stage."""
        netlist = Netlist(self.name)
        half = self.size // 2
        for lane in range(self.size):
            netlist.add_node(f"shift_reg_{lane}", ClusterKind.ADD_SHIFT,
                             width_bits=IDCT_INPUT_BITS, role="shift_register")
            netlist.add_node(f"rom_{lane}", ClusterKind.MEMORY,
                             width_bits=IDCT_ROM_WORD_BITS, role="rom",
                             depth_words=1 << half)
            netlist.add_node(f"shift_acc_{lane}", ClusterKind.ADD_SHIFT,
                             width_bits=IDCT_ACC_BITS, role="accumulator")
        for i in range(half):
            netlist.add_node(f"butterfly_add_{i}", ClusterKind.ADD_SHIFT,
                             width_bits=IDCT_ACC_BITS, role="adder")
            netlist.add_node(f"butterfly_sub_{i}", ClusterKind.ADD_SHIFT,
                             width_bits=IDCT_ACC_BITS, role="subtracter")
        for lane in range(self.size):
            partner_lanes = range(0, self.size, 2) if lane % 2 == 0 else range(1, self.size, 2)
            for rom_lane in partner_lanes:
                netlist.connect(f"shift_reg_{lane}", f"rom_{rom_lane}", width_bits=1)
            netlist.connect(f"rom_{lane}", f"shift_acc_{lane}",
                            width_bits=IDCT_ROM_WORD_BITS)
        for i in range(half):
            netlist.connect(f"shift_acc_{2 * i}", f"butterfly_add_{i}", IDCT_ACC_BITS)
            netlist.connect(f"shift_acc_{2 * i + 1}", f"butterfly_add_{i}", IDCT_ACC_BITS)
            netlist.connect(f"shift_acc_{2 * i}", f"butterfly_sub_{i}", IDCT_ACC_BITS)
            netlist.connect(f"shift_acc_{2 * i + 1}", f"butterfly_sub_{i}", IDCT_ACC_BITS)
        return netlist
