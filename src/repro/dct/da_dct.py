"""Plain Distributed-Arithmetic DCT (Fig. 4 of the paper).

The 8-point DCT is treated as eight parallel FIR-like filters sharing the
same input vector.  Each output lane owns a 12-bit shift register for
parallel-to-serial conversion, one 256-word LUT holding the partial sums of
that output's eight cosine coefficients, and a 16-bit shift-accumulator.
All eight LUTs receive the same 8-bit address formed by the current bit of
every input, so one transform finishes in ``input_bits`` clock cycles.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.clusters import ClusterKind
from repro.core.netlist import Netlist
from repro.dct.distributed_arithmetic import DALookupTable, DAQuantisation
from repro.dct.reference import DEFAULT_N, dct_matrix

#: Shift-register length shown in Fig. 4.
FIG4_INPUT_BITS = 12
#: ROM geometry shown in Fig. 4 (256 words of 8 bits per output lane).
FIG4_ROM_WORDS = 256
FIG4_ROM_WORD_BITS = 8
#: Accumulator width shown in Fig. 4.
FIG4_ACC_BITS = 16


class DistributedArithmeticDCT:
    """Bit-serial DA implementation of the 8-point DCT (Fig. 4)."""

    name = "da_simple"
    figure = "Fig. 4"
    target_array = "da_array"

    def __init__(self, size: int = DEFAULT_N,
                 quantisation: Optional[DAQuantisation] = None) -> None:
        self.size = size
        self.quantisation = quantisation or DAQuantisation(input_bits=FIG4_INPUT_BITS)
        matrix = dct_matrix(size)
        self.lookup_tables: List[DALookupTable] = [
            DALookupTable(matrix[u], self.quantisation) for u in range(size)
        ]

    @property
    def cycles_per_transform(self) -> int:
        """Clock cycles to produce all outputs of one 1-D transform."""
        return self.quantisation.input_bits

    def forward(self, samples: Sequence[int]) -> np.ndarray:
        """1-D DCT of ``size`` integer samples (real-valued outputs)."""
        samples = list(samples)
        if len(samples) != self.size:
            raise ValueError(f"expected {self.size} samples, got {len(samples)}")
        return np.array([lut.dot_float(samples) for lut in self.lookup_tables])

    def forward_2d(self, block: np.ndarray) -> np.ndarray:
        """Separable 2-D DCT of an integer block (rows then columns).

        The column pass operates on the rounded row results, mirroring the
        intermediate rounding a fixed-point hardware row/column pipeline
        performs.
        """
        block = np.asarray(block)
        if block.shape != (self.size, self.size):
            raise ValueError(f"expected {self.size}x{self.size} block")
        rows = np.array([self.forward(row) for row in block.astype(np.int64)])
        rows = np.rint(rows).astype(np.int64)
        columns = np.array([self.forward(col) for col in rows.T])
        return columns.T

    def build_netlist(self) -> Netlist:
        """Structural netlist of Fig. 4 for the mapping flow.

        Eight shift registers, eight 256-word ROMs and eight
        shift-accumulators; every shift register drives the address bus of
        every ROM (the broadcast address of Fig. 4), each ROM feeds its own
        accumulator.
        """
        netlist = Netlist(self.name)
        for lane in range(self.size):
            netlist.add_node(f"shift_reg_{lane}", ClusterKind.ADD_SHIFT,
                             width_bits=FIG4_INPUT_BITS, role="shift_register")
            netlist.add_node(f"rom_{lane}", ClusterKind.MEMORY,
                             width_bits=FIG4_ROM_WORD_BITS, role="rom",
                             depth_words=FIG4_ROM_WORDS)
            netlist.add_node(f"shift_acc_{lane}", ClusterKind.ADD_SHIFT,
                             width_bits=FIG4_ACC_BITS, role="accumulator")
        for lane in range(self.size):
            for rom_lane in range(self.size):
                netlist.connect(f"shift_reg_{lane}", f"rom_{rom_lane}", width_bits=1)
            netlist.connect(f"rom_{lane}", f"shift_acc_{lane}",
                            width_bits=FIG4_ROM_WORD_BITS)
        return netlist
