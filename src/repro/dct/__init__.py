"""DCT implementations mapped onto the Distributed-Arithmetic array.

The five implementations compared in Table 1 of the paper (plus the plain
DA baseline of Fig. 4) all transform 8-point vectors and 8x8 blocks; they
differ in how they trade memory, adders and rotators against each other.
"""

from repro.dct.cordic import CordicRotator, cordic_gain, micro_rotation_angles
from repro.dct.cordic_dct1 import CordicDCT1
from repro.dct.cordic_dct2 import CordicDCT2
from repro.dct.da_dct import DistributedArithmeticDCT
from repro.dct.distributed_arithmetic import (
    DAChannel,
    DALookupTable,
    DAQuantisation,
    da_dot_product,
)
from repro.dct.idct import DistributedArithmeticIDCT, MixedRomIDCT
from repro.dct.mapping import (
    PAPER_TABLE1,
    TABLE1_ORDER,
    MappedDCTImplementation,
    dct_implementations,
    generate_table1,
    map_implementation,
    table1_as_rows,
)
from repro.dct.mixed_rom import MixedRomDCT, even_matrix, odd_matrix
from repro.dct.quantization import (
    dequantise,
    fold_scale_factors,
    quantisation_matrix,
    quantise,
    quantise_with_matrix,
)
from repro.dct.reference import (
    DEFAULT_N,
    dct_1d,
    dct_2d,
    dct_matrix,
    idct_1d,
    idct_2d,
    normalisation_factors,
    reconstruction_error,
    unnormalised_dct_1d,
)
from repro.dct.scc_dct import (
    SCCDirectDCT,
    SCCEvenOddDCT,
    convolution_kernel,
    generator_exponents,
    odd_scc_matrix,
)

__all__ = [
    "CordicRotator",
    "cordic_gain",
    "micro_rotation_angles",
    "CordicDCT1",
    "CordicDCT2",
    "DistributedArithmeticDCT",
    "DAChannel",
    "DALookupTable",
    "DAQuantisation",
    "da_dot_product",
    "DistributedArithmeticIDCT",
    "MixedRomIDCT",
    "PAPER_TABLE1",
    "TABLE1_ORDER",
    "MappedDCTImplementation",
    "dct_implementations",
    "generate_table1",
    "map_implementation",
    "table1_as_rows",
    "MixedRomDCT",
    "even_matrix",
    "odd_matrix",
    "dequantise",
    "fold_scale_factors",
    "quantisation_matrix",
    "quantise",
    "quantise_with_matrix",
    "DEFAULT_N",
    "dct_1d",
    "dct_2d",
    "dct_matrix",
    "idct_1d",
    "idct_2d",
    "normalisation_factors",
    "reconstruction_error",
    "unnormalised_dct_1d",
    "SCCDirectDCT",
    "SCCEvenOddDCT",
    "convolution_kernel",
    "generator_exponents",
    "odd_scc_matrix",
]
