"""CORDIC-based DCT implementation #1 (Fig. 6 of the paper).

The 8-point DCT is factored into butterfly add/subtract stages and six
plane rotations, each performed by a CORDIC rotator built from ROM and
shift-accumulator clusters (Sec. 3.3): "this CORDIC based implementation
requires 6-CORDIC and 16 butterfly adders for an 8 point 1D DCT".

Factorisation used (derived from the even/odd decomposition):

* stage 1 butterflies:  ``a_i = x_i + x_{7-i}``, ``b_i = x_i - x_{7-i}``;
* even half: second butterfly stage ``c0 = a0+a3, c1 = a1+a2,
  d0 = a0-a3, d1 = a1-a2`` followed by a pi/4 rotation of ``(c0, c1)``
  (producing X0/X4) and a pi/8 rotation of ``(d0, d1)`` (producing X2/X6);
* odd half: four rotations of the pairs ``(b0, b3)``, ``(b1, b2)``,
  ``(b3, b0)``, ``(b2, b1)`` by pi/16 and 3*pi/16, whose outputs combine
  with four add/subtract operations into X1/X3/X5/X7.

That is 8 butterflies (16 butterfly adders) and 6 rotators — the Table 1
"CORDIC 1" column: 8 adders, 8 subtracters, 8 shift registers, 12
shift-accumulators (two per rotator) and 12 memory clusters (two per
rotator).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from repro.core.clusters import ClusterKind
from repro.core.netlist import Netlist
from repro.dct.cordic import DEFAULT_FRAC_BITS, DEFAULT_ITERATIONS, CordicRotator
from repro.dct.reference import DEFAULT_N, normalisation_factors

FIG6_INPUT_BITS = 12
FIG6_ACC_BITS = 16
#: Angle-constant ROM words per rotator memory cluster.
FIG6_ROM_WORDS = 4
FIG6_ROM_WORD_BITS = 16

_SQRT2 = math.sqrt(2.0)


class CordicDCT1(object):
    """Gain-compensated CORDIC DCT with 6 rotators and 16 butterfly adders."""

    name = "cordic_1"
    figure = "Fig. 6"
    target_array = "da_array"

    def __init__(self, size: int = DEFAULT_N,
                 iterations: int = DEFAULT_ITERATIONS,
                 frac_bits: int = DEFAULT_FRAC_BITS) -> None:
        if size != DEFAULT_N:
            raise ValueError("the CORDIC factorisation is specific to the 8-point DCT")
        self.size = size
        self.iterations = iterations
        self._factors = normalisation_factors(size)
        # Even-half rotators.
        self._rot_quarter = CordicRotator(math.pi / 4, iterations, frac_bits)
        self._rot_eighth = CordicRotator(math.pi / 8, iterations, frac_bits)
        # Odd-half rotators (pi/16 and 3*pi/16, each used on one input pair).
        self._rot_a = CordicRotator(math.pi / 16, iterations, frac_bits)
        self._rot_b = CordicRotator(3 * math.pi / 16, iterations, frac_bits)
        self._rot_c = CordicRotator(3 * math.pi / 16, iterations, frac_bits)
        self._rot_d = CordicRotator(math.pi / 16, iterations, frac_bits)

    @property
    def rotator_count(self) -> int:
        """Number of CORDIC rotators in the datapath (paper: 6)."""
        return 6

    @property
    def butterfly_adder_count(self) -> int:
        """Number of butterfly adders in the datapath (paper: 16)."""
        return 16

    @property
    def cycles_per_transform(self) -> int:
        """Latency: input serialisation, two butterfly stages, rotations, combine."""
        return FIG6_INPUT_BITS + 2 + self.iterations + 1

    def forward(self, samples: Sequence[int]) -> np.ndarray:
        """1-D DCT of 8 integer samples (real-valued, normalised outputs)."""
        x = [float(s) for s in samples]
        if len(x) != self.size:
            raise ValueError(f"expected {self.size} samples, got {len(x)}")

        # Stage 1 butterflies.
        a = [x[i] + x[7 - i] for i in range(4)]
        b = [x[i] - x[7 - i] for i in range(4)]

        # Even half.
        c0, c1 = a[0] + a[3], a[1] + a[2]
        d0, d1 = a[0] - a[3], a[1] - a[2]
        re_x, re_y = self._rot_quarter.rotate(c0, c1)
        g0 = re_x * _SQRT2          # c0 + c1, the sqrt(2) folds into c(0)
        g2 = -re_y                  # (c0 - c1) / sqrt(2)
        rf_x, rf_y = self._rot_eighth.rotate(d0, d1)
        g1 = rf_x                   # d0*cos(pi/8) + d1*sin(pi/8)
        g3 = -rf_y                  # d0*sin(pi/8) - d1*cos(pi/8)

        # Odd half: four rotations then four add/subtract combines.
        ra_x, ra_y = self._rot_a.rotate(b[0], b[3])
        rb_x, rb_y = self._rot_b.rotate(b[1], b[2])
        rc_x, rc_y = self._rot_c.rotate(b[3], b[0])
        rd_x, rd_y = self._rot_d.rotate(b[2], b[1])
        h0 = ra_x + rb_x
        h1 = rc_y - rd_x
        h2 = rc_x - rd_y
        h3 = rb_y - ra_y

        outputs = np.zeros(self.size)
        outputs[0] = self._factors[0] * g0
        outputs[2] = self._factors[2] * g1
        outputs[4] = self._factors[4] * g2
        outputs[6] = self._factors[6] * g3
        outputs[1] = self._factors[1] * h0
        outputs[3] = self._factors[3] * h1
        outputs[5] = self._factors[5] * h2
        outputs[7] = self._factors[7] * h3
        return outputs

    def forward_2d(self, block: np.ndarray) -> np.ndarray:
        """Separable 2-D DCT (row pass, rounding, column pass)."""
        block = np.asarray(block)
        if block.shape != (self.size, self.size):
            raise ValueError(f"expected {self.size}x{self.size} block")
        rows = np.array([self.forward(row) for row in block.astype(np.int64)])
        rows = np.rint(rows).astype(np.int64)
        columns = np.array([self.forward(col) for col in rows.T])
        return columns.T

    def build_netlist(self) -> Netlist:
        """Structural netlist of Fig. 6 (Table 1 "CORDIC 1" column)."""
        netlist = Netlist(self.name)
        # Input parallel-to-serial shift registers.
        for lane in range(self.size):
            netlist.add_node(f"shift_reg_{lane}", ClusterKind.ADD_SHIFT,
                             width_bits=FIG6_INPUT_BITS, role="shift_register")
        # Eight butterflies: four stage-1, two even-stage-2, two odd-combine.
        for i in range(8):
            netlist.add_node(f"butterfly_add_{i}", ClusterKind.ADD_SHIFT,
                             width_bits=FIG6_ACC_BITS, role="adder")
            netlist.add_node(f"butterfly_sub_{i}", ClusterKind.ADD_SHIFT,
                             width_bits=FIG6_ACC_BITS, role="subtracter")
        # Six rotators: two shift-accumulators and two angle ROMs each.
        for r in range(6):
            for axis in ("x", "y"):
                netlist.add_node(f"rot{r}_acc_{axis}", ClusterKind.ADD_SHIFT,
                                 width_bits=FIG6_ACC_BITS, role="accumulator")
                netlist.add_node(f"rot{r}_rom_{axis}", ClusterKind.MEMORY,
                                 width_bits=FIG6_ROM_WORD_BITS, role="rom",
                                 depth_words=FIG6_ROM_WORDS)

        # Stage-1 butterflies take pairs of shift registers.
        for i in range(4):
            netlist.connect(f"shift_reg_{i}", f"butterfly_add_{i}", FIG6_INPUT_BITS)
            netlist.connect(f"shift_reg_{7 - i}", f"butterfly_add_{i}", FIG6_INPUT_BITS)
            netlist.connect(f"shift_reg_{i}", f"butterfly_sub_{i}", FIG6_INPUT_BITS)
            netlist.connect(f"shift_reg_{7 - i}", f"butterfly_sub_{i}", FIG6_INPUT_BITS)
        # Even second-stage butterflies combine the stage-1 sums.
        for i, (left, right) in enumerate(((0, 3), (1, 2))):
            netlist.connect(f"butterfly_add_{left}", f"butterfly_add_{4 + i}", FIG6_ACC_BITS)
            netlist.connect(f"butterfly_add_{right}", f"butterfly_add_{4 + i}", FIG6_ACC_BITS)
            netlist.connect(f"butterfly_add_{left}", f"butterfly_sub_{4 + i}", FIG6_ACC_BITS)
            netlist.connect(f"butterfly_add_{right}", f"butterfly_sub_{4 + i}", FIG6_ACC_BITS)
        # Even rotators: pi/4 on (c0, c1), pi/8 on (d0, d1).
        for axis in ("x", "y"):
            netlist.connect("butterfly_add_4", f"rot0_acc_{axis}", FIG6_ACC_BITS)
            netlist.connect("butterfly_add_5", f"rot0_acc_{axis}", FIG6_ACC_BITS)
            netlist.connect("butterfly_sub_4", f"rot1_acc_{axis}", FIG6_ACC_BITS)
            netlist.connect("butterfly_sub_5", f"rot1_acc_{axis}", FIG6_ACC_BITS)
        # Odd rotators take stage-1 difference pairs.
        odd_pairs = ((0, 3), (1, 2), (3, 0), (2, 1))
        for r, (p, q) in enumerate(odd_pairs, start=2):
            for axis in ("x", "y"):
                netlist.connect(f"butterfly_sub_{p}", f"rot{r}_acc_{axis}", FIG6_ACC_BITS)
                netlist.connect(f"butterfly_sub_{q}", f"rot{r}_acc_{axis}", FIG6_ACC_BITS)
        # Angle ROMs feed their accumulators.
        for r in range(6):
            for axis in ("x", "y"):
                netlist.connect(f"rot{r}_rom_{axis}", f"rot{r}_acc_{axis}",
                                FIG6_ROM_WORD_BITS)
        # Odd-combine butterflies take rotator outputs.
        combine_inputs = (("rot2_acc_x", "rot3_acc_x"), ("rot4_acc_y", "rot5_acc_x"))
        for i, (left, right) in enumerate(combine_inputs):
            netlist.connect(left, f"butterfly_add_{6 + i}", FIG6_ACC_BITS)
            netlist.connect(right, f"butterfly_add_{6 + i}", FIG6_ACC_BITS)
            netlist.connect(left, f"butterfly_sub_{6 + i}", FIG6_ACC_BITS)
            netlist.connect(right, f"butterfly_sub_{6 + i}", FIG6_ACC_BITS)
        return netlist
