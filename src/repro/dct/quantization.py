"""Quantisation of DCT coefficients (MPEG-4 / H.263 style).

The scaled CORDIC architecture (Sec. 3.4) relies on the fact that its
constant per-coefficient scale factors "can be combined with the
quantization constants without requiring any extra hardware"; this module
provides the uniform quantiser used by the encoder example together with
the helper that performs exactly that folding.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.dct.reference import DEFAULT_N

#: Default quantiser parameter (H.263 QP range is 1..31).
DEFAULT_QP = 8
MIN_QP = 1
MAX_QP = 31


def quantise(coefficients: np.ndarray, qp: int = DEFAULT_QP,
             intra_dc_step: int = 8) -> np.ndarray:
    """Uniformly quantise a block of DCT coefficients.

    The DC coefficient of intra blocks uses a fixed step (``intra_dc_step``)
    as in H.263; all AC coefficients use ``2 * qp``.

    Accepts a single 2-D block or a ``(B, n, n)`` batch of blocks; the
    batched form applies the DC rule to every block and is bit-identical
    to quantising the blocks one at a time.
    """
    if not MIN_QP <= qp <= MAX_QP:
        raise ValueError(f"qp must be in [{MIN_QP}, {MAX_QP}], got {qp}")
    coefficients = np.asarray(coefficients, dtype=np.float64)
    if coefficients.ndim not in (2, 3):
        # Anything else used to fall through with the DC rule silently
        # skipped — corrupting the stream instead of failing loudly.
        raise ValueError(
            f"expected a 2-D block or a (B, n, n) batch, got shape "
            f"{coefficients.shape}")
    levels = np.trunc(coefficients / (2.0 * qp)).astype(np.int64)
    if coefficients.ndim == 2:
        levels[0, 0] = int(round(coefficients[0, 0] / intra_dc_step))
    else:
        # np.rint matches Python round() (both round halves to even).
        levels[:, 0, 0] = np.rint(
            coefficients[:, 0, 0] / intra_dc_step).astype(np.int64)
    return levels


def dequantise(levels: np.ndarray, qp: int = DEFAULT_QP,
               intra_dc_step: int = 8) -> np.ndarray:
    """Inverse of :func:`quantise` (mid-rise reconstruction).

    Accepts a single 2-D block or a ``(B, n, n)`` batch, mirroring
    :func:`quantise`.
    """
    if not MIN_QP <= qp <= MAX_QP:
        raise ValueError(f"qp must be in [{MIN_QP}, {MAX_QP}], got {qp}")
    levels = np.asarray(levels, dtype=np.float64)
    if levels.ndim not in (2, 3):
        # Mirror quantise: reject shapes whose DC rule would be skipped.
        raise ValueError(
            f"expected a 2-D block or a (B, n, n) batch, got shape "
            f"{levels.shape}")
    reconstructed = np.sign(levels) * (np.abs(levels) * 2.0 + 1.0) * qp
    reconstructed[levels == 0] = 0.0
    if levels.ndim == 2:
        reconstructed[0, 0] = levels[0, 0] * intra_dc_step
    else:
        reconstructed[:, 0, 0] = levels[:, 0, 0] * intra_dc_step
    return reconstructed


def quantisation_matrix(qp: int = DEFAULT_QP, size: int = DEFAULT_N,
                        intra_dc_step: int = 8) -> np.ndarray:
    """Per-coefficient quantiser step matrix for a uniform quantiser."""
    steps = np.full((size, size), 2.0 * qp)
    steps[0, 0] = intra_dc_step
    return steps


def fold_scale_factors(steps: np.ndarray, row_scales: np.ndarray,
                       col_scales: Optional[np.ndarray] = None) -> np.ndarray:
    """Fold per-coefficient DCT scale factors into a quantiser step matrix.

    A scaled DCT produces ``Y[u, v] = X[u, v] / (s_row[u] * s_col[v])``
    ... in our convention ``X = Y * s_row[u] * s_col[v]``, so quantising the
    scaled coefficients with ``steps / (s_row[u] * s_col[v])`` yields the
    same levels as quantising the true coefficients with ``steps`` — which
    is why the scaled architecture needs no extra hardware.
    """
    steps = np.asarray(steps, dtype=np.float64)
    row_scales = np.asarray(row_scales, dtype=np.float64)
    if col_scales is None:
        col_scales = row_scales
    col_scales = np.asarray(col_scales, dtype=np.float64)
    outer = np.outer(row_scales, col_scales)
    if outer.shape != steps.shape:
        raise ValueError("scale factor shapes do not match the step matrix")
    return steps / outer


def quantise_with_matrix(coefficients: np.ndarray, steps: np.ndarray) -> np.ndarray:
    """Quantise with an explicit per-coefficient step matrix."""
    coefficients = np.asarray(coefficients, dtype=np.float64)
    steps = np.asarray(steps, dtype=np.float64)
    if coefficients.shape != steps.shape:
        raise ValueError("coefficient and step shapes differ")
    return np.trunc(coefficients / steps).astype(np.int64)
