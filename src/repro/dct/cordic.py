"""CORDIC rotator primitive used by the CORDIC-based DCT implementations.

A CORDIC rotator (Sec. 3.3) rotates a 2-D vector by a target angle using
only shift-and-add micro-rotations: at iteration ``i`` the vector is
rotated by ``±atan(2**-i)``, the sign chosen to drive the residual angle to
zero.  After ``n`` iterations the result is the rotated vector multiplied
by the constant CORDIC gain ``K = prod sqrt(1 + 2**-2i)``; rotators can
either compensate the gain or leave it to be folded into a downstream
scale factor (the "scaled" architecture of Sec. 3.4 does the latter).

On the DA array one rotator occupies two shift-accumulator clusters (the
x and y datapaths) and two small memory clusters holding the micro-rotation
angle constants — the fixed "4-word ROM independent of the input
bandwidth" the paper refers to.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.exceptions import ConfigurationError

#: Default number of micro-rotations; 12 keeps the angular error below
#: 2**-12 radians, well under the 12-bit input quantisation of the DCT.
DEFAULT_ITERATIONS = 12
#: Default fixed-point scaling of the rotator datapath.
DEFAULT_FRAC_BITS = 12


def cordic_gain(iterations: int = DEFAULT_ITERATIONS) -> float:
    """The accumulated magnitude gain of ``iterations`` micro-rotations."""
    gain = 1.0
    for i in range(iterations):
        gain *= math.sqrt(1.0 + 2.0 ** (-2 * i))
    return gain


def micro_rotation_angles(iterations: int = DEFAULT_ITERATIONS) -> List[float]:
    """The ``atan(2**-i)`` angle constants stored in the rotator ROM."""
    return [math.atan(2.0 ** -i) for i in range(iterations)]


@dataclass(frozen=True)
class RotationResult:
    """Outcome of one CORDIC rotation."""

    x: float
    y: float
    residual_angle: float
    iterations: int


class CordicRotator:
    """Fixed-point CORDIC rotator for a single fixed rotation angle.

    Parameters
    ----------
    angle:
        Rotation angle in radians.  The rotator applies the convention used
        throughout :mod:`repro.dct`: ``rotate(p, q)`` returns
        ``(p*cos(angle) + q*sin(angle), -p*sin(angle) + q*cos(angle))`` —
        a clockwise rotation of the column vector ``(p, q)``.
    iterations:
        Number of micro-rotations (precision/latency trade-off).
    frac_bits:
        Fixed-point fractional bits of the internal x/y datapath.
    compensate_gain:
        Divide the result by the CORDIC gain so the rotation is
        magnitude-preserving.  The scaled architecture (Fig. 7) sets this to
        False and folds the gain into the output scale factors.
    extra_scale:
        Additional constant factor folded into the output (used to absorb
        the sqrt(2) of the even-part butterfly, see Fig. 6 mapping).
    """

    def __init__(self, angle: float, iterations: int = DEFAULT_ITERATIONS,
                 frac_bits: int = DEFAULT_FRAC_BITS,
                 compensate_gain: bool = True,
                 extra_scale: float = 1.0) -> None:
        if iterations <= 0:
            raise ConfigurationError("CORDIC needs at least one iteration")
        if frac_bits <= 0:
            raise ConfigurationError("frac_bits must be positive")
        if abs(angle) > math.pi / 2 + 1e-9:
            raise ConfigurationError(
                "CORDIC circular mode converges for |angle| <= pi/2; "
                f"got {angle:.4f}"
            )
        self.angle = float(angle)
        self.iterations = iterations
        self.frac_bits = frac_bits
        self.compensate_gain = compensate_gain
        self.extra_scale = float(extra_scale)
        self.gain = cordic_gain(iterations)
        self._angle_rom = micro_rotation_angles(iterations)

    # -- resource accounting ------------------------------------------------
    #: Clusters one rotator occupies on the DA array (Table 1 accounting):
    #: two shift-accumulators (x and y datapaths) and two memories (angle
    #: constants / sigma sequence).
    SHIFT_ACC_CLUSTERS = 2
    MEMORY_CLUSTERS = 2
    #: Angle-constant ROM depth quoted by the paper ("fix size of 4 words").
    ROM_WORDS = 4

    @property
    def output_scale(self) -> float:
        """Constant factor the raw shift-add datapath leaves on its outputs.

        With gain compensation the scale is just ``extra_scale``; without it
        the CORDIC gain remains on the outputs and must be absorbed by the
        quantiser (Sec. 3.4).
        """
        scale = self.extra_scale
        if not self.compensate_gain:
            scale *= self.gain
        return scale

    def rotate(self, p: float, q: float) -> Tuple[float, float]:
        """Rotate ``(p, q)`` by the configured angle using micro-rotations."""
        scale = 1 << self.frac_bits
        x = int(round(p * scale))
        y = int(round(q * scale))
        # The module-wide convention (p*c + q*s, -p*s + q*c) corresponds to a
        # mathematical rotation of (p, q) by -angle, so the residual starts
        # at -angle.
        residual = -self.angle
        for i, rom_angle in enumerate(self._angle_rom):
            direction = 1 if residual >= 0 else -1
            x_shift = x >> i
            y_shift = y >> i
            x, y = x - direction * y_shift, y + direction * x_shift
            residual -= direction * rom_angle

        factor = self.extra_scale / scale
        if self.compensate_gain:
            factor /= self.gain
        return x * factor, y * factor

    def rotate_exact(self, p: float, q: float) -> Tuple[float, float]:
        """Ideal (floating-point) rotation, for error analysis in tests."""
        c = math.cos(self.angle)
        s = math.sin(self.angle)
        scale = self.extra_scale
        return (p * c + q * s) * scale, (-p * s + q * c) * scale

    def worst_case_error(self, magnitude: float) -> float:
        """Bound on the output error for inputs of at most ``magnitude``.

        Combines the residual-angle error after the final micro-rotation
        with the fixed-point truncation of the shift-add datapath.
        """
        angle_error = 2.0 ** -(self.iterations - 1)
        truncation = self.iterations * 2.0 ** -self.frac_bits * max(1.0, magnitude * 0.001)
        return magnitude * angle_error * self.gain * self.extra_scale + truncation + 1e-9
