"""Distributed-Arithmetic (DA) primitives: LUTs and bit-serial dot products.

Distributed Arithmetic (Sec. 3.1, [4]) computes a sum of products with
fixed coefficients

    y = sum_i c_i * x_i

without multipliers: the inputs are processed one bit-plane at a time, a
Look-Up-Table stores every possible partial sum ``sum_i c_i * bit_i`` (one
word per combination of input bits) and a shift-accumulator weights the
looked-up words by successive powers of two.  For two's-complement inputs
the most significant (sign) bit-plane is subtracted instead of added.

Two execution paths are provided:

* :func:`da_dot_product` / :class:`DAChannel` — a faithful word-level model
  driven bit-plane by bit-plane, suitable for unit tests and activity
  measurement (the channel variant runs on the actual cluster behavioural
  models so toggle counters accumulate);
* :meth:`DALookupTable.dot` — a vectorised shortcut producing identical
  results, used by the 2-D transforms and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.clusters import AddShiftCluster, MemoryCluster, to_signed, to_unsigned
from repro.core.exceptions import ConfigurationError

#: Default fractional bits used to quantise LUT partial sums (8-bit ROM
#: words in Fig. 4 store signed partial sums of coefficients < 1.0 in
#: magnitude, so 6 fractional bits leave head-room for the sum of 8 terms).
DEFAULT_COEFF_FRAC_BITS = 6
#: Default input word length of the DCT datapath (12-bit shift registers in Fig. 4).
DEFAULT_INPUT_BITS = 12
#: Default accumulator width (16-bit shift-accumulators in Fig. 4).
DEFAULT_ACC_BITS = 24


@dataclass(frozen=True)
class DAQuantisation:
    """Fixed-point parameters of one DA datapath."""

    input_bits: int = DEFAULT_INPUT_BITS
    coeff_frac_bits: int = DEFAULT_COEFF_FRAC_BITS
    accumulator_bits: int = DEFAULT_ACC_BITS

    def __post_init__(self) -> None:
        if self.input_bits < 2:
            raise ConfigurationError("DA needs at least 2 input bits (sign + magnitude)")
        if self.coeff_frac_bits < 1:
            raise ConfigurationError("coefficient quantisation needs >= 1 fractional bit")
        if self.accumulator_bits < self.input_bits + self.coeff_frac_bits:
            raise ConfigurationError(
                "accumulator too narrow for the chosen input/coefficient precision"
            )

    @property
    def output_scale(self) -> float:
        """Multiply integer DA results by this to recover real-valued outputs."""
        return 1.0 / (1 << self.coeff_frac_bits)


class DALookupTable:
    """The pre-computed partial-sum LUT of one DA channel.

    Word ``addr`` holds ``round(sum_i c_i * bit_i(addr) * 2**frac_bits)``:
    every combination of one bit from each input has its weighted sum of
    coefficients stored, which is what turns the multiplications of the
    DCT into table look-ups.
    """

    def __init__(self, coefficients: Sequence[float],
                 quantisation: Optional[DAQuantisation] = None) -> None:
        self.coefficients = tuple(float(c) for c in coefficients)
        if not self.coefficients:
            raise ConfigurationError("a DA LUT needs at least one coefficient")
        self.quantisation = quantisation or DAQuantisation()
        self._words = self._build_words()

    def _build_words(self) -> np.ndarray:
        count = len(self.coefficients)
        scale = 1 << self.quantisation.coeff_frac_bits
        words = np.zeros(1 << count, dtype=np.int64)
        for address in range(1 << count):
            partial = sum(c for bit, c in enumerate(self.coefficients)
                          if address & (1 << bit))
            words[address] = int(round(partial * scale))
        return words

    @property
    def depth_words(self) -> int:
        """Number of addressable words (2**inputs)."""
        return len(self._words)

    @property
    def word_bits(self) -> int:
        """Bits needed to store the largest-magnitude partial sum."""
        peak = int(np.max(np.abs(self._words))) if len(self._words) else 0
        return max(2, peak.bit_length() + 1)

    def read(self, address: int) -> int:
        """Signed partial-sum word at ``address``."""
        return int(self._words[address])

    def words(self) -> np.ndarray:
        """Copy of the LUT contents (signed integers)."""
        return self._words.copy()

    def load_into(self, memory: MemoryCluster) -> None:
        """Program a :class:`MemoryCluster` with this LUT's contents."""
        width = memory.width_bits
        memory.load_contents([to_unsigned(int(word), width) for word in self._words])

    # -- vectorised execution ------------------------------------------------
    def dot(self, inputs: Sequence[int]) -> int:
        """Bit-serial DA dot product of integer ``inputs`` (two's complement).

        Returns the integer result scaled by ``2**coeff_frac_bits``; multiply
        by :attr:`DAQuantisation.output_scale` to obtain the real value.
        """
        bits = self.quantisation.input_bits
        values = [to_unsigned(int(x), bits) for x in inputs]
        if len(values) != len(self.coefficients):
            raise ConfigurationError(
                f"expected {len(self.coefficients)} inputs, got {len(values)}"
            )
        accumulator = 0
        for bit_index in range(bits):
            address = 0
            for input_index, value in enumerate(values):
                if value & (1 << bit_index):
                    address |= 1 << input_index
            word = int(self._words[address])
            if bit_index == bits - 1:
                accumulator -= word << bit_index
            else:
                accumulator += word << bit_index
        return accumulator

    def dot_float(self, inputs: Sequence[int]) -> float:
        """Real-valued DA dot product (integer result rescaled)."""
        return self.dot(inputs) * self.quantisation.output_scale


def da_dot_product(coefficients: Sequence[float], inputs: Sequence[int],
                   quantisation: Optional[DAQuantisation] = None) -> float:
    """One-shot DA dot product (builds a throwaway LUT)."""
    return DALookupTable(coefficients, quantisation).dot_float(inputs)


class DAChannel:
    """One DA channel executed on the cluster behavioural models.

    The channel owns a shift-register cluster per input, one memory cluster
    holding the LUT and one shift-accumulator cluster — the structure of a
    single output lane of Fig. 4.  Running it bit-serially advances the
    clusters' toggle counters, which feeds the activity-based power model.
    """

    def __init__(self, coefficients: Sequence[float],
                 quantisation: Optional[DAQuantisation] = None) -> None:
        self.quantisation = quantisation or DAQuantisation()
        self.lut = DALookupTable(coefficients, self.quantisation)
        word_bits = max(8, self.lut.word_bits)
        self.shift_registers = [AddShiftCluster(self.quantisation.input_bits)
                                for _ in coefficients]
        self.memory = MemoryCluster(self.lut.depth_words, word_bits)
        self.accumulator = AddShiftCluster(self.quantisation.accumulator_bits)
        self.lut.load_into(self.memory)
        self.cycles_per_transform = self.quantisation.input_bits

    def compute(self, inputs: Sequence[int]) -> int:
        """Run one bit-serial DA evaluation; returns the integer result."""
        if len(inputs) != len(self.shift_registers):
            raise ConfigurationError(
                f"expected {len(self.shift_registers)} inputs, got {len(inputs)}"
            )
        bits = self.quantisation.input_bits
        acc_bits = self.quantisation.accumulator_bits
        word_bits = self.memory.width_bits
        for register, value in zip(self.shift_registers, inputs):
            register.load(value)
        self.accumulator.load(0)
        accumulator = 0
        for bit_index in range(bits):
            address = 0
            for input_index, register in enumerate(self.shift_registers):
                if register.shift_out_lsb():
                    address |= 1 << input_index
            word = to_signed(self.memory.read(address), word_bits)
            weighted = word << bit_index
            if bit_index == bits - 1:
                accumulator -= weighted
            else:
                accumulator += weighted
            self.accumulator.load(to_unsigned(accumulator, acc_bits))
        return accumulator

    def compute_float(self, inputs: Sequence[int]) -> float:
        """Real-valued result of :meth:`compute`."""
        return self.compute(inputs) * self.quantisation.output_scale

    def total_toggles(self) -> int:
        """Sum of toggle counters across all owned clusters (power input)."""
        toggles = self.memory.toggles + self.accumulator.toggles
        toggles += sum(register.toggles for register in self.shift_registers)
        return toggles
