"""Fig. 10 — the motion-estimation Processing Element.

Checks that the PE is built from exactly the clusters the figure shows
(Register-Mux, Absolute-Difference, Adder/Accumulator), maps onto the ME
array, and benchmarks the per-pixel SAD accumulation against numpy.
"""

import numpy as np
import pytest

from repro.flow import compile as flow_compile
from repro.me.pe import ProcessingElement, build_pe_netlist
from repro.me.sad import sad


@pytest.mark.benchmark(group="fig10")
def test_fig10_processing_element(benchmark, rng):
    current = rng.integers(0, 256, 256)
    reference = rng.integers(0, 256, 256)

    def run():
        pe = ProcessingElement()
        for cur, ref in zip(current, reference):
            pe.cycle(int(cur), int(ref))
        return pe.sad

    result = benchmark(run)

    expected = sad(current.reshape(16, 16), reference.reshape(16, 16))
    print(f"\nFig. 10 PE: accumulated SAD {result} (software reference {expected})")
    assert result == expected

    # The PE occupies exactly one MUX + one AD + one ADD/ACC cluster.
    usage = ProcessingElement.cluster_usage()
    assert usage.register_mux == 1
    assert usage.abs_diff == 1
    assert usage.add_acc == 1
    assert usage.total_clusters == 3
    assert build_pe_netlist().cluster_usage().as_table_row() == usage.as_table_row()

    # It places and routes on the ME array with direct cluster-to-cluster links.
    mapped = flow_compile(ProcessingElement())
    assert len(mapped.placement) == 3
    assert mapped.routing is not None
