"""Sec. 1 motivation — running ME/DCT on a programmable DSP needs a high clock.

The introduction motivates the reconfigurable arrays against DSPs ("this
leads to a high operating frequency and increased power consumption") and
hardwired logic.  This benchmark quantifies the DSP corner with the
single-MAC DSP model: the clock frequency required for real-time QCIF
encoding and the energy per macroblock, compared with the 4x16 systolic
array doing the same full search.
"""

import pytest

from repro.arrays.dsp_baseline import DSPModel
from repro.me.systolic import SystolicArray
from repro.me.systolic_1d import required_frequency
from repro.reporting import format_table

SEARCH_RANGE = 8
#: Cycles the 4x16 array needs per macroblock for a +-8 full search:
#: 256 candidates / 4 modules * 16 cycles per candidate round.
ARRAY_CYCLES_PER_MACROBLOCK = (2 * SEARCH_RANGE) ** 2 // 4 * 16


@pytest.mark.benchmark(group="claims")
def test_dsp_baseline_needs_high_operating_frequency(benchmark):
    def run():
        single_mac = DSPModel("single_mac_dsp", macs_per_cycle=1.0)
        vliw = DSPModel("4_issue_vliw_dsp", macs_per_cycle=4.0)
        rows = []
        for model in (single_mac, vliw):
            rows.append({
                "architecture": model.name,
                "cycles_per_macroblock": model.macroblock_cycles(SEARCH_RANGE),
                "required_mhz_qcif30": round(model.required_frequency_hz(
                    search_range=SEARCH_RANGE) / 1e6, 1),
            })
        array_requirement = required_frequency(ARRAY_CYCLES_PER_MACROBLOCK,
                                               architecture="systolic_2d_array")
        rows.append({
            "architecture": array_requirement.architecture,
            "cycles_per_macroblock": array_requirement.cycles_per_macroblock,
            "required_mhz_qcif30": round(array_requirement.required_frequency_hz / 1e6, 1),
        })
        return rows

    rows = benchmark(run)
    print()
    print(format_table(rows, title="Real-time QCIF@30fps, +-8 full search + DCT"))

    by_name = {row["architecture"]: row for row in rows}
    dsp_mhz = by_name["single_mac_dsp"]["required_mhz_qcif30"]
    array_mhz = by_name["systolic_2d_array"]["required_mhz_qcif30"]
    # Shape of the claim: the DSP needs a clock two orders of magnitude
    # higher than the array for the same real-time workload.
    assert dsp_mhz > 100 * array_mhz
    # Wider VLIW issue helps but does not close the gap.
    assert by_name["4_issue_vliw_dsp"]["required_mhz_qcif30"] > 10 * array_mhz
