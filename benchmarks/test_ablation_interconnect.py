"""Ablation — byte-wide coarse tracks vs an all-1-bit fine-grain mesh.

Sec. 2 of the paper: the mesh "is composed of a combination of 8-bit and
1-bit tracks, which allows having a reduced number of switches and
configuration bits when compared [to] generic fine-grain 1-bit FPGAs".
This ablation quantifies that statement on the DA array's mesh by
replacing every coarse track with eight fine tracks of identical raw wire
capacity and counting switches and configuration bits.
"""

import pytest

from repro.arrays.da_array import DAArrayGeometry, build_da_array
from repro.core.interconnect import MeshSpec, fine_grain_equivalent


@pytest.mark.benchmark(group="ablation-interconnect")
def test_coarse_tracks_save_switches_and_configuration(benchmark):
    spec = MeshSpec(coarse_tracks_per_channel=12, fine_tracks_per_channel=16)
    geometry = DAArrayGeometry()

    def run():
        coarse_fabric = build_da_array(geometry, spec)
        fine_fabric = build_da_array(geometry, fine_grain_equivalent(spec))
        return {
            "coarse_switches": coarse_fabric.mesh.total_switches(),
            "fine_switches": fine_fabric.mesh.total_switches(),
            "coarse_config_bits": coarse_fabric.mesh.total_config_bits(),
            "fine_config_bits": fine_fabric.mesh.total_config_bits(),
            "coarse_wire_bits": coarse_fabric.mesh.total_wire_bits(),
            "fine_wire_bits": fine_fabric.mesh.total_wire_bits(),
        }

    counts = benchmark(run)
    switch_saving = 1.0 - counts["coarse_switches"] / counts["fine_switches"]
    config_saving = 1.0 - counts["coarse_config_bits"] / counts["fine_config_bits"]
    print(f"\nInterconnect ablation: switches {counts['coarse_switches']} vs "
          f"{counts['fine_switches']} ({switch_saving:.1%} fewer), configuration "
          f"bits {counts['coarse_config_bits']} vs {counts['fine_config_bits']} "
          f"({config_saving:.1%} fewer) at identical wire capacity")

    # Identical raw wiring capacity...
    assert counts["coarse_wire_bits"] == counts["fine_wire_bits"]
    # ...but the mixed coarse/fine mesh needs far fewer programmable switches
    # and configuration bits — the source of the arrays' efficiency.
    assert switch_saving > 0.5
    assert config_saving > 0.5
